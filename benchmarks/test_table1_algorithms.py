"""Table I — SymmSquareCube Algorithms 3/4/5.

Regenerates the experiment at paper scale and asserts the qualitative
reproduction targets listed in DESIGN.md; the rendered rows are written to
benchmarks/results/table1.txt.
"""

from conftest import run_paper_experiment


def test_table1(benchmark):
    run_paper_experiment(benchmark, "table1")
