"""Fig. 5 — collective bandwidth for the three overlap cases.

Regenerates the experiment at paper scale and asserts the qualitative
reproduction targets listed in DESIGN.md; the rendered rows are written to
benchmarks/results/fig5.txt.
"""

from conftest import run_paper_experiment


def test_fig5(benchmark):
    run_paper_experiment(benchmark, "fig5")
