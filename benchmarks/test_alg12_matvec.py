"""Algorithms 1-2 — the paper's didactic overlapped matvec, measured.

Regenerates the experiment and asserts the qualitative targets; rendered
rows go to ``benchmarks/results/alg12.txt``.
"""

from conftest import run_paper_experiment


def test_alg12(benchmark):
    run_paper_experiment(benchmark, "alg12")
