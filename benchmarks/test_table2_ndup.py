"""Table II — optimized SymmSquareCube vs N_DUP.

Regenerates the experiment at paper scale and asserts the qualitative
reproduction targets listed in DESIGN.md; the rendered rows are written to
benchmarks/results/table2.txt.
"""

from conftest import run_paper_experiment


def test_table2(benchmark):
    run_paper_experiment(benchmark, "table2")
