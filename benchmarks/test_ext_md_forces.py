"""Extension (§VI) — overlapped collectives in a force-decomposition step.

Regenerates the experiment and asserts the qualitative targets; rendered
rows go to ``benchmarks/results/ext-md.txt``.
"""

from conftest import run_paper_experiment


def test_ext_md(benchmark):
    run_paper_experiment(benchmark, "ext-md")
