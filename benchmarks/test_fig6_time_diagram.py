"""Fig. 6 — posting/wait breakdown of 8 MB collectives.

Regenerates the experiment at paper scale and asserts the qualitative
reproduction targets listed in DESIGN.md; the rendered rows are written to
benchmarks/results/fig6.txt.
"""

from conftest import run_paper_experiment


def test_fig6(benchmark):
    run_paper_experiment(benchmark, "fig6")
