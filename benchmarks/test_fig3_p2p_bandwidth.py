"""Fig. 3 — point-to-point bandwidth vs message size and PPN.

Regenerates the experiment at paper scale and asserts the qualitative
reproduction targets listed in DESIGN.md; the rendered rows are written to
benchmarks/results/fig3.txt.
"""

from conftest import run_paper_experiment


def test_fig3(benchmark):
    run_paper_experiment(benchmark, "fig3")
