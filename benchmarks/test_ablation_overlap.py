"""Ablation — measured comm-comm overlap: plain vs pipelined SUMMA.

Regenerates the traced p=4 / n=2048 variant sweep and asserts the
measured-overlap targets: plain SUMMA's wires never carry two operations
at once (comm-comm ~0) while every pipelined variant keeps well over the
committed floor of its wire time multi-operation, with the 4-color
schedule strictly above plain (the PR's gate).  The rendered rows are
written to benchmarks/results/ablation-overlap.txt.
"""

from conftest import run_paper_experiment


def test_ablation_overlap(benchmark):
    run_paper_experiment(benchmark, "ablation-overlap", quick=True)
