"""Ablation — multithreaded overlap vs the paper's techniques (§I remark).

Regenerates the experiment and asserts the qualitative targets; rendered
rows go to ``benchmarks/results/ablation-multithread.txt``.
"""

from conftest import run_paper_experiment


def test_ablation_multithread(benchmark):
    run_paper_experiment(benchmark, "ablation-multithread")
