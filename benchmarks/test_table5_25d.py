"""Table V — 2.5D SymmSquareCube configurations.

Regenerates the experiment at paper scale and asserts the qualitative
reproduction targets listed in DESIGN.md; the rendered rows are written to
benchmarks/results/table5.txt.
"""

from conftest import run_paper_experiment


def test_table5(benchmark):
    run_paper_experiment(benchmark, "table5")
