"""Table IV — inter-node volume/bandwidth/time vs PPN.

Regenerates the experiment at paper scale and asserts the qualitative
reproduction targets listed in DESIGN.md; the rendered rows are written to
benchmarks/results/table4.txt.
"""

from conftest import run_paper_experiment


def test_table4(benchmark):
    run_paper_experiment(benchmark, "table4")
