"""§V-A — alpha-beta model vs simulated baseline.

Regenerates the experiment at paper scale and asserts the qualitative
reproduction targets listed in DESIGN.md; the rendered rows are written to
benchmarks/results/secva.txt.
"""

from conftest import run_paper_experiment


def test_secva(benchmark):
    run_paper_experiment(benchmark, "secva")
