"""Ablation — collective algorithm family.

Regenerates the experiment at paper scale and asserts the qualitative
reproduction targets listed in DESIGN.md; the rendered rows are written to
benchmarks/results/ablation-collectives.txt.
"""

from conftest import run_paper_experiment


def test_ablation_collectives(benchmark):
    run_paper_experiment(benchmark, "ablation-collectives")
