"""Table VI (extension) — the pipelined-multicast SUMMA family.

Regenerates the colors x tile-depth x mesh sweep (including the autotuned
pick) and asserts the qualitative targets: every pipelined variant beats
plain SUMMA, deeper pre-post windows never lose, and the 4-color variant
reaches the committed speedup on the 4x4 mesh.  The rendered rows are
written to benchmarks/results/table6.txt.
"""

from conftest import run_paper_experiment


def test_table6(benchmark):
    run_paper_experiment(benchmark, "table6")
