"""Shared machinery for the paper-reproduction benchmarks.

Each ``benchmarks/test_*.py`` regenerates one table or figure of the paper
via the experiment registry, asserts its qualitative reproduction targets,
and records the rendered table both in the benchmark's ``extra_info`` and
under ``benchmarks/results/`` for inspection (EXPERIMENTS.md quotes these).

The underlying simulations are deterministic, so every benchmark uses a
single pedantic round: the reported time is the wall time of regenerating
the experiment, and the interesting output is the table itself.
"""

from __future__ import annotations

import pathlib

from repro.bench.harness import load_experiment, run_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_paper_experiment(benchmark, name: str, quick: bool = False):
    """Run experiment ``name`` under pytest-benchmark and verify its targets."""
    out = benchmark.pedantic(
        run_experiment, args=(name,), kwargs={"quick": quick},
        rounds=1, iterations=1,
    )
    load_experiment(name).check(out)
    rendered = out.render()
    benchmark.extra_info["experiment"] = name
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered)
    print()
    print(rendered)
    return out
