"""Ablation — resilience of the overlap gains under injected fabric faults.

Regenerates the experiment and asserts the qualitative targets; rendered
rows go to ``benchmarks/results/ablation-faults.txt``.
"""

from conftest import run_paper_experiment


def test_ablation_faults(benchmark):
    run_paper_experiment(benchmark, "ablation-faults")
