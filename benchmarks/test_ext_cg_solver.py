"""Extension (§VI) — overlapped reductions in conjugate gradient.

Regenerates the experiment at paper scale and asserts the qualitative
reproduction targets listed in DESIGN.md; the rendered rows are written to
``benchmarks/results/ext-cg.txt``.
"""

from conftest import run_paper_experiment


def test_ext_cg(benchmark):
    run_paper_experiment(benchmark, "ext-cg")
