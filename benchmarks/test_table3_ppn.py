"""Table III — SymmSquareCube vs PPN, N_DUP in {1,4}.

Regenerates the experiment at paper scale and asserts the qualitative
reproduction targets listed in DESIGN.md; the rendered rows are written to
benchmarks/results/table3.txt.
"""

from conftest import run_paper_experiment


def test_table3(benchmark):
    run_paper_experiment(benchmark, "table3")
