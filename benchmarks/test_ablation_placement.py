"""Ablation — rank-to-node placement sensitivity of the optimized kernel.

Regenerates the experiment and asserts the qualitative targets; rendered
rows go to ``benchmarks/results/ablation-placement.txt``.
"""

from conftest import run_paper_experiment


def test_ablation_placement(benchmark):
    run_paper_experiment(benchmark, "ablation-placement")
