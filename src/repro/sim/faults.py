"""Deterministic, seed-driven fault injection for the simulated fabric.

Real fabrics are not the ideal network the paper's overlap analysis assumes:
links degrade under congestion, ranks straggle, NICs jitter, and packets are
dropped.  This module describes such scenarios as data — a
:class:`FaultPlan` composed of typed fault specs — that the simulator layers
consult at well-defined hook points:

:class:`LinkDegradation`
    Multiplies one node's NIC capacity (``tx`` / ``rx`` / both) by a factor
    in ``(0, 1]`` during a virtual-time window.  The fabric recomputes every
    active flow's rate at the window edges, so degradation applies to flows
    already in flight.
:class:`StragglerSlowdown`
    Dilates one rank's compute (GEMM charges and progress-engine work) by a
    factor ``>= 1`` during a window; integration is piecewise, so a compute
    span straddling a window edge is slowed only for the overlapping part.
:class:`NicJitter`
    Adds a deterministic pseudo-random extra latency (uniform in
    ``[0, max_extra_latency)``) to every message touching a node during a
    window.
:class:`MessageDrop`
    Drops matching point-to-point payload transmissions with a given
    probability; the transport recovers via timeout + bounded exponential
    backoff retry (:class:`RetryPolicy`).

Determinism: every random decision (jitter samples, drop draws) is derived
by hashing ``(seed, kind, spec index, identifying keys, per-key counter)``
with BLAKE2b — no global RNG, no dependence on Python hash randomization —
so a run with a given plan is bit-for-bit reproducible, which is what makes
golden-trace and property-based chaos testing possible.  A plan carries
mutable draw counters; :class:`~repro.mpi.world.World` calls :meth:`reset`
at construction so the same plan object replays identically across runs.
Attach a plan to only one live world at a time.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FaultPlan",
    "LinkDegradation",
    "StragglerSlowdown",
    "NicJitter",
    "MessageDrop",
    "RetryPolicy",
]


def _check_window(t_start: float, t_end: float) -> None:
    if t_start < 0:
        raise ValueError(f"fault window starts in negative time: {t_start}")
    if not t_end > t_start:
        raise ValueError(f"empty fault window: [{t_start}, {t_end})")


@dataclass(frozen=True)
class LinkDegradation:
    """One node's NIC bandwidth multiplied by ``factor`` over ``[t_start, t_end)``."""

    node: int
    t_start: float
    t_end: float
    factor: float
    direction: str = "both"  # "tx", "rx" or "both"

    def __post_init__(self) -> None:
        _check_window(self.t_start, self.t_end)
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"degradation factor must be in (0, 1]: {self.factor}")
        if self.direction not in ("tx", "rx", "both"):
            raise ValueError(f"direction must be tx/rx/both: {self.direction!r}")

    def applies(self, kind: str, node: int, t: float) -> bool:
        """True if this window throttles resource ``(kind, node)`` at time ``t``."""
        return (
            node == self.node
            and self.t_start <= t < self.t_end
            and (self.direction == "both" or self.direction == kind)
        )


@dataclass(frozen=True)
class StragglerSlowdown:
    """One rank's compute runs ``factor`` times slower over ``[t_start, t_end)``."""

    rank: int
    t_start: float
    t_end: float
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.t_start, self.t_end)
        if self.factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1: {self.factor}")


@dataclass(frozen=True)
class NicJitter:
    """Extra per-message latency in ``[0, max_extra_latency)`` at one node."""

    node: int
    t_start: float
    t_end: float
    max_extra_latency: float

    def __post_init__(self) -> None:
        _check_window(self.t_start, self.t_end)
        if self.max_extra_latency < 0:
            raise ValueError(f"negative jitter bound: {self.max_extra_latency}")


@dataclass(frozen=True)
class MessageDrop:
    """Drop matching p2p transmissions with ``probability`` (per attempt).

    ``src``/``dst`` of ``None`` match any rank.  ``max_drops`` bounds the
    total number of drops this spec may cause (``None`` = unbounded), which
    lets tests guarantee liveness independent of the retry budget.
    """

    src: int | None = None
    dst: int | None = None
    probability: float = 0.1
    t_start: float = 0.0
    t_end: float = math.inf
    max_drops: int | None = None

    def __post_init__(self) -> None:
        _check_window(self.t_start, self.t_end)
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"drop probability outside [0, 1]: {self.probability}")
        if self.max_drops is not None and self.max_drops < 0:
            raise ValueError(f"negative max_drops: {self.max_drops}")


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + bounded exponential backoff for dropped p2p transmissions.

    Attempt ``k`` (1-based) of a retransmission waits
    ``min(timeout * backoff**(k-1), max_delay)`` of virtual time before
    re-entering the wire; after ``max_attempts`` consecutive drops the
    transport raises (the message is undeliverable).
    """

    timeout: float = 200e-6
    backoff: float = 2.0
    max_delay: float = 20e-3
    max_attempts: int = 12

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"retry timeout must be > 0: {self.timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1: {self.backoff}")
        if self.max_delay < self.timeout:
            raise ValueError("max_delay must be >= timeout")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")

    def delay(self, attempt: int) -> float:
        """Backoff delay before retransmission ``attempt`` (1-based)."""
        return min(self.timeout * self.backoff ** (attempt - 1), self.max_delay)


class FaultPlan:
    """A deterministic schedule of fault specs plus the retry policy.

    All queries take the current *virtual* time; random draws are derived
    from ``seed`` (see module docstring), so two runs of the same scenario
    agree bit-for-bit.
    """

    def __init__(self, specs=(), seed: int = 0, retry: RetryPolicy | None = None):
        self.seed = int(seed)
        self.retry = retry or RetryPolicy()
        self.specs = tuple(specs)
        self.links: tuple[LinkDegradation, ...] = tuple(
            s for s in self.specs if isinstance(s, LinkDegradation)
        )
        self.stragglers: tuple[StragglerSlowdown, ...] = tuple(
            s for s in self.specs if isinstance(s, StragglerSlowdown)
        )
        self.jitters: tuple[NicJitter, ...] = tuple(
            s for s in self.specs if isinstance(s, NicJitter)
        )
        self.drops: tuple[MessageDrop, ...] = tuple(
            s for s in self.specs if isinstance(s, MessageDrop)
        )
        known = len(self.links) + len(self.stragglers) + len(self.jitters) + len(self.drops)
        if known != len(self.specs):
            bad = [s for s in self.specs if not isinstance(
                s, (LinkDegradation, StragglerSlowdown, NicJitter, MessageDrop))]
            raise TypeError(f"unknown fault spec(s): {bad!r}")
        self.reset()

    def reset(self) -> None:
        """Zero all draw counters so the plan replays identically."""
        self._jitter_draws: dict[tuple[int, int], int] = {}
        self._drop_draws: dict[tuple[int, int, int], int] = {}
        self._drop_count: dict[int, int] = {}
        self.total_drops = 0

    # -- deterministic randomness ---------------------------------------------

    def _hash01(self, *key) -> float:
        """A reproducible uniform draw in [0, 1) keyed by ``(seed, *key)``."""
        digest = hashlib.blake2b(
            repr((self.seed,) + key).encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    # -- link degradation (consumed by the fabric) ----------------------------

    def bandwidth_factor(self, kind: str, node: int, t: float) -> float:
        """Capacity multiplier for NIC resource ``(kind, node)`` at time ``t``."""
        f = 1.0
        for s in self.links:
            if s.applies(kind, node, t):
                f *= s.factor
        return f

    def link_boundaries(self) -> list[float]:
        """Sorted finite times at which some link's capacity changes."""
        times = set()
        for s in self.links:
            times.add(s.t_start)
            if math.isfinite(s.t_end):
                times.add(s.t_end)
        return sorted(times)

    def link_degraded(self, t: float) -> bool:
        """True if any link-degradation window is active at time ``t``."""
        return any(s.t_start <= t < s.t_end for s in self.links)

    def degraded_nodes(self, t: float) -> set[int]:
        """Nodes whose NIC is throttled at time ``t``."""
        return {s.node for s in self.links if s.t_start <= t < s.t_end}

    # -- straggler compute (consumed by RankEnv / ProgressEngine) -------------

    def compute_finish(self, rank: int, t0: float, seconds: float) -> float:
        """Finish time of ``seconds`` of nominal compute starting at ``t0``.

        Piecewise integration over the rank's straggler windows: inside a
        window the rank produces work at ``1 / factor`` of nominal speed
        (overlapping windows multiply).
        """
        if seconds <= 0:
            return t0
        specs = [s for s in self.stragglers if s.rank == rank]
        if not specs:
            return t0 + seconds
        bounds = sorted(
            {b for s in specs for b in (s.t_start, s.t_end) if math.isfinite(b) and b > t0}
        )
        t, work = t0, seconds
        for b in bounds:
            f = 1.0
            for s in specs:
                if s.t_start <= t < s.t_end:
                    f *= s.factor
            if work * f <= b - t:
                return t + work * f
            work -= (b - t) / f
            t = b
        f = 1.0
        for s in specs:
            if s.t_start <= t < s.t_end:
                f *= s.factor
        return t + work * f

    # -- NIC jitter (consumed by the fabric) ----------------------------------

    def jitter_latency(self, src_node: int, dst_node: int, t: float) -> float:
        """Deterministic extra latency for a message between two nodes."""
        extra = 0.0
        for idx, s in enumerate(self.jitters):
            if not s.t_start <= t < s.t_end or s.max_extra_latency <= 0:
                continue
            for node in {src_node, dst_node}:
                if node != s.node:
                    continue
                key = (idx, node)
                n = self._jitter_draws.get(key, 0) + 1
                self._jitter_draws[key] = n
                extra += self._hash01("jitter", idx, node, n) * s.max_extra_latency
        return extra

    # -- message drop (consumed by the transport) -----------------------------

    def should_drop(self, src: int, dst: int, t: float) -> bool:
        """Decide whether this transmission attempt is lost on the wire."""
        for idx, s in enumerate(self.drops):
            if s.src is not None and s.src != src:
                continue
            if s.dst is not None and s.dst != dst:
                continue
            if not s.t_start <= t < s.t_end:
                continue
            if s.max_drops is not None and self._drop_count.get(idx, 0) >= s.max_drops:
                continue
            key = (idx, src, dst)
            n = self._drop_draws.get(key, 0) + 1
            self._drop_draws[key] = n
            if self._hash01("drop", idx, src, dst, n) < s.probability:
                self._drop_count[idx] = self._drop_count.get(idx, 0) + 1
                self.total_drops += 1
                return True
        return False

    # -- plan generation -------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        num_ranks: int,
        num_nodes: int,
        horizon: float,
        kinds: tuple[str, ...] = ("link", "straggler", "jitter", "drop"),
        retry: RetryPolicy | None = None,
    ) -> "FaultPlan":
        """A randomized plan drawn reproducibly from ``seed``.

        Windows land inside ``[0, horizon)``; drop specs are bounded by
        ``max_drops`` so any generated plan keeps every message deliverable
        within the default retry budget.  Used by the property-based chaos
        tests and the ``ablation-faults`` experiment.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0: {horizon}")
        rng = np.random.default_rng(seed)
        specs: list = []

        def window():
            t0 = float(rng.uniform(0.0, 0.6 * horizon))
            dur = float(rng.uniform(0.15 * horizon, 0.6 * horizon))
            return t0, t0 + dur

        for kind in kinds:
            for _ in range(int(rng.integers(1, 3))):
                t0, t1 = window()
                if kind == "link":
                    specs.append(LinkDegradation(
                        node=int(rng.integers(num_nodes)), t_start=t0, t_end=t1,
                        factor=float(rng.uniform(0.25, 0.85)),
                        direction=str(rng.choice(["tx", "rx", "both"])),
                    ))
                elif kind == "straggler":
                    specs.append(StragglerSlowdown(
                        rank=int(rng.integers(num_ranks)), t_start=t0, t_end=t1,
                        factor=float(rng.uniform(1.5, 3.5)),
                    ))
                elif kind == "jitter":
                    specs.append(NicJitter(
                        node=int(rng.integers(num_nodes)), t_start=t0, t_end=t1,
                        max_extra_latency=float(rng.uniform(2e-6, 25e-6)),
                    ))
                elif kind == "drop":
                    specs.append(MessageDrop(
                        src=None if rng.random() < 0.5 else int(rng.integers(num_ranks)),
                        dst=None,
                        probability=float(rng.uniform(0.05, 0.25)),
                        t_start=0.0, t_end=math.inf,
                        max_drops=int(rng.integers(1, 5)),
                    ))
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
        return cls(specs, seed=seed, retry=retry)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FaultPlan seed={self.seed} links={len(self.links)} "
            f"stragglers={len(self.stragglers)} jitters={len(self.jitters)} "
            f"drops={len(self.drops)}>"
        )
