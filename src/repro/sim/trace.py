"""Timeline tracing: records per-rank activity spans for Fig.-6-style diagrams.

Every MPI-layer operation records spans (post / wait / compute / transfer)
tagged with the owning rank.  The benchmark for the paper's Fig. 6 replays
these spans to print the posting-vs-wait breakdown of nonblocking collectives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SpanKind(enum.Enum):
    """Category of a traced activity span."""

    POST = "post"          # CPU time spent inside a (nonblocking) MPI call
    WAIT = "wait"          # blocked in MPI_Wait / blocking call completion
    COMPUTE = "compute"    # local computation (GEMM, reduction combine)
    TRANSFER = "transfer"  # network flow active (recorded per flow)
    MISC = "misc"


@dataclass(frozen=True)
class TraceRecord:
    """One half-open activity interval ``[t0, t1)`` on a rank."""

    rank: int
    t0: float
    t1: float
    kind: SpanKind
    label: str
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Trace:
    """Collects :class:`TraceRecord` spans; optionally disabled for speed.

    A disabled trace turns :meth:`add` into a no-op so the large benchmark
    sweeps pay nothing for instrumentation.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def add(
        self,
        rank: int,
        t0: float,
        t1: float,
        kind: SpanKind,
        label: str,
        **meta,
    ) -> None:
        """Record a span; ``t1`` must be >= ``t0``."""
        if not self.enabled:
            return
        if t1 < t0:
            raise ValueError(f"span ends before it starts: [{t0}, {t1})")
        self.records.append(TraceRecord(rank, t0, t1, kind, label, meta))

    def for_rank(self, rank: int) -> list[TraceRecord]:
        """All spans on one rank, ordered by start time."""
        return sorted(
            (r for r in self.records if r.rank == rank), key=lambda r: (r.t0, r.t1)
        )

    def by_label(self, label_prefix: str) -> list[TraceRecord]:
        """All spans whose label starts with ``label_prefix``."""
        return [r for r in self.records if r.label.startswith(label_prefix)]

    def total(self, rank: int, kind: SpanKind) -> float:
        """Sum of span durations of one kind on one rank."""
        return sum(r.duration for r in self.records if r.rank == rank and r.kind == kind)

    def of_kind(self, kind: SpanKind) -> list[TraceRecord]:
        """All spans of one kind, in recording order."""
        return [r for r in self.records if r.kind == kind]

    def ranks(self) -> list[int]:
        """Sorted set of ranks that recorded at least one span."""
        return sorted({r.rank for r in self.records})

    def horizon(self) -> tuple[float, float]:
        """``(t_min, t_max)`` over all spans; ``(0.0, 0.0)`` when empty."""
        if not self.records:
            return (0.0, 0.0)
        return (min(r.t0 for r in self.records),
                max(r.t1 for r in self.records))

    def clear(self) -> None:
        self.records.clear()

    def to_jsonable(self) -> list[dict]:
        """Spans as plain JSON-serializable dicts, in recording order.

        The golden-trace regression tests serialize a reference run with
        this and later assert span-for-span equality, so refactors of the
        engine or progress machinery cannot silently change timing
        semantics.  Floats survive a ``json`` round-trip exactly (shortest
        repr), so equality on the round-tripped form is bit-for-bit.
        """
        out = []
        for r in self.records:
            rec = {
                "rank": r.rank,
                "t0": r.t0,
                "t1": r.t1,
                "kind": r.kind.value,
                "label": r.label,
            }
            if r.meta:
                rec["meta"] = {k: r.meta[k] for k in sorted(r.meta)}
            out.append(rec)
        return out

    @staticmethod
    def records_from_jsonable(data: list[dict]) -> list[TraceRecord]:
        """Inverse of :meth:`to_jsonable` (for fixture loading)."""
        return [
            TraceRecord(
                d["rank"], d["t0"], d["t1"], SpanKind(d["kind"]), d["label"],
                dict(d.get("meta", {})),
            )
            for d in data
        ]

    def render_gantt(self, ranks: list[int] | None = None, width: int = 72) -> str:
        """ASCII Gantt rendering of the recorded spans (one line per span).

        Spans are scaled to ``width`` characters over the full trace horizon.
        Used by the Fig. 6 experiment to print a textual time diagram.
        """
        recs = self.records if ranks is None else [r for r in self.records if r.rank in ranks]
        if not recs:
            return "(empty trace)\n"
        t_min = min(r.t0 for r in recs)
        t_max = max(r.t1 for r in recs)
        span = max(t_max - t_min, 1e-30)
        lines = []
        glyph = {
            SpanKind.POST: "#",
            SpanKind.WAIT: ".",
            SpanKind.COMPUTE: "*",
            SpanKind.TRANSFER: "=",
            SpanKind.MISC: "-",
        }
        for r in sorted(recs, key=lambda r: (r.rank, r.t0, r.t1)):
            a = int((r.t0 - t_min) / span * width)
            b = max(a + 1, int((r.t1 - t_min) / span * width))
            bar = " " * a + glyph[r.kind] * (b - a)
            lines.append(
                f"r{r.rank:<3d} {bar.ljust(width)} {r.kind.value:<8s} "
                f"{r.label} [{(r.t1 - r.t0) * 1e6:.0f}us]"
            )
        return "\n".join(lines) + "\n"
