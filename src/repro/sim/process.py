"""Generator-coroutine processes and the syscalls they may yield.

A simulated process is an ordinary Python generator.  It communicates with
the engine by *yielding syscall objects*:

``Delay(dt)``
    The process's (single) CPU is busy/blocked for ``dt`` virtual seconds.
``WaitEvent(ev)`` or a bare :class:`~repro.sim.engine.SimEvent`
    Suspend until the event fires; the event's value is sent back into the
    generator as the result of the ``yield``.
``AllOf([ev, ...])``
    Suspend until every listed event has fired; returns their values.
``AnyOf([ev, ...])``
    Suspend until the first fires; returns ``(index, value)``.

Sub-operations (e.g. an MPI broadcast) are written as generators too and
invoked with ``yield from``, returning results via ``return``.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence
from typing import Any

from repro.sim.engine import Engine, SimEvent, SimulationError


class Delay:
    """Syscall: occupy the process for ``dt`` seconds of virtual time."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise ValueError(f"negative delay: {dt}")
        self.dt = dt


class WaitEvent:
    """Syscall: suspend until ``event`` fires; yields the event's value."""

    __slots__ = ("event",)

    def __init__(self, event: SimEvent):
        self.event = event


class AllOf:
    """Syscall: suspend until all events fire; yields the list of values."""

    __slots__ = ("events",)

    def __init__(self, events: Sequence[SimEvent]):
        self.events = list(events)


class AnyOf:
    """Syscall: suspend until any event fires; yields ``(index, value)``."""

    __slots__ = ("events",)

    def __init__(self, events: Sequence[SimEvent]):
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")


class Interrupt(Exception):
    """Thrown into a process by :meth:`SimProcess.interrupt`."""


class SimProcess:
    """Drives one generator coroutine against the engine.

    The process starts automatically at the current virtual time.  Its
    :attr:`done` event fires with the generator's return value when it
    finishes.  Errors raised inside the generator are re-raised out of
    :meth:`Engine.run`, wrapped in :class:`SimulationError` naming the
    process.
    """

    def __init__(self, engine: Engine, gen: Generator, name: str = "proc"):
        self.engine = engine
        self.gen = gen
        self.name = name
        self.done: SimEvent = engine.event(f"{name}.done")
        self._waiting_any: list[SimEvent] | None = None
        engine.schedule_after(0.0, self._step, None)

    # -- engine interaction -------------------------------------------------

    def _step(self, send_value: Any) -> None:
        try:
            syscall = self.gen.send(send_value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except Interrupt:
            self.done.succeed(None)
            return
        except Exception as exc:  # surface with process context
            raise SimulationError(f"process {self.name!r} failed: {exc!r}") from exc
        self._dispatch(syscall)

    def _throw(self, exc: BaseException) -> None:
        try:
            syscall = self.gen.throw(exc)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except Interrupt:
            self.done.succeed(None)
            return
        except Exception as err:
            raise SimulationError(f"process {self.name!r} failed: {err!r}") from err
        self._dispatch(syscall)

    def _resume(self, ev: SimEvent) -> None:
        """Event callback: continue the generator with the event's value."""
        self._step(ev.value)

    def _dispatch(self, syscall: Any) -> None:
        if isinstance(syscall, Delay):
            self.engine.schedule_after(syscall.dt, self._step, None)
        elif isinstance(syscall, WaitEvent):
            syscall.event.add_callback(self._resume)
        elif isinstance(syscall, SimEvent):
            syscall.add_callback(self._resume)
        elif isinstance(syscall, AllOf):
            self._wait_all(syscall.events)
        elif isinstance(syscall, AnyOf):
            self._wait_any(syscall.events)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded invalid syscall {syscall!r}"
            )

    def _wait_all(self, events: list[SimEvent]) -> None:
        if not events:
            self.engine.schedule_after(0.0, self._step, [])
            return
        remaining = {"n": len(events)}
        rec = self.engine.recorder

        if rec is None:
            def on_fire(_ev: SimEvent) -> None:
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    self._step([e.value for e in events])
        else:
            # Recording: the resume instant is the max over every awaited
            # event's firing — accumulate the join across callbacks.
            acc = {"node": None}

            def on_fire(_ev: SimEvent) -> None:
                eng = self.engine
                acc["node"] = rec.join2(acc["node"], eng._rec_ctx)
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    eng._rec_ctx = acc["node"]
                    self._step([e.value for e in events])

        for ev in events:
            ev.add_callback(on_fire)

    def _wait_any(self, events: list[SimEvent]) -> None:
        rec = self.engine.recorder
        if rec is not None:
            # Which event wins the race is timing-dependent control flow the
            # max-plus graph cannot express.
            rec.invalidate("AnyOf/waitany race")
        resumed = {"done": False}

        def make_cb(idx: int):
            def on_fire(ev: SimEvent) -> None:
                if not resumed["done"]:
                    resumed["done"] = True
                    self._step((idx, ev.value))

            return on_fire

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))

    # -- public control -----------------------------------------------------

    def interrupt(self) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Only meaningful for processes currently suspended on a syscall; the
        process may catch the interrupt to clean up, otherwise it terminates.
        """
        if self.done.fired:
            return
        rec = self.engine.recorder
        if rec is not None:
            rec.invalidate("process interrupt")
        self.engine.schedule_after(0.0, self._maybe_throw)

    def _maybe_throw(self) -> None:
        if not self.done.fired:
            self._throw(Interrupt())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done.fired else "running"
        return f"<SimProcess {self.name!r} {state}>"


def run_processes(gens: Sequence[tuple[str, Generator]], *, engine: Engine | None = None) -> tuple[float, list[Any]]:
    """Convenience: run named generators to completion; return (time, results).

    Used heavily by the tests: ``run_processes([("r0", gen0), ("r1", gen1)])``
    creates the engine, drives everything, and returns the final virtual time
    together with each generator's return value (in input order).
    """
    eng = engine or Engine()
    procs = [SimProcess(eng, g, name=n) for n, g in gens]
    eng.run()
    unfinished = [p.name for p in procs if not p.done.fired]
    if unfinished:
        raise SimulationError(f"deadlock: processes never finished: {unfinished}")
    return eng.now, [p.done.value for p in procs]
