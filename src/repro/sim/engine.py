"""Event loop and one-shot events for the discrete-event simulator.

The :class:`Engine` owns a binary heap of ``[time, seq, fn, args]`` entries.
``seq`` is a monotonically increasing counter so that callbacks scheduled for
the same virtual time fire in FIFO order, which makes every run of a
simulation bit-for-bit deterministic — a property the tests and the paper
reproduction rely on (there is no wall-clock noise in any reported number).

Heap hygiene
------------
Entries are mutable lists so a scheduled callback can be retracted in O(1)
by blanking its ``fn`` slot in place.  :meth:`Engine.call_at` returns a
:class:`Timer` handle whose :meth:`Timer.cancel` does exactly that; layers
that supersede their own completions (most importantly the fluid-flow
fabric, which moves a flow's completion every time its share of a NIC
changes) cancel the stale entry instead of leaving a version-guarded no-op
to rot in the heap.  Cancelled entries are reaped lazily when they surface
at the heap top; when more than half of the heap is dead, the whole heap is
compacted in one O(n) pass.  Neither reaping nor compaction can reorder
live entries: ordering is always by ``(time, seq)`` and ``seq`` is unique,
so list comparison never reaches the (uncomparable) callback slot.

Hot-path scheduling
-------------------
:meth:`Engine.schedule_at` / :meth:`Engine.schedule_after` are the
allocation-lean primitives: they accept positional arguments
(``schedule_at(t, fn, a, b)``) so hot call sites pass bound methods plus
arguments instead of allocating a closure per event, and they return the
raw heap entry (cancel it with :meth:`Engine.cancel`).  :meth:`call_at` /
:meth:`call_after` wrap the same entry in a :class:`Timer` handle — the
friendlier API for code outside the simulator core.

End-of-instant hooks
--------------------
:meth:`Engine.at_instant_end` registers a callback to run after the last
event of the *current virtual instant* and before the clock advances.  The
fabric uses this to coalesce all rate recomputation triggered within one
instant into a single pass without paying a zero-delay heap round-trip per
burst (see ``docs/perf.md``).
"""

from __future__ import annotations

import heapq
import threading
from collections.abc import Callable
from typing import Any

#: Below this heap size compaction is pointless — reaping at the top is
#: cheaper than rebuilding, and tiny heaps cannot amortize the O(n) pass.
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised when a simulated process fails or the engine detects misuse."""


class DeadlineExceeded(SimulationError):
    """Raised when a bounded run (``run(until=...)``) left work unfinished.

    The autotuner uses this for early termination: a candidate configuration
    is simulated with the incumbent's finishing time as the deadline, and a
    run that cannot beat it is abandoned instead of simulated to completion.
    """


class Timer:
    """Handle for one scheduled callback; supports :meth:`cancel`.

    A cancelled timer never fires.  Cancellation is O(1): the heap entry is
    marked dead in place and reclaimed lazily by the engine.
    """

    __slots__ = ("engine", "entry")

    def __init__(self, engine: "Engine", entry: list):
        self.engine = engine
        self.entry = entry

    @property
    def when(self) -> float:
        """Virtual time the callback is (or was) scheduled for."""
        return self.entry[0]

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (or the timer fired)."""
        return self.entry[2] is None

    def cancel(self) -> None:
        """Retract the callback; safe to call on a fired/cancelled timer."""
        self.engine.cancel(self.entry)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled/fired" if self.entry[2] is None else f"at {self.entry[0]}"
        return f"<Timer {state}>"


class SimEvent:
    """A one-shot event carrying an optional value.

    Callbacks registered before the event fires are invoked (in registration
    order) at the virtual time :meth:`succeed` is called.  Registering a
    callback on an already-fired event invokes it immediately: this is what
    lets a process wait on e.g. a message that already arrived without any
    special-casing.

    Like :meth:`Engine.call_at`, :meth:`add_callback` accepts extra
    positional arguments (``ev.add_callback(fn, a, b)`` fires ``fn(ev, a,
    b)``) so hot registration sites can pass bound methods plus state
    instead of allocating a closure per message.
    """

    __slots__ = ("engine", "name", "_fired", "value", "_callbacks", "fire_time",
                 "_rec_fire")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._fired = False
        self.value: Any = None
        self.fire_time: float | None = None
        self._callbacks: list[tuple[Callable[..., None], tuple]] = []
        self._rec_fire = None  # recording: graph node of the firing instant

    @property
    def fired(self) -> bool:
        """True once :meth:`succeed` has been called."""
        return self._fired

    def succeed(self, value: Any = None) -> None:
        """Fire the event now, delivering ``value`` to all waiters."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self.value = value
        engine = self.engine
        self.fire_time = engine.now
        callbacks, self._callbacks = self._callbacks, []
        rec = engine.recorder
        if rec is None:
            for cb, args in callbacks:
                cb(self, *args)
            return
        # Recording: each waiter resumes no earlier than both the firing
        # instant and its own registration instant, whichever is later under
        # perturbed constants — a max-plus join of the two graph nodes.
        ctx = engine._rec_ctx
        if ctx is None:
            ctx = rec.const(engine.now)
        self._rec_fire = ctx
        for cb, args, add_ctx in callbacks:
            engine._rec_ctx = rec.join2(ctx, add_ctx)
            cb(self, *args)
        engine._rec_ctx = ctx

    def add_callback(self, cb: Callable[..., None], *args) -> None:
        """Register ``cb(event, *args)``; runs immediately if already fired."""
        engine = self.engine
        if self._fired:
            rec = engine.recorder
            if rec is None:
                cb(self, *args)
                return
            # Recording: the callback runs at max(fire instant, now) — which
            # is "now", but under perturbation either side may dominate.
            saved = engine._rec_ctx
            engine._rec_ctx = rec.join2(self._rec_fire, saved)
            cb(self, *args)
            engine._rec_ctx = saved
        elif engine.recorder is None:
            self._callbacks.append((cb, args))
        else:
            self._callbacks.append((cb, args, engine._rec_ctx))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class Engine:
    """The virtual clock and callback heap.

    Typical use::

        eng = Engine()
        proc = SimProcess(eng, my_generator(), name="rank0")
        eng.run()

    :meth:`run` drains the heap; the clock jumps from event to event, so an
    idle simulation costs nothing.
    """

    # Process-wide aggregates across engines, flushed at the end of every
    # :meth:`run`.  The benchmark harness resets these before an experiment
    # and reads them afterwards so per-experiment reports can show simulator
    # cost (an experiment typically creates and discards many Worlds).
    _agg_events = 0
    _agg_cancelled = 0
    _agg_peak_heap = 0
    _agg_compactions = 0
    #: Serializes aggregate flushes: the tuning service runs one engine per
    #: searching thread, and unlocked ``+=`` on class attributes would lose
    #: updates.  Also taken by :class:`repro.netmodel.fabric.Fabric` for its
    #: own class-level channel aggregates (same flush cadence).
    _agg_lock = threading.Lock()

    def __init__(self):
        self.now: float = 0.0
        # Heap entries: [when, seq, fn, args].  fn is None once cancelled
        # or fired; seq is unique so comparison never reaches fn.  While a
        # recorder is attached, entries grow a fifth slot: the max-plus
        # graph node of the dispatch instant (None for untracked events).
        self._heap: list[list] = []
        self._seq = 0
        self._nevents = 0
        self._ndead = 0  # cancelled entries still physically in the heap
        self._flush: list[Callable[[], None]] = []
        #: Components with process-wide aggregate counters (e.g. the fabric's
        #: per-channel traffic) register a flusher here; :meth:`run` calls
        #: them on exit, right after the engine's own aggregate flush, so
        #: class-level totals are only ever touched under the flush lock
        #: instead of once per event.
        self.aggregate_flushers: list[Callable[[], None]] = []
        self.events_cancelled = 0
        self.peak_heap_size = 0
        self.compactions = 0
        self._flushed = (0, 0, 0)  # (events, cancelled, compactions) reported
        # Event-graph recording (see repro.sim.replay).  Attach a
        # GraphRecorder *before* the first event is created; the hooks are
        # observationally free — they never change when anything runs.
        self.recorder = None
        self._rec_ctx = None      # graph node of the current dispatch
        self._rec_pending = None  # override node for the next schedule_*
        self._rec_suspend = False  # fabric-internal events are not recorded

    # -- statistics ---------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Number of heap callbacks executed so far (for perf diagnostics)."""
        return self._nevents

    @property
    def heap_size(self) -> int:
        """Current number of heap entries, dead ones included."""
        return len(self._heap)

    @property
    def dead_entries(self) -> int:
        """Cancelled entries currently awaiting reap/compaction."""
        return self._ndead

    @property
    def dead_entry_ratio(self) -> float:
        """Cancelled callbacks as a fraction of all scheduled callbacks."""
        total = self._nevents + self.events_cancelled + len(self._heap)
        return self.events_cancelled / total if total else 0.0

    def stats(self) -> dict:
        """Simulator-cost counters for one engine, as a plain dict."""
        return {
            "events_processed": self._nevents,
            "events_cancelled": self.events_cancelled,
            "peak_heap_size": self.peak_heap_size,
            "heap_compactions": self.compactions,
            "dead_entry_ratio": self.dead_entry_ratio,
        }

    @classmethod
    def reset_aggregate_stats(cls) -> None:
        """Zero the process-wide aggregates (harness: before an experiment)."""
        cls._agg_events = 0
        cls._agg_cancelled = 0
        cls._agg_peak_heap = 0
        cls._agg_compactions = 0

    @classmethod
    def aggregate_stats(cls) -> dict:
        """Process-wide totals accumulated by every :meth:`run` since reset."""
        return {
            "events_processed": cls._agg_events,
            "events_cancelled": cls._agg_cancelled,
            "peak_heap_size": cls._agg_peak_heap,
            "heap_compactions": cls._agg_compactions,
        }

    def _flush_aggregate(self) -> None:
        # Engines run concurrently under the tuning service (one world per
        # searching thread); the class-wide read-modify-write must be
        # serialized or concurrent flushes lose updates.  One uncontended
        # acquire per run() exit — not per event — so the hot loop is
        # untouched.
        ev, ca, co = self._flushed
        cls = type(self)
        with Engine._agg_lock:
            cls._agg_events += self._nevents - ev
            cls._agg_cancelled += self.events_cancelled - ca
            cls._agg_compactions += self.compactions - co
            if self.peak_heap_size > cls._agg_peak_heap:
                cls._agg_peak_heap = self.peak_heap_size
        self._flushed = (self._nevents, self.events_cancelled, self.compactions)

    # -- scheduling ---------------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when nothing is scheduled — with unfinished processes this
        means the simulation can never make progress again (deadlock)."""
        return self.peek() is None

    def schedule_at(self, when: float, fn: Callable[..., None], *args) -> list:
        """Schedule ``fn(*args)`` at ``when``; returns the raw heap entry.

        The entry can be retracted with :meth:`cancel`.  This is the
        allocation-lean primitive for simulator-internal hot paths; code
        outside the core should prefer :meth:`call_at`, whose
        :class:`Timer` handle carries a friendlier API.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self.now}"
            )
        self._seq = seq = self._seq + 1
        entry = [when, seq, fn, args]
        if self.recorder is not None:
            node = self._rec_node_at(when)
            if node is not None:
                entry.append(node)
        heapq.heappush(self._heap, entry)
        return entry

    def schedule_after(self, delay: float, fn: Callable[..., None], *args) -> list:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._seq = seq = self._seq + 1
        entry = [self.now + delay, seq, fn, args]
        if self.recorder is not None:
            node = self._rec_node_after(delay)
            if node is not None:
                entry.append(node)
        heapq.heappush(self._heap, entry)
        return entry

    def _rec_node_at(self, when: float):
        """Graph node for an absolute-time schedule while recording."""
        rec = self.recorder
        pending = self._rec_pending
        if pending is not None:
            self._rec_pending = None
            return pending
        if self._rec_suspend:
            return None
        ctx = self._rec_ctx
        if ctx is None:
            return rec.const(when)  # setup-time schedule: a true constant
        if when == self.now:
            return ctx
        # An absolute time computed from simulation state is a frozen
        # constant the graph cannot re-derive under perturbed params.
        rec.invalidate("absolute-time schedule from inside the event graph")
        return rec.const(when)

    def _rec_node_after(self, delay: float):
        """Graph node for a relative schedule while recording."""
        rec = self.recorder
        pending = self._rec_pending
        if pending is not None:
            self._rec_pending = None
            return pending
        if self._rec_suspend:
            return None
        ctx = self._rec_ctx
        if ctx is None:
            ctx = rec.const(self.now)
        return rec.shift(ctx, delay)

    def call_at(self, when: float, fn: Callable[..., None], *args) -> Timer:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``.

        Returns a :class:`Timer` that can be cancelled until it fires.
        """
        return Timer(self, self.schedule_at(when, fn, *args))

    def call_after(self, delay: float, fn: Callable[..., None], *args) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        return Timer(self, self.schedule_after(delay, fn, *args))

    def cancel(self, entry: list) -> None:
        """Retract a scheduled entry; safe on fired/cancelled entries."""
        if entry[2] is None:
            return
        if self.recorder is not None and len(entry) > 4 and entry[4] is not None:
            # A retracted recorded event means the schedule's structure
            # depended on timing the graph cannot re-derive.
            self.recorder.invalidate("cancelled a recorded event")
        entry[2] = None
        entry[3] = ()
        self.events_cancelled += 1
        self._ndead += 1
        if self._ndead * 2 > len(self._heap) >= _COMPACT_MIN:
            self._compact()

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh unfired :class:`SimEvent` bound to this engine."""
        return SimEvent(self, name)

    def _rec_join_fired(self, ev: SimEvent) -> None:
        """Recording: fold an already-fired event's firing instant into the
        current causal context.  Needed wherever code *skips* waiting on a
        fired event — under perturbed constants the firing may come later,
        so the continuation depends on both instants."""
        rec = self.recorder
        node = ev._rec_fire
        if node is None:
            node = rec.const(ev.fire_time if ev.fire_time is not None
                             else self.now)
        self._rec_ctx = rec.join2(self._rec_ctx, node)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> SimEvent:
        """An event that fires automatically after ``delay`` virtual seconds."""
        ev = self.event(name or f"timeout({delay})")
        self.schedule_after(delay, ev.succeed, value)
        return ev

    def at_instant_end(self, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after the current instant's last event, before the
        clock advances (or the run ends).  Hooks run in registration order;
        a hook may schedule new events at the current time (they still
        belong to this instant) or re-register itself for a later instant.
        Only meaningful from inside a callback during :meth:`run`.
        """
        self._flush.append(fn)

    # -- heap hygiene -------------------------------------------------------

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify (O(n)).

        Triggered from :meth:`cancel` once more than half the heap is dead,
        so the heap stays O(live entries) even under workloads that cancel
        most of what they schedule.  Live entries keep their ``(time, seq)``
        keys, so pop order is unchanged.  The rebuild mutates the heap list
        in place (slice assignment): :meth:`run`/:meth:`peek` hold aliases
        to it across callbacks, and a cancel inside a callback lands here.
        """
        self._heap[:] = [e for e in self._heap if e[2] is not None]
        heapq.heapify(self._heap)
        self._ndead = 0
        self.compactions += 1

    # -- running ------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Process events until the heap is empty (or the clock passes ``until``).

        Returns the final virtual time.  Exceptions raised by callbacks (and
        therefore by simulated processes) propagate to the caller.  Events
        scheduled exactly *at* ``until`` still fire; the clock never passes
        ``until``.  End-of-instant hooks pending when the clock would pass
        ``until`` run before this method returns.
        """
        heap = self._heap
        pop = heapq.heappop
        flush = self._flush
        peak = self.peak_heap_size
        recording = self.recorder is not None
        nevents = 0  # batched into _nevents on exit (callbacks never read it)
        try:
            while True:
                while heap:
                    entry = heap[0]
                    fn = entry[2]
                    if fn is None:  # cancelled: reap and move on
                        pop(heap)
                        self._ndead -= 1
                        continue
                    when = entry[0]
                    if flush and when > self.now:
                        # The current instant is complete: run its hooks
                        # before letting the clock advance.
                        for cb in flush:
                            cb()
                        del flush[:]
                        continue  # hooks may have scheduled new events
                    if until is not None and when > until:
                        self.now = until
                        return until
                    hl = len(heap)
                    if hl > peak:
                        peak = hl
                    pop(heap)
                    self.now = when
                    nevents += 1
                    entry[2] = None  # mark fired; cancel() is now a no-op
                    if recording:
                        self._rec_ctx = entry[4] if len(entry) > 4 else None
                    fn(*entry[3])
                if not flush:
                    break
                for cb in flush:
                    cb()
                del flush[:]
        finally:
            self._nevents += nevents
            if peak > self.peak_heap_size:
                self.peak_heap_size = peak
            self._flush_aggregate()
            for cb in self.aggregate_flushers:
                cb()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def peek(self) -> float | None:
        """Virtual time of the next pending callback, or None if idle.

        Reaps any cancelled entries sitting at the heap top, so the answer
        always refers to a live callback (also after a compaction).
        """
        heap = self._heap
        while heap:
            if heap[0][2] is None:
                heapq.heappop(heap)
                self._ndead -= 1
            else:
                return heap[0][0]
        return None
