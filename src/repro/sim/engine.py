"""Event loop and one-shot events for the discrete-event simulator.

The :class:`Engine` owns a binary heap of ``(time, seq, callback)`` entries.
``seq`` is a monotonically increasing counter so that callbacks scheduled for
the same virtual time fire in FIFO order, which makes every run of a
simulation bit-for-bit deterministic — a property the tests and the paper
reproduction rely on (there is no wall-clock noise in any reported number).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any


class SimulationError(RuntimeError):
    """Raised when a simulated process fails or the engine detects misuse."""


class SimEvent:
    """A one-shot event carrying an optional value.

    Callbacks registered before the event fires are invoked (in registration
    order) at the virtual time :meth:`succeed` is called.  Registering a
    callback on an already-fired event invokes it immediately: this is what
    lets a process wait on e.g. a message that already arrived without any
    special-casing.
    """

    __slots__ = ("engine", "name", "_fired", "value", "_callbacks", "fire_time")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._fired = False
        self.value: Any = None
        self.fire_time: float | None = None
        self._callbacks: list[Callable[["SimEvent"], None]] = []

    @property
    def fired(self) -> bool:
        """True once :meth:`succeed` has been called."""
        return self._fired

    def succeed(self, value: Any = None) -> None:
        """Fire the event now, delivering ``value`` to all waiters."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self.value = value
        self.fire_time = self.engine.now
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["SimEvent"], None]) -> None:
        """Register ``cb(event)``; runs immediately if already fired."""
        if self._fired:
            cb(self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class Engine:
    """The virtual clock and callback heap.

    Typical use::

        eng = Engine()
        proc = SimProcess(eng, my_generator(), name="rank0")
        eng.run()

    :meth:`run` drains the heap; the clock jumps from event to event, so an
    idle simulation costs nothing.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._nevents = 0

    @property
    def events_processed(self) -> int:
        """Number of heap callbacks executed so far (for perf diagnostics)."""
        return self._nevents

    @property
    def idle(self) -> bool:
        """True when nothing is scheduled — with unfinished processes this
        means the simulation can never make progress again (deadlock)."""
        return not self._heap

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn()`` at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn()`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.call_at(self.now + delay, fn)

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh unfired :class:`SimEvent` bound to this engine."""
        return SimEvent(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> SimEvent:
        """An event that fires automatically after ``delay`` virtual seconds."""
        ev = self.event(name or f"timeout({delay})")
        self.call_after(delay, lambda: ev.succeed(value))
        return ev

    def run(self, until: float | None = None) -> float:
        """Process events until the heap is empty (or the clock passes ``until``).

        Returns the final virtual time.  Exceptions raised by callbacks (and
        therefore by simulated processes) propagate to the caller.
        """
        while self._heap:
            when, _seq, fn = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            self._nevents += 1
            fn()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def peek(self) -> float | None:
        """Virtual time of the next pending callback, or None if idle."""
        return self._heap[0][0] if self._heap else None
