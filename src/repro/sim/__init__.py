"""Deterministic discrete-event simulation core.

The simulator executes *simulated processes* (Python generators) against a
single global virtual clock.  Processes yield *syscalls* — :class:`Delay`,
:class:`WaitEvent`, :class:`AnyOf`, :class:`AllOf` — and are resumed by the
:class:`Engine` when the corresponding virtual-time event fires.  All
higher layers (the network fabric, the MPI substrate, the dense-matrix
kernels) are written as generator coroutines on top of this engine.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotone sequence number breaks ties), so every simulation run is
exactly reproducible.
"""

from repro.sim.engine import Engine, SimEvent, SimulationError
from repro.sim.faults import (
    FaultPlan,
    LinkDegradation,
    MessageDrop,
    NicJitter,
    RetryPolicy,
    StragglerSlowdown,
)
from repro.sim.process import (
    SimProcess,
    Delay,
    WaitEvent,
    AnyOf,
    AllOf,
    Interrupt,
)
from repro.sim.trace import Trace, TraceRecord, SpanKind

__all__ = [
    "Engine",
    "SimEvent",
    "SimulationError",
    "SimProcess",
    "Delay",
    "WaitEvent",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Trace",
    "TraceRecord",
    "SpanKind",
    "FaultPlan",
    "LinkDegradation",
    "StragglerSlowdown",
    "NicJitter",
    "MessageDrop",
    "RetryPolicy",
]
