"""Event-graph record/replay: re-price a workload without re-simulating it.

The paper's central move is re-evaluating one communication schedule under
different network constants; the tuner's simulator stage does exactly that
hundreds of times per search by re-running the full discrete-event loop.
This module makes the schedule a first-class artifact instead: a run with
recording enabled captures the workload's *event dependency graph* — every
transfer (with its endpoints, size and protocol latency), every compute
delay, and every precedence edge (max/plus joins) between them — and a
:func:`replay` solves the timeline directly on that graph under perturbed
:class:`~repro.netmodel.params.NetworkParams`, with no per-event process
dispatch, no transport matching, and no collective state machines.

Why this is exact
-----------------
CPU-side timing in the simulator is *max-plus*: every event time is either
a constant, a predecessor's time plus a non-negative delta (compute,
overheads, protocol gaps — all priced from must-match constants), or the
max of predecessor times (waits, barriers, collective round completion).
Float ``max`` is exact and ``a + delta`` is a single IEEE addition, so the
recorded graph reproduces those times bit-for-bit by construction.  Flow
completion times are *not* max-plus (they depend on fair-share rate
dynamics), so the replayer does not model them: it drives the real
:class:`~repro.netmodel.fabric.Fabric` — the same code, the same floats —
posting each recorded flow at its graph-resolved time.  Only the fabric's
own two-events-per-flow mini-simulation runs; everything the process,
transport, progress and collective layers did to *decide* that schedule is
replaced by array lookups on the graph.

Validity envelope
-----------------
A recording stays valid only for parameter changes that cannot alter the
*structure* of the schedule (which messages exist, their sizes, protocol
choices, code paths taken).  Concretely:

* Only :data:`REPLAY_SAFE_FIELDS` of ``NetworkParams`` may differ between
  recording and replay — these are priced exclusively inside the fabric at
  flow time.  Every other field (overheads, thresholds, protocol constants)
  is charged CPU-side into recorded deltas or steers a branch, so it must
  match exactly.
* ``MachineParams``, the cluster (rank placement) and the workload itself
  must match — :func:`Recording.check_compatible` raises
  :class:`ReplayInvalid` otherwise.
* Runs with a :class:`~repro.sim.faults.FaultPlan` attached never produce a
  valid recording (fault windows are time-dependent, not structural), and
  neither do runs using timing-*dependent* control flow the graph cannot
  express: ``AnyOf`` / ``waitany`` races, ``Request.test`` polling,
  process interrupts, cancellation of recorded events, or the numeric-mode
  combine batcher.  The hooks detect each of these and mark the recording
  invalid; :func:`replay` then refuses and the caller falls back to full
  simulation.
* FIFO compute queues (:class:`~repro.mpi.progress.ProgressEngine`) are
  max-plus only while submissions stay in arrival order; the recorder
  stores consecutive-arrival order guards and :func:`replay` verifies them
  under the new constants, refusing when a perturbation would reorder a
  queue.

See ``docs/perf.md`` for the benchmark (``perf_sim_core`` section
``replay``) and ``docs/tuning.md`` for the tuner integration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, field

from repro.netmodel.params import MachineParams, NetworkParams
from repro.sim.engine import DeadlineExceeded, Engine, SimulationError

#: ``NetworkParams`` fields that may differ between recording and replay:
#: they are read exclusively by the fabric while flows drain, so changing
#: them re-prices the recorded schedule without restructuring it.
REPLAY_SAFE_FIELDS = frozenset({
    "alpha",
    "shm_alpha",
    "nic_bandwidth",
    "process_injection_bandwidth",
    "shm_bandwidth",
    "shm_flow_cap",
    "flow_half_size",
})

#: Node kinds of the recorded max-plus graph.
K_CONST, K_SHIFT, K_MAX, K_FLOW = 0, 1, 2, 3

#: Serialized-recording schema.  v2 adds the ``machine`` constants so a
#: loaded recording can enforce its full validity envelope in a fresh
#: process; v1 artifacts (no machine) still load with ``machine=None``.
DUMP_SCHEMA = 2


class ReplayInvalid(SimulationError):
    """The recorded graph cannot reproduce the requested run exactly."""


class GraphRecorder:
    """Grows the max-plus event graph during a recorded simulation run.

    Node ``i`` is described by ``kinds[i]`` plus operands ``a[i]`` /
    ``b[i]``:

    =========  ======================  =====================================
    kind       a / b                   value
    =========  ======================  =====================================
    K_CONST    time / —                ``a``
    K_SHIFT    pred node / delta       ``value(a) + b``
    K_MAX      tuple of pred nodes     ``max(value(p) for p in a)``
    K_FLOW     flow index / —          completion time of ``flows[a]``
    =========  ======================  =====================================

    Nodes are hash-consed (``shift(x, 0.0)`` is ``x``, ``join2(x, x)`` is
    ``x``, nested maxes flatten), so the graph stays proportional to the
    number of *distinct* causal facts, not to how often they are cited.
    """

    def __init__(self, cluster=None, params: NetworkParams | None = None,
                 machine: MachineParams | None = None):
        self.kinds: list[int] = []
        self.a: list = []
        self.b: list = []
        self._cons: dict = {}
        #: (src_rank, dst_rank, nbytes, extra_latency, post_node) per flow.
        self.flows: list[tuple] = []
        #: user-visible labels -> node (kernel timestamps, proc completions).
        self.marks: dict = {}
        #: FIFO order guards: replay requires value(lo) <= value(hi).
        self.guards: list[tuple[int, int]] = []
        self.invalid_reason: str | None = None
        self.cluster = cluster
        self.params = params or NetworkParams()
        self.machine = machine
        #: free-form workload metadata (kernel name, ranks, iterations).
        self.meta: dict = {}
        #: lazily-built structural fold (see :func:`_fold_static`) — the
        #: static timeline is parameter-independent, so repeated replays of
        #: one recording share it.
        self._plan = None

    # -- node constructors --------------------------------------------------

    def _node(self, kind: int, a, b=None) -> int:
        idx = len(self.kinds)
        self.kinds.append(kind)
        self.a.append(a)
        self.b.append(b)
        return idx

    def const(self, t: float) -> int:
        key = (K_CONST, t)
        idx = self._cons.get(key)
        if idx is None:
            self._cons[key] = idx = self._node(K_CONST, t)
        return idx

    def shift(self, pred: int, delta: float) -> int:
        if delta == 0.0:
            return pred  # x + 0.0 == x for the non-negative times used here
        key = (K_SHIFT, pred, delta)
        idx = self._cons.get(key)
        if idx is None:
            self._cons[key] = idx = self._node(K_SHIFT, pred, delta)
        return idx

    def join2(self, x: int | None, y: int | None) -> int | None:
        """max(x, y) as a node; ``None`` means "no constraint"."""
        if x is None or x == y:
            return y
        if y is None:
            return x
        preds: set[int] = set()
        for n in (x, y):
            if self.kinds[n] == K_MAX:
                preds.update(self.a[n])
            else:
                preds.add(n)
        if len(preds) == 1:
            return next(iter(preds))
        key = (K_MAX, frozenset(preds))
        idx = self._cons.get(key)
        if idx is None:
            self._cons[key] = idx = self._node(K_MAX, tuple(sorted(preds)))
        return idx

    def flow(self, src_rank: int, dst_rank: int, nbytes: float,
             extra_latency: float, post_node: int) -> int:
        fidx = len(self.flows)
        self.flows.append((src_rank, dst_rank, nbytes, extra_latency, post_node))
        return self._node(K_FLOW, fidx)

    def mark(self, key, node: int) -> None:
        self.marks[key] = node

    def guard(self, lo: int, hi: int) -> None:
        if lo != hi:
            self.guards.append((lo, hi))

    def invalidate(self, reason: str) -> None:
        if self.invalid_reason is None:
            self.invalid_reason = reason

    # -- validity -----------------------------------------------------------

    @property
    def valid(self) -> bool:
        return self.invalid_reason is None

    def check_compatible(self, params: NetworkParams | None,
                         machine: MachineParams | None = None) -> None:
        """Raise :class:`ReplayInvalid` unless ``params``/``machine`` stay
        inside the recording's validity envelope."""
        if self.invalid_reason is not None:
            raise ReplayInvalid(f"recording invalid: {self.invalid_reason}")
        if machine is not None and machine != self.machine:
            raise ReplayInvalid("machine constants differ from the recording")
        p = params or NetworkParams()
        for f in fields(NetworkParams):
            if f.name in REPLAY_SAFE_FIELDS:
                continue
            if getattr(p, f.name) != getattr(self.params, f.name):
                raise ReplayInvalid(
                    f"structural parameter {f.name!r} differs from the "
                    f"recording ({getattr(p, f.name)!r} != "
                    f"{getattr(self.params, f.name)!r})"
                )

    # -- serialization (CI artifact / offline inspection) -------------------

    def to_jsonable(self) -> dict:
        placement = None
        if self.cluster is not None:
            placement = [self.cluster.node_of(r)
                         for r in range(self.cluster.num_ranks)]
        return {
            "schema": DUMP_SCHEMA,
            "valid": self.valid,
            "invalid_reason": self.invalid_reason,
            "kinds": list(self.kinds),
            "a": [list(x) if isinstance(x, tuple) else x for x in self.a],
            "b": list(self.b),
            "flows": [list(f) for f in self.flows],
            "marks": {repr(k): v for k, v in sorted(
                self.marks.items(), key=lambda kv: repr(kv[0]))},
            "guards": [list(g) for g in self.guards],
            "placement": placement,
            "params": {f.name: getattr(self.params, f.name)
                       for f in fields(NetworkParams)},
            "machine": (None if self.machine is None else
                        {f.name: getattr(self.machine, f.name)
                         for f in fields(MachineParams)}),
            "meta": dict(self.meta),
        }


#: Back-compat name: a sealed recorder *is* the recording artifact.
Recording = GraphRecorder


@dataclass
class ReplayResult:
    """What one :func:`replay` pass produced."""

    final_time: float                 #: natural finish (max event time)
    marks: dict = field(default_factory=dict)  #: label -> resolved time
    flow_times: list = field(default_factory=list)  #: per recorded flow
    n_nodes: int = 0
    n_flows: int = 0


def _fold_static(rec: GraphRecorder):
    """One topological pass over the graph, cached on the recording.

    Everything here is parameter-independent: which nodes are static, their
    folded values (consts and deltas are recorded, not re-priced), the
    dependent lists of flow-blocked nodes, and which flows each post node
    releases.  Replays copy the two mutable arrays and run only the dynamic
    propagation.
    """
    if rec._plan is not None:
        return rec._plan
    kinds, A, B = rec.kinds, rec.a, rec.b
    n = len(kinds)
    values: list = [None] * n
    nun = [0] * n                       # unresolved-predecessor counts
    deps: list = [None] * n             # node -> dependent nodes
    posts_by_node: dict[int, list[int]] = {}   # post node -> flow indices
    flow_node: list = [None] * len(rec.flows)  # flow index -> K_FLOW node

    def add_dep(p: int, i: int) -> None:
        dl = deps[p]
        if dl is None:
            deps[p] = [i]
        else:
            dl.append(i)

    # The pass folds every node whose predecessors are all static
    # (predecessors always precede their node in creation order); nodes
    # blocked behind a flow get an unresolved-predecessor count instead.
    for i in range(n):
        k = kinds[i]
        if k == K_CONST:
            values[i] = A[i]
        elif k == K_SHIFT:
            p = A[i]
            if nun[p] == 0:
                values[i] = values[p] + B[i]
            else:
                nun[i] = 1
                add_dep(p, i)
        elif k == K_MAX:
            cnt = 0
            m = None
            for p in A[i]:
                if nun[p] == 0:
                    pv = values[p]
                    if m is None or pv > m:
                        m = pv
                else:
                    cnt += 1
                    add_dep(p, i)
            nun[i] = cnt
            values[i] = m  # final when cnt == 0, else the partial max
        else:  # K_FLOW
            nun[i] = 1
            flow_node[A[i]] = i
            post = rec.flows[A[i]][4]
            posts_by_node.setdefault(post, []).append(A[i])

    # Dense node -> released-flows array: the resolve loop probes this for
    # every resolved node, and a list index beats a dict miss.
    posts_arr: list = [None] * n
    for post, fis in posts_by_node.items():
        posts_arr[post] = fis
    rec._plan = (values, nun, deps, posts_arr, flow_node)
    return rec._plan


def replay(recording: GraphRecorder, params: NetworkParams | None = None,
           machine: MachineParams | None = None,
           solver: str = "auto",
           deadline: float | None = None) -> ReplayResult:
    """Solve the recorded timeline under ``params``; exact by construction.

    Static (max-plus) nodes are folded in one (cached) topological pass;
    flow nodes are resolved by a fresh
    :class:`~repro.netmodel.fabric.Fabric` fed the recorded transfers at
    their graph-resolved post times.  Raises :class:`ReplayInvalid` when
    the recording's envelope is violated.

    With a ``deadline``, the replay **aborts early**: the moment any
    ``proc_done`` mark resolves past the deadline — statically, or during
    flow propagation inside the fabric mini-simulation — it raises
    :class:`~repro.sim.engine.DeadlineExceeded` instead of folding the rest
    of the graph.  This mirrors the live simulator's bounded
    ``World.run(until=...)`` contract: a candidate that cannot beat the
    incumbent costs only the replay work up to the proof, not a full solve.
    """
    from repro.netmodel.fabric import Fabric

    recording.check_compatible(params, machine)
    rec = recording
    kinds, B = rec.kinds, rec.b
    n = len(kinds)
    flows = rec.flows
    values0, nun0, deps, posts_arr, flow_node = _fold_static(rec)
    values = values0.copy()
    nun = nun0.copy()

    # Early-abort bookkeeping: the set of graph nodes whose resolution
    # proves a rank program's completion time.  Static times are
    # parameter-independent (recorded consts + deltas), so statically
    # resolved completions are checked before the fabric even spins up.
    done_nodes: frozenset | None = None
    if deadline is not None:
        done_nodes = frozenset(
            node for key, node in rec.marks.items()
            if isinstance(key, tuple) and key and key[0] == "proc_done"
        )
        for node in done_nodes:
            if nun[node] == 0 and values[node] is not None \
                    and values[node] > deadline:
                raise DeadlineExceeded(
                    f"replayed run exceeded deadline {deadline:.6g}s "
                    f"(rank program finished at {values[node]:.6g}s; "
                    f"aborted before fabric replay)"
                )

    eng = Engine()
    cluster = rec.cluster
    if cluster is None:
        raise ReplayInvalid("recording carries no cluster topology")
    fab = Fabric(eng, cluster, params or rec.params, solver=solver)
    schedule_at = eng.schedule_at
    transfer_cb = fab.transfer_cb

    def post_flow(fi: int, when: float) -> None:
        src, dst, nbytes, extra, _post = flows[fi]
        if when < eng.now:
            raise ReplayInvalid(
                f"non-causal flow post: t={when} < now={eng.now}"
            )
        schedule_at(when, transfer_cb, src, dst, nbytes, extra, flow_done, fi)

    # Propagation runs once per flow completion — the hot loop of a replay.
    # Everything it touches is bound as a default argument: locals, not
    # closure cells.  Iterative, because recursion could exceed the stack on
    # deep shift chains.
    def flow_done(fi: int, values=values, nun=nun, deps=deps,
                  posts_arr=posts_arr, kinds=kinds, B=B,
                  flow_node=flow_node, K_SHIFT=K_SHIFT,
                  done_nodes=done_nodes, deadline=deadline) -> None:
        stack = [(flow_node[fi], eng.now)]
        while stack:
            i, v = stack.pop()
            values[i] = v
            nun[i] = 0
            if done_nodes is not None and i in done_nodes and v > deadline:
                # First resolved completion past the incumbent: stop the
                # mini-simulation here.  Engine.run propagates callback
                # exceptions, so this unwinds straight out of replay().
                raise DeadlineExceeded(
                    f"replayed run exceeded deadline {deadline:.6g}s "
                    f"(rank program finished at {v:.6g}s; replay aborted)"
                )
            fis = posts_arr[i]
            if fis is not None:
                for pfi in fis:
                    post_flow(pfi, v)
            dl = deps[i]
            if not dl:
                continue
            for d in dl:
                if kinds[d] == K_SHIFT:
                    stack.append((d, v + B[d]))
                else:  # K_MAX
                    pm = values[d]
                    if pm is None or v > pm:
                        values[d] = v
                    nd = nun[d] - 1
                    nun[d] = nd
                    if nd == 0:
                        stack.append((d, values[d]))

    # Kick off every flow whose post time resolved statically; the rest
    # cascade from flow completions inside the mini-simulation.
    for post, fis in enumerate(posts_arr):
        if fis is not None and nun[post] == 0:
            for fi in fis:
                post_flow(fi, values[post])
    eng.run()

    unresolved = sum(1 for i in range(n) if nun[i] != 0)
    if unresolved:
        raise ReplayInvalid(
            f"{unresolved} graph node(s) never resolved (incomplete recording)"
        )
    for lo, hi in rec.guards:
        if values[lo] > values[hi]:
            raise ReplayInvalid(
                "perturbation reorders a FIFO compute queue "
                f"({values[lo]} > {values[hi]}); falling back to simulation"
            )
    final = eng.now
    for v in values:
        if v is not None and v > final:
            final = v
    return ReplayResult(
        final_time=final,
        marks={k: values[node] for k, node in rec.marks.items()},
        flow_times=[values[fn] for fn in flow_node],
        n_nodes=n,
        n_flows=len(rec.flows),
    )


def replay_kernel(recording: GraphRecorder,
                  params: NetworkParams | None = None,
                  machine: MachineParams | None = None,
                  deadline: float | None = None,
                  solver: str = "auto") -> tuple[float, float]:
    """Replay a recorded kernel run; mirror of
    :func:`repro.tune.search.simulate_candidate`'s return contract.

    Returns ``(kernel_time, world_time)`` computed exactly as the live
    kernel computes them (per-rank ``t1 - t0``, max over ranks per
    iteration, mean over iterations) and raises :class:`DeadlineExceeded`
    iff the live bounded run would have left a rank program unfinished at
    ``deadline`` — aborting the replay at the first such proof instead of
    folding the whole graph (see :func:`replay`).
    """
    meta = recording.meta
    try:
        ranks = meta["ranks"]
        iterations = meta["iterations"]
    except KeyError as exc:
        raise ReplayInvalid(f"recording lacks kernel metadata: {exc}") from exc
    r = replay(recording, params=params, machine=machine, solver=solver,
               deadline=deadline)
    if deadline is not None:
        world_time = deadline  # Engine.run(until) pins now to the deadline
    else:
        world_time = r.final_time
    marks = r.marks
    iter_times = []
    for it in range(iterations):
        best = None
        for rank in range(ranks):
            dt = marks[("t1", rank, it)] - marks[("t0", rank, it)]
            if best is None or dt > best:
                best = dt
        iter_times.append(best)
    elapsed = sum(iter_times) / len(iter_times)
    return elapsed, world_time


def replay_kernel_grid(
    recording: GraphRecorder,
    overrides: list[dict],
    machine: MachineParams | None = None,
    solver: str = "auto",
) -> list[float]:
    """Re-price one recorded kernel run over a grid of fabric constants.

    ``overrides`` is a list of ``{field: value}`` dicts, each naming only
    :data:`REPLAY_SAFE_FIELDS` of ``NetworkParams``; point ``i``'s replay
    runs under ``recording.params.replace(**overrides[i])``.  Returns the
    per-point kernel times (same contract as :func:`replay_kernel`).

    This is the calibration sweep ROADMAP item 2 asked for: the expensive
    structural work — recording the run, folding the static graph — is paid
    once, and every grid point costs only the fabric mini-simulation of the
    recorded flows (zero full simulator runs).  A non-replay-safe field in
    any override raises :class:`ReplayInvalid` before any point runs, so a
    caller cannot silently sweep a constant the graph cannot re-price.
    """
    for ov in overrides:
        bad = set(ov) - REPLAY_SAFE_FIELDS
        if bad:
            raise ReplayInvalid(
                f"grid override names non-replay-safe field(s) "
                f"{sorted(bad)}; only {sorted(REPLAY_SAFE_FIELDS)} can be "
                f"re-priced on a recorded graph"
            )
    base = recording.params
    out: list[float] = []
    for ov in overrides:
        elapsed, _world = replay_kernel(
            recording, params=base.replace(**ov), machine=machine,
            solver=solver,
        )
        out.append(elapsed)
    return out


def dump_recording(recording: GraphRecorder, path) -> None:
    """Write the recorded-graph artifact (CI uploads this for inspection)."""
    with open(path, "w") as fh:
        json.dump(recording.to_jsonable(), fh, indent=1, default=repr)
        fh.write("\n")


def load_recording(source) -> GraphRecorder:
    """Rebuild a replayable :class:`GraphRecorder` from a dumped artifact.

    ``source`` is a path (anything :func:`open` accepts) or an
    already-parsed dict from :meth:`GraphRecorder.to_jsonable`.  The
    reconstruction is exact: node operands regain their tuple form
    (``K_MAX`` predecessor sets), mark keys are parsed back from their
    ``repr`` (they are tuples of strings and ints), and floats round-trip
    bit-for-bit through JSON's ``repr``-based encoding — so a replay of a
    loaded recording produces the same times as a replay of the original.

    This is what makes replay reuse *cross-process*: a tuning service can
    persist each scored candidate's graph next to the tuning db
    (:class:`repro.tune.graphstore.GraphStore`) and a fresh process scores
    warm-started shortlists through :func:`replay` instead of full
    simulation.  Schema 1 artifacts (no machine constants) load with
    ``machine=None``; anything else raises :class:`ReplayInvalid`.
    """
    import ast

    from repro.netmodel.topology import Cluster

    if isinstance(source, dict):
        doc = source
    else:
        with open(source) as fh:
            doc = json.load(fh)
    schema = doc.get("schema")
    if schema not in (1, DUMP_SCHEMA):
        raise ReplayInvalid(
            f"recording artifact has schema {schema!r}, expected 1 or "
            f"{DUMP_SCHEMA}; re-dump it"
        )
    params = NetworkParams(**doc["params"])
    machine_doc = doc.get("machine")
    machine = MachineParams(**machine_doc) if machine_doc else None
    placement = doc.get("placement")
    cluster = Cluster(placement) if placement else None
    rec = GraphRecorder(cluster=cluster, params=params, machine=machine)
    kinds = [int(k) for k in doc["kinds"]]
    rec.kinds = kinds
    rec.a = [tuple(x) if isinstance(x, list) else x for x in doc["a"]]
    rec.b = list(doc["b"])
    rec.flows = [tuple(f) for f in doc["flows"]]
    rec.guards = [tuple(g) for g in doc["guards"]]
    rec.marks = {ast.literal_eval(k): v for k, v in doc["marks"].items()}
    rec.meta = dict(doc.get("meta", {}))
    if not doc.get("valid", True):
        rec.invalidate(doc.get("invalid_reason") or "marked invalid on dump")
    # The hash-consing table is a recording-time accelerator only; a loaded
    # recording is sealed, so it stays empty.
    return rec


def _main(argv) -> int:  # pragma: no cover - exercised by the CI replay step
    """``python -m repro.sim.replay --dump-ssc OUT.json`` records the quick
    table1-shaped SymmSquareCube workload and writes its graph artifact."""
    if len(argv) == 2 and argv[0] == "--dump-ssc":
        from repro.kernels.symmsquarecube import run_ssc

        res = run_ssc(2, 64, "optimized", n_dup=2, ppn=1, iterations=1,
                      record=True)
        rec = res.recording
        assert rec is not None and rec.valid, rec and rec.invalid_reason
        # Sanity: the artifact must replay to the recorded timeline.
        elapsed, _world = replay_kernel(rec)
        assert elapsed == res.elapsed, (elapsed, res.elapsed)
        dump_recording(rec, argv[1])
        print(f"wrote {argv[1]}: {len(rec.kinds)} nodes, "
              f"{len(rec.flows)} flows, elapsed={elapsed:.6g}s")
        return 0
    print("usage: python -m repro.sim.replay --dump-ssc OUT.json")
    return 2


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(_main(sys.argv[1:]))
