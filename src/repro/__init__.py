"""repro — reproduction of Huang & Chow, "Overlapping Communications with
Other Communications and its Application to Distributed Dense Matrix
Computations" (IPDPS 2019).

The package layers, bottom to top:

* :mod:`repro.sim` — deterministic discrete-event engine (generator
  coroutines, virtual clock, tracing);
* :mod:`repro.netmodel` — the calibrated fluid-flow network model of a
  Stampede2-like cluster (NIC sharing, per-process injection caps, latency,
  eager/rendezvous costs);
* :mod:`repro.mpi` — the MPI-like substrate: communicators with ``dup``,
  point-to-point messaging, blocking *and nonblocking* collectives built
  from binomial / scatter-allgather / Rabenseifner / ring schedules, plus
  the per-process progress engine;
* :mod:`repro.dense` — distributed dense matrix computations: block
  distributions, 2D/3D meshes, matvec (paper Algs. 1-2), SUMMA, Cannon,
  2.5D multiplication;
* :mod:`repro.kernels` — SymmSquareCube (paper Algs. 3-5) and its 2.5D
  variant (Alg. 6);
* :mod:`repro.purify` — canonical (Palser-Manolopoulos) and McWeeny
  density-matrix purification, dense references and distributed drivers;
* :mod:`repro.bench` — the experiment harness regenerating every table and
  figure of the paper's evaluation (``python -m repro.bench --list``).

Quick start::

    import numpy as np
    from repro import run_ssc

    rng = np.random.default_rng(0)
    m = rng.standard_normal((200, 200)); d = (m + m.T) / 2
    out = run_ssc(p=2, n=200, algorithm="optimized", d=d, n_dup=4)
    assert np.allclose(out.d2, d @ d)
    print(f"simulated kernel time: {out.elapsed * 1e6:.0f} virtual us")
"""

__version__ = "1.0.0"

from repro.netmodel import (
    Cluster,
    MachineParams,
    NetworkParams,
    block_placement,
    split_placement,
)
from repro.mpi import World, RankEnv, Comm, CommView, Request, waitall
from repro.mpi.gating import gated_section
from repro.dense import (
    Mesh2D,
    Mesh3D,
    run_matvec,
    run_summa,
    run_mm25d,
    run_mm3d,
)
from repro.kernels import run_ssc, run_ssc25d, ssc_flops
from repro.solvers import run_cg
from repro.particles import run_force_step
from repro.purify import (
    SYSTEMS,
    canonical_purify_dense,
    density_from_eigh,
    mcweeny_purify_dense,
    run_distributed_purification,
    run_scf,
    synthetic_fock,
)

__all__ = [
    "__version__",
    "Cluster",
    "MachineParams",
    "NetworkParams",
    "block_placement",
    "split_placement",
    "World",
    "RankEnv",
    "Comm",
    "CommView",
    "Request",
    "waitall",
    "gated_section",
    "Mesh2D",
    "Mesh3D",
    "run_matvec",
    "run_summa",
    "run_mm25d",
    "run_mm3d",
    "run_ssc",
    "run_ssc25d",
    "ssc_flops",
    "run_cg",
    "run_force_step",
    "SYSTEMS",
    "canonical_purify_dense",
    "density_from_eigh",
    "mcweeny_purify_dense",
    "run_distributed_purification",
    "run_scf",
    "synthetic_fock",
]
