"""Point-to-point message matching and transfer protocols.

Messages are matched by ``(communicator id, destination, source, tag)`` in
FIFO order — MPI's non-overtaking rule for identical envelopes.  Two
protocols, switched on message size exactly like a real MPI library:

eager (``nbytes <= rendezvous_threshold``)
    The payload is shipped immediately; the send completes locally (the
    caller charges the internal-buffer copy).  If the receive is posted
    late, the message waits in the unexpected queue.

rendezvous (large messages)
    Data moves only after both sides have posted (synchronization overhead
    the paper lists as reason (a) for poor bandwidth utilization); the
    handshake adds ``rendezvous_extra`` latency and the send completes with
    the transfer.

The transport is *engine-driven*: posting functions are plain calls that
return :class:`~repro.mpi.requests.Request` objects, so both user-level
``isend``/``irecv`` wrappers (which add CPU overheads) and collective
schedules (driven by the progress machinery) share one code path.

Fault injection: when the world carries a
:class:`~repro.sim.faults.FaultPlan`, every payload transmission (the eager
ship and the rendezvous transfer alike) first asks the plan whether it is
dropped on the wire.  A dropped attempt is retransmitted after a timeout
with bounded exponential backoff (:class:`~repro.sim.faults.RetryPolicy`);
exhausting the retry budget raises — an undeliverable message is a
liveness bug in the scenario, not something to hang on.  MPI semantics are
preserved: an eager send still completes locally at post time (the loss is
absorbed by the library's retransmission, invisible to the sender), and
matching order is untouched because drops delay only the payload, never the
envelope.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.mpi.requests import Request
from repro.sim.engine import SimulationError
from repro.sim.trace import SpanKind


class _SendState:
    __slots__ = ("src", "dst", "nbytes", "data", "eager", "request", "arrived",
                 "recv", "attempt", "rec_post", "rec_arr", "channel", "op")

    def __init__(self, src, dst, nbytes, data, eager, request, channel=0,
                 op=None):
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.data = data
        self.eager = eager
        self.request = request
        self.channel = channel     # fabric lane of the payload transfer
        self.op = op               # (cid, tag) operation key (flow-log
        #                            attribution: one collective instance or
        #                            one p2p envelope stream per key)
        self.arrived = False       # eager payload landed before recv posted
        self.recv: Request | None = None
        self.attempt = 0           # dropped-transmission retry counter
        self.rec_post = None       # recording: graph node of the send post
        self.rec_arr = None        # recording: graph node of payload arrival


class Transport:
    """World-wide p2p matching engine (one instance per :class:`World`)."""

    def __init__(self, world):
        self.world = world
        self._engine = world.engine
        self._params = world.params
        # key -> deque of pending recv Requests / unmatched _SendStates
        self._recv_q: dict[tuple, deque] = {}
        self._send_q: dict[tuple, deque] = {}
        # Request labels, interned per peer rank: the f-string cost is per
        # distinct peer, not per message (labels surface in WAIT spans).
        self._send_labels: dict[int, str] = {}
        self._recv_labels: dict[int, str] = {}
        # Fault-injection bookkeeping (stays zero without a FaultPlan).
        self.dropped_transmissions = 0
        self.retransmissions = 0

    # -- posting ---------------------------------------------------------------

    def post_send(
        self,
        cid: int,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        data: Any = None,
        channel: int = 0,
    ) -> Request:
        """Post a send of ``nbytes`` from global rank ``src`` to ``dst``.

        Returns a request completing per the protocol rules above.  ``data``
        is an arbitrary payload delivered to the matching receive (``None``
        in modeled-size-only runs).  ``channel`` selects the fabric lane the
        payload transfer shares bandwidth on (matching is channel-blind —
        the communicator id already isolates envelopes).
        """
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        eager = nbytes <= self._params.rendezvous_threshold
        # Static event name: SimEvent names only surface in engine error
        # messages, and the per-message f-string shows up in profiles.
        done = self._engine.event("send")
        label = self._send_labels.get(dst)
        if label is None:
            label = self._send_labels[dst] = f"send->r{dst}"
        req = Request(self.world, src, label, done)
        state = _SendState(src, dst, nbytes, data, eager, req, channel,
                           (cid, tag))
        rec = self._engine.recorder
        if rec is not None:
            ctx = self._engine._rec_ctx
            state.rec_post = ctx if ctx is not None else rec.const(
                self._engine.now)
        key = (cid, dst, src, tag)
        if eager:
            # Ship immediately; sender is free as soon as posted.
            self._transmit(state)
            done.succeed(None)
        rq = self._recv_q.get(key)
        if rq:
            recv = rq.popleft()
            self._matched(state, recv)
        else:
            q = self._send_q.setdefault(key, deque())
            verifier = self.world.verifier
            if q and verifier is not None:
                verifier.on_envelope_collision("send", cid, src, dst, tag,
                                               nbytes)
            q.append(state)
        return req

    def post_recv(self, cid: int, dst: int, src: int, tag: int) -> Request:
        """Post a receive at global rank ``dst`` for (``src``, ``tag``)."""
        done = self._engine.event("recv")
        label = self._recv_labels.get(src)
        if label is None:
            label = self._recv_labels[src] = f"recv<-r{src}"
        req = Request(self.world, dst, label, done)
        rec = self._engine.recorder
        if rec is not None:
            ctx = self._engine._rec_ctx
            req._rec_ctx = ctx if ctx is not None else rec.const(
                self._engine.now)
        key = (cid, dst, src, tag)
        sq = self._send_q.get(key)
        if sq:
            state = sq.popleft()
            self._matched(state, req)
        else:
            q = self._recv_q.setdefault(key, deque())
            verifier = self.world.verifier
            if q and verifier is not None:
                verifier.on_envelope_collision("recv", cid, src, dst, tag, 0)
            q.append(req)
        return req

    # -- protocol internals ------------------------------------------------------

    def _matched(self, state: _SendState, recv: Request) -> None:
        state.recv = recv
        if state.eager:
            if state.arrived:
                self._deliver(state)
            # else: flow-completion callback delivers.
        else:
            # Rendezvous: transfer starts now that both sides are present.
            rec = self._engine.recorder
            if rec is not None:
                # The wire transfer starts at max(send post, recv post)
                # under any constants — a join, not "now".
                saved = self._engine._rec_ctx
                self._engine._rec_ctx = rec.join2(state.rec_post,
                                                  recv._rec_ctx)
                self._transmit(state)
                self._engine._rec_ctx = saved
            else:
                self._transmit(state)

    def _transmit(self, state: _SendState) -> None:
        """Put a payload on the wire; dropped attempts retry with backoff."""
        world = self.world
        faults = world.faults
        if faults is not None and faults.should_drop(
            state.src, state.dst, world.engine.now
        ):
            self.dropped_transmissions += 1
            state.attempt += 1
            retry = faults.retry
            if state.attempt > retry.max_attempts:
                raise SimulationError(
                    f"message r{state.src}->r{state.dst} ({state.nbytes}B) "
                    f"dropped {state.attempt} times; retry budget exhausted"
                )
            delay = retry.delay(state.attempt)
            self.retransmissions += 1
            world.trace.add(
                state.src, world.engine.now, world.engine.now + delay,
                SpanKind.MISC, f"drop+retry#{state.attempt}->r{state.dst}",
                nbytes=state.nbytes,
            )
            self._engine.schedule_after(delay, self._transmit, state)
            return
        # transfer_cb: completion invokes the bound method directly — no
        # per-message SimEvent on the fabric side (the hot-path fast lane).
        if state.eager:
            world.fabric.transfer_cb(
                state.src, state.dst, state.nbytes, 0.0,
                self._eager_arrived, state, channel=state.channel,
                op=state.op,
            )
        else:
            world.fabric.transfer_cb(
                state.src, state.dst, state.nbytes,
                self._params.rendezvous_extra,
                self._rendezvous_done, state, channel=state.channel,
                op=state.op,
            )

    def _eager_arrived(self, state: _SendState) -> None:
        if self._engine.recorder is not None:
            state.rec_arr = self._engine._rec_ctx  # the flow's graph node
        state.arrived = True
        if state.recv is not None:
            self._deliver(state)

    def _rendezvous_done(self, state: _SendState) -> None:
        if self._engine.recorder is not None:
            state.rec_arr = self._engine._rec_ctx  # the flow's graph node
        state.request.done.succeed(None)
        self._deliver(state)

    def _deliver(self, state: _SendState) -> None:
        recv = state.recv
        assert recv is not None
        engine = self._engine
        rec = engine.recorder
        if rec is not None:
            # Delivery happens at max(payload arrival, recv post): for a
            # late-posted eager recv "now" is the recv post, but under
            # perturbed constants either side may dominate.
            saved = engine._rec_ctx
            engine._rec_ctx = rec.join2(state.rec_arr, recv._rec_ctx)
            recv.set_result(state.data)
            recv.done.succeed(state.data)
            engine._rec_ctx = saved
        else:
            recv.set_result(state.data)
            recv.done.succeed(state.data)

    # -- diagnostics ----------------------------------------------------------------

    def pending_counts(self) -> tuple[int, int]:
        """(unmatched sends, unmatched recvs) — for deadlock diagnostics."""
        ns = sum(len(q) for q in self._send_q.values())
        nr = sum(len(q) for q in self._recv_q.values())
        return ns, nr

    def pending_details(self) -> tuple[list[dict], list[dict]]:
        """Unmatched traffic as (sends, recvs) envelope dicts, sorted.

        Each entry carries ``cid``/``src``/``dst``/``tag`` (and ``nbytes``
        for sends) — the RA104 exit check and deadlock reports are built on
        this instead of the bare counts.
        """
        sends = [
            {"cid": cid, "src": src, "dst": dst, "tag": tag,
             "nbytes": state.nbytes}
            for (cid, dst, src, tag), q in sorted(self._send_q.items())
            for state in q
        ]
        recvs = [
            {"cid": cid, "src": src, "dst": dst, "tag": tag}
            for (cid, dst, src, tag), q in sorted(self._recv_q.items())
            for _req in q
        ]
        return sends, recvs

    def fault_stats(self) -> dict:
        """Drop/retry counters accumulated under an active FaultPlan."""
        return {
            "dropped_transmissions": self.dropped_transmissions,
            "retransmissions": self.retransmissions,
        }
