"""Kernel gating: use a different number of PPN for different kernels (§III-B).

The paper advocates launching many processes per node and "utilizing just
the right number of these processes for each stage of the code.  In this
mechanism ... processes that will be inactive call MPI_Ibarrier.  Then these
processes use MPI_Test and usleep functions to check for the wake-up signal
(completion of the barrier) every 10 milliseconds.  Processes that are
active perform the work of the purification kernel and then call
MPI_Ibarrier when they are finished, in order to release the inactive
processes and move collectively to the next kernel."

:func:`gated_section` implements exactly that protocol on the simulated MPI.
"""

from __future__ import annotations

from repro.mpi.comm import CommView
from repro.mpi.world import RankEnv
from repro.util import check_positive


def gated_section(
    env: RankEnv,
    comm_view: CommView,
    active: bool,
    work=None,
    poll_interval: float = 0.010,
):
    """Generator: run ``work`` on active ranks while inactive ranks sleep.

    ``comm_view`` must span *all* ranks of the section (active + inactive).
    Active ranks drive the ``work`` sub-generator and then enter the
    releasing ``MPI_Ibarrier``; inactive ranks enter it immediately and poll
    its completion with ``MPI_Test`` every ``poll_interval`` seconds
    (sleeping in between, i.e. not consuming their node's CPU).  Returns the
    work's result on active ranks, ``None`` on inactive ones.
    """
    check_positive("poll_interval", poll_interval)
    if active:
        if work is None:
            raise ValueError("active ranks must supply work")
        result = yield from work
        req = yield from comm_view.ibarrier()
        yield from req.wait()
        return result
    req = yield from comm_view.ibarrier()
    while not req.test():
        yield from env.sleep(poll_interval)
    return None
