"""Communicators and the rank-facing communication API.

A :class:`Comm` is a group of global ranks with a unique context id (cid);
message matching never crosses cids, so duplicated communicators
(:meth:`Comm.dup`) provide the isolated channels the paper's "nonblocking
overlap" technique needs ("data ... communicated using separate MPI
communicators, with each communicator performing communication
simultaneously with other communicators", §III-A).

A :class:`CommView` binds a communicator to one calling rank; all its
communication methods are generator coroutines used with ``yield from``
inside rank programs.  Buffer conventions:

* real-data mode — pass 1-D numpy arrays; collectives operate in place /
  return arrays, point-to-point delivers the payload object;
* modeled mode — pass ``nbytes=...`` instead of a buffer; only sizes and
  timing are simulated (used for the paper-scale benchmark sweeps).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mpi.collectives.executor import ScheduleRunner
from repro.mpi.collectives.plan import (
    get_plan,
    select_allreduce,
    select_bcast,
    select_reduce,
)
from repro.mpi.requests import Request
from repro.sim.process import Delay
from repro.sim.trace import SpanKind


class Comm:
    """A process group + communication context (compare ``MPI_Comm``)."""

    def __init__(self, world, ranks, name: str = "comm", channel: int = 0):
        ranks = tuple(int(r) for r in ranks)
        if len(set(ranks)) != len(ranks):
            raise ValueError("duplicate ranks in communicator group")
        if not ranks:
            raise ValueError("empty communicator group")
        for r in ranks:
            if not 0 <= r < world.num_ranks:
                raise ValueError(f"rank {r} outside world of {world.num_ranks}")
        if channel and not 0 <= channel < world.params.num_channels:
            raise ValueError(
                f"channel {channel} outside [0, {world.params.num_channels}) "
                f"— raise NetworkParams.num_channels to use it"
            )
        self.world = world
        self.ranks = ranks
        self.name = name
        # Virtual lane: every wire transfer this communicator's operations
        # post (p2p and collective rounds alike) rides this fabric channel.
        self.channel = channel
        self.cid = world._next_cid()
        self._local_of = {g: i for i, g in enumerate(ranks)}
        # Per-local-rank collective sequence numbers.  MPI requires all ranks
        # to issue collectives on a communicator in the same order, so these
        # independent counters agree and give each collective a private tag.
        self._coll_seq = [0] * len(ranks)
        self._views: dict[int, "CommView"] = {}
        verifier = getattr(world, "verifier", None)
        if verifier is not None:
            verifier.on_comm_created(self)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def local(self, global_rank: int) -> int:
        """Local rank of ``global_rank``; raises ``KeyError`` if not a member."""
        return self._local_of[global_rank]

    def contains(self, global_rank: int) -> bool:
        return global_rank in self._local_of

    def dup(self, name: str | None = None,
            channel: int | None = None) -> "Comm":
        """A congruent communicator with a fresh context (``MPI_Comm_dup``).

        ``channel`` pins the duplicate to a fabric lane; ``None`` inherits
        this communicator's lane.
        """
        return Comm(self.world, self.ranks, name or f"{self.name}.dup",
                    channel=self.channel if channel is None else channel)

    def dup_many(self, n_dup: int, channels=None) -> list["Comm"]:
        """``n_dup`` duplicates — the N_DUP communicator copies of Alg. 2/5.

        ``channels`` optionally assigns one fabric lane per duplicate (the
        pipelined-multicast kernels' disjoint color channels).
        """
        if n_dup < 1:
            raise ValueError(f"n_dup must be >= 1, got {n_dup}")
        if channels is not None and len(channels) != n_dup:
            raise ValueError(
                f"channels has {len(channels)} entries for {n_dup} dups"
            )
        return [
            self.dup(f"{self.name}.dup{i}",
                     channel=None if channels is None else channels[i])
            for i in range(n_dup)
        ]

    def sub(self, ranks, name: str = "sub") -> "Comm":
        """Communicator over a subset of this group (global rank list)."""
        for r in ranks:
            if r not in self._local_of:
                raise ValueError(f"rank {r} not in {self.name}")
        return Comm(self.world, ranks, name)

    def split(self, colors: dict[int, Any]) -> dict[Any, "Comm"]:
        """``MPI_Comm_split``: map global rank -> color; returns color -> comm.

        Ranks with color ``None`` are excluded (MPI_UNDEFINED).  Key order
        within a color follows the parent communicator's rank order.
        """
        groups: dict[Any, list[int]] = {}
        for g in self.ranks:
            color = colors.get(g)
            if color is None:
                continue
            groups.setdefault(color, []).append(g)
        return {
            c: Comm(self.world, rs, f"{self.name}.split[{c}]")
            for c, rs in groups.items()
        }

    def view(self, global_rank: int) -> "CommView":
        """The calling-rank-bound API object for ``global_rank``.

        Views are stateless and cached per rank: the dense kernels re-ask
        for the same view every step/iteration.
        """
        local = self.local(global_rank)
        cv = self._views.get(local)
        if cv is None:
            cv = self._views[local] = CommView(self, local)
        return cv

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Comm {self.name!r} cid={self.cid} size={self.size}>"


_UNSET = object()
_A2A_TAG = 1_000_003  # reserved user-tag for alltoall exchanges


def _coll_tag(seq: int):
    return ("c", seq)


def _user_tag(tag: int):
    if tag < 0:
        raise ValueError(f"user tags must be >= 0, got {tag}")
    return ("u", tag)


class CommView:
    """One rank's handle on a communicator: all MPI verbs live here."""

    def __init__(self, comm: Comm, local_rank: int):
        self.comm = comm
        self.rank = local_rank
        self.world = comm.world
        self.gr = comm.ranks[local_rank]  # global rank

    @property
    def size(self) -> int:
        return self.comm.size

    # -- helpers ---------------------------------------------------------------

    def _resolve_buf(self, buf, nbytes):
        """Returns (buf_or_None, n_elems, itemsize, nbytes)."""
        if buf is not None:
            arr = np.asarray(buf)
            if arr.ndim != 1:
                raise ValueError("communication buffers must be 1-D arrays")
            return arr, arr.size, arr.itemsize, arr.nbytes
        if nbytes is None:
            raise ValueError("pass a buffer or nbytes=")
        if nbytes < 0:
            raise ValueError(f"negative nbytes {nbytes}")
        return None, int(nbytes), 1, int(nbytes)

    def _trace_post(self, t0: float, label: str) -> None:
        trace = self.world.trace
        if not trace.enabled:
            return
        t1 = self.world.engine.now
        if t1 > t0:
            trace.add(self.gr, t0, t1, SpanKind.POST, label)

    def _next_tag(self):
        seq = self.comm._coll_seq[self.rank]
        self.comm._coll_seq[self.rank] = seq + 1
        return _coll_tag(seq)

    # -- point-to-point -----------------------------------------------------------

    def isend(self, dest: int, *, data: Any = None, nbytes: int | None = None, tag: int = 0):
        """Generator: post a nonblocking send to local rank ``dest``.

        Charges the posting overhead (plus the eager-copy cost for small
        messages) on the calling CPU, then hands off to the transport.
        Returns a :class:`Request`.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        if data is not None and nbytes is None:
            arr = np.asarray(data)
            nbytes = arr.nbytes
        if nbytes is None:
            raise ValueError("pass data or nbytes=")
        p = self.world.params
        cost = p.send_overhead
        if nbytes <= p.rendezvous_threshold:
            cost += nbytes / p.eager_copy_bandwidth
        t0 = self.world.engine.now
        if cost > 0:
            yield Delay(cost)
        if self.world.trace.enabled:  # skip the label f-string in swept runs
            self._trace_post(t0, f"isend->l{dest}")
        utag = _user_tag(tag)
        req = self.world.transport.post_send(
            self.comm.cid, self.gr, self.comm.ranks[dest], utag, nbytes, data,
            self.comm.channel,
        )
        verifier = getattr(self.world, "verifier", None)
        if verifier is not None:
            verifier.on_p2p_posted(
                req, "isend", self.gr, peer=self.comm.ranks[dest],
                cid=self.comm.cid, tag=utag, nbytes=nbytes,
                buf=None if data is None else np.asarray(data),
            )
        return req

    def irecv(self, source: int, *, tag: int = 0):
        """Generator: post a nonblocking receive; returns a :class:`Request`."""
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range")
        p = self.world.params
        if p.recv_overhead > 0:
            yield Delay(p.recv_overhead)
        utag = _user_tag(tag)
        req = self.world.transport.post_recv(
            self.comm.cid, self.gr, self.comm.ranks[source], utag
        )
        verifier = getattr(self.world, "verifier", None)
        if verifier is not None:
            verifier.on_p2p_posted(
                req, "irecv", self.gr, peer=self.comm.ranks[source],
                cid=self.comm.cid, tag=utag, nbytes=0,
            )
        return req

    def send(self, dest: int, *, data: Any = None, nbytes: int | None = None, tag: int = 0):
        """Generator: blocking send (isend + wait)."""
        req = yield from self.isend(dest, data=data, nbytes=nbytes, tag=tag)
        yield from req.wait()

    def recv(self, source: int, *, tag: int = 0):
        """Generator: blocking receive; returns the payload."""
        req = yield from self.irecv(source, tag=tag)
        result = yield from req.wait()
        return result

    def sendrecv(
        self,
        dest: int,
        source: int,
        *,
        data: Any = None,
        nbytes: int | None = None,
        tag: int = 0,
    ):
        """Generator: concurrent send+recv (MPI_Sendrecv); returns received payload."""
        rreq = yield from self.irecv(source, tag=tag)
        sreq = yield from self.isend(dest, data=data, nbytes=nbytes, tag=tag)
        yield from sreq.wait()
        result = yield from rreq.wait()
        return result

    # -- collective engines ---------------------------------------------------------

    def _start(self, schedule, buf, itemsize, blocking, label, result=_UNSET,
               *, root=None, op_nbytes: int = 0) -> Request:
        tag = self._next_tag()
        verifier = getattr(self.world, "verifier", None)
        site = None
        if verifier is not None:
            site = verifier.on_collective_posted(
                self.comm, self.rank, tag[1], label, root, op_nbytes, buf,
            )
        runner = ScheduleRunner(
            self.world, self.comm, self.rank, tag, schedule, buf, itemsize,
            blocking, label,
        )
        req = Request(self.world, self.gr, label, runner.start())
        req.set_result(buf if result is _UNSET else result)
        if verifier is not None:
            verifier.track_request(req, label, self.gr, site,
                                   cid=self.comm.cid, seq=tag[1], tag=tag,
                                   nbytes=op_nbytes)
            if not blocking and buf is not None and not req.done.fired:
                verifier.hold_buffer(self.gr, buf, label, site, req)
        return req

    # -- broadcast --------------------------------------------------------------------

    def _bcast_schedule(self, n_elems, itemsize, root):
        p = self.comm.size
        algorithm = select_bcast(p, n_elems, itemsize, self.world.params)
        return get_plan(algorithm, p, self.rank, root, n_elems, itemsize)

    def ibcast(self, buf=None, *, nbytes: int | None = None, root: int = 0):
        """Generator: nonblocking broadcast from ``root`` (MPI_Ibcast).

        Posting cost is the small constant the paper measures (Fig. 6,
        bottom).  Returns a :class:`Request`; ``wait()`` returns the buffer.
        """
        arr, n_elems, itemsize, _nb = self._resolve_buf(buf, nbytes)
        t0 = self.world.engine.now
        if self.world.params.ibcast_post_seconds > 0:
            yield Delay(self.world.params.ibcast_post_seconds)
        self._trace_post(t0, "ibcast")
        sched = self._bcast_schedule(n_elems, itemsize, root)
        return self._start(sched, arr, itemsize, blocking=False, label="ibcast",
                           root=root, op_nbytes=n_elems * itemsize)

    def bcast(self, buf=None, *, nbytes: int | None = None, root: int = 0):
        """Generator: blocking broadcast; returns the buffer."""
        arr, n_elems, itemsize, _nb = self._resolve_buf(buf, nbytes)
        if self.world.params.send_overhead > 0:
            yield Delay(self.world.params.send_overhead)
        sched = self._bcast_schedule(n_elems, itemsize, root)
        req = self._start(sched, arr, itemsize, blocking=True, label="bcast",
                          root=root, op_nbytes=n_elems * itemsize)
        result = yield from req.wait()
        return result

    # -- reduce ------------------------------------------------------------------------

    def _reduce_schedule(self, n_elems, itemsize, root):
        p = self.comm.size
        algorithm = select_reduce(p, n_elems, itemsize, self.world.params)
        return get_plan(algorithm, p, self.rank, root, n_elems, itemsize)

    def _reduce_working(self, sendbuf, nbytes, label="reduce"):
        arr, n_elems, itemsize, nb = self._resolve_buf(sendbuf, nbytes)
        if arr is not None:
            # The working copy never aliases user memory, so the RA103 hazard
            # check must run against the original send buffer.
            verifier = getattr(self.world, "verifier", None)
            if verifier is not None:
                verifier.check_buffer(self.gr, arr, label)
            arr = arr.copy()  # reductions must not clobber the user's data
        return arr, n_elems, itemsize, nb

    def ireduce(self, sendbuf=None, *, nbytes: int | None = None, root: int = 0):
        """Generator: nonblocking sum-reduction to ``root`` (MPI_Ireduce).

        Posting charges the size-proportional marshalling cost the paper
        measures (Fig. 6, top: 265-1139 us for 2-8 MB) on the calling CPU.
        ``wait()`` returns the reduced array at the root, ``None`` elsewhere.
        """
        arr, n_elems, itemsize, nb = self._reduce_working(sendbuf, nbytes,
                                                          "ireduce")
        p = self.world.params
        cost = p.ireduce_post_base + nb * p.ireduce_post_per_byte
        t0 = self.world.engine.now
        if cost > 0:
            yield Delay(cost)
        self._trace_post(t0, "ireduce")
        sched = self._reduce_schedule(n_elems, itemsize, root)
        result = arr if self.rank == root else None
        return self._start(sched, arr, itemsize, blocking=False, label="ireduce",
                           result=result, root=root, op_nbytes=nb)

    def reduce(self, sendbuf=None, *, nbytes: int | None = None, root: int = 0):
        """Generator: blocking sum-reduction; returns the array at root."""
        arr, n_elems, itemsize, nb = self._reduce_working(sendbuf, nbytes,
                                                          "reduce")
        if self.world.params.send_overhead > 0:
            yield Delay(self.world.params.send_overhead)
        sched = self._reduce_schedule(n_elems, itemsize, root)
        result = arr if self.rank == root else None
        req = self._start(sched, arr, itemsize, blocking=True, label="reduce",
                          result=result, root=root, op_nbytes=nb)
        result = yield from req.wait()
        return result

    # -- allreduce ----------------------------------------------------------------------

    def _allreduce_schedule(self, n_elems, itemsize):
        p = self.comm.size
        algorithm = select_allreduce(p, n_elems, itemsize, self.world.params)
        return get_plan(algorithm, p, self.rank, 0, n_elems, itemsize)

    def iallreduce(self, sendbuf=None, *, nbytes: int | None = None):
        """Generator: nonblocking allreduce (sum); ``wait()`` returns the array."""
        arr, n_elems, itemsize, nb = self._reduce_working(sendbuf, nbytes,
                                                          "iallreduce")
        p = self.world.params
        cost = p.ireduce_post_base + nb * p.ireduce_post_per_byte
        t0 = self.world.engine.now
        if cost > 0:
            yield Delay(cost)
        self._trace_post(t0, "iallreduce")
        sched = self._allreduce_schedule(n_elems, itemsize)
        return self._start(sched, arr, itemsize, blocking=False,
                           label="iallreduce", op_nbytes=nb)

    def allreduce(self, sendbuf=None, *, nbytes: int | None = None):
        """Generator: blocking allreduce (sum); returns the reduced array."""
        arr, n_elems, itemsize, nb = self._reduce_working(sendbuf, nbytes,
                                                          "allreduce")
        if self.world.params.send_overhead > 0:
            yield Delay(self.world.params.send_overhead)
        sched = self._allreduce_schedule(n_elems, itemsize)
        req = self._start(sched, arr, itemsize, blocking=True,
                          label="allreduce", op_nbytes=nb)
        result = yield from req.wait()
        return result

    # -- allgather -------------------------------------------------------------------------

    def allgather(self, buf=None, *, nbytes: int | None = None):
        """Generator: ring allgather over the buffer's ``p`` segments.

        Each rank passes the *full-size* buffer with its own segment
        (``segment r`` of ``p`` equal splits) filled; returns the completed
        buffer (MPI_Allgather with in-place convention).
        """
        arr, n_elems, itemsize, nb = self._resolve_buf(buf, nbytes)
        if self.world.params.send_overhead > 0:
            yield Delay(self.world.params.send_overhead)
        sched = get_plan("allgather_ring", self.comm.size, self.rank, 0,
                         n_elems, itemsize)
        req = self._start(sched, arr, itemsize, blocking=True,
                          label="allgather", op_nbytes=nb)
        result = yield from req.wait()
        return result

    def iallgather(self, buf=None, *, nbytes: int | None = None):
        """Generator: nonblocking ring allgather (cf. :meth:`allgather`)."""
        arr, n_elems, itemsize, nb = self._resolve_buf(buf, nbytes)
        t0 = self.world.engine.now
        if self.world.params.ibcast_post_seconds > 0:
            yield Delay(self.world.params.ibcast_post_seconds)
        self._trace_post(t0, "iallgather")
        sched = get_plan("allgather_ring", self.comm.size, self.rank, 0,
                         n_elems, itemsize)
        return self._start(sched, arr, itemsize, blocking=False,
                           label="iallgather", op_nbytes=nb)

    # -- reduce-scatter ---------------------------------------------------------------

    def _reduce_scatter_result(self, arr, n_elems):
        p = self.comm.size
        lo = (self.rank * n_elems) // p
        hi = ((self.rank + 1) * n_elems) // p
        return None if arr is None else arr[lo:hi].copy()

    def ireduce_scatter(self, sendbuf=None, *, nbytes: int | None = None):
        """Generator: nonblocking ring reduce-scatter (sum).

        Every rank contributes a full-size buffer; ``wait()`` returns rank
        ``r``'s fully-reduced segment ``r`` of ``p`` near-equal splits.
        """
        arr, n_elems, itemsize, nb = self._reduce_working(sendbuf, nbytes,
                                                          "ireduce_scatter")
        p = self.world.params
        cost = p.ireduce_post_base + nb * p.ireduce_post_per_byte
        t0 = self.world.engine.now
        if cost > 0:
            yield Delay(cost)
        self._trace_post(t0, "ireduce_scatter")
        sched = get_plan("reduce_scatter_ring", self.comm.size, self.rank, 0,
                         n_elems, itemsize)
        req = self._start(sched, arr, itemsize, blocking=False,
                          label="ireduce_scatter", result=None, op_nbytes=nb)
        # The working buffer is only consistent in this rank's own segment
        # once the schedule completes; patch the result lazily.
        req.done.add_callback(
            lambda _ev: req.set_result(self._reduce_scatter_result(arr, n_elems))
        )
        return req

    def reduce_scatter(self, sendbuf=None, *, nbytes: int | None = None):
        """Generator: blocking ring reduce-scatter; returns my reduced segment."""
        req = yield from self.ireduce_scatter(sendbuf, nbytes=nbytes)
        result = yield from req.wait()
        return result

    # -- alltoall ----------------------------------------------------------------------

    def alltoall(self, buf=None, *, nbytes: int | None = None):
        """Generator: personalized all-to-all over the buffer's ``p`` segments.

        Rank ``r`` sends segment ``s`` of its buffer to rank ``s`` and
        receives rank ``s``'s segment ``r`` into segment ``s`` (MPI_Alltoall
        with the in-place layout).  Implemented with pairwise-ordered
        point-to-point exchanges (peer ``(r + t) % p`` at step ``t``), the
        standard long-message algorithm.  Returns the buffer.
        """
        arr, n_elems, itemsize, _nb = self._resolve_buf(buf, nbytes)
        p = self.comm.size
        me = self.rank
        if n_elems % p != 0:
            raise ValueError(
                f"alltoall needs equal segments: {n_elems} elements, p={p}"
            )
        segs = [((s * n_elems) // p, ((s + 1) * n_elems) // p) for s in range(p)]
        # Snapshot outgoing segments before any receive overwrites them.
        outgoing = None
        if arr is not None:
            outgoing = [np.array(arr[lo:hi]) for lo, hi in segs]
        reqs = []
        for t in range(1, p):
            dst = (me + t) % p
            src = (me - t) % p
            rreq = yield from self.irecv(src, tag=_A2A_TAG)
            lo, hi = segs[dst]
            sreq = yield from self.isend(
                dst,
                data=None if outgoing is None else outgoing[dst],
                nbytes=(hi - lo) * itemsize,
                tag=_A2A_TAG,
            )
            reqs.append((src, rreq, sreq))
        for src, rreq, sreq in reqs:
            got = yield from rreq.wait()
            if arr is not None and got is not None:
                lo, hi = segs[src]
                arr[lo:hi] = got
            yield from sreq.wait()
        return arr

    # -- barrier ----------------------------------------------------------------------------

    def ibarrier(self):
        """Generator: nonblocking dissemination barrier; returns a Request.

        This is the kernel-gating primitive of §III-B (inactive processes
        poll the barrier with MPI_Test while sleeping).
        """
        if self.world.params.send_overhead > 0:
            yield Delay(self.world.params.send_overhead)
        sched = get_plan("barrier", self.comm.size, self.rank, 0, 0, 1)
        return self._start(sched, None, 1, blocking=False, label="ibarrier",
                           op_nbytes=0)

    def barrier(self):
        """Generator: blocking dissemination barrier."""
        req = yield from self.ibarrier()
        yield from req.wait()

    # -- linear scatter/gather (root-orchestrated; API completeness) -----------------------------

    def scatter(self, sendbuf=None, *, nbytes: int | None = None, root: int = 0):
        """Generator: root sends segment ``i`` to rank ``i``; returns my segment.

        Linear (root posts ``p-1`` sends) — sufficient for the setup phases
        where it is used; the kernels' hot paths use bcast/reduce.
        """
        p = self.comm.size
        if self.rank == root:
            arr, n_elems, itemsize, nb = self._resolve_buf(sendbuf, nbytes)
            reqs = []
            for dst in range(p):
                lo = (dst * n_elems) // p
                hi = ((dst + 1) * n_elems) // p
                if dst == root:
                    mine = arr[lo:hi].copy() if arr is not None else None
                    continue
                data = arr[lo:hi].copy() if arr is not None else None
                req = yield from self.isend(
                    dst, data=data, nbytes=(hi - lo) * itemsize, tag=0
                )
                reqs.append(req)
            for req in reqs:
                yield from req.wait()
            return mine
        data = yield from self.recv(root, tag=0)
        return data

    def gather(self, data=None, *, nbytes: int | None = None, root: int = 0):
        """Generator: inverse of :meth:`scatter`; root returns list of payloads."""
        p = self.comm.size
        if self.rank == root:
            out: list[Any] = [None] * p
            out[root] = data
            reqs = []
            for src in range(p):
                if src == root:
                    continue
                req = yield from self.irecv(src, tag=1)
                reqs.append((src, req))
            for src, req in reqs:
                out[src] = yield from req.wait()
            return out
        yield from self.send(root, data=data, nbytes=nbytes, tag=1)
        return None
