"""Memoized collective plans and the shared plan cache.

The schedule generators in :mod:`repro.mpi.collectives.algorithms` are pure
functions of ``(p, me, root, n)`` — yet the kernels call them thousands of
times per run with identical arguments: every purification iteration, every
part ``c``, every ``N_DUP`` duplicate communicator re-derives the same
per-rank op list, and the executor then re-derives the same per-op byte
counts round after round.  A :class:`CollectivePlan` does that work once:

* ops are extended from ``(kind, peer, lo, hi)`` to
  ``(kind, peer, lo, hi, nbytes, needs_copy)`` so the executor never
  recomputes sizes;
* each round carries its maximum op size (the blocking-gap test becomes a
  single comparison against ``rendezvous_threshold``) and its count of
  nonzero ``add`` ops (enables the executor's combine batching);
* ``needs_copy`` is a static may-alias bit: a send must snapshot its buffer
  range only if a ``copy``/``add`` op of the *same or a later* round on this
  rank overlaps the sent range — earlier-round receives completed before the
  send was posted, so they cannot race it.  Every long-message generator in
  this repo (ring allgather, recursive halving, binomial scatter/gather)
  is alias-free; only full-buffer tree collectives with a later overlapping
  receive (e.g. the reduce phase of ``allreduce_short``) pay the copy.

Plans are pure data (nested tuples), independent of network parameters, and
therefore shareable across ranks, communicators, worlds, and iterations.
:class:`PlanCache` is a bounded LRU over the plan key
``(algorithm, p, me, root, n_elems, itemsize)``; the module-level
:data:`shared_plans` instance is what :class:`~repro.mpi.comm.CommView`
consults, and its hit/miss counters surface in every experiment's
``sim_stats`` (see :mod:`repro.bench.harness`).

The module also hosts the memoized helpers for the P2P-heavy dense paths
(:func:`block_partition`, :func:`cannon_shift_plan`) so Cannon's per-step
block arithmetic is derived once per ``(q, i, j, n, steps, offset)`` rather
than once per step per layer per iteration.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from functools import lru_cache

from repro.mpi.collectives import algorithms as _alg


class _SizeOnlyPayload:
    """Singleton symbolic payload for sizes-only (``buf=None``) sends.

    Carries no data and allocates nothing per message; receivers recognize
    it by identity and skip the numpy store/accumulate entirely, so modeled
    sweeps at large ``p`` never materialize arrays.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<size-only payload>"


SIZE_ONLY = _SizeOnlyPayload()

#: algorithm name -> normalized generator ``f(p, root, me, n) -> Schedule``.
#: Names are the public vocabulary of the plan cache (stable across PRs:
#: they appear in cache keys and tests).
GENERATORS = {
    "bcast_binomial": lambda p, root, me, n: _alg.bcast_binomial(p, root, me, n),
    "bcast_long": lambda p, root, me, n: _alg.bcast_long(p, root, me, n),
    "reduce_binomial": lambda p, root, me, n: _alg.reduce_binomial(p, root, me, n),
    "reduce_rabenseifner": (
        lambda p, root, me, n: _alg.reduce_rabenseifner(p, root, me, n)
    ),
    "reduce_ring": lambda p, root, me, n: _alg.reduce_ring(p, root, me, n),
    "allreduce_short": lambda p, root, me, n: _alg.allreduce_short(p, me, n),
    "allreduce_long": lambda p, root, me, n: _alg.allreduce_long(p, me, n),
    "allreduce_ring": lambda p, root, me, n: _alg.allreduce_ring(p, me, n),
    "allgather_ring": lambda p, root, me, n: _alg.allgather_ring(p, me, n, root),
    "reduce_scatter_ring": (
        lambda p, root, me, n: _alg._reduce_scatter_ring_rounds(p, root, me, n)
    ),
    "barrier": lambda p, root, me, n: _alg.barrier_dissemination(p, me),
}


# ---------------------------------------------------------------------------
# algorithm selection (pure functions of the op shape + network parameters)
# ---------------------------------------------------------------------------
#
# These are the *protocol decisions* of :class:`~repro.mpi.comm.CommView`:
# given a collective verb and an op shape, which generator from
# :data:`GENERATORS` runs it.  They are deliberately pure functions of
# ``(p, n_elems, itemsize, params)`` — no world, no engine — so the static
# schedule verifier (:mod:`repro.analysis.schedule`) can symbolically
# execute them with a field-access-tracing parameter proxy and prove that
# schedule *structure* never depends on a replay-safe fabric constant
# (finding RA306; see ``REPLAY_SAFE_FIELDS`` in :mod:`repro.sim.replay`).


def select_bcast(p: int, n_elems: int, itemsize: int, params) -> str:
    """Broadcast algorithm for ``n_elems`` elements on ``p`` ranks."""
    if n_elems * itemsize < params.long_message_threshold or p <= 2:
        return "bcast_binomial"
    return "bcast_long"


def select_reduce(p: int, n_elems: int, itemsize: int, params) -> str:
    """Reduce-to-root algorithm (binomial / Rabenseifner / ring)."""
    if n_elems * itemsize < params.long_message_threshold or p <= 2:
        return "reduce_binomial"
    if p & (p - 1) == 0:  # power of two: recursive halving (Rabenseifner)
        return "reduce_rabenseifner"
    return "reduce_ring"


def select_allreduce(p: int, n_elems: int, itemsize: int, params) -> str:
    """Allreduce algorithm (short / fold+halving / ring)."""
    if n_elems * itemsize < params.long_message_threshold or p <= 2:
        return "allreduce_short"
    if p & (p - 1) == 0:
        return "allreduce_long"
    return "allreduce_ring"


def select_allgather(p: int, n_elems: int, itemsize: int, params) -> str:
    """Allgather algorithm (the ring is used at every size)."""
    return "allgather_ring"


def select_reduce_scatter(p: int, n_elems: int, itemsize: int, params) -> str:
    """Reduce-scatter algorithm (the ring is used at every size)."""
    return "reduce_scatter_ring"


def select_barrier(p: int, n_elems: int, itemsize: int, params) -> str:
    """Barrier algorithm (dissemination at every size)."""
    return "barrier"


#: collective verb -> selection function.  The static verifier iterates
#: this registry; adding a verb here automatically puts its protocol
#: decision under the RA306 replay-envelope check.
SELECTORS = {
    "bcast": select_bcast,
    "reduce": select_reduce,
    "allreduce": select_allreduce,
    "allgather": select_allgather,
    "reduce_scatter": select_reduce_scatter,
    "barrier": select_barrier,
}


class CollectivePlan:
    """One rank's fully-precomputed execution plan for one collective.

    ``rounds`` is a tuple of rounds, each a tuple of
    ``(kind, peer, lo, hi, nbytes, needs_copy)`` ops; ``round_max_nbytes``
    and ``round_adds`` are per-round tuples consumed by
    :class:`~repro.mpi.collectives.executor.ScheduleRunner`.
    """

    __slots__ = ("key", "rounds", "round_max_nbytes", "round_adds")

    def __init__(self, key, schedule, itemsize: int):
        self.key = key
        itemsize = int(itemsize)
        rounds = []
        max_nbytes = []
        adds = []
        for rnd in schedule:
            ops = []
            biggest = 0
            n_adds = 0
            for op in rnd:
                kind, peer, lo, hi = op
                nbytes = (hi - lo) * itemsize
                if nbytes > biggest:
                    biggest = nbytes
                if kind == "add" and nbytes > 0:
                    n_adds += 1
                ops.append((kind, peer, lo, hi, nbytes, False))
            rounds.append(ops)
            max_nbytes.append(biggest)
            adds.append(n_adds)
        # May-alias pass (back to front): a send needs a private snapshot
        # only if a receive of the same or a later round writes into its
        # range while the payload may still be in flight.
        writes: list[tuple[int, int]] = []
        for ops in reversed(rounds):
            for op in ops:
                if op[0] != "send":
                    lo, hi = op[2], op[3]
                    if hi > lo:
                        writes.append((lo, hi))
            for idx, op in enumerate(ops):
                if op[0] == "send" and op[3] > op[2]:
                    lo, hi = op[2], op[3]
                    if any(wlo < hi and lo < whi for wlo, whi in writes):
                        ops[idx] = op[:5] + (True,)
        self.rounds = tuple(tuple(ops) for ops in rounds)
        self.round_max_nbytes = tuple(max_nbytes)
        self.round_adds = tuple(adds)

    @classmethod
    def build(cls, algorithm: str, p: int, me: int, root: int, n_elems: int,
              itemsize: int) -> "CollectivePlan":
        """Generate + precompute the plan for one cache key (cold path)."""
        try:
            gen = GENERATORS[algorithm]
        except KeyError:
            raise KeyError(
                f"unknown collective algorithm {algorithm!r}; "
                f"known: {sorted(GENERATORS)}"
            ) from None
        key = (algorithm, p, me, root, n_elems, itemsize)
        return cls(key, gen(p, root, me, n_elems), itemsize)

    @classmethod
    def from_schedule(cls, schedule, itemsize: int) -> "CollectivePlan":
        """Wrap a raw ``list[list[(kind, peer, lo, hi)]]`` schedule (uncached).

        Back-compat path for callers that hand
        :class:`~repro.mpi.collectives.executor.ScheduleRunner` a schedule
        built outside the generator registry.
        """
        return cls(None, schedule, itemsize)

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self):
        return iter(self.rounds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CollectivePlan key={self.key} rounds={len(self.rounds)}>"


class PlanCache:
    """Bounded LRU of :class:`CollectivePlan` keyed on the full plan key.

    One instance is shared across every rank, communicator, and world in the
    process (plans are immutable), so the N_DUP duplicate communicators and
    repeated purification iterations all hit the same entries.
    """

    __slots__ = ("maxsize", "_plans", "hits", "misses", "evictions", "_lock")

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._plans: OrderedDict[tuple, CollectivePlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # The process-wide shared cache is hit from every tuning-service
        # search thread; OrderedDict reordering plus the counters are
        # read-modify-write sequences that must not interleave.  Plan
        # *construction* stays outside the lock — a rare duplicate build
        # is cheaper than serializing every miss.
        self._lock = threading.Lock()

    def get(self, algorithm: str, p: int, me: int, root: int = 0,
            n_elems: int = 0, itemsize: int = 8) -> CollectivePlan:
        """Return the memoized plan, building (and possibly evicting) on miss."""
        key = (algorithm, p, me, root, n_elems, itemsize)
        plans = self._plans
        with self._lock:
            plan = plans.get(key)
            if plan is not None:
                self.hits += 1
                plans.move_to_end(key)
                return plan
            self.misses += 1
        plan = CollectivePlan.build(algorithm, p, me, root, n_elems, itemsize)
        with self._lock:
            plans[key] = plan
            if len(plans) > self.maxsize:
                plans.popitem(last=False)
                self.evictions += 1
        return plan

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: tuple) -> bool:
        return key in self._plans

    def clear(self) -> None:
        """Drop every cached plan.  Counters are **not** touched.

        The hit/miss/eviction counters are read-only cumulative statistics;
        dropping entries (to free memory or to force cold rebuilds) must not
        rewrite history.  Call :meth:`reset` to zero the counters explicitly
        (the bench harness does both between isolated grid points).
        """
        self._plans.clear()

    def reset(self) -> None:
        """Zero the cumulative hit/miss/eviction counters (entries stay)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict:
        """Counters snapshot; ``hit_rate`` is 0.0 when nothing was looked up."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._plans),
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }


#: The process-wide cache every :class:`~repro.mpi.comm.CommView` consults.
shared_plans = PlanCache()


def get_plan(algorithm: str, p: int, me: int, root: int = 0,
             n_elems: int = 0, itemsize: int = 8) -> CollectivePlan:
    """Memoized plan lookup on :data:`shared_plans` (the hot entry point)."""
    return shared_plans.get(algorithm, p, me, root, n_elems, itemsize)


# ---------------------------------------------------------------------------
# dense-kernel P2P plans (Cannon / 2.5D / 3D block arithmetic)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=4096)
def block_partition(n: int, q: int) -> tuple[tuple[int, ...], tuple[tuple[int, int], ...]]:
    """``(dims, ranges)`` of the ``q``-way block partition of ``n`` elements.

    ``dims[i]`` / ``ranges[i]`` match
    :func:`repro.dense.distribution.block_dim` / ``block_range`` — memoized
    here because the dense kernels ask for the same partition once per rank
    per step per iteration.
    """
    bounds = [(i * n) // q for i in range(q + 1)]
    dims = tuple(bounds[i + 1] - bounds[i] for i in range(q))
    ranges = tuple((bounds[i], bounds[i + 1]) for i in range(q))
    return dims, ranges


@lru_cache(maxsize=8192)
def cannon_shift_plan(q: int, i: int, j: int, n: int, steps: int,
                      offset: int) -> tuple:
    """Precomputed Cannon itinerary for process ``(i, j)`` on a ``q x q`` layer.

    Returns ``(align, shifts)``:

    ``align = (a_dst, a_src, b_dst, b_src, l0)``
        Initial-alignment sendrecv peers (local ranks in the row/column
        communicators) and the first travelling inner index ``l0``; a peer
        equal to the caller's own coordinate means no movement.

    ``shifts``
        One ``(l, bl)`` entry per multiply step: the travelling inner block
        index and its dimension.  The shift *after* step ``t`` moves
        ``bi x shifts[t][1]`` (A) and ``shifts[t][1] x bj`` (B) elements to
        the fixed neighbours ``(j - 1) % q`` / ``(i - 1) % q``.
    """
    dims, _ranges = block_partition(n, q)
    a_dst = (j - i - offset) % q
    a_src = (j + i + offset) % q
    b_dst = (i - j - offset) % q
    b_src = (i + j + offset) % q
    l0 = (i + j + offset) % q
    shifts = []
    l = l0
    for _t in range(steps):
        shifts.append((l, dims[l]))
        l = (l + 1) % q
    return (a_dst, a_src, b_dst, b_src, l0), tuple(shifts)
