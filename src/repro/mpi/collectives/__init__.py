"""Collective algorithms and their schedule executor.

A collective is compiled, per rank, into a *schedule*: a list of rounds,
each round a list of ops

* ``("send", peer, lo, hi)``  — ship my buffer's element range ``[lo, hi)``;
* ``("copy", peer, lo, hi)``  — receive the range and store it;
* ``("add",  peer, lo, hi)``  — receive the range and sum it in (reductions).

The algorithms mirror MPICH's choices, which the paper assumes in its
analysis (§V-A): binomial trees for short messages, scatter + ring-allgather
broadcast and Rabenseifner reduction (recursive-halving reduce-scatter +
binomial gather, with the standard fold for non-power-of-two process counts)
for long messages, and dissemination barriers.  Blocking and nonblocking
execution share one engine-driven :class:`~repro.mpi.collectives.executor.
ScheduleRunner`; blocking execution inserts the per-round synchronization
gap that pre-posted nonblocking schedules avoid.

Runtime paths do not call the generators directly: they fetch a
:class:`~repro.mpi.collectives.plan.CollectivePlan` from the shared LRU
plan cache (:mod:`repro.mpi.collectives.plan`), which memoizes the
generated schedule together with per-op byte counts and the static
may-alias bit that enables zero-copy sends.
"""

from repro.mpi.collectives.algorithms import (
    bcast_binomial,
    bcast_long,
    reduce_binomial,
    reduce_rabenseifner,
    reduce_ring,
    allreduce_short,
    allreduce_long,
    allreduce_ring,
    allgather_ring,
    allgather_recursive_doubling,
    barrier_dissemination,
    schedule_volume_bytes,
    validate_schedules,
)
from repro.mpi.collectives.executor import ScheduleRunner
from repro.mpi.collectives.plan import (
    SIZE_ONLY,
    CollectivePlan,
    PlanCache,
    get_plan,
    shared_plans,
)

__all__ = [
    "SIZE_ONLY",
    "CollectivePlan",
    "PlanCache",
    "get_plan",
    "shared_plans",
    "bcast_binomial",
    "bcast_long",
    "reduce_binomial",
    "reduce_rabenseifner",
    "reduce_ring",
    "allreduce_short",
    "allreduce_long",
    "allreduce_ring",
    "allgather_ring",
    "allgather_recursive_doubling",
    "barrier_dissemination",
    "schedule_volume_bytes",
    "validate_schedules",
    "ScheduleRunner",
]
