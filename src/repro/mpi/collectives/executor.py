"""Engine-driven execution of collective schedules.

One :class:`ScheduleRunner` executes one rank's schedule for one collective
operation.  It is *not* a generator: rounds are chained by event callbacks,
so a nonblocking collective progresses while the owning rank computes or
posts other operations (the MPI-3 progress semantics the paper's
"nonblocking overlap" technique depends on).

Timing semantics
----------------
* All of a round's sends and receives are posted together; the round
  finishes when every send has completed, every receive has arrived, and
  every reduction combine queued on the rank's progress engine has drained.
* ``blocking=True`` inserts ``NetworkParams.blocking_round_gap`` before each
  round after the first: a blocking collective synchronizes at round
  boundaries (it cannot pre-post the next round), while a pre-posted
  nonblocking schedule chains rounds immediately.  This asymmetry is what
  makes four overlapped ``MPI_Ibcast`` faster than four per-process blocking
  broadcasts of the same total volume (paper Fig. 6, bottom).
* ``add`` ops submit ``bytes / combine_bandwidth`` seconds to the rank's
  FIFO progress engine — overlapped nonblocking reductions therefore
  *serialize* their summation work per process (paper Fig. 6, top).

Data semantics (correctness mode): send ops pass a zero-copy view of their
range unless the plan's static may-alias bit demands a snapshot (see
:mod:`repro.mpi.collectives.plan`), ``copy`` stores, ``add`` accumulates;
with ``buf=None`` only sizes are simulated and sends carry the symbolic
:data:`~repro.mpi.collectives.plan.SIZE_ONLY` payload instead of touching
numpy at all.
"""

from __future__ import annotations

import numpy as np

from repro.mpi.collectives.plan import SIZE_ONLY, CollectivePlan
from repro.sim.engine import SimEvent


class ScheduleRunner:
    """Executes one rank's rounds of one collective operation."""

    def __init__(
        self,
        world,
        comm,
        me_local: int,
        tag,
        schedule,
        buf,
        itemsize: int,
        blocking: bool,
        label: str = "coll",
    ):
        self.world = world
        self.comm = comm
        self.me_local = me_local
        self.me_global = comm.ranks[me_local]
        self.tag = tag
        if isinstance(schedule, CollectivePlan):
            plan = schedule
        else:  # raw list-of-rounds schedule from outside the plan cache
            plan = CollectivePlan.from_schedule(schedule, itemsize)
        self.plan = plan
        self.schedule = plan.rounds
        self.buf = buf
        self.itemsize = int(itemsize)
        self.blocking = blocking
        self.label = label
        self._channel = comm.channel  # fabric lane of every round's sends
        # Static event name ("coll" surfaces only in engine error messages);
        # the per-op progress labels are precomputed once per runner.
        self.done: SimEvent = world.engine.event("coll")
        self._stage_label = f"{label}:stage"
        self._add_label = f"{label}:add"
        self._round = 0
        self._pending = 0
        self._started = False
        self._batching = False
        self._add_batch: list = []
        self._rec_acc = None  # recording: join of this round's completions

    # -- driving -----------------------------------------------------------------

    def start(self) -> SimEvent:
        """Begin executing rounds; returns the completion event."""
        if self._started:
            raise RuntimeError("ScheduleRunner started twice")
        self._started = True
        if getattr(self.world, "verify_plans", False) and self.plan.key is not None:
            # Opt-in debug gate: statically prove the whole cross-rank plan
            # set sound before executing it (memoized per plan key).  Raw
            # schedules (key=None) have no registry set to rebuild; the raw
            # entry points are covered by verify_plan_set in tests instead.
            from repro.analysis.schedule import assert_plan_sound

            assert_plan_sound(self.plan)
        self._advance()
        return self.done

    def _round_gap(self, i: int, ops) -> float:
        """Blocking-synchronization gap for round ``i``.

        The gap models rendezvous/arrival-skew synchronization between
        blocking rounds; rounds that only move eager-sized messages
        complete without it (small blocking collectives are latency-bound,
        not skew-bound).  The plan precomputes each round's maximum op
        size, so the test is one comparison.
        """
        if not self.blocking or i == 0 or not ops:
            return 0.0
        if self.plan.round_max_nbytes[i] > self.world.params.rendezvous_threshold:
            return self.world.params.blocking_round_gap
        return 0.0

    def _advance(self) -> None:
        """Run consecutive rounds until one has pending events (or finish)."""
        while self._round < len(self.schedule):
            i = self._round
            ops = self.schedule[i]
            gap = self._round_gap(i, ops)
            if gap > 0.0 and ops:
                self._round_after_gap(gap)
                return
            self._pending = 1  # guard against same-tick completion re-entry
            self._post_round(ops)
            self._pending -= 1
            if self._pending > 0:
                return
            self._rec_round_end()
            self._round += 1
        self.done.succeed(None)

    def _rec_round_end(self) -> None:
        """Recording: a round ends at the max over its completions' instants
        — fold the accumulated join into the causal context the next round
        (or the done event) chains from."""
        eng = self.world.engine
        rec = eng.recorder
        if rec is not None and self._rec_acc is not None:
            eng._rec_ctx = rec.join2(self._rec_acc, eng._rec_ctx)
            self._rec_acc = None

    def _round_after_gap(self, gap: float) -> None:
        self.world.engine.schedule_after(gap, self._resume_after_gap)

    def _resume_after_gap(self) -> None:
        ops = self.schedule[self._round]
        self._pending = 1
        self._post_round(ops)
        self._pending -= 1
        if self._pending == 0:
            self._rec_round_end()
            self._round += 1
            self._advance()

    def _post_round(self, ops) -> None:
        transport = self.world.transport
        cid = self.comm.cid
        buf = self.buf
        ranks = self.comm.ranks
        # Rounds with several nonzero adds batch the combines of payloads
        # that arrive synchronously while posting (eager sends already in
        # the unexpected queue) into one vectorized apply + one merged
        # progress submission.  Single-add rounds — every generator in
        # algorithms.py — take the unbatched path bit-for-bit unchanged.
        batch = buf is not None and self.plan.round_adds[self._round] >= 2
        if batch:
            self._batching = True
            rec = self.world.engine.recorder
            if rec is not None:
                # Whether a payload lands in the batch depends on arrival
                # timing relative to the posting loop — not expressible in
                # the graph.  (Tuner/golden runs are modeled-mode, buf=None.)
                rec.invalidate("numeric-mode add batching")
        for op in ops:
            kind, peer_local, lo, hi, nbytes, needs_copy = op
            peer_global = ranks[peer_local]
            if kind == "send":
                if buf is None:
                    data = SIZE_ONLY
                elif needs_copy:
                    data = np.array(buf[lo:hi])  # snapshot: a later receive
                    # on this rank overlaps the range (plan may-alias bit)
                else:
                    data = buf[lo:hi]  # zero-copy view: provably alias-free
                req = transport.post_send(
                    cid, self.me_global, peer_global, self.tag, nbytes, data,
                    self._channel,
                )
                self._track(req.done, None, lo, hi)
            elif kind == "copy":
                req = transport.post_recv(cid, self.me_global, peer_global, self.tag)
                self._track(req.done, "copy", lo, hi)
            elif kind == "add":
                req = transport.post_recv(cid, self.me_global, peer_global, self.tag)
                self._track(req.done, "add", lo, hi)
            else:  # pragma: no cover - schedules are validated
                raise ValueError(f"unknown op kind {kind!r}")
        if batch:
            self._batching = False
            if self._add_batch:
                self._flush_add_batch()

    def _track(self, event: SimEvent, action: str | None, lo: int, hi: int) -> None:
        self._pending += 1
        if action is None:
            event.add_callback(self._on_plain_done)
        else:
            event.add_callback(self._on_op_done, action, lo, hi)

    def _on_plain_done(self, _ev: SimEvent) -> None:
        self._complete_one()

    def _on_op_done(self, ev: SimEvent, action: str, lo: int, hi: int) -> None:
        value = ev.value
        if value is SIZE_ONLY:
            value = None  # symbolic payload from a sizes-only sender
        if action == "copy":
            if self.buf is not None and value is not None:
                self.buf[lo:hi] = value
            # Stage the received bytes through the internal buffer
            # (pack/unpack) on the process's progress engine.
            copy_bytes = (hi - lo) * self.itemsize
            if copy_bytes > 0:
                self.world.progress_of(self.me_global).submit_cb(
                    copy_bytes / self.world.params.round_copy_bandwidth,
                    self._stage_label, self._complete_one,
                )
            else:
                self._complete_one()
        else:  # "add"
            combine_bytes = (hi - lo) * self.itemsize
            if self._batching and combine_bytes > 0:
                # Arrived synchronously while _post_round was still posting
                # this round; coalesced into one flush at the end of the loop.
                self._add_batch.append((lo, hi, value, combine_bytes))
                return
            if self.buf is not None and value is not None:
                dst = self.buf[lo:hi]
                np.add(dst, value, out=dst)
            if combine_bytes > 0:
                self.world.progress_of(self.me_global).submit_cb(
                    combine_bytes / self.world.params.combine_bandwidth,
                    self._add_label, self._complete_one,
                )
            else:
                self._complete_one()

    def _flush_add_batch(self) -> None:
        """Apply batched same-round add payloads in one vectorized pass.

        The accumulates run now (payload views must be consumed before any
        zero-copy sender can move on), while the modeled combine time is
        submitted as a single progress task covering the whole batch — same
        total FIFO occupancy and same finish instant as the equivalent
        back-to-back submissions.
        """
        batch = self._add_batch
        self._add_batch = []
        buf = self.buf
        total = 0
        for lo, hi, value, nbytes in batch:
            if value is not None:
                dst = buf[lo:hi]
                np.add(dst, value, out=dst)
            total += nbytes
        self.world.progress_of(self.me_global).submit_cb(
            total / self.world.params.combine_bandwidth,
            self._add_label, self._complete_many, len(batch),
        )

    def _complete_many(self, n: int) -> None:
        self._pending -= n - 1
        self._complete_one()

    def _complete_one(self) -> None:
        eng = self.world.engine
        rec = eng.recorder
        if rec is not None:
            self._rec_acc = rec.join2(self._rec_acc, eng._rec_ctx)
        self._pending -= 1
        if self._pending == 0:
            if rec is not None:
                eng._rec_ctx = self._rec_acc  # includes the current instant
                self._rec_acc = None
            self._round += 1
            self._advance()
