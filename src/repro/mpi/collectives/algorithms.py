"""Per-rank schedule generation for each collective algorithm.

All functions take the communicator size ``p``, the calling rank's *local*
rank ``me`` (and ``root`` where applicable), and the logical element count
``n``; they return ``list[list[op]]`` (rounds of ops) with ops expressed as
element ranges of the collective's logical buffer.  Peers in ops are local
ranks.  Schedules on different ranks are mutually consistent: every ``send``
has exactly one matching ``copy``/``add`` on the peer in a compatible round
order (checked exhaustively by :func:`validate_schedules`, which the test
suite runs over many ``(p, root)`` combinations).

Notation: ``rel = (me - root) % p`` is the root-relative rank used by tree
algorithms.
"""

from __future__ import annotations

import math

Op = tuple  # ("send"|"copy"|"add", peer, lo, hi)
Schedule = list  # list of rounds; each round is a list[Op]


def _ceil_log2(p: int) -> int:
    return max(0, (p - 1).bit_length())


def _seg_start(j: int, n: int, p: int) -> int:
    """Start element of segment ``j`` when ``n`` elements split into ``p``."""
    return (j * n) // p


def _check(p: int, me: int, n: int, root: int = 0) -> None:
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    if not 0 <= me < p:
        raise ValueError(f"me={me} out of range for p={p}")
    if not 0 <= root < p:
        raise ValueError(f"root={root} out of range for p={p}")
    if n < 0:
        raise ValueError(f"negative element count {n}")


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------


def bcast_binomial(p: int, root: int, me: int, n: int) -> Schedule:
    """Binomial-tree broadcast (short messages / tiny communicators).

    ``ceil(log2 p)`` rounds; every message carries the full ``n`` elements.
    """
    _check(p, me, n, root)
    rel = (me - root) % p
    rounds: Schedule = []
    for t in range(_ceil_log2(p)):
        d = 1 << t
        ops: list[Op] = []
        if rel < d and rel + d < p:
            ops.append(("send", (rel + d + root) % p, 0, n))
        elif d <= rel < 2 * d:
            ops.append(("copy", (rel - d + root) % p, 0, n))
        rounds.append(ops)
    return rounds


def _scatter_binomial_rounds(p: int, root: int, me: int, n: int) -> Schedule:
    """Binomial scatter of the ``p`` buffer segments (segment ``j`` to rel ``j``)."""
    rel = (me - root) % p
    T = _ceil_log2(p)
    rounds: Schedule = []
    for t in range(T):
        mask = 1 << (T - 1 - t)
        ops: list[Op] = []
        if rel % (2 * mask) == 0:
            if rel + mask < p:
                s_lo, s_hi = rel + mask, min(rel + 2 * mask, p)
                ops.append(
                    (
                        "send",
                        (rel + mask + root) % p,
                        _seg_start(s_lo, n, p),
                        _seg_start(s_hi, n, p),
                    )
                )
        elif rel % mask == 0:
            s_hi = min(rel + mask, p)
            ops.append(
                (
                    "copy",
                    (rel - mask + root) % p,
                    _seg_start(rel, n, p),
                    _seg_start(s_hi, n, p),
                )
            )
        rounds.append(ops)
    return rounds


def allgather_ring(p: int, me: int, n: int, root: int = 0) -> Schedule:
    """Ring allgather: ``p - 1`` rounds, segment ``j`` initially on rel ``j``.

    Also the second phase of the long-message broadcast and allreduce.
    """
    _check(p, me, n, root)
    rel = (me - root) % p
    rounds: Schedule = []
    right = (rel + 1) % p
    left = (rel - 1) % p
    for t in range(p - 1):
        s_send = (rel - t) % p
        s_recv = (rel - t - 1) % p
        rounds.append(
            [
                (
                    "send",
                    (right + root) % p,
                    _seg_start(s_send, n, p),
                    _seg_start(s_send + 1, n, p),
                ),
                (
                    "copy",
                    (left + root) % p,
                    _seg_start(s_recv, n, p),
                    _seg_start(s_recv + 1, n, p),
                ),
            ]
        )
    return rounds


def allgather_recursive_doubling(p: int, me: int, n: int, root: int = 0) -> Schedule:
    """Recursive-doubling allgather (power-of-two ``p`` only).

    ``log2 p`` rounds with doubling exchange sizes; same total volume as the
    ring (``(p-1) n / p`` per process) but far fewer rounds — the
    low-latency alternative MPICH uses for short/medium messages.  Segment
    ``j`` starts on root-relative rank ``j``.
    """
    _check(p, me, n, root)
    if p & (p - 1) != 0:
        raise ValueError(f"recursive doubling requires power-of-two p, got {p}")
    rel = (me - root) % p
    rounds: Schedule = []
    own_lo, own_hi = rel, rel + 1  # segment units, [lo, hi)
    d = 1
    while d < p:
        partner = rel ^ d
        # My current block is [own_lo, own_hi); partner's is the mirrored
        # block of the same size within our shared 2d-aligned group.
        group_lo = (rel // (2 * d)) * (2 * d)
        if rel & d:
            peer_lo, peer_hi = group_lo, group_lo + d
        else:
            peer_lo, peer_hi = group_lo + d, group_lo + 2 * d
        rounds.append(
            [
                (
                    "send",
                    (partner + root) % p,
                    _seg_start(own_lo, n, p),
                    _seg_start(own_hi, n, p),
                ),
                (
                    "copy",
                    (partner + root) % p,
                    _seg_start(peer_lo, n, p),
                    _seg_start(peer_hi, n, p),
                ),
            ]
        )
        own_lo, own_hi = group_lo, group_lo + 2 * d
        d *= 2
    return rounds


def bcast_long(p: int, root: int, me: int, n: int) -> Schedule:
    """Long-message broadcast: binomial scatter + ring allgather.

    Per-process communicated volume ``2 (p-1) n / p`` — the model the paper
    uses for its bandwidth analysis (van de Geijn / MPICH long broadcast).
    """
    _check(p, me, n, root)
    if p == 1:
        return []
    return _scatter_binomial_rounds(p, root, me, n) + allgather_ring(p, me, n, root)


# ---------------------------------------------------------------------------
# reduction
# ---------------------------------------------------------------------------


def reduce_binomial(p: int, root: int, me: int, n: int) -> Schedule:
    """Binomial-tree reduction (short messages); full buffer per message."""
    _check(p, me, n, root)
    rel = (me - root) % p
    rounds: Schedule = []
    done = False
    for t in range(_ceil_log2(p)):
        d = 1 << t
        ops: list[Op] = []
        if not done:
            if rel % (2 * d) == d:
                ops.append(("send", (rel - d + root) % p, 0, n))
                done = True
            elif rel % (2 * d) == 0 and rel + d < p:
                ops.append(("add", (rel + d + root) % p, 0, n))
        rounds.append(ops)
    return rounds


def _fold_params(p: int) -> tuple[int, int]:
    """(r, p2) with ``p2 = 2^floor(log2 p)`` survivors and ``r = p - p2`` folds."""
    p2 = 1 << (p.bit_length() - 1)
    if p2 == p:
        return 0, p
    return p - p2, p2


def _new_rel(rel: int, r: int) -> int | None:
    """Post-fold rank of root-relative rank ``rel``; None if it dropped out."""
    if rel < 2 * r:
        return rel // 2 if rel % 2 == 0 else None
    return rel - r


def _orig_rel(new: int, r: int) -> int:
    """Inverse of :func:`_new_rel` for survivors."""
    return 2 * new if new < r else new + r


def reduce_rabenseifner(p: int, root: int, me: int, n: int) -> Schedule:
    """Rabenseifner's long-message reduce-to-root.

    Fold to a power of two, recursive-halving reduce-scatter on the ``p2``
    survivors, binomial gather of the owned segments to the root.  Matches
    the paper's §V-A model ``2 alpha log2 p + 2 beta (p-1) n / p`` (plus the
    combine term the paper drops).
    """
    _check(p, me, n, root)
    if p == 1:
        return []
    rel = (me - root) % p
    r, p2 = _fold_params(p)
    rounds: Schedule = []
    # Pre-round: odd rels in [0, 2r) fold into their even neighbour.
    if r > 0:
        ops: list[Op] = []
        if rel < 2 * r:
            if rel % 2 == 1:
                ops.append(("send", (rel - 1 + root) % p, 0, n))
            else:
                ops.append(("add", (rel + 1 + root) % p, 0, n))
        rounds.append(ops)
    nr = _new_rel(rel, r)
    if nr is None:  # dropped out after the fold
        return rounds

    def glob(new: int) -> int:
        return (_orig_rel(new, r) + root) % p

    # Recursive-halving reduce-scatter over p2 segments.
    slo, shi = 0, p2
    d = p2 >> 1
    while d >= 1:
        mid = slo + (shi - slo) // 2
        partner = nr ^ d
        if nr & d == 0:
            send_lo, send_hi = mid, shi
            keep_lo, keep_hi = slo, mid
        else:
            send_lo, send_hi = slo, mid
            keep_lo, keep_hi = mid, shi
        rounds.append(
            [
                (
                    "send",
                    glob(partner),
                    _seg_start(send_lo, n, p2),
                    _seg_start(send_hi, n, p2),
                ),
                (
                    "add",
                    glob(partner),
                    _seg_start(keep_lo, n, p2),
                    _seg_start(keep_hi, n, p2),
                ),
            ]
        )
        slo, shi = keep_lo, keep_hi
        d >>= 1
    # Binomial gather of owned segments to new-rank 0 (the root).
    own_lo, own_hi = nr, nr + 1  # segment units
    mask = 1
    sent = False
    while mask < p2:
        if not sent:
            if nr & mask:
                rounds.append(
                    [
                        (
                            "send",
                            glob(nr - mask),
                            _seg_start(own_lo, n, p2),
                            _seg_start(own_hi, n, p2),
                        )
                    ]
                )
                sent = True
            else:
                src = nr + mask
                if src < p2:
                    recv_lo, recv_hi = src, min(src + mask, p2)
                    rounds.append(
                        [
                            (
                                "copy",
                                glob(src),
                                _seg_start(recv_lo, n, p2),
                                _seg_start(recv_hi, n, p2),
                            )
                        ]
                    )
                    own_hi = recv_hi
                else:
                    rounds.append([])
        else:
            rounds.append([])
        mask <<= 1
    return rounds


def _reduce_scatter_ring_rounds(p: int, root: int, me: int, n: int) -> Schedule:
    """Ring reduce-scatter: ``p - 1`` rounds of ``n/p`` segments.

    Root-relative rank ``r`` ends owning fully-reduced segment ``r``.  Works
    for any ``p`` with no power-of-two fold (each process sends and combines
    exactly ``(p-1) n / p`` elements), which is why the long-message
    reduction uses it for non-power-of-two communicators.
    """
    rel = (me - root) % p
    right = (rel + 1) % p
    left = (rel - 1) % p
    rounds: Schedule = []
    for t in range(p - 1):
        s_send = (rel - 1 - t) % p
        s_recv = (rel - 2 - t) % p
        rounds.append(
            [
                (
                    "send",
                    (right + root) % p,
                    _seg_start(s_send, n, p),
                    _seg_start(s_send + 1, n, p),
                ),
                (
                    "add",
                    (left + root) % p,
                    _seg_start(s_recv, n, p),
                    _seg_start(s_recv + 1, n, p),
                ),
            ]
        )
    return rounds


def _gather_segments_binomial(p: int, root: int, me: int, n: int) -> Schedule:
    """Binomial gather of per-rank segments to the root (any ``p``).

    Assumes root-relative rank ``r`` owns segment ``r`` (the ring
    reduce-scatter postcondition); rank 0 (the root) ends with ``[0, p)``.
    """
    rel = (me - root) % p
    rounds: Schedule = []
    own_lo, own_hi = rel, rel + 1  # segment units
    mask = 1
    sent = False
    while mask < p:
        ops: list[Op] = []
        if not sent:
            if rel & mask:
                ops.append(
                    (
                        "send",
                        (rel - mask + root) % p,
                        _seg_start(own_lo, n, p),
                        _seg_start(min(own_hi, p), n, p),
                    )
                )
                sent = True
            elif rel + mask < p:
                src = rel + mask
                recv_hi = min(src + mask, p)
                ops.append(
                    (
                        "copy",
                        (src + root) % p,
                        _seg_start(src, n, p),
                        _seg_start(recv_hi, n, p),
                    )
                )
                own_hi = recv_hi
        rounds.append(ops)
        mask <<= 1
    return rounds


def reduce_ring(p: int, root: int, me: int, n: int) -> Schedule:
    """Long-message reduce for any ``p``: ring reduce-scatter + binomial gather."""
    _check(p, me, n, root)
    if p == 1:
        return []
    return _reduce_scatter_ring_rounds(p, root, me, n) + _gather_segments_binomial(
        p, root, me, n
    )


def allreduce_ring(p: int, me: int, n: int) -> Schedule:
    """Long-message allreduce for any ``p``: ring reduce-scatter + ring allgather."""
    _check(p, me, n)
    if p == 1:
        return []
    return _reduce_scatter_ring_rounds(p, 0, me, n) + allgather_ring(p, me, n)


# ---------------------------------------------------------------------------
# allreduce
# ---------------------------------------------------------------------------


def allreduce_short(p: int, me: int, n: int) -> Schedule:
    """Short-message allreduce: binomial reduce to 0 + binomial broadcast."""
    _check(p, me, n)
    return reduce_binomial(p, 0, me, n) + bcast_binomial(p, 0, me, n)


def allreduce_long(p: int, me: int, n: int) -> Schedule:
    """Long-message allreduce: fold + reduce-scatter + ring allgather + unfold.

    Per-process volume ``2 (p-1) n / p`` on the power-of-two survivors, plus
    ``n`` each way for folded ranks (the standard MPICH non-power-of-two
    penalty).
    """
    _check(p, me, n)
    if p == 1:
        return []
    rel = me
    r, p2 = _fold_params(p)
    rounds: Schedule = []
    if r > 0:
        ops: list[Op] = []
        if rel < 2 * r:
            if rel % 2 == 1:
                ops.append(("send", rel - 1, 0, n))
            else:
                ops.append(("add", rel + 1, 0, n))
        rounds.append(ops)
    nr = _new_rel(rel, r)
    if nr is not None:

        def glob(new: int) -> int:
            return _orig_rel(new, r)

        slo, shi = 0, p2
        d = p2 >> 1
        while d >= 1:
            mid = slo + (shi - slo) // 2
            partner = nr ^ d
            if nr & d == 0:
                send_lo, send_hi, keep_lo, keep_hi = mid, shi, slo, mid
            else:
                send_lo, send_hi, keep_lo, keep_hi = slo, mid, mid, shi
            rounds.append(
                [
                    (
                        "send",
                        glob(partner),
                        _seg_start(send_lo, n, p2),
                        _seg_start(send_hi, n, p2),
                    ),
                    (
                        "add",
                        glob(partner),
                        _seg_start(keep_lo, n, p2),
                        _seg_start(keep_hi, n, p2),
                    ),
                ]
            )
            slo, shi = keep_lo, keep_hi
            d >>= 1
        # Ring allgather among survivors (segment nr on new-rank nr).
        right, left = (nr + 1) % p2, (nr - 1) % p2
        for t in range(p2 - 1):
            s_send = (nr - t) % p2
            s_recv = (nr - t - 1) % p2
            rounds.append(
                [
                    (
                        "send",
                        glob(right),
                        _seg_start(s_send, n, p2),
                        _seg_start(s_send + 1, n, p2),
                    ),
                    (
                        "copy",
                        glob(left),
                        _seg_start(s_recv, n, p2),
                        _seg_start(s_recv + 1, n, p2),
                    ),
                ]
            )
    # Unfold: survivors return the full result to their folded partner.
    if r > 0:
        ops = []
        if rel < 2 * r:
            if rel % 2 == 0:
                ops.append(("send", rel + 1, 0, n))
            else:
                ops.append(("copy", rel - 1, 0, n))
        rounds.append(ops)
    return rounds


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------


def barrier_dissemination(p: int, me: int) -> Schedule:
    """Dissemination barrier: ``ceil(log2 p)`` rounds of zero-byte exchanges."""
    _check(p, me, 0)
    rounds: Schedule = []
    for t in range(_ceil_log2(p)):
        d = 1 << t
        rounds.append(
            [
                ("send", (me + d) % p, 0, 0),
                ("copy", (me - d) % p, 0, 0),
            ]
        )
    return rounds


# ---------------------------------------------------------------------------
# verification helpers (used by the tests, not the runtime path)
# ---------------------------------------------------------------------------


def schedule_volume_bytes(schedule: Schedule, itemsize: int = 8) -> int:
    """Total bytes this rank *sends* across the schedule."""
    total = 0
    for rnd in schedule:
        for op in rnd:
            if op[0] == "send":
                total += (op[3] - op[2]) * itemsize
    return total


def validate_schedules(make, p: int, n: int) -> None:
    """Cross-check the per-rank schedules of one collective for consistency.

    ``make(me)`` must return rank ``me``'s schedule.  Verifies that, pairing
    messages per (src, dst) in round order, every send matches exactly one
    receive with an identical element range.  Raises ``AssertionError`` on
    any mismatch — the hypothesis tests sweep this over many shapes.
    """
    sends: dict[tuple[int, int], list] = {}
    recvs: dict[tuple[int, int], list] = {}
    for me in range(p):
        sched = make(me)
        for rnd_i, rnd in enumerate(sched):
            for op in rnd:
                kind, peer, lo, hi = op
                if not (0 <= lo <= hi <= max(n, 1)):
                    raise AssertionError(f"bad range {op} (rank {me})")
                if not 0 <= peer < p:
                    raise AssertionError(f"bad peer {op} (rank {me})")
                if kind == "send":
                    sends.setdefault((me, peer), []).append((rnd_i, lo, hi))
                elif kind in ("copy", "add"):
                    recvs.setdefault((peer, me), []).append((rnd_i, lo, hi))
                else:
                    raise AssertionError(f"unknown op kind {kind!r}")
    if set(sends) != set(recvs):
        raise AssertionError(
            f"unpaired channels: sends={sorted(sends)} recvs={sorted(recvs)}"
        )
    for chan, slist in sends.items():
        rlist = recvs[chan]
        if len(slist) != len(rlist):
            raise AssertionError(f"channel {chan}: {len(slist)} sends, {len(rlist)} recvs")
        for (_, slo, shi), (_, rlo, rhi) in zip(slist, rlist):
            if (slo, shi) != (rlo, rhi):
                raise AssertionError(
                    f"channel {chan}: send range [{slo},{shi}) != recv range [{rlo},{rhi})"
                )
