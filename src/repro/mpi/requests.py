"""Request objects returned by nonblocking operations.

A :class:`Request` wraps a completion :class:`~repro.sim.engine.SimEvent`.
``yield from req.wait()`` suspends the calling rank until completion and
returns the operation's payload (the received data for receives, the result
buffer for collectives).  ``req.test()`` is the nonblocking completion probe
(the paper's §III-B PPN-gating mechanism polls with MPI_Test + usleep).

Empty-list conventions (MPI-conformant, pinned by tests):

* ``waitall([])`` completes immediately and returns ``[]`` — MPI_Waitall
  with ``count == 0`` is a no-op;
* ``waitany([])`` raises :class:`ValueError` — MPI_Waitany of zero requests
  can never complete, so an empty list is always a program bug.  When a
  :class:`~repro.analysis.verifier.CommVerifier` is active the call site is
  additionally reported as an ``RA107`` finding.

When the owning world carries a verifier, every completion path
(``wait``/``test``/``waitall``/``waitany``) reports which requests it
consumed — the request-leak check (``RA102``) and the deadlock reporter
(``RA106``) are built on those notifications.  The hooks are passive and
never touch the virtual clock.
"""

from __future__ import annotations

from typing import Any

from repro.sim.engine import SimEvent
from repro.sim.process import AnyOf
from repro.sim.trace import SpanKind


def _record_wait_span(world, rank: int, t0: float, label: str) -> None:
    """The shared WAIT-span bookkeeping of wait/waitall/waitany."""
    t1 = world.engine.now
    if t1 > t0 and world.trace.enabled:
        world.trace.add(rank, t0, t1, SpanKind.WAIT, label)


class Request:
    """Handle for an in-flight nonblocking operation."""

    __slots__ = ("world", "rank", "label", "done", "_result", "_rec_ctx")

    def __init__(self, world, rank: int, label: str, done: SimEvent):
        self.world = world
        self.rank = rank
        self.label = label
        self.done = done
        self._result: Any = None
        self._rec_ctx = None  # recording: graph node of the posting instant

    def set_result(self, value: Any) -> None:
        """Record the value :meth:`wait` will return (set by the layer below)."""
        self._result = value

    @property
    def result(self) -> Any:
        return self._result

    @property
    def _verifier(self):
        return getattr(self.world, "verifier", None)

    def test(self) -> bool:
        """Nonblocking completion check (MPI_Test).

        A ``True`` return completes the request (MPI_Test semantics): the
        verifier, if any, stops considering it leaked.
        """
        engine = self.world.engine
        if engine.recorder is not None:
            # Poll results are timing-dependent control flow (the PPN-gating
            # loop acts on them), so the recorded graph cannot be replayed.
            engine.recorder.invalidate("Request.test polling")
        fired = self.done.fired
        if fired:
            v = self._verifier
            if v is not None:
                v.mark_consumed(self)
        return fired

    def wait(self):
        """Generator: suspend until completion; returns the payload (MPI_Wait)."""
        v = self._verifier
        t0 = self.world.engine.now
        if not self.done.fired:
            if v is not None:
                v.on_wait_begin(self.rank, (self,), f"wait {self.label}")
            yield self.done
            if v is not None:
                v.on_wait_end(self.rank)
        elif self.world.engine.recorder is not None:
            # Skipped wait: under perturbed constants the completion may be
            # the later instant — record the dependency anyway.
            self.world.engine._rec_join_fired(self.done)
        if v is not None:
            v.mark_consumed(self)
        world = self.world
        # Build the span label only when it will actually be recorded — the
        # f-string is measurable overhead in trace-off benchmark sweeps.
        if world.engine.now > t0 and world.trace.enabled:
            world.trace.add(
                self.rank, t0, world.engine.now, SpanKind.WAIT,
                f"wait {self.label}",
            )
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done.fired else "pending"
        return f"<Request {self.label!r} r{self.rank} {state}>"


def waitall(requests: list[Request]):
    """Generator: wait for every request; returns their payloads in order.

    ``waitall([])`` returns ``[]`` immediately.  Records a single WAIT span
    covering the whole MPI_Waitall.
    """
    if not requests:
        return []
    world = requests[0].world
    rank = requests[0].rank
    v = getattr(world, "verifier", None)
    label = f"waitall[{len(requests)}]"
    t0 = world.engine.now
    if v is not None:
        v.on_wait_begin(rank, requests, label)
    results = []
    engine = world.engine
    for req in requests:
        if not req.done.fired:
            yield req.done
        elif engine.recorder is not None:
            engine._rec_join_fired(req.done)
        if v is not None:
            v.mark_consumed(req)
        results.append(req.result)
    if v is not None:
        v.on_wait_end(rank)
    _record_wait_span(world, rank, t0, label)
    return results


def waitany(requests: list[Request]):
    """Generator: wait until *one* request completes (MPI_Waitany).

    Returns ``(index, payload)`` of the first completion; already-completed
    requests win immediately (lowest index first, matching MPI).  Only the
    returned request counts as completed — the rest must still be waited.
    ``waitany([])`` raises :class:`ValueError` (and is reported as RA107
    when a verifier is active): an empty MPI_Waitany can never complete.
    """
    if not requests:
        from repro.analysis.verifier import note_empty_waitany

        note_empty_waitany()
        raise ValueError(
            "waitany needs at least one request (an empty MPI_Waitany can "
            "never complete; use waitall([]) for the empty case)"
        )
    world = requests[0].world
    rank = requests[0].rank
    v = getattr(world, "verifier", None)
    if world.engine.recorder is not None:
        world.engine.recorder.invalidate("waitany race")
    for idx, req in enumerate(requests):
        if req.done.fired:
            if v is not None:
                v.mark_consumed(req)
            return idx, req.result
    label = f"waitany[{len(requests)}]"
    t0 = world.engine.now
    if v is not None:
        v.on_wait_begin(rank, requests, label)
    idx, _value = yield AnyOf([r.done for r in requests])
    if v is not None:
        v.on_wait_end(rank)
        v.mark_consumed(requests[idx])
    _record_wait_span(world, rank, t0, label)
    return idx, requests[idx].result
