"""Request objects returned by nonblocking operations.

A :class:`Request` wraps a completion :class:`~repro.sim.engine.SimEvent`.
``yield from req.wait()`` suspends the calling rank until completion and
returns the operation's payload (the received data for receives, the result
buffer for collectives).  ``req.test()`` is the nonblocking completion probe
(the paper's §III-B PPN-gating mechanism polls with MPI_Test + usleep).
"""

from __future__ import annotations

from typing import Any

from repro.sim.engine import SimEvent
from repro.sim.process import AnyOf
from repro.sim.trace import SpanKind


class Request:
    """Handle for an in-flight nonblocking operation."""

    __slots__ = ("world", "rank", "label", "done", "_result")

    def __init__(self, world, rank: int, label: str, done: SimEvent):
        self.world = world
        self.rank = rank
        self.label = label
        self.done = done
        self._result: Any = None

    def set_result(self, value: Any) -> None:
        """Record the value :meth:`wait` will return (set by the layer below)."""
        self._result = value

    @property
    def result(self) -> Any:
        return self._result

    def test(self) -> bool:
        """Nonblocking completion check (MPI_Test)."""
        return self.done.fired

    def wait(self):
        """Generator: suspend until completion; returns the payload (MPI_Wait)."""
        t0 = self.world.engine.now
        if not self.done.fired:
            yield self.done
        t1 = self.world.engine.now
        if t1 > t0:
            self.world.trace.add(self.rank, t0, t1, SpanKind.WAIT, f"wait {self.label}")
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done.fired else "pending"
        return f"<Request {self.label!r} r{self.rank} {state}>"


def waitall(requests: list[Request]):
    """Generator: wait for every request; returns their payloads in order.

    Records a single WAIT span covering the whole MPI_Waitall.
    """
    if not requests:
        return []
    world = requests[0].world
    rank = requests[0].rank
    t0 = world.engine.now
    results = []
    for req in requests:
        if not req.done.fired:
            yield req.done
        results.append(req._result)
    t1 = world.engine.now
    if t1 > t0:
        world.trace.add(rank, t0, t1, SpanKind.WAIT, f"waitall[{len(requests)}]")
    return results


def waitany(requests: list[Request]):
    """Generator: wait until *one* request completes (MPI_Waitany).

    Returns ``(index, payload)`` of the first completion; already-completed
    requests win immediately (lowest index first, matching MPI).
    """
    if not requests:
        raise ValueError("waitany needs at least one request")
    for idx, req in enumerate(requests):
        if req.done.fired:
            return idx, req._result
    world = requests[0].world
    rank = requests[0].rank
    t0 = world.engine.now
    idx, _value = yield AnyOf([r.done for r in requests])
    t1 = world.engine.now
    if t1 > t0:
        world.trace.add(rank, t0, t1, SpanKind.WAIT, f"waitany[{len(requests)}]")
    return idx, requests[idx]._result
