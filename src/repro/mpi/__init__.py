"""An MPI-like message-passing substrate running on the simulated network.

This package reimplements the MPI machinery the paper depends on:

* communicators with ``dup`` / ``split`` / subgroup creation — the
  "N_DUP copies of row_comm/col_comm/grd_comm" of Algorithms 2 and 5;
* point-to-point messaging with eager and rendezvous protocols
  (``send``/``recv``/``isend``/``irecv`` + request objects);
* blocking *and nonblocking* collectives (``bcast``/``reduce``/
  ``allreduce``/``allgather``/``barrier`` and their ``i``-prefixed forms),
  built from the same round-based schedules real MPI libraries use:
  binomial trees for short messages, scatter+allgather broadcast and
  Rabenseifner reduction for long messages;
* a per-process *progress engine* that serializes nonblocking-collective
  bookkeeping (reduction combines, in particular), reproducing the posting
  and progression behaviour the paper measures in Fig. 6.

Rank programs are generator coroutines; all communication calls are used
with ``yield from``::

    def program(env):
        comm = env.view(world.comm_world)
        req = yield from comm.ibcast(buf, root=0)
        ...                     # overlap something else here
        yield from req.wait()

See :class:`repro.mpi.world.World` for the entry point.
"""

from repro.mpi.world import World, RankEnv
from repro.mpi.comm import Comm, CommView
from repro.mpi.requests import Request, waitall, waitany
from repro.mpi.progress import ProgressEngine
from repro.mpi.transport import Transport

__all__ = [
    "World",
    "RankEnv",
    "Comm",
    "CommView",
    "Request",
    "waitall",
    "waitany",
    "ProgressEngine",
    "Transport",
]
