"""Per-process MPI progress engine.

Real MPI libraries advance nonblocking collectives from a single execution
context per process (the main thread inside MPI calls, or one progress
thread).  Consequently the *local processing* of overlapped nonblocking
operations — most importantly the per-round summation work of MPI_Ireduce —
is serialized within a process, while processes on the same node progress in
parallel.  This asymmetry is exactly why the paper's Fig. 6 finds 4-PPN
overlap faster than nonblocking overlap for reductions but not for
broadcasts.

:class:`ProgressEngine` models that context as a FIFO work queue: tasks run
back-to-back in submission order, one at a time.
"""

from __future__ import annotations

from repro.sim.engine import Engine, SimEvent
from repro.sim.faults import FaultPlan
from repro.sim.trace import SpanKind, Trace


class ProgressEngine:
    """FIFO serializer for one process's MPI-internal processing."""

    __slots__ = ("engine", "rank", "trace", "busy_until", "total_busy", "faults")

    def __init__(self, engine: Engine, rank: int, trace: Trace | None = None,
                 faults: FaultPlan | None = None):
        self.engine = engine
        self.rank = rank
        self.trace = trace
        self.faults = faults
        self.busy_until = 0.0
        self.total_busy = 0.0

    def submit(self, duration: float, label: str = "combine") -> SimEvent:
        """Enqueue ``duration`` seconds of processing; event fires when done.

        Zero-duration tasks complete immediately if the engine is idle (no
        event round-trip), keeping barrier-like bookkeeping free.  Straggler
        windows of an attached FaultPlan dilate the queued work: the task
        still occupies the single progress context, just for longer.
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        now = self.engine.now
        start = max(now, self.busy_until)
        if self.faults is not None and duration > 0:
            finish = self.faults.compute_finish(self.rank, start, duration)
        else:
            finish = start + duration
        self.busy_until = finish
        self.total_busy += finish - start
        ev = self.engine.event("progress")
        if self.trace is not None and self.trace.enabled and duration > 0:
            self.trace.add(self.rank, start, finish, SpanKind.COMPUTE, f"progress:{label}")
        if finish <= now:
            ev.succeed(None)
        else:
            self.engine.call_at(finish, ev.succeed)
        return ev

    def submit_cb(self, duration: float, label: str, fn, *args) -> None:
        """Like :meth:`submit`, but invokes ``fn(*args)`` on completion
        instead of allocating a :class:`~repro.sim.engine.SimEvent` — the
        collective executor's per-op fast path.  Accounting, fault dilation,
        and trace spans are identical to :meth:`submit`.
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        now = self.engine.now
        start = max(now, self.busy_until)
        if self.faults is not None and duration > 0:
            finish = self.faults.compute_finish(self.rank, start, duration)
        else:
            finish = start + duration
        self.busy_until = finish
        self.total_busy += finish - start
        if self.trace is not None and self.trace.enabled and duration > 0:
            self.trace.add(self.rank, start, finish, SpanKind.COMPUTE,
                           f"progress:{label}")
        if finish <= now:
            fn(*args)
        else:
            self.engine.schedule_at(finish, fn, *args)

    def idle_at(self, t: float) -> bool:
        """True if the queue has drained by time ``t``."""
        return self.busy_until <= t
