"""Per-process MPI progress engine.

Real MPI libraries advance nonblocking collectives from a single execution
context per process (the main thread inside MPI calls, or one progress
thread).  Consequently the *local processing* of overlapped nonblocking
operations — most importantly the per-round summation work of MPI_Ireduce —
is serialized within a process, while processes on the same node progress in
parallel.  This asymmetry is exactly why the paper's Fig. 6 finds 4-PPN
overlap faster than nonblocking overlap for reductions but not for
broadcasts.

:class:`ProgressEngine` models that context as a FIFO work queue: tasks run
back-to-back in submission order, one at a time.
"""

from __future__ import annotations

from repro.sim.engine import Engine, SimEvent
from repro.sim.faults import FaultPlan
from repro.sim.trace import SpanKind, Trace


class ProgressEngine:
    """FIFO serializer for one process's MPI-internal processing."""

    __slots__ = ("engine", "rank", "trace", "busy_until", "total_busy", "faults",
                 "rec_busy", "rec_arr_prev")

    def __init__(self, engine: Engine, rank: int, trace: Trace | None = None,
                 faults: FaultPlan | None = None):
        self.engine = engine
        self.rank = rank
        self.trace = trace
        self.faults = faults
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.rec_busy = None      # recording: graph node of busy_until
        self.rec_arr_prev = None  # recording: previous submission's arrival

    def _rec_track(self, duration: float):
        """Recording: thread this task through the FIFO busy chain.

        ``finish = max(arrival, busy_until) + duration`` is max-plus, but
        only while submissions stay in arrival order — consecutive arrivals
        become order guards the replayer verifies under new constants.
        """
        eng = self.engine
        rec = eng.recorder
        if self.faults is not None:
            rec.invalidate("fault plan dilates progress work")
        arr = eng._rec_ctx
        if arr is None:
            arr = rec.const(eng.now)
        if self.rec_arr_prev is not None:
            rec.guard(self.rec_arr_prev, arr)
        self.rec_arr_prev = arr
        finish = rec.shift(rec.join2(arr, self.rec_busy), duration)
        self.rec_busy = finish
        return finish

    def submit(self, duration: float, label: str = "combine") -> SimEvent:
        """Enqueue ``duration`` seconds of processing; event fires when done.

        Zero-duration tasks complete immediately if the engine is idle (no
        event round-trip), keeping barrier-like bookkeeping free.  Straggler
        windows of an attached FaultPlan dilate the queued work: the task
        still occupies the single progress context, just for longer.
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        now = self.engine.now
        start = max(now, self.busy_until)
        if self.faults is not None and duration > 0:
            finish = self.faults.compute_finish(self.rank, start, duration)
        else:
            finish = start + duration
        self.busy_until = finish
        self.total_busy += finish - start
        ev = self.engine.event("progress")
        if self.trace is not None and self.trace.enabled and duration > 0:
            self.trace.add(self.rank, start, finish, SpanKind.COMPUTE, f"progress:{label}")
        rec = self.engine.recorder
        if rec is None:
            if finish <= now:
                ev.succeed(None)
            else:
                self.engine.call_at(finish, ev.succeed)
            return ev
        finish_node = self._rec_track(duration)
        if finish <= now:
            saved = self.engine._rec_ctx
            self.engine._rec_ctx = finish_node
            ev.succeed(None)
            self.engine._rec_ctx = saved
        else:
            self.engine._rec_pending = finish_node
            self.engine.call_at(finish, ev.succeed)
        return ev

    def submit_cb(self, duration: float, label: str, fn, *args) -> None:
        """Like :meth:`submit`, but invokes ``fn(*args)`` on completion
        instead of allocating a :class:`~repro.sim.engine.SimEvent` — the
        collective executor's per-op fast path.  Accounting, fault dilation,
        and trace spans are identical to :meth:`submit`.
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        now = self.engine.now
        start = max(now, self.busy_until)
        if self.faults is not None and duration > 0:
            finish = self.faults.compute_finish(self.rank, start, duration)
        else:
            finish = start + duration
        self.busy_until = finish
        self.total_busy += finish - start
        if self.trace is not None and self.trace.enabled and duration > 0:
            self.trace.add(self.rank, start, finish, SpanKind.COMPUTE,
                           f"progress:{label}")
        rec = self.engine.recorder
        if rec is None:
            if finish <= now:
                fn(*args)
            else:
                self.engine.schedule_at(finish, fn, *args)
            return
        finish_node = self._rec_track(duration)
        if finish <= now:
            saved = self.engine._rec_ctx
            self.engine._rec_ctx = finish_node
            fn(*args)
            self.engine._rec_ctx = saved
        else:
            self.engine._rec_pending = finish_node
            self.engine.schedule_at(finish, fn, *args)

    def idle_at(self, t: float) -> bool:
        """True if the queue has drained by time ``t``."""
        return self.busy_until <= t
