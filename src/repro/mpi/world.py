"""The simulated MPI job: engine + cluster + fabric + transport + programs.

:class:`World` wires every layer together and owns ``comm_world``.  Rank
programs are generator functions of one argument, the :class:`RankEnv`::

    world = World(block_placement(8, ppn=2))

    def program(env):
        comm = env.view(world.comm_world)
        data = np.arange(4.0) if comm.rank == 0 else np.zeros(4)
        yield from comm.bcast(data, root=0)
        return data.sum()

    world.spawn_all(program)
    elapsed = world.run()
"""

from __future__ import annotations

from collections.abc import Callable, Generator

import numpy as np

from repro.mpi.comm import Comm, CommView
from repro.mpi.progress import ProgressEngine
from repro.mpi.transport import Transport
from repro.netmodel.fabric import Fabric
from repro.netmodel.params import MachineParams, NetworkParams
from repro.netmodel.topology import Cluster
from repro.sim.engine import Engine, SimulationError
from repro.sim.faults import FaultPlan
from repro.sim.process import Delay, SimProcess
from repro.sim.trace import SpanKind, Trace


class World:
    """One simulated distributed-memory job."""

    def __init__(
        self,
        cluster: Cluster,
        params: NetworkParams | None = None,
        machine: MachineParams | None = None,
        trace: bool = False,
        faults: FaultPlan | None = None,
        verify: bool = False,
        verifier=None,
        verify_plans: bool = False,
        record: bool = False,
        solver: str = "scalar",
    ):
        self.cluster = cluster
        self.params = params or NetworkParams()
        self.machine = machine or MachineParams()
        self.engine = Engine()
        # The recorder must attach before any SimEvent exists: recording
        # worlds store event callbacks with their causal context, and mixing
        # pre-recorder events into that scheme is not supported.
        self.recorder = None
        if record:
            from repro.sim.replay import GraphRecorder

            rec = GraphRecorder(cluster=cluster, params=self.params,
                                machine=self.machine)
            if faults is not None:
                rec.invalidate("fault plan attached")
            self.engine.recorder = rec
            self.recorder = rec
        self.trace = Trace(enabled=trace)
        self.faults = faults
        # The runtime correctness verifier (repro.analysis) must exist before
        # comm_world so communicator creation is observed.  Its hooks are
        # passive: a verified run is timing-identical to an unverified one.
        if verifier is None and verify:
            from repro.analysis.verifier import CommVerifier

            verifier = CommVerifier()
        self.verifier = verifier
        if verifier is not None:
            verifier.attach(self)
        # Opt-in debug gate: statically verify every cached collective plan
        # set the first time a runner executes it (RA3xx findings raise a
        # PlanVerificationError; see repro.analysis.schedule).
        self.verify_plans = verify_plans
        if faults is not None:
            faults.reset()  # a reused plan replays identically in a new world
        self.fabric = Fabric(self.engine, cluster, self.params,
                             self.trace if trace else None, faults=faults,
                             solver=solver)
        self.transport = Transport(self)
        self._cid = 0
        self._progress = [
            ProgressEngine(self.engine, r, self.trace if trace else None,
                           faults=faults)
            for r in range(cluster.num_ranks)
        ]
        # Per-rank achieved GEMM rate: node throughput shared by co-resident
        # processes (the paper's per-process effect of raising PPN).
        self._flop_rate = [
            self.machine.process_flops(cluster.ppn_of_node(cluster.node_of(r)))
            for r in range(cluster.num_ranks)
        ]
        self.comm_world = Comm(self, range(cluster.num_ranks), name="world")
        self._procs: list[SimProcess] = []
        self._proc_ranks: list[int] = []

    # -- plumbing ---------------------------------------------------------------

    @property
    def num_ranks(self) -> int:
        return self.cluster.num_ranks

    def _next_cid(self) -> int:
        self._cid += 1
        return self._cid

    def progress_of(self, global_rank: int) -> ProgressEngine:
        return self._progress[global_rank]

    def flop_rate_of(self, global_rank: int) -> float:
        return self._flop_rate[global_rank]

    def new_comm(self, ranks, name: str = "comm", channel: int = 0) -> Comm:
        """Create a communicator over ``ranks`` (global ids).

        ``channel`` pins the communicator's wire traffic to a fabric lane
        (see :class:`~repro.netmodel.NetworkParams.num_channels`).
        """
        return Comm(self, ranks, name, channel=channel)

    # -- running ---------------------------------------------------------------------

    def spawn(self, rank: int, gen: Generator, name: str | None = None) -> SimProcess:
        """Register one rank's program generator."""
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside world")
        proc = SimProcess(self.engine, gen, name or f"rank{rank}")
        rec = self.engine.recorder
        if rec is not None:
            # Replay needs every program's finish instant: bounded runs turn
            # into DeadlineExceeded exactly when one of these marks lands
            # past the deadline.
            key = ("proc_done", rank, len(self._procs))
            eng = self.engine

            def _mark_done(_ev, _key=key, _eng=eng, _rec=rec):
                ctx = _eng._rec_ctx
                _rec.mark(_key, ctx if ctx is not None
                          else _rec.const(_eng.now))

            proc.done.add_callback(_mark_done)
        self._procs.append(proc)
        self._proc_ranks.append(rank)
        return proc

    def spawn_all(
        self, program: Callable[["RankEnv"], Generator], ranks=None
    ) -> list[SimProcess]:
        """Instantiate ``program(env)`` on every rank (or the given subset)."""
        ranks = range(self.num_ranks) if ranks is None else ranks
        return [self.spawn(r, program(RankEnv(self, r))) for r in ranks]

    def run(self, until: float | None = None) -> float:
        """Drive the simulation to completion; returns elapsed virtual time.

        Raises :class:`SimulationError` with matching diagnostics if any
        spawned program never finishes (communication deadlock).
        """
        t = self.engine.run(until=until)
        if until is None:
            stuck_idx = [i for i, p in enumerate(self._procs)
                         if not p.done.fired]
            if stuck_idx:
                stuck = [self._procs[i].name for i in stuck_idx]
                ns, nr = self.transport.pending_counts()
                msg = (
                    f"deadlock: {stuck} never finished "
                    f"(unmatched sends={ns}, unmatched recvs={nr})"
                )
                if self.verifier is not None:
                    stuck_ranks = sorted({self._proc_ranks[i]
                                          for i in stuck_idx})
                    report = self.verifier.on_deadlock(self, stuck_ranks)
                    if report:
                        msg += "\n" + report
                raise SimulationError(msg)
            if self.verifier is not None:
                self.verifier.finalize(self)
        return t

    def unfinished(self) -> list[str]:
        """Names of spawned programs that have not finished.

        Non-empty after a bounded ``run(until=...)`` means the deadline cut
        the simulation short (callers such as the autotuner turn this into
        :class:`~repro.sim.engine.DeadlineExceeded`).
        """
        return [p.name for p in self._procs if not p.done.fired]

    def results(self) -> list:
        """Return values of all spawned programs, in spawn order."""
        return [p.done.value for p in self._procs]


class RankEnv:
    """Per-rank execution context handed to program generators."""

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank

    @property
    def now(self) -> float:
        return self.world.engine.now

    def view(self, comm: Comm) -> CommView:
        """This rank's API handle on ``comm`` (must be a member)."""
        return comm.view(self.rank)

    def mark(self, label: str, idx: int = 0) -> None:
        """Recording: name the current instant ``(label, rank, idx)`` in the
        event graph, so the replayer can reproduce derived timings (e.g. the
        kernels' per-iteration spans).  No-op unless the world records."""
        rec = self.world.engine.recorder
        if rec is not None:
            eng = self.world.engine
            ctx = eng._rec_ctx
            rec.mark((label, self.rank, idx),
                     ctx if ctx is not None else rec.const(eng.now))

    def in_comm(self, comm: Comm) -> bool:
        return comm.contains(self.rank)

    def compute(self, seconds: float, label: str = "compute"):
        """Generator: occupy this rank's CPU for ``seconds`` (traced).

        Straggler windows of the world's FaultPlan dilate the busy span
        (piecewise, so only the overlapping part runs slowed down).
        """
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds}")
        t0 = self.now
        if seconds > 0:
            faults = self.world.faults
            if faults is not None:
                seconds = faults.compute_finish(self.rank, t0, seconds) - t0
            yield Delay(seconds)
        self.world.trace.add(self.rank, t0, self.now, SpanKind.COMPUTE, label)

    def compute_flops(self, flops: float, label: str = "gemm"):
        """Generator: charge ``flops`` at this rank's achieved GEMM rate."""
        if flops < 0:
            raise ValueError(f"negative flops {flops}")
        rate = self.world.flop_rate_of(self.rank)
        yield from self.compute(flops / rate, label)

    def gemm(self, a: np.ndarray | None, b: np.ndarray | None, m: int, k: int, n: int,
             accumulate: np.ndarray | None = None, label: str = "gemm"):
        """Generator: local matrix multiply with modeled time charge.

        Real mode (arrays given): computes ``a @ b`` (optionally accumulated
        into ``accumulate``) and returns the product; modeled mode (``a`` or
        ``b`` None): returns None.  Either way charges ``2*m*k*n`` flops.
        """
        yield from self.compute_flops(2.0 * m * k * n, label)
        if a is None or b is None:
            return None
        c = a @ b
        if accumulate is not None:
            accumulate += c
            return accumulate
        return c

    def sleep(self, seconds: float):
        """Generator: idle (not CPU-busy — equivalent for timing) for ``seconds``."""
        if seconds < 0:
            raise ValueError(f"negative sleep {seconds}")
        yield Delay(seconds)
