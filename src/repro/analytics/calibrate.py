"""Model calibration: fit ``NetworkParams`` constants to measured timelines.

Calibration closes the loop between the discrete-event simulator and the
closed-form alpha-beta models (:mod:`repro.netmodel.analytic`):

**Replay-based constant fitting** (:func:`fit_fabric_constants`)
    Given recorded runs (PR 6 event graphs) and their measured elapsed
    times, recover the fabric constants that explain the measurements —
    *without a single extra simulator run*.  Replay re-prices a recorded
    event graph under candidate constants in microseconds, so the fit can
    afford a dense alpha-beta sweep for initialization and a Gauss-Newton
    polish for the final digits; every prediction is a
    :func:`~repro.sim.replay.replay_kernel_grid` call, never a new
    simulation.

    The replayed prediction is a max-plus composition of edge weights that
    are affine in ``alpha`` and ``1/bandwidth``, so each observation's
    predicted time is piecewise-affine and monotone in every constant.
    That structure is why the two-stage fit converges: the dense grid
    cannot be fooled by local minima farther than one grid step from the
    valley, and Gauss-Newton inside the (locally affine) active piece
    reaches machine precision in a handful of iterations.  A plain greedy
    zoom on the grid alone stalls: wrong-but-compensating (alpha,
    bandwidth) pairs form a long correlated valley whose discretized
    minimum can sit far from the true constants.

**Synthetic recovery** (:func:`calibrate_synthetic`)
    The self-test: record workloads under the default constants, "measure"
    them under perturbed constants, then fit.  Replay equivalence makes
    the residual at the true constants exactly zero, so recovery error is
    purely an optimizer property — the CI gate pins it below 5 %%
    (in practice it converges to ~1e-9 relative).

**Analytic drift gate** (:func:`model_drift`)
    Compares the closed-form estimates (tuner stage-1 ranking models)
    against full simulations of the quick table-1/table-6 workloads and
    fails when the relative drift leaves a pinned per-workload band.  The
    bands are deliberately loose for models that are *known* coarse (plain
    blocking SUMMA underestimates round-gap serialization) and tight where
    the model should track (pipelined variants): the gate catches model or
    simulator regressions, not modeling error we already accepted.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.netmodel.params import NetworkParams
from repro.sim.replay import REPLAY_SAFE_FIELDS, replay_kernel_grid

__all__ = [
    "CalibrationObservation",
    "DriftCase",
    "DRIFT_CASES",
    "FitResult",
    "calibrate_synthetic",
    "fit_fabric_constants",
    "model_drift",
]


@dataclass
class CalibrationObservation:
    """One (recorded run, measured elapsed seconds) pair.

    ``recording`` is the event graph captured with ``record=True`` — its
    structure (message sizes, dependencies, protocol choices) is what the
    fit re-prices; ``measured`` is the elapsed time the fitted constants
    must reproduce.  In the synthetic loop the measurement comes from a
    simulation under injected constants; against hardware it would be a
    wall-clock measurement of the same workload.
    """

    recording: object
    measured: float
    label: str = ""


@dataclass
class FitResult:
    """Outcome of :func:`fit_fabric_constants`."""

    fitted: dict = field(default_factory=dict)    #: field -> fitted value
    start: dict = field(default_factory=dict)     #: field -> starting value
    residuals: dict = field(default_factory=dict)  #: label -> final rel resid
    start_residuals: dict = field(default_factory=dict)
    grid_best: dict = field(default_factory=dict)  #: dense-sweep incumbent
    replays: int = 0          #: total replay evaluations (never simulations)
    iterations: int = 0       #: Gauss-Newton iterations used
    converged: bool = False   #: max |residual| below tolerance

    @property
    def max_residual(self) -> float:
        return max((abs(v) for v in self.residuals.values()), default=0.0)

    def to_jsonable(self) -> dict:
        return {
            "fitted": dict(self.fitted),
            "start": dict(self.start),
            "residuals": dict(self.residuals),
            "start_residuals": dict(self.start_residuals),
            "grid_best": dict(self.grid_best),
            "max_residual": self.max_residual,
            "replays": self.replays,
            "iterations": self.iterations,
            "converged": self.converged,
        }


def _solve_normal_equations(J: list[list[float]], r: list[float]) -> list[float]:
    """Gauss-Newton step: solve ``(J^T J) dx = -J^T r`` by elimination.

    The systems here are tiny (one row/column per fitted constant), so a
    dependency-free dense solve with a small Tikhonov floor is plenty.
    """
    m = len(J[0])
    a = [[sum(row[i] * row[j] for row in J) for j in range(m)] for i in range(m)]
    g = [-sum(row[i] * ri for row, ri in zip(J, r)) for i in range(m)]
    damp = 1e-12 * max(max(abs(v) for v in row) for row in a)
    for i in range(m):
        a[i][i] += damp
    for i in range(m):
        piv = a[i][i]
        if piv == 0.0:
            raise ZeroDivisionError("singular Gauss-Newton system")
        for k in range(i + 1, m):
            f = a[k][i] / piv
            for j in range(i, m):
                a[k][j] -= f * a[i][j]
            g[k] -= f * g[i]
    dx = [0.0] * m
    for i in range(m - 1, -1, -1):
        s = g[i] - sum(a[i][j] * dx[j] for j in range(i + 1, m))
        dx[i] = s / a[i][i]
    return dx


def fit_fabric_constants(
    observations: list[CalibrationObservation],
    fields: tuple[str, ...] = ("alpha", "nic_bandwidth"),
    *,
    base: NetworkParams | None = None,
    grid_points: int = 9,
    grid_span: float = 4.0,
    max_iterations: int = 12,
    tolerance: float = 1e-6,
    fd_step: float = 1e-4,
    machine=None,
    solver: str = "auto",
) -> FitResult:
    """Fit ``fields`` of :class:`NetworkParams` to the observations.

    Stage 1 re-prices every observation over a dense log-spaced
    ``grid_points``-per-axis sweep spanning ``[value/grid_span,
    value*grid_span]`` around the ``base`` constants and keeps the
    least-squares incumbent.  Stage 2 polishes with Gauss-Newton in log
    space (finite-difference Jacobians, each column one replay per
    observation) until the largest relative residual drops below
    ``tolerance`` or ``max_iterations`` is exhausted.  All predictions go
    through :func:`~repro.sim.replay.replay_kernel_grid`; the fit never
    launches a simulation.

    Raises :class:`ValueError` for unknown/unsafe fields or for an
    underdetermined problem (fewer observations than fitted constants).
    """
    bad = [f for f in fields if f not in REPLAY_SAFE_FIELDS]
    if bad:
        raise ValueError(
            f"cannot fit non-replay-safe fields {bad}; replayable fields "
            f"are {sorted(REPLAY_SAFE_FIELDS)}"
        )
    if not fields:
        raise ValueError("no fields to fit")
    if len(observations) < len(fields):
        raise ValueError(
            f"underdetermined fit: {len(observations)} observation(s) for "
            f"{len(fields)} constants"
        )
    if any(obs.measured <= 0.0 for obs in observations):
        raise ValueError("measured elapsed times must be positive")
    base = base or NetworkParams()

    result = FitResult(start={f: getattr(base, f) for f in fields})
    labels = [obs.label or f"obs{idx}" for idx, obs in enumerate(observations)]

    def predict(points: list[dict]) -> list[list[float]]:
        """``out[obs_index][point_index]`` predicted elapsed seconds."""
        out = []
        for obs in observations:
            out.append(
                replay_kernel_grid(obs.recording, points, machine=machine,
                                   solver=solver)
            )
            result.replays += len(points)
        return out

    def residuals_at(preds_col: list[float]) -> list[float]:
        return [
            (pred - obs.measured) / obs.measured
            for pred, obs in zip(preds_col, observations)
        ]

    # -- stage 1: dense alpha-beta sweep ---------------------------------
    span = math.log(grid_span)
    axes = [
        [
            getattr(base, f) * math.exp(span * (2.0 * i / (grid_points - 1) - 1.0))
            for i in range(grid_points)
        ]
        for f in fields
    ]
    points = [dict(zip(fields, combo)) for combo in itertools.product(*axes)]
    preds = predict(points)
    start_col = [
        preds[oi][len(points) // 2] for oi in range(len(observations))
    ]  # grid center = base constants (odd grid_points)
    result.start_residuals = dict(zip(labels, residuals_at(start_col)))
    costs = [
        sum(
            ((preds[oi][pi] - obs.measured) / obs.measured) ** 2
            for oi, obs in enumerate(observations)
        )
        for pi in range(len(points))
    ]
    best = min(range(len(points)), key=lambda i: costs[i])
    result.grid_best = dict(points[best])

    # -- stage 2: Gauss-Newton polish in log space -----------------------
    x = [math.log(points[best][f]) for f in fields]
    final_res = residuals_at([preds[oi][best] for oi in range(len(observations))])
    for it in range(max_iterations):
        result.iterations = it
        if max(abs(v) for v in final_res) < tolerance:
            result.converged = True
            break
        cur = {f: math.exp(x[j]) for j, f in enumerate(fields)}
        probe = [cur] + [
            dict(cur, **{f: math.exp(x[j] + fd_step)})
            for j, f in enumerate(fields)
        ]
        pr = predict(probe)
        r = residuals_at([pr[oi][0] for oi in range(len(observations))])
        jac = [
            [
                (pr[oi][1 + j] - pr[oi][0]) / observations[oi].measured / fd_step
                for j in range(len(fields))
            ]
            for oi in range(len(observations))
        ]
        dx = _solve_normal_equations(jac, r)
        # Trust region: one grid cell per step keeps the iterate inside
        # the basin the dense sweep certified.
        cap = 2.0 * span / (grid_points - 1)
        x = [x[j] + max(-cap, min(cap, dx[j])) for j in range(len(fields))]
        check = predict([{f: math.exp(x[j]) for j, f in enumerate(fields)}])
        final_res = residuals_at([check[oi][0] for oi in range(len(observations))])
    else:
        result.iterations = max_iterations
        result.converged = max(abs(v) for v in final_res) < tolerance

    result.fitted = {f: math.exp(x[j]) for j, f in enumerate(fields)}
    result.residuals = dict(zip(labels, final_res))
    return result


# ---------------------------------------------------------------------------
# synthetic recovery (the calibration self-test)
# ---------------------------------------------------------------------------

#: Workloads of the synthetic loop: one latency-leaning, one
#: bandwidth-bound SSC run (distinct sensitivity mixes keep the joint fit
#: well-conditioned).
SYNTHETIC_WORKLOADS = ((2, 48), (2, 1024))

#: Constants the synthetic loop perturbs and recovers.
SYNTHETIC_FIELDS = ("alpha", "nic_bandwidth")

#: Injected perturbation factors (deliberately asymmetric and off-grid).
SYNTHETIC_FACTORS = {"alpha": 1.8, "nic_bandwidth": 0.7}


def build_synthetic_observations(
    base: NetworkParams,
    truth: NetworkParams,
    workloads=SYNTHETIC_WORKLOADS,
) -> list[CalibrationObservation]:
    """Record the workloads under ``base``; measure them under ``truth``.

    These are the only simulator runs of the synthetic loop — two per
    workload (one recording, one measurement).  Everything after this is
    replay.
    """
    from repro.kernels.symmsquarecube import run_ssc

    obs = []
    for p, n in workloads:
        rec = run_ssc(p, n, "optimized", n_dup=2, iterations=1,
                      params=base, record=True)
        meas = run_ssc(p, n, "optimized", n_dup=2, iterations=1, params=truth)
        obs.append(
            CalibrationObservation(rec.recording, meas.elapsed,
                                   label=f"ssc-p{p}-n{n}")
        )
    return obs


def calibrate_synthetic(
    *,
    base: NetworkParams | None = None,
    fields: tuple[str, ...] = SYNTHETIC_FIELDS,
    factors: dict | None = None,
    workloads=SYNTHETIC_WORKLOADS,
) -> dict:
    """Inject known constants, fit them back, report the recovery error.

    Returns a JSON-ready dict with the true/fitted constants, per-field
    relative recovery errors, the fit diagnostics, and the simulator-run
    count (recordings + measurements only — the fit itself is pure
    replay).
    """
    base = base or NetworkParams()
    factors = dict(factors or SYNTHETIC_FACTORS)
    unknown = [f for f in factors if f not in fields]
    if unknown:
        raise ValueError(f"perturbed fields {unknown} are not being fitted")
    truth = base.replace(**{f: getattr(base, f) * factors[f] for f in factors})
    observations = build_synthetic_observations(base, truth, workloads)
    fit = fit_fabric_constants(observations, fields, base=base)
    recovery = {
        f: abs(fit.fitted[f] / getattr(truth, f) - 1.0) for f in fields
    }
    return {
        "fields": list(fields),
        "true": {f: getattr(truth, f) for f in fields},
        "fitted": dict(fit.fitted),
        "recovery_rel_error": recovery,
        "max_recovery_rel_error": max(recovery.values()),
        "sim_runs": 2 * len(list(workloads)),
        "fit": fit.to_jsonable(),
    }


# ---------------------------------------------------------------------------
# analytic drift gate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DriftCase:
    """One pinned (workload, analytic estimate, tolerance band) triple."""

    name: str
    kind: str        #: "ssc" or "summa"
    p: int
    n: int
    algorithm: str
    band: float      #: max allowed |analytic/simulated - 1|
    n_dup: int = 1
    colors: int = 1
    depth: int = 1


#: The CI drift gate's pinned cases: the quick table-1 SSC point in its
#: three variants and the quick table-6 SUMMA mesh in its three variants.
#: Bands are ~2x the drift measured when they were pinned; the deliberately
#: loose ``summa-plain`` band reflects a model known to underestimate the
#: blocking variant's round-gap serialization.
DRIFT_CASES = (
    DriftCase("ssc-original", "ssc", 4, 7645, "original", 0.10),
    DriftCase("ssc-baseline", "ssc", 4, 7645, "baseline", 0.10),
    DriftCase("ssc-optimized", "ssc", 4, 7645, "optimized", 0.15, n_dup=4),
    DriftCase("summa-plain", "summa", 4, 2048, "plain", 0.55),
    DriftCase("summa-stream-d4", "summa", 4, 2048, "streaming", 0.10,
              depth=4),
    DriftCase("summa-col4-d4", "summa", 4, 2048, "colored", 0.15, colors=4,
              depth=4),
)


def _run_drift_case(case: DriftCase, params: NetworkParams) -> tuple[float, float]:
    """(simulated, analytic) elapsed seconds for one case."""
    from repro.netmodel.analytic import estimate_ssc_time, estimate_summa_time

    if case.kind == "ssc":
        from repro.kernels.symmsquarecube import run_ssc

        sim = run_ssc(case.p, case.n, case.algorithm, n_dup=case.n_dup,
                      iterations=1, params=params).elapsed
        est = estimate_ssc_time(case.n, case.p, case.algorithm, case.n_dup,
                                ppn=1, params=params)
    elif case.kind == "summa":
        from repro.dense.summa import run_summa

        kwargs = {}
        if case.algorithm == "colored":
            kwargs["colors"] = case.colors
        if case.algorithm in ("streaming", "colored"):
            kwargs["depth"] = case.depth
        sim = run_summa(case.p, case.n, algorithm=case.algorithm,
                        **kwargs).elapsed
        est = estimate_summa_time(case.n, case.p, case.algorithm,
                                  colors=case.colors, depth=case.depth,
                                  ppn=1, params=params)
    else:
        raise ValueError(f"unknown drift case kind: {case.kind}")
    return sim, est


def model_drift(
    cases=DRIFT_CASES, *, params: NetworkParams | None = None
) -> list[dict]:
    """Simulate each case and compare against its analytic estimate.

    Returns one row per case: the simulated and analytic times, the
    relative drift ``analytic/simulated - 1``, the pinned band, and the
    pass/fail verdict.  The gate passes iff every row's ``ok`` is true.
    """
    params = params or NetworkParams()
    rows = []
    for case in cases:
        sim, est = _run_drift_case(case, params)
        drift = est / sim - 1.0
        rows.append({
            "name": case.name,
            "simulated": sim,
            "analytic": est,
            "drift": drift,
            "band": case.band,
            "ok": abs(drift) <= case.band,
        })
    return rows
