"""Overlap-fraction metrics: quantify *where the wire time went*.

The paper's claim is that overlapping communications with other
communications moves time off the critical path; this module turns a run's
flow records and trace spans into the three numbers that test the claim:

``comm_comm_overlap_fraction``
    Of the aggregate per-wire busy time, the fraction during which flows of
    **two or more distinct operations** (communicators — each collective or
    communicator duplicate is one operation) shared the *same physical
    wire* at the same instant.  This is the paper's comm-comm overlap,
    measured instead of asserted: plain blocking schedules serialize
    operations on every wire (fraction near zero), pipelined schedules
    keep several collectives' traffic concurrent per wire — fair-sharing
    one lane (streaming) or riding disjoint color lanes of the same NIC
    (colored).  The accounting is deliberately per *wire*, not per lane:
    coloring exists precisely so concurrent operations never share a lane,
    so a lane-level metric would read 0 for the most overlapped schedule.
    (Distinct operations active on *disjoint* wires are spatial
    parallelism, not overlap — they are excluded too.)  Lane-level
    fractions remain available per :class:`~repro.analytics.timeline.LinkTimeline`.

``comm_compute_overlap_fraction``
    Of the comm-busy time, the fraction during which at least one rank was
    simultaneously inside a COMPUTE span — how much wire time hid behind
    local GEMMs (the T3/fused-collective view).

``serialization_score``
    The run's communication horizon divided by the bottleneck link's busy
    time.  An ideally pipelined schedule keeps its bottleneck link
    continuously busy (score → 1.0); a fully serialized schedule idles the
    bottleneck between phases (score ≫ 1).

All three are derived from exact interval arithmetic
(:mod:`repro.analytics.timeline`); no sampling, no binning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytics.timeline import (
    build_link_timelines,
    find_last_active,
    intersect_intervals,
    merge_intervals,
    multiplicity_intervals,
    rank_breakdown,
    total_measure,
)
from repro.sim.trace import SpanKind, Trace

__all__ = ["OverlapReport", "compute_overlap", "overlap_report_for_world"]


@dataclass
class OverlapReport:
    """Structured overlap accounting of one run (see module docstring)."""

    t_first: float = 0.0           #: first wire activity
    t_last: float = 0.0            #: last wire activity
    comm_busy_time: float = 0.0    #: union of all flow intervals (wall clock)
    wire_busy_time: float = 0.0    #: Σ over physical wires of busy time
    compute_busy_time: float = 0.0  #: union of all COMPUTE spans
    comm_comm_overlap_time: float = 0.0   #: Σ wires: ≥2 distinct ops share it
    flow_overlap_time: float = 0.0        #: Σ wires: ≥2 flows share it
    comm_compute_overlap_time: float = 0.0  #: wire ∩ compute (wall clock)
    serialization_score: float = 0.0
    total_flows: int = 0
    total_bytes: float = 0.0
    links: dict = field(default_factory=dict)  #: label -> LinkTimeline
    breakdown: dict = field(default_factory=dict)  #: rank -> kind -> seconds
    last_active_link: str | None = None
    last_active_time: float = 0.0

    @property
    def horizon(self) -> float:
        return self.t_last - self.t_first

    @property
    def comm_comm_overlap_fraction(self) -> float:
        b = self.wire_busy_time
        return self.comm_comm_overlap_time / b if b > 0.0 else 0.0

    @property
    def flow_overlap_fraction(self) -> float:
        b = self.wire_busy_time
        return self.flow_overlap_time / b if b > 0.0 else 0.0

    @property
    def comm_compute_overlap_fraction(self) -> float:
        b = self.comm_busy_time
        return self.comm_compute_overlap_time / b if b > 0.0 else 0.0

    def to_jsonable(self) -> dict:
        """JSON-ready dict (the ``--format json`` CLI payload)."""
        return {
            "t_first": self.t_first,
            "t_last": self.t_last,
            "horizon": self.horizon,
            "comm_busy_time": self.comm_busy_time,
            "wire_busy_time": self.wire_busy_time,
            "compute_busy_time": self.compute_busy_time,
            "comm_comm_overlap_time": self.comm_comm_overlap_time,
            "comm_comm_overlap_fraction": self.comm_comm_overlap_fraction,
            "flow_overlap_time": self.flow_overlap_time,
            "flow_overlap_fraction": self.flow_overlap_fraction,
            "comm_compute_overlap_time": self.comm_compute_overlap_time,
            "comm_compute_overlap_fraction": self.comm_compute_overlap_fraction,
            "serialization_score": self.serialization_score,
            "total_flows": self.total_flows,
            "total_bytes": self.total_bytes,
            "last_active_link": self.last_active_link,
            "last_active_time": self.last_active_time,
            "links": {label: tl.to_jsonable()
                      for label, tl in sorted(self.links.items())},
            "breakdown": {str(rank): kinds
                          for rank, kinds in self.breakdown.items()},
        }

    def summary(self) -> dict:
        """The scalar metrics only (what ``sim_stats["overlap"]`` carries)."""
        return {
            "comm_comm_overlap_fraction": self.comm_comm_overlap_fraction,
            "flow_overlap_fraction": self.flow_overlap_fraction,
            "comm_compute_overlap_fraction": self.comm_compute_overlap_fraction,
            "serialization_score": self.serialization_score,
            "comm_busy_time": self.comm_busy_time,
            "wire_busy_time": self.wire_busy_time,
            "total_flows": self.total_flows,
        }


def compute_overlap(flow_records, trace: Trace | None = None) -> OverlapReport:
    """Build an :class:`OverlapReport` from flow records (and a trace).

    ``flow_records`` feed the wire-side metrics; the optional ``trace``
    adds the compute side (COMPUTE spans) and the per-rank breakdown.
    """
    report = OverlapReport()
    recs = list(flow_records)
    report.total_flows = len(recs)
    report.total_bytes = sum(r.nbytes for r in recs)

    timelines = build_link_timelines(recs)
    report.links = {key.label: tl for key, tl in timelines.items()}

    comm_busy = merge_intervals((r.t_start, r.t_end) for r in recs)
    report.comm_busy_time = total_measure(comm_busy)
    if comm_busy:
        report.t_first = comm_busy[0][0]
        report.t_last = comm_busy[-1][1]

    # Overlap is accounted per physical wire: lanes (channels) of one
    # src->dst path share the NIC, so distinct operations on different
    # lanes of one wire *are* overlapped communications, while operations
    # on disjoint wires are mere spatial parallelism and count for
    # nothing.
    per_wire: dict = {}
    for r in recs:
        kind = "shm" if r.src_node == r.dst_node else "wire"
        per_wire.setdefault((kind, r.src_node, r.dst_node), []).append(r)
    for wrecs in per_wire.values():
        busy = merge_intervals((r.t_start, r.t_end) for r in wrecs)
        report.wire_busy_time += total_measure(busy)
        tagged = [(r.t_start, r.t_end, r.op) for r in wrecs]
        report.flow_overlap_time += total_measure(
            multiplicity_intervals(tagged, threshold=2))
        report.comm_comm_overlap_time += total_measure(
            multiplicity_intervals(tagged, threshold=2, distinct_key=True))

    bottleneck = max((tl.busy_time for tl in timelines.values()), default=0.0)
    report.serialization_score = (
        report.horizon / bottleneck if bottleneck > 0.0 else 0.0
    )

    key, t_last = find_last_active(timelines)
    report.last_active_link = key.label if key is not None else None
    report.last_active_time = t_last

    if trace is not None:
        compute_busy = merge_intervals(
            (r.t0, r.t1) for r in trace.of_kind(SpanKind.COMPUTE))
        report.compute_busy_time = total_measure(compute_busy)
        report.comm_compute_overlap_time = total_measure(
            intersect_intervals(comm_busy, compute_busy))
        report.breakdown = rank_breakdown(trace)
    return report


def overlap_report_for_world(world) -> OverlapReport:
    """Overlap accounting of a finished :class:`~repro.mpi.world.World`.

    Requires the world to have run with ``trace=True`` (flow records are
    only collected alongside a live trace); raises :class:`ValueError`
    otherwise, because silently returning an all-zero report would read as
    "no overlap measured" instead of "nothing was measured".
    """
    if world.fabric.flow_log is None:
        raise ValueError(
            "world has no flow records — run it with trace=True so the "
            "fabric collects per-flow link occupancy"
        )
    return compute_overlap(world.fabric.flow_records(), world.trace)
