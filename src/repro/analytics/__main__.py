"""CLI: ``python -m repro.analytics {timeline,overlap,calibrate}``.

``timeline``
    Run one workload with tracing and print the per-(link, channel)
    utilization table: flows, bytes, busy time, utilization, largest idle
    gap and the per-link overlap fractions, plus the last-active link.

``overlap``
    Same run, reduced to the run-level :class:`OverlapReport`: comm-comm
    and comm-compute overlap fractions, serialization score, per-rank
    post/wait/compute breakdown.

``calibrate``
    Default mode runs the synthetic recovery loop (inject perturbed
    fabric constants, fit them back by replay re-pricing) and reports the
    fitted constants, residuals and recovery error; ``--check`` addition-
    ally fails (exit 1) if recovery exceeds ``--tolerance``.  ``--drift``
    runs the analytic-vs-simulated drift gate over the pinned quick
    workloads instead.  ``--out PATH`` writes the fitted constants (or
    drift rows) as a JSON artifact.

Both workload subcommands share ``--workload {ssc,summa}`` plus shape
flags; every subcommand accepts ``--format {text,json}``.  Exit 0 on
success, 1 on a failed gate, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys


def _add_workload_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", choices=("ssc", "summa"), default="summa",
                   help="kernel to run under tracing (default: summa)")
    p.add_argument("--algorithm", default=None,
                   help="variant: ssc original/baseline/optimized, summa "
                        "plain/streaming/colored (defaults: optimized, "
                        "streaming)")
    p.add_argument("--p", type=int, default=4, help="mesh side (default 4)")
    p.add_argument("--n", type=int, default=None,
                   help="matrix dimension (defaults: ssc 480, summa 1024)")
    p.add_argument("--n-dup", type=int, default=2, dest="n_dup",
                   help="SSC pipeline duplicates (default 2)")
    p.add_argument("--colors", type=int, default=2,
                   help="colored-SUMMA lane count (default 2)")
    p.add_argument("--depth", type=int, default=2,
                   help="pipelined-SUMMA window depth (default 2)")


def _add_format_option(p: argparse.ArgumentParser) -> None:
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")


def _run_workload(args):
    """Run the selected workload with tracing; return its OverlapReport."""
    from repro.analytics.overlap import overlap_report_for_world

    if args.workload == "ssc":
        from repro.kernels.symmsquarecube import run_ssc

        algorithm = args.algorithm or "optimized"
        n = args.n or 480
        res = run_ssc(args.p, n, algorithm, n_dup=args.n_dup, iterations=1,
                      trace=True)
    else:
        from repro.dense.summa import run_summa

        algorithm = args.algorithm or "streaming"
        n = args.n or 1024
        kwargs = {}
        if algorithm == "colored":
            kwargs["colors"] = args.colors
        if algorithm in ("streaming", "colored"):
            kwargs["depth"] = args.depth
        res = run_summa(args.p, n, algorithm=algorithm, trace=True, **kwargs)
    return overlap_report_for_world(res.world)


def _print_timeline(report) -> None:
    print(f"{'link':24s} {'flows':>6s} {'MB':>9s} {'busy(ms)':>9s} "
          f"{'util':>6s} {'gap(us)':>8s} {'ov2':>6s} {'multi-op':>8s}")
    for label, tl in sorted(report.links.items()):
        print(f"{label:24s} {tl.flows:6d} {tl.nbytes / 1e6:9.2f} "
              f"{tl.busy_time * 1e3:9.3f} {tl.utilization:6.3f} "
              f"{tl.largest_gap * 1e6:8.1f} {tl.flow_overlap_fraction:6.3f} "
              f"{tl.comm_comm_overlap_fraction:8.3f}")
    print(f"last active: {report.last_active_link} "
          f"at {report.last_active_time * 1e3:.3f} ms")


def _print_overlap(report) -> None:
    print(f"horizon             {report.horizon * 1e3:10.3f} ms")
    print(f"comm busy           {report.comm_busy_time * 1e3:10.3f} ms")
    print(f"compute busy        {report.compute_busy_time * 1e3:10.3f} ms")
    print(f"comm-comm overlap   {report.comm_comm_overlap_fraction:10.3f}")
    print(f"flow overlap        {report.flow_overlap_fraction:10.3f}")
    print(f"comm-compute overlap{report.comm_compute_overlap_fraction:10.3f}")
    print(f"serialization score {report.serialization_score:10.3f}")
    print(f"flows               {report.total_flows:10d}")
    for rank, kinds in report.breakdown.items():
        parts = " ".join(f"{k}={v * 1e3:.3f}ms"
                         for k, v in sorted(kinds.items()) if v > 0.0)
        print(f"  r{rank}: {parts}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analytics",
        description="Link-utilization timelines, overlap-fraction metrics "
                    "and replay-backed model calibration.",
    )
    sub = parser.add_subparsers(dest="command")

    tl_p = sub.add_parser("timeline",
                          help="per-link utilization table of one traced run")
    _add_workload_options(tl_p)
    _add_format_option(tl_p)

    ov_p = sub.add_parser("overlap",
                          help="overlap-fraction report of one traced run")
    _add_workload_options(ov_p)
    _add_format_option(ov_p)

    cal_p = sub.add_parser(
        "calibrate",
        help="synthetic constant-recovery fit / analytic drift gate")
    cal_p.add_argument("--drift", action="store_true",
                       help="run the analytic-vs-simulated drift gate "
                            "instead of the synthetic recovery loop")
    cal_p.add_argument("--check", action="store_true",
                       help="exit 1 when recovery exceeds --tolerance "
                            "(or any drift band is violated)")
    cal_p.add_argument("--tolerance", type=float, default=0.05,
                       help="max allowed recovery relative error with "
                            "--check (default 0.05)")
    cal_p.add_argument("--out", default=None,
                       help="write the JSON artifact (fitted constants or "
                            "drift rows) to this path")
    _add_format_option(cal_p)

    args = parser.parse_args(argv)

    if args.command in ("timeline", "overlap"):
        try:
            report = _run_workload(args)
        except ValueError as exc:
            print(f"repro.analytics {args.command}: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            payload = report.to_jsonable()
            if args.command == "timeline":
                payload = {"links": payload["links"],
                           "last_active_link": payload["last_active_link"],
                           "last_active_time": payload["last_active_time"]}
            print(json.dumps(payload, indent=1, sort_keys=True))
        elif args.command == "timeline":
            _print_timeline(report)
        else:
            _print_overlap(report)
        return 0

    if args.command == "calibrate":
        from repro.analytics.calibrate import calibrate_synthetic, model_drift

        if args.drift:
            rows = model_drift()
            ok = all(r["ok"] for r in rows)
            payload = {"cases": rows, "ok": ok}
            if args.format == "json":
                print(json.dumps(payload, indent=1, sort_keys=True))
            else:
                for r in rows:
                    verdict = "ok" if r["ok"] else "FAIL"
                    print(f"{r['name']:18s} sim={r['simulated'] * 1e3:9.3f}ms "
                          f"analytic={r['analytic'] * 1e3:9.3f}ms "
                          f"drift={r['drift']:+7.3f} band={r['band']:.2f} "
                          f"{verdict}")
                print(f"drift gate: {'ok' if ok else 'FAILED'}")
            if args.out:
                with open(args.out, "w") as fh:
                    json.dump(payload, fh, indent=1, sort_keys=True)
            return 0 if (ok or not args.check) else 1

        result = calibrate_synthetic()
        ok = result["max_recovery_rel_error"] <= args.tolerance
        if args.format == "json":
            print(json.dumps(result, indent=1, sort_keys=True))
        else:
            for f in result["fields"]:
                print(f"{f:24s} true={result['true'][f]:.6g} "
                      f"fitted={result['fitted'][f]:.6g} "
                      f"rel err={result['recovery_rel_error'][f]:.3g}")
            fit = result["fit"]
            print(f"replays={fit['replays']} iterations={fit['iterations']} "
                  f"converged={fit['converged']} "
                  f"sim runs={result['sim_runs']} (observations only)")
            print(f"recovery: max rel err "
                  f"{result['max_recovery_rel_error']:.3g} "
                  f"({'ok' if ok else 'FAILED'} at tol {args.tolerance})")
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(result, fh, indent=1, sort_keys=True)
        return 0 if (ok or not args.check) else 1

    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
