"""Post-hoc analytics over simulated runs: timelines, overlap, calibration.

Three layers, each consuming the instrumentation the simulator already
emits (:class:`~repro.sim.trace.Trace` spans and
:meth:`~repro.netmodel.fabric.Fabric.flow_records`):

:mod:`repro.analytics.timeline`
    Per-(link, channel) busy/idle interval sets, utilization, idle-gap
    statistics and per-rank span breakdowns — exact half-open interval
    arithmetic, no sampling.

:mod:`repro.analytics.overlap`
    The paper's headline quantities, measured instead of asserted:
    comm-comm overlap fraction (≥2 operations' flows sharing an instant),
    comm-compute overlap fraction, and a serialization score against the
    ideally pipelined schedule.  :class:`OverlapReport` is what the bench
    harness surfaces as ``sim_stats["overlap"]``.

:mod:`repro.analytics.calibrate`
    Fits ``NetworkParams`` constants to measured timelines by re-pricing
    recorded event graphs (PR 6 replay) over dense constant sweeps —
    zero extra simulator runs — plus the CI drift gate that keeps the
    closed-form alpha-beta models honest against the simulator.

``python -m repro.analytics`` exposes all three as a CLI.
"""

from repro.analytics.calibrate import (
    CalibrationObservation,
    FitResult,
    calibrate_synthetic,
    fit_fabric_constants,
    model_drift,
)
from repro.analytics.overlap import (
    OverlapReport,
    compute_overlap,
    overlap_report_for_world,
)
from repro.analytics.timeline import (
    LinkKey,
    LinkTimeline,
    build_link_timelines,
    find_last_active,
    rank_breakdown,
)

__all__ = [
    "CalibrationObservation",
    "FitResult",
    "LinkKey",
    "LinkTimeline",
    "OverlapReport",
    "build_link_timelines",
    "calibrate_synthetic",
    "compute_overlap",
    "find_last_active",
    "fit_fabric_constants",
    "model_drift",
    "overlap_report_for_world",
    "rank_breakdown",
]
