"""Per-link utilization timelines from fabric flow records and trace spans.

The simulator already *observes* everything the paper's argument needs —
which flow occupied which link, on which lane, from when to when — but
until now nothing turned those observations into accounting.  This module
is the programmatic equivalent of the related work's
``parse_color_link_timeline.py`` / ``find_last_active.py`` scripts: it
consumes :meth:`repro.netmodel.fabric.Fabric.flow_records` (one
:class:`~repro.netmodel.fabric.FlowRecord` per completed flow, collected
whenever a live trace is attached) and produces

* per-(link, channel) **busy/idle interval sets** with utilization,
  byte/flow counts, the largest idle gap and a log2 gap histogram,
* **concurrency measures** — how long ≥2 flows, and ≥2 distinct
  *operations* (communicators), shared the link at one instant — the raw
  material of :mod:`repro.analytics.overlap`'s comm-comm overlap fractions,
* per-rank **post/wait/compute/transfer breakdowns** from
  :class:`~repro.sim.trace.Trace` spans (the Fig. 6 view, tabulated).

All intervals are half-open ``[t0, t1)`` in simulated seconds.  Interval
arithmetic is exact: no epsilons, no rounding — two flows "share an
instant" iff their half-open intervals intersect with positive measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, NamedTuple

from repro.sim.trace import SpanKind, Trace

__all__ = [
    "LinkKey",
    "LinkTimeline",
    "build_link_timelines",
    "find_last_active",
    "gap_histogram",
    "interval_complement",
    "intersect_intervals",
    "merge_intervals",
    "multiplicity_intervals",
    "rank_breakdown",
    "total_measure",
]


# ---------------------------------------------------------------------------
# interval algebra (half-open, exact)
# ---------------------------------------------------------------------------


def merge_intervals(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of half-open intervals as a sorted, disjoint, merged list.

    Zero-measure intervals (``t0 == t1``) are dropped — they occupy no
    instant.  Touching intervals (``a.t1 == b.t0``) merge: the union of
    half-open intervals is itself half-open.
    """
    ivs = sorted((t0, t1) for t0, t1 in intervals if t1 > t0)
    if not ivs:
        return []
    out = [ivs[0]]
    for t0, t1 in ivs[1:]:
        lo, hi = out[-1]
        if t0 <= hi:
            if t1 > hi:
                out[-1] = (lo, t1)
        else:
            out.append((t0, t1))
    return out


def total_measure(merged: list[tuple[float, float]]) -> float:
    """Total length of a merged interval list."""
    return sum(t1 - t0 for t0, t1 in merged)


def intersect_intervals(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Intersection of two merged interval lists (two-pointer sweep)."""
    out: list[tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def interval_complement(
    merged: list[tuple[float, float]], lo: float, hi: float
) -> list[tuple[float, float]]:
    """Idle gaps: the complement of ``merged`` within ``[lo, hi)``."""
    out: list[tuple[float, float]] = []
    cur = lo
    for t0, t1 in merged:
        if t0 > cur:
            out.append((cur, min(t0, hi)))
        cur = max(cur, t1)
        if cur >= hi:
            break
    if cur < hi:
        out.append((cur, hi))
    return [(a, b) for a, b in out if b > a]


def multiplicity_intervals(
    intervals: Iterable[tuple[float, float, object]],
    threshold: int = 2,
    distinct_key: bool = False,
) -> list[tuple[float, float]]:
    """Instants where ≥ ``threshold`` intervals are simultaneously active.

    Each input is ``(t0, t1, key)``.  With ``distinct_key=True`` the count
    is over *distinct keys* active at the instant (two flows of the same
    operation do not make the operation overlap itself); otherwise every
    interval counts individually.  Returns a merged interval list.
    """
    events: list[tuple[float, int, object]] = []
    for t0, t1, key in intervals:
        if t1 > t0:
            events.append((t0, 1, key))
            events.append((t1, -1, key))
    if not events:
        return []
    # Ends sort before starts at equal times: half-open intervals touching
    # at t do not overlap at t.
    events.sort(key=lambda e: (e[0], e[1]))
    out: list[tuple[float, float]] = []
    active: dict = {}
    count = 0
    above_since: float | None = None
    for t, delta, key in events:
        if distinct_key:
            prev = active.get(key, 0)
            nxt = prev + delta
            if prev == 0 and nxt > 0:
                count += 1
            elif prev > 0 and nxt == 0:
                count -= 1
            if nxt:
                active[key] = nxt
            else:
                active.pop(key, None)
        else:
            count += delta
        if above_since is None and count >= threshold:
            above_since = t
        elif above_since is not None and count < threshold:
            if t > above_since:
                out.append((above_since, t))
            above_since = None
    return merge_intervals(out)


def gap_histogram(gaps: list[tuple[float, float]]) -> dict[int, int]:
    """Log2 histogram of idle-gap durations.

    Bucket ``e`` counts gaps with ``2**e <= duration < 2**(e+1)`` seconds
    (``e`` is ``floor(log2(duration))``, so microsecond gaps land around
    ``-20``).  Returned sorted by bucket for deterministic rendering.
    """
    hist: dict[int, int] = {}
    for t0, t1 in gaps:
        d = t1 - t0
        if d <= 0.0:
            continue
        e = math.floor(math.log2(d))
        hist[e] = hist.get(e, 0) + 1
    return dict(sorted(hist.items()))


# ---------------------------------------------------------------------------
# per-link timelines
# ---------------------------------------------------------------------------


class LinkKey(NamedTuple):
    """Identity of one directed link lane.

    ``kind`` is ``"wire"`` (the src->dst inter-node NIC path) or ``"shm"``
    (a node's shared-memory path, where ``src_node == dst_node``);
    ``channel`` is the virtual lane (PR 8's per-channel split).
    """

    kind: str
    src_node: int
    dst_node: int
    channel: int

    @property
    def label(self) -> str:
        if self.kind == "shm":
            return f"shm:n{self.src_node}/ch{self.channel}"
        return f"n{self.src_node}->n{self.dst_node}/ch{self.channel}"


@dataclass
class LinkTimeline:
    """Everything the analytics layer knows about one link lane."""

    key: LinkKey
    flows: int = 0                 #: completed flows on this lane
    nbytes: float = 0.0            #: total payload bytes
    busy: list = field(default_factory=list)       #: merged busy intervals
    overlap2: list = field(default_factory=list)   #: ≥2 flows in flight
    multi_op: list = field(default_factory=list)   #: ≥2 distinct ops in flight
    t_first: float = 0.0           #: first instant any flow was active
    t_last: float = 0.0            #: last instant any flow was active

    @property
    def busy_time(self) -> float:
        return total_measure(self.busy)

    @property
    def span(self) -> float:
        """The link's own activity horizon ``t_last - t_first``."""
        return self.t_last - self.t_first

    @property
    def utilization(self) -> float:
        """Busy fraction of the link's own activity horizon."""
        return self.busy_time / self.span if self.span > 0.0 else 0.0

    @property
    def idle_gaps(self) -> list[tuple[float, float]]:
        """Idle intervals strictly inside ``[t_first, t_last)``."""
        return interval_complement(self.busy, self.t_first, self.t_last)

    @property
    def largest_gap(self) -> float:
        return max((t1 - t0 for t0, t1 in self.idle_gaps), default=0.0)

    @property
    def comm_comm_overlap_fraction(self) -> float:
        """Fraction of busy time during which ≥2 operations' flows shared
        the lane — the per-link comm-comm overlap metric."""
        b = self.busy_time
        return total_measure(self.multi_op) / b if b > 0.0 else 0.0

    @property
    def flow_overlap_fraction(self) -> float:
        """Fraction of busy time with ≥2 flows in flight (any operations)."""
        b = self.busy_time
        return total_measure(self.overlap2) / b if b > 0.0 else 0.0

    def to_jsonable(self) -> dict:
        return {
            "link": self.key.label,
            "flows": self.flows,
            "nbytes": self.nbytes,
            "busy_time": self.busy_time,
            "utilization": self.utilization,
            "t_first": self.t_first,
            "t_last": self.t_last,
            "largest_gap": self.largest_gap,
            "gap_histogram": {str(k): v
                              for k, v in gap_histogram(self.idle_gaps).items()},
            "comm_comm_overlap_fraction": self.comm_comm_overlap_fraction,
            "flow_overlap_fraction": self.flow_overlap_fraction,
        }


def _link_key(rec) -> LinkKey:
    if rec.src_node == rec.dst_node:
        return LinkKey("shm", rec.src_node, rec.dst_node, rec.channel)
    return LinkKey("wire", rec.src_node, rec.dst_node, rec.channel)


def build_link_timelines(flow_records) -> dict[LinkKey, LinkTimeline]:
    """Group completed flows into per-(link, channel) timelines.

    ``flow_records`` is an iterable of
    :class:`~repro.netmodel.fabric.FlowRecord` (or any object with the same
    fields).  Zero-duration flows (zero-byte control messages) contribute
    to flow counts but occupy no instant.
    """
    per_link: dict[LinkKey, list] = {}
    for rec in flow_records:
        per_link.setdefault(_link_key(rec), []).append(rec)
    out: dict[LinkKey, LinkTimeline] = {}
    for key in sorted(per_link):
        recs = per_link[key]
        tl = LinkTimeline(key=key)
        tl.flows = len(recs)
        tl.nbytes = sum(r.nbytes for r in recs)
        ivs = [(r.t_start, r.t_end) for r in recs]
        tl.busy = merge_intervals(ivs)
        if tl.busy:
            tl.t_first = tl.busy[0][0]
            tl.t_last = tl.busy[-1][1]
        tagged = [(r.t_start, r.t_end, r.op) for r in recs]
        tl.overlap2 = multiplicity_intervals(tagged, threshold=2)
        tl.multi_op = multiplicity_intervals(tagged, threshold=2,
                                             distinct_key=True)
        out[key] = tl
    return out


def find_last_active(timelines: dict[LinkKey, LinkTimeline]) -> tuple[LinkKey | None, float]:
    """The link that carried the final byte of the run (and when).

    The related work's ``find_last_active.py`` uses this to spot the drain
    phase of a pipelined schedule: a single late lane means the last panels
    ran alone on a fractional link.
    """
    best_key, best_t = None, 0.0
    for key, tl in timelines.items():
        if tl.flows and (best_key is None or tl.t_last > best_t):
            best_key, best_t = key, tl.t_last
    return best_key, best_t


# ---------------------------------------------------------------------------
# per-rank breakdowns (trace spans)
# ---------------------------------------------------------------------------


def rank_breakdown(trace: Trace) -> dict[int, dict[str, float]]:
    """Per-rank total seconds spent in each span kind (post/wait/compute/...).

    The tabulated form of the Fig. 6 time diagram: for every rank the sum
    of POST, WAIT, COMPUTE, TRANSFER and MISC span durations.  TRANSFER
    spans are attributed to the *sending* rank (where the fabric records
    them).
    """
    out: dict[int, dict[str, float]] = {}
    for r in trace.records:
        per = out.setdefault(r.rank, {k.value: 0.0 for k in SpanKind})
        per[r.kind.value] += r.duration
    return {rank: out[rank] for rank in sorted(out)}
