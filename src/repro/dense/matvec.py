"""Parallel matrix-vector multiplication — the paper's Algorithms 1 and 2.

``y = A x`` on a ``p x p`` process mesh.  ``A[i,j]`` lives on process
``P[i,j]``; every process in mesh column ``j`` holds block ``x_j``; on
completion every process in column ``j`` holds ``y_j`` ("y distributed as
x").

Algorithm 1 (plain): local multiply, blocking row-reduce to the diagonal,
blocking column-broadcast from the diagonal.

Algorithm 2 (pipelined/overlapped): each local product is divided into
``N_DUP`` contiguous parts; part ``c`` is reduced with ``MPI_Ireduce`` on
the ``c``-th duplicate of the row communicator, and the diagonal process
broadcasts part ``c`` with ``MPI_Ibcast`` on the ``c``-th duplicate of the
column communicator *as soon as that part's reduction completes* — the
broadcast of early parts overlaps the reduction of later parts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense.distribution import block_dim, block_range, part_slices
from repro.dense.mesh import Mesh2D
from repro.mpi.requests import waitall
from repro.mpi.world import RankEnv, World
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.util import check_positive


def matvec_program(
    env: RankEnv,
    mesh: Mesh2D,
    n: int,
    a_block: np.ndarray | None,
    x_block: np.ndarray | None,
    n_dup: int = 1,
    overlapped: bool = False,
):
    """Rank program computing one distributed matvec; returns this rank's ``y_j``.

    ``a_block``/``x_block`` may be ``None`` for modeled (timing-only) runs.
    ``overlapped=False`` with any ``n_dup`` runs Algorithm 1; ``True`` runs
    Algorithm 2 with ``n_dup`` pipeline stages.
    """
    check_positive("n_dup", n_dup)
    p = mesh.p
    i, j = mesh.coords_of(env.rank)
    bi = block_dim(i, n, p)
    bj = block_dim(j, n, p)

    # Line 1: local partial product y_i^(j) = A[i,j] @ x_j.
    y_loc = yield from env.gemm(a_block, x_block, bi, bj, 1, label="matvec-local")
    if y_loc is None and a_block is not None:
        raise ValueError("a_block given without x_block (or vice versa)")

    # This rank ends up with column block y_j.
    out = np.zeros(bj) if x_block is not None else None

    if not overlapped:
        # Algorithm 1: blocking reduce along the row, then column broadcast.
        row = env.view(mesh.row_comm(i))
        red = yield from row.reduce(y_loc, nbytes=bi * 8, root=i)
        col = env.view(mesh.col_comm(j))
        if i == j:
            if out is not None:
                out[:] = red
            yield from col.bcast(out, nbytes=bj * 8, root=j)
        else:
            yield from col.bcast(out, nbytes=bj * 8, root=j)
        return out

    # Algorithm 2: split into N_DUP parts; Ireduce all, then pipeline Ibcast.
    red_parts = part_slices(bi, n_dup)
    out_parts = part_slices(bj, n_dup)
    red_reqs = []
    for c, (lo, hi) in enumerate(red_parts):
        row_c = env.view(mesh.row_comm(i, c))
        part = None if y_loc is None else y_loc[lo:hi]
        req = yield from row_c.ireduce(part, nbytes=(hi - lo) * 8, root=i)
        red_reqs.append(req)
    bcast_reqs = []
    for c, (lo, hi) in enumerate(out_parts):
        col_c = env.view(mesh.col_comm(j, c))
        if i == j:
            reduced = yield from red_reqs[c].wait()
            if out is not None:
                out[lo:hi] = reduced
            buf = None if out is None else out[lo:hi]
            req = yield from col_c.ibcast(buf, nbytes=(hi - lo) * 8, root=j)
        else:
            buf = None if out is None else out[lo:hi]
            req = yield from col_c.ibcast(buf, nbytes=(hi - lo) * 8, root=j)
        bcast_reqs.append(req)
    yield from waitall(bcast_reqs + [r for c, r in enumerate(red_reqs) if i != j])
    return out


@dataclass
class MatvecResult:
    """Outcome of :func:`run_matvec`."""

    y: np.ndarray | None       # the assembled result (real mode)
    elapsed: float             # virtual seconds for the distributed matvec
    world: World


def run_matvec(
    p: int,
    n: int,
    a: np.ndarray | None = None,
    x: np.ndarray | None = None,
    *,
    n_dup: int = 1,
    overlapped: bool = False,
    ppn: int = 1,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
    trace: bool = False,
) -> MatvecResult:
    """Build a world, run one distributed matvec, assemble the result.

    Real mode: pass ``a`` (``n x n``) and ``x`` (length ``n``); the result
    vector is reassembled from the mesh and returned.  Modeled mode: leave
    them ``None`` and only the elapsed virtual time is meaningful.
    """
    check_positive("p", p)
    if (a is None) != (x is None):
        raise ValueError("pass both a and x, or neither")
    world = World(block_placement(p * p, ppn), params=params, machine=machine,
                  trace=trace)
    mesh = Mesh2D(world, p, n_dup=max(n_dup, 1))

    def program(env: RankEnv):
        i, j = mesh.coords_of(env.rank)
        if a is not None:
            rlo, rhi = block_range(i, n, p)
            clo, chi = block_range(j, n, p)
            a_blk = np.ascontiguousarray(a[rlo:rhi, clo:chi])
            x_blk = np.ascontiguousarray(x[clo:chi])
        else:
            a_blk = x_blk = None
        result = yield from matvec_program(
            env, mesh, n, a_blk, x_blk, n_dup=n_dup, overlapped=overlapped
        )
        return result

    world.spawn_all(program, ranks=range(p * p))
    elapsed = world.run()
    y = None
    if a is not None:
        y = np.zeros(n)
        results = world.results()
        for rank, y_blk in enumerate(results):
            _i, jj = mesh.coords_of(rank)
            lo, hi = block_range(jj, n, p)
            y[lo:hi] = y_blk  # every row of column jj agrees; last write wins
    return MatvecResult(y=y, elapsed=elapsed, world=world)
