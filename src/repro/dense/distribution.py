"""2D block partitioning of dense matrices and N_DUP part splitting.

An ``N x N`` matrix on a ``p x p`` block grid: block row ``i`` covers matrix
rows ``[i*N//p, (i+1)*N//p)`` (the standard near-equal split; the paper's
"largest matrix block size is ceil(7645/4)^2" corresponds to the same
convention).

For the nonblocking-overlap pipelines, each communicated block is divided
into ``N_DUP`` *contiguous equal parts* (Alg. 2 line 2, Alg. 5).  Blocks are
communicated as raveled (C-order) 1-D arrays, so a contiguous part of the
raveled buffer is a contiguous row band of the block — no repacking, as the
paper's third design principle requires.
"""

from __future__ import annotations

import numpy as np

from repro.util import check_positive


def block_range(i: int, n: int, p: int) -> tuple[int, int]:
    """Half-open index range of block ``i`` when ``n`` indices split ``p`` ways."""
    check_positive("p", p)
    if not 0 <= i < p:
        raise ValueError(f"block index {i} out of range for p={p}")
    if n < 0:
        raise ValueError(f"negative dimension {n}")
    return (i * n) // p, ((i + 1) * n) // p


def block_dim(i: int, n: int, p: int) -> int:
    """Number of indices in block ``i``."""
    lo, hi = block_range(i, n, p)
    return hi - lo


def block_shape(i: int, j: int, n: int, p: int) -> tuple[int, int]:
    """Shape of matrix block ``(i, j)``."""
    return block_dim(i, n, p), block_dim(j, n, p)


def partition_matrix(a: np.ndarray, p: int) -> dict[tuple[int, int], np.ndarray]:
    """Split a square matrix into a ``p x p`` dict of contiguous block copies."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected square matrix, got shape {a.shape}")
    n = a.shape[0]
    out = {}
    for i in range(p):
        rlo, rhi = block_range(i, n, p)
        for j in range(p):
            clo, chi = block_range(j, n, p)
            out[(i, j)] = np.ascontiguousarray(a[rlo:rhi, clo:chi])
    return out


def assemble_matrix(blocks: dict[tuple[int, int], np.ndarray], n: int, p: int) -> np.ndarray:
    """Inverse of :func:`partition_matrix`."""
    a = np.zeros((n, n))
    for i in range(p):
        rlo, rhi = block_range(i, n, p)
        for j in range(p):
            clo, chi = block_range(j, n, p)
            blk = blocks[(i, j)]
            if blk.shape != (rhi - rlo, chi - clo):
                raise ValueError(
                    f"block {(i, j)} has shape {blk.shape}, expected "
                    f"{(rhi - rlo, chi - clo)}"
                )
            a[rlo:rhi, clo:chi] = blk
    return a


def part_slices(total: int, n_dup: int) -> list[tuple[int, int]]:
    """The ``N_DUP`` contiguous equal parts of a length-``total`` buffer."""
    check_positive("n_dup", n_dup)
    if total < 0:
        raise ValueError(f"negative length {total}")
    return [((c * total) // n_dup, ((c + 1) * total) // n_dup) for c in range(n_dup)]


def split_parts(buf: np.ndarray | None, total: int, n_dup: int):
    """Views of the N_DUP parts of ``buf`` (or Nones in modeled mode).

    Returns ``list[(lo, hi, view_or_None)]``; ``buf`` must be 1-D of length
    ``total`` when given.
    """
    if buf is not None:
        buf = np.asarray(buf)
        if buf.ndim != 1 or buf.size != total:
            raise ValueError(f"buffer must be 1-D of length {total}, got {buf.shape}")
    out = []
    for lo, hi in part_slices(total, n_dup):
        out.append((lo, hi, None if buf is None else buf[lo:hi]))
    return out
