"""Process meshes and the paper's communicator structure.

3D mesh (SymmSquareCube, Algorithms 3-5; also 2.5D with ``pk != pi``):

* coordinates ``(i, j, k)`` with ``i, j`` the in-plane block indices and
  ``k`` the grid/replication dimension;
* rank numbering is the paper's "natural" assignment — "ranks are assigned
  row by row in one plane and then plane by plane":
  ``rank = k * (pi*pj) + i * pj + j``;
* ``row_comm(j, k)``  = processes ``P[:, j, k]`` (paper notation),
  ``col_comm(i, k)``  = processes ``P[i, :, k]``,
  ``grd_comm(i, j)``  = processes ``P[i, j, :]``;
* every family is duplicated ``n_dup`` times (``MPI_Comm_dup``), giving the
  independent channels of the nonblocking-overlap technique.

2D mesh (matvec Algorithms 1-2, SUMMA): coordinates ``(i, j)``, row
communicators ``P[i, :]`` and column communicators ``P[:, j]``.
"""

from __future__ import annotations

from repro.mpi.comm import Comm
from repro.mpi.world import World
from repro.util import check_positive


class Mesh3D:
    """A ``pi x pj x pk`` process mesh with duplicated row/col/grd comms."""

    def __init__(self, world: World, pi: int, pj: int | None = None,
                 pk: int | None = None, n_dup: int = 1):
        pj = pi if pj is None else pj
        pk = pi if pk is None else pk
        check_positive("pi", pi)
        check_positive("pj", pj)
        check_positive("pk", pk)
        check_positive("n_dup", n_dup)
        if pi * pj * pk > world.num_ranks:
            raise ValueError(
                f"mesh {pi}x{pj}x{pk} needs {pi * pj * pk} ranks, world has "
                f"{world.num_ranks}"
            )
        self.world = world
        self.pi, self.pj, self.pk = pi, pj, pk
        self.n_dup = n_dup
        self.global_comm = world.new_comm(range(pi * pj * pk), "mesh3d.global")
        self.global_dups = self.global_comm.dup_many(n_dup)
        self._row: dict[tuple[int, int], list[Comm]] = {}
        self._col: dict[tuple[int, int], list[Comm]] = {}
        self._grd: dict[tuple[int, int], list[Comm]] = {}
        for j in range(pj):
            for k in range(pk):
                ranks = [self.rank_of(i, j, k) for i in range(pi)]
                base = world.new_comm(ranks, f"row[{j},{k}]")
                self._row[(j, k)] = [base] + base.dup_many(n_dup - 1) if n_dup > 1 else [base]
        for i in range(pi):
            for k in range(pk):
                ranks = [self.rank_of(i, j, k) for j in range(pj)]
                base = world.new_comm(ranks, f"col[{i},{k}]")
                self._col[(i, k)] = [base] + base.dup_many(n_dup - 1) if n_dup > 1 else [base]
        for i in range(pi):
            for j in range(pj):
                ranks = [self.rank_of(i, j, k) for k in range(pk)]
                base = world.new_comm(ranks, f"grd[{i},{j}]")
                self._grd[(i, j)] = [base] + base.dup_many(n_dup - 1) if n_dup > 1 else [base]

    @property
    def num_ranks(self) -> int:
        return self.pi * self.pj * self.pk

    def rank_of(self, i: int, j: int, k: int) -> int:
        """Global rank of mesh coordinate ``(i, j, k)``."""
        if not (0 <= i < self.pi and 0 <= j < self.pj and 0 <= k < self.pk):
            raise ValueError(f"coordinate ({i},{j},{k}) outside mesh")
        return k * (self.pi * self.pj) + i * self.pj + j

    def coords_of(self, rank: int) -> tuple[int, int, int]:
        """Mesh coordinate of a global rank."""
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside mesh")
        k, rem = divmod(rank, self.pi * self.pj)
        i, j = divmod(rem, self.pj)
        return i, j, k

    # Communicator accessors: ``c`` selects the N_DUP duplicate (0-based).

    def row_comm(self, j: int, k: int, c: int = 0) -> Comm:
        """Communicator over ``P[:, j, k]`` (local rank in it = mesh ``i``)."""
        return self._row[(j, k)][c]

    def col_comm(self, i: int, k: int, c: int = 0) -> Comm:
        """Communicator over ``P[i, :, k]`` (local rank = mesh ``j``)."""
        return self._col[(i, k)][c]

    def grd_comm(self, i: int, j: int, c: int = 0) -> Comm:
        """Communicator over ``P[i, j, :]`` (local rank = mesh ``k``)."""
        return self._grd[(i, j)][c]

    def global_dup(self, c: int = 0) -> Comm:
        return self.global_dups[c]


class Mesh2D:
    """A ``p x p`` mesh with duplicated row/col comms (Algorithms 1-2, SUMMA).

    ``rank = i * p + j``; ``row_comm(i)`` spans ``P[i, :]`` (local rank =
    ``j``), ``col_comm(j)`` spans ``P[:, j]`` (local rank = ``i``).
    """

    def __init__(self, world: World, p: int, n_dup: int = 1, channels=None):
        check_positive("p", p)
        check_positive("n_dup", n_dup)
        if p * p > world.num_ranks:
            raise ValueError(f"mesh {p}x{p} needs {p * p} ranks")
        if channels is not None and len(channels) != n_dup:
            raise ValueError(
                f"channels has {len(channels)} entries for {n_dup} dups"
            )
        self.world = world
        self.p = p
        self.n_dup = n_dup
        self.channels = None if channels is None else tuple(channels)
        self.global_comm = world.new_comm(range(p * p), "mesh2d.global")
        self._row = {}
        self._col = {}
        for i in range(p):
            ranks = [self.rank_of(i, j) for j in range(p)]
            self._row[i] = self._dup_family(ranks, f"row[{i}]")
        for j in range(p):
            ranks = [self.rank_of(i, j) for i in range(p)]
            self._col[j] = self._dup_family(ranks, f"col[{j}]")

    def _dup_family(self, ranks, name: str) -> list[Comm]:
        """``n_dup`` congruent comms, each optionally pinned to a channel.

        The colored pipelined-multicast kernels pass ``channels`` so that
        duplicate ``c``'s broadcasts ride fabric lane ``channels[c]``,
        keeping successive panels' transfers on disjoint link resources.
        """
        ch = self.channels
        base = self.world.new_comm(ranks, name,
                                   channel=0 if ch is None else ch[0])
        if self.n_dup == 1:
            return [base]
        return [base] + base.dup_many(
            self.n_dup - 1, channels=None if ch is None else ch[1:]
        )

    @property
    def num_ranks(self) -> int:
        return self.p * self.p

    def rank_of(self, i: int, j: int) -> int:
        if not (0 <= i < self.p and 0 <= j < self.p):
            raise ValueError(f"coordinate ({i},{j}) outside mesh")
        return i * self.p + j

    def coords_of(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside mesh")
        return divmod(rank, self.p)

    def row_comm(self, i: int, c: int = 0) -> Comm:
        return self._row[i][c]

    def col_comm(self, j: int, c: int = 0) -> Comm:
        return self._col[j][c]
