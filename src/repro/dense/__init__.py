"""Distributed dense matrix computations on the simulated MPI substrate.

Contents:

* :mod:`repro.dense.distribution` — 2D block partitioning helpers
  (block ranges, scatter/assemble, part splitting for N_DUP pipelines);
* :mod:`repro.dense.mesh` — 2D and 3D process meshes with the paper's
  row/col/grd communicators and their ``N_DUP`` duplicates;
* :mod:`repro.dense.matvec` — Algorithms 1 and 2 (parallel matrix-vector
  multiplication, plain and pipelined/overlapped);
* :mod:`repro.dense.summa` — SUMMA, the 2D algorithm of the related work;
* :mod:`repro.dense.cannon` — Cannon's algorithm (alignment + shift steps),
  the subroutine of the 2.5D implementation;
* :mod:`repro.dense.mm25d` — 2.5D matrix multiplication
  (Solomonik & Demmel), used by the paper's Algorithm 6.

Everything runs in two modes: *real data* (numpy blocks, results verified
against dense numpy products in the tests) and *modeled size* (timing only,
used at the paper's full problem scale).
"""

from repro.dense.distribution import (
    block_range,
    block_dim,
    block_shape,
    partition_matrix,
    assemble_matrix,
    part_slices,
    split_parts,
)
from repro.dense.mesh import Mesh2D, Mesh3D
from repro.dense.matvec import run_matvec, matvec_program
from repro.dense.summa import (
    run_summa,
    summa_channel_claims,
    summa_plan_population,
)
from repro.dense.cannon import cannon_program
from repro.dense.mm25d import run_mm25d
from repro.dense.mm3d import run_mm3d

__all__ = [
    "block_range",
    "block_dim",
    "block_shape",
    "partition_matrix",
    "assemble_matrix",
    "part_slices",
    "split_parts",
    "Mesh2D",
    "Mesh3D",
    "run_matvec",
    "matvec_program",
    "run_summa",
    "summa_channel_claims",
    "summa_plan_population",
    "cannon_program",
    "run_mm25d",
    "run_mm3d",
]
