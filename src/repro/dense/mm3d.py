"""3D matrix multiplication (Dekel/Nassimi/Sahni; Agarwal et al.) — §II.

``C = A B`` on a ``p x p x p`` mesh: the inner dimension is split across the
grid axis, so process ``(i, j, k)`` computes ``A[i,k] @ B[k,j]`` and the
partial products are reduced along the grid communicators.  Per-process
communication volume is ``O(n^2 / p^2)`` (vs ``O(n^2 / p)`` for 2D
algorithms) at the cost of ``p``-fold input replication — the trade-off the
paper's related-work section describes and the SymmSquareCube kernel
specializes.

Data flow per process ``(i, j, k)``:

1. ``A[i,k]`` arrives via broadcast in ``col_comm(i, k)`` from its owner
   ``(i, k, k)``... in this standalone version both inputs start on the
   front face: ``(i, j, 0)`` holds ``A[i,j]`` and ``B[i,j]``;
2. ``A[i,k]`` is routed to plane ``k``: ``(i, k, 0)`` sends its A block to
   ``(i, k, k)``, which broadcasts it along ``col_comm(i, k)`` (so every
   ``(i, *, k)`` has ``A[i,k]``);
3. ``B[k,j]`` likewise: ``(k, j, 0)`` sends to ``(k, j, k)``, which
   broadcasts along ``row_comm(j, k)`` (so every ``(*, j, k)`` has
   ``B[k,j]``);
4. local multiply ``C_part = A[i,k] @ B[k,j]``;
5. reduce ``C_part`` over ``grd_comm(i, j)`` to the front face.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense.distribution import block_range
from repro.dense.mesh import Mesh3D
from repro.mpi.collectives.plan import block_partition
from repro.mpi.world import RankEnv, World
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.util import check_positive

_TAG_A = 31
_TAG_B = 32


def mm3d_program(
    env: RankEnv,
    mesh: Mesh3D,
    n: int,
    a_blk: np.ndarray | None,
    b_blk: np.ndarray | None,
    real: bool,
):
    """Rank program for one 3D product; front-face ranks return ``C[i,j]``."""
    p = mesh.pi
    if mesh.pj != p or mesh.pk != p:
        raise ValueError("3D multiplication needs a cubic mesh")
    i, j, k = mesh.coords_of(env.rank)
    dims, _ranges = block_partition(n, p)
    bi, bj, bk = dims[i], dims[j], dims[k]
    gv_global = env.view(mesh.global_comm)

    # Step 2: route + broadcast A[i,k] within plane k.
    # (i, k, 0) -> (i, k, k), then bcast over col_comm(i, k) (root j = k).
    sreqs = []
    if k == 0 and j != 0:
        dst = mesh.global_comm.local(mesh.rank_of(i, j, j))
        if mesh.rank_of(i, j, j) != env.rank:
            data = np.ascontiguousarray(a_blk) if real else None
            req = yield from gv_global.isend(dst, data=data,
                                             nbytes=bi * bj * 8, tag=_TAG_A)
            sreqs.append(req)
    a_routed = None
    if j == k:
        if k == 0:
            a_routed = np.ascontiguousarray(a_blk).ravel() if real else None
        else:
            src = mesh.global_comm.local(mesh.rank_of(i, j, 0))
            rreq = yield from gv_global.irecv(src, tag=_TAG_A)
            got = yield from rreq.wait()
            a_routed = np.asarray(got).ravel() if real else None
    col = env.view(mesh.col_comm(i, k))
    buf = a_routed if j == k else (np.empty(bi * bk) if real else None)
    buf = yield from col.bcast(buf, nbytes=bi * bk * 8, root=k)
    a_ik = buf.reshape(bi, bk) if real else None

    # Step 3: route + broadcast B[k,j] within plane k.
    # (k, j, 0) -> (k, j, k), then bcast over row_comm(j, k) (root i = k).
    if k == 0 and i != 0:
        dst_rank = mesh.rank_of(i, j, i)
        if dst_rank != env.rank:
            dst = mesh.global_comm.local(dst_rank)
            data = np.ascontiguousarray(b_blk) if real else None
            req = yield from gv_global.isend(dst, data=data,
                                             nbytes=bi * bj * 8, tag=_TAG_B)
            sreqs.append(req)
    b_routed = None
    if i == k:
        if k == 0:
            b_routed = np.ascontiguousarray(b_blk).ravel() if real else None
        else:
            src = mesh.global_comm.local(mesh.rank_of(i, j, 0))
            rreq = yield from gv_global.irecv(src, tag=_TAG_B)
            got = yield from rreq.wait()
            b_routed = np.asarray(got).ravel() if real else None
    row = env.view(mesh.row_comm(j, k))
    buf = b_routed if i == k else (np.empty(bk * bj) if real else None)
    buf = yield from row.bcast(buf, nbytes=bk * bj * 8, root=k)
    b_kj = buf.reshape(bk, bj) if real else None

    # Step 4: local multiply; step 5: reduce along the grid to the front.
    c_part = yield from env.gemm(a_ik, b_kj, bi, bk, bj, label="mm3d-gemm")
    grd = env.view(mesh.grd_comm(i, j))
    send = c_part.ravel() if real else None
    red = yield from grd.reduce(send, nbytes=bi * bj * 8, root=0)
    for req in sreqs:
        yield from req.wait()
    if k == 0 and real:
        return red.reshape(bi, bj)
    return None


@dataclass
class MM3DResult:
    """Outcome of :func:`run_mm3d`."""

    c: np.ndarray | None
    elapsed: float
    world: World


def run_mm3d(
    p: int,
    n: int,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
    *,
    ppn: int = 1,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
) -> MM3DResult:
    """Run one 3D product ``C = A B`` on a fresh ``p^3`` world."""
    check_positive("p", p)
    if (a is None) != (b is None):
        raise ValueError("pass both a and b, or neither")
    real = a is not None
    world = World(block_placement(p**3, max(ppn, 1)), params=params,
                  machine=machine)
    mesh = Mesh3D(world, p)

    def program(env: RankEnv):
        i, j, k = mesh.coords_of(env.rank)
        a_blk = b_blk = None
        if real and k == 0:
            rlo, rhi = block_range(i, n, p)
            clo, chi = block_range(j, n, p)
            a_blk = np.ascontiguousarray(a[rlo:rhi, clo:chi])
            b_blk = np.ascontiguousarray(b[rlo:rhi, clo:chi])
        result = yield from mm3d_program(env, mesh, n, a_blk, b_blk, real)
        return result

    world.spawn_all(program, ranks=range(p**3))
    elapsed = world.run()
    c_mat = None
    if real:
        c_mat = np.zeros((n, n))
        for rank, c_blk in enumerate(world.results()):
            i, j, k = mesh.coords_of(rank)
            if k != 0:
                continue
            rlo, rhi = block_range(i, n, p)
            clo, chi = block_range(j, n, p)
            c_mat[rlo:rhi, clo:chi] = c_blk
    return MM3DResult(c=c_mat, elapsed=elapsed, world=world)
