"""Cannon's algorithm steps — the subroutine of 2.5D multiplication (Alg. 6).

On a ``q x q`` (layer of a) mesh, process ``(i, j)`` multiplies the
travelling blocks ``A[i, l]`` and ``B[l, j]`` with
``l = (i + j + offset + t) mod q`` at step ``t``, accumulating into its
home block ``C[i, j]``, and circularly shifts A left / B up between steps
with point-to-point sendrecv in the row/column communicators.  ``offset``
selects the slice of the inner dimension a replication layer covers
(``offset = k * steps`` in 2.5D).

Blocks may be non-uniform (``n`` not divisible by ``q``): the travelling
block's logical index is tracked so shapes always stay compatible.
"""

from __future__ import annotations

import numpy as np

from repro.dense.mesh import Mesh3D
from repro.mpi.collectives.plan import block_partition, cannon_shift_plan
from repro.mpi.world import RankEnv


def _shift(env, comm_view, dst_local, src_local, payload, nbytes, tag):
    """Sendrecv helper: returns the payload received from ``src_local``."""
    received = yield from comm_view.sendrecv(
        dst_local, src_local, data=payload, nbytes=nbytes, tag=tag
    )
    return received


def cannon_align(
    env: RankEnv,
    mesh: Mesh3D,
    k: int,
    i: int,
    j: int,
    n: int,
    offset: int,
    a_blk: np.ndarray | None,
    b_blk: np.ndarray | None,
):
    """Initial Cannon alignment on layer ``k``: returns travelling (A, B, l).

    Starting from home blocks ``A[i,j]``/``B[i,j]``, after alignment process
    ``(i, j)`` holds ``A[i, l0]`` and ``B[l0, j]`` with
    ``l0 = (i + j + offset) mod q``.  A moves along mesh rows in ``col_comm``
    (the communicator spanning ``P[i, :, k]``), B along mesh columns in
    ``row_comm`` (spanning ``P[:, j, k]``).
    """
    q = mesh.pi
    dims, _ranges = block_partition(n, q)
    bi, bj = dims[i], dims[j]
    # A goes to (i, j') with j' = (j - i - offset) % q, B to (i', j) with
    # i' = (i - j - offset) % q — memoized with the step itinerary.
    (a_dst, a_src, b_dst, b_src, l0), _shifts = cannon_shift_plan(
        q, i, j, n, 0, offset
    )
    row_of_i = env.view(mesh.col_comm(i, k))  # spans P[i, :, k]; local rank = j
    if a_dst == j:
        a_recv = a_blk
    else:
        a_recv = yield from _shift(
            env, row_of_i, a_dst, a_src, a_blk, bi * bj * 8, 11
        )
    col_of_j = env.view(mesh.row_comm(j, k))  # spans P[:, j, k]; local rank = i
    if b_dst == i:
        b_recv = b_blk
    else:
        b_recv = yield from _shift(
            env, col_of_j, b_dst, b_src, b_blk, bi * bj * 8, 12
        )
    return a_recv, b_recv, l0


def cannon_program(
    env: RankEnv,
    mesh: Mesh3D,
    k: int,
    i: int,
    j: int,
    n: int,
    steps: int,
    offset: int,
    a_blk: np.ndarray | None,
    b_blk: np.ndarray | None,
    c_acc: np.ndarray | None,
):
    """Run ``steps`` Cannon multiply-shift steps on layer ``k``.

    ``a_blk``/``b_blk`` are the *home* blocks ``A[i,j]``/``B[i,j]`` (post
    replication broadcast); ``c_acc`` is the accumulator block (allocated
    when real data is in play).  Returns ``c_acc``.
    """
    if steps < 0:
        raise ValueError(f"negative step count {steps}")
    if steps == 0:
        return c_acc
    q = mesh.pi
    dims, _ranges = block_partition(n, q)
    bi, bj = dims[i], dims[j]
    _align, shifts = cannon_shift_plan(q, i, j, n, steps, offset)
    a_cur, b_cur, _l0 = yield from cannon_align(env, mesh, k, i, j, n, offset, a_blk, b_blk)
    row_of_i = env.view(mesh.col_comm(i, k))  # A travels here (local rank = j)
    col_of_j = env.view(mesh.row_comm(j, k))  # B travels here (local rank = i)
    a_left, a_right = (j - 1) % q, (j + 1) % q
    b_up, b_down = (i - 1) % q, (i + 1) % q
    last = steps - 1
    for t, (_l, bl) in enumerate(shifts):
        c_acc = yield from env.gemm(
            a_cur, b_cur, bi, bl, bj, accumulate=c_acc, label="cannon-gemm"
        )
        if t == last:
            break  # no shift after the last multiply
        # Shift A left: send to (i, j-1), receive A[i, l+1] from (i, j+1).
        a_cur = yield from _shift(
            env, row_of_i, a_left, a_right, a_cur, bi * bl * 8, 13
        )
        # Shift B up: send to (i-1, j), receive B[l+1, j] from (i+1, j).
        b_cur = yield from _shift(
            env, col_of_j, b_up, b_down, b_cur, bl * bj * 8, 14
        )
    return c_acc
