"""2.5D matrix multiplication (Solomonik & Demmel), on a ``q x q x c`` mesh.

``P = q^2 c`` processes; the front face (``k = 0``) owns the ``q x q`` block
partitions of A and B.  Each of the ``c`` replication layers receives a full
copy of A and B (grid broadcast), runs ``s = q / c`` Cannon steps at inner
offset ``k * s``, and the partial C blocks are summed across layers back to
the front face.  Memory use is ``c`` times the 2D algorithm's; per-process
communication volume drops from ``O(n^2/sqrt(P))`` to ``O(n^2/sqrt(c P))``
(§II of the paper).

``c = 1`` degenerates to Cannon's 2D algorithm; ``c = q`` is the 3D
algorithm limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense.cannon import cannon_program
from repro.dense.distribution import block_range
from repro.dense.mesh import Mesh3D
from repro.mpi.collectives.plan import block_partition
from repro.mpi.world import RankEnv, World
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.util import check_positive


def bcast_block_into(env: RankEnv, comm_view, blk: np.ndarray | None,
                     shape: tuple[int, int], root: int, real: bool):
    """Like :func:`bcast_block` but allocates receive buffers in real mode."""
    nbytes = shape[0] * shape[1] * 8
    if not real:
        yield from comm_view.bcast(nbytes=nbytes, root=root)
        return None
    if comm_view.rank == root:
        buf = np.ascontiguousarray(blk).ravel()
    else:
        buf = np.empty(shape[0] * shape[1])
    out = yield from comm_view.bcast(buf, nbytes=nbytes, root=root)
    return out.reshape(shape)


def mm25d_program(
    env: RankEnv,
    mesh: Mesh3D,
    n: int,
    a_blk: np.ndarray | None,
    b_blk: np.ndarray | None,
    real: bool,
):
    """Rank program for one 2.5D product; front face returns ``C[i,j]``."""
    q, c = mesh.pi, mesh.pk
    if q % c != 0:
        raise ValueError(f"2.5D requires c | q, got q={q}, c={c}")
    s = q // c
    i, j, k = mesh.coords_of(env.rank)
    dims, _ranges = block_partition(n, q)
    bi, bj = dims[i], dims[j]
    grd = env.view(mesh.grd_comm(i, j))
    # Replicate A and B to all layers.
    a_home = yield from bcast_block_into(env, grd, a_blk, (bi, bj), 0, real)
    b_home = yield from bcast_block_into(env, grd, b_blk, (bi, bj), 0, real)
    # Layer-local Cannon steps covering inner indices [k*s, (k+1)*s).
    c_acc = np.zeros((bi, bj)) if real else None
    c_acc = yield from cannon_program(
        env, mesh, k, i, j, n, steps=s, offset=k * s,
        a_blk=a_home, b_blk=b_home, c_acc=c_acc,
    )
    # Sum partial C across layers back to the front face.
    send = c_acc.ravel() if real else None
    red = yield from grd.reduce(send, nbytes=bi * bj * 8, root=0)
    if k == 0 and real:
        return red.reshape(bi, bj)
    return None


@dataclass
class MM25DResult:
    """Outcome of :func:`run_mm25d`."""

    c: np.ndarray | None
    elapsed: float
    world: World


def run_mm25d(
    q: int,
    c: int,
    n: int,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
    *,
    ppn: int = 1,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
) -> MM25DResult:
    """Run one 2.5D product ``C = A B`` on a fresh ``q x q x c`` world."""
    check_positive("q", q)
    check_positive("c", c)
    if q % c != 0:
        raise ValueError(f"2.5D requires c | q, got q={q}, c={c}")
    if (a is None) != (b is None):
        raise ValueError("pass both a and b, or neither")
    real = a is not None
    world = World(block_placement(q * q * c, max(ppn, 1)), params=params,
                  machine=machine)
    mesh = Mesh3D(world, q, q, c)

    def program(env: RankEnv):
        i, j, k = mesh.coords_of(env.rank)
        a_blk = b_blk = None
        if real and k == 0:
            rlo, rhi = block_range(i, n, q)
            clo, chi = block_range(j, n, q)
            a_blk = np.ascontiguousarray(a[rlo:rhi, clo:chi])
            b_blk = np.ascontiguousarray(b[rlo:rhi, clo:chi])
        result = yield from mm25d_program(env, mesh, n, a_blk, b_blk, real)
        return result

    world.spawn_all(program, ranks=range(q * q * c))
    elapsed = world.run()
    c_mat = None
    if real:
        c_mat = np.zeros((n, n))
        for rank, c_blk in enumerate(world.results()):
            i, j, k = mesh.coords_of(rank)
            if k != 0:
                continue
            rlo, rhi = block_range(i, n, q)
            clo, chi = block_range(j, n, q)
            c_mat[rlo:rhi, clo:chi] = c_blk
    return MM25DResult(c=c_mat, elapsed=elapsed, world=world)
