"""SUMMA — the 2D algorithm of van de Geijn & Watts (related work, §II).

``C = A B`` on a ``p x p`` mesh: for every block column ``l``, the owners
broadcast ``A[i,l]`` along mesh row ``i`` and ``B[l,j]`` along mesh column
``j``, and every process accumulates ``A[i,l] @ B[l,j]``.  Included as the
reference 2D algorithm the paper positions 3D/2.5D algorithms against, and
as an integration test of the substrate (its results are checked against
dense numpy products).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense.distribution import block_dim, block_range
from repro.dense.mesh import Mesh2D
from repro.mpi.world import RankEnv, World
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.util import check_positive


def summa_program(
    env: RankEnv,
    mesh: Mesh2D,
    n: int,
    a_block: np.ndarray | None,
    b_block: np.ndarray | None,
):
    """Rank program: one SUMMA multiplication; returns my ``C[i,j]`` block."""
    p = mesh.p
    i, j = mesh.coords_of(env.rank)
    bi = block_dim(i, n, p)
    bj = block_dim(j, n, p)
    real = a_block is not None
    c_block = np.zeros((bi, bj)) if real else None
    row = env.view(mesh.row_comm(i))
    col = env.view(mesh.col_comm(j))
    for l in range(p):
        bl = block_dim(l, n, p)
        # Broadcast A[i,l] along row i (root = column l).
        if j == l:
            a_panel = a_block
            a_buf = a_block.ravel().copy() if real else None
        else:
            a_buf = np.empty(bi * bl) if real else None
        a_buf = yield from row.bcast(a_buf, nbytes=bi * bl * 8, root=l)
        a_panel = a_buf.reshape(bi, bl) if real else None
        # Broadcast B[l,j] along column j (root = row l).
        if i == l:
            b_buf = b_block.ravel().copy() if real else None
        else:
            b_buf = np.empty(bl * bj) if real else None
        b_buf = yield from col.bcast(b_buf, nbytes=bl * bj * 8, root=l)
        b_panel = b_buf.reshape(bl, bj) if real else None
        yield from env.gemm(a_panel, b_panel, bi, bl, bj,
                            accumulate=c_block, label="summa-gemm")
    return c_block


@dataclass
class SummaResult:
    """Outcome of :func:`run_summa`."""

    c: np.ndarray | None
    elapsed: float
    world: World


def run_summa(
    p: int,
    n: int,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
    *,
    ppn: int = 1,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
) -> SummaResult:
    """Run one SUMMA product on a fresh world; assemble C in real mode."""
    check_positive("p", p)
    if (a is None) != (b is None):
        raise ValueError("pass both a and b, or neither")
    world = World(block_placement(p * p, 1 if ppn < 1 else ppn), params=params,
                  machine=machine)
    mesh = Mesh2D(world, p)

    def program(env: RankEnv):
        i, j = mesh.coords_of(env.rank)
        if a is not None:
            rlo, rhi = block_range(i, n, p)
            clo, chi = block_range(j, n, p)
            a_blk = np.ascontiguousarray(a[rlo:rhi, clo:chi])
            b_blk = np.ascontiguousarray(b[rlo:rhi, clo:chi])
        else:
            a_blk = b_blk = None
        c_blk = yield from summa_program(env, mesh, n, a_blk, b_blk)
        return c_blk

    world.spawn_all(program, ranks=range(p * p))
    elapsed = world.run()
    c = None
    if a is not None:
        c = np.zeros((n, n))
        for rank, c_blk in enumerate(world.results()):
            i, j = mesh.coords_of(rank)
            rlo, rhi = block_range(i, n, p)
            clo, chi = block_range(j, n, p)
            c[rlo:rhi, clo:chi] = c_blk
    return SummaResult(c=c, elapsed=elapsed, world=world)
