"""SUMMA — the 2D algorithm of van de Geijn & Watts (related work, §II).

``C = A B`` on a ``p x p`` mesh: for every block column ``l``, the owners
broadcast ``A[i,l]`` along mesh row ``i`` and ``B[l,j]`` along mesh column
``j``, and every process accumulates ``A[i,l] @ B[l,j]``.  Included as the
reference 2D algorithm the paper positions 3D/2.5D algorithms against, and
as an integration test of the substrate (its results are checked against
dense numpy products).

Three variants, one correctness contract (identical ``C``):

``plain``
    The textbook loop: blocking row broadcast, blocking column broadcast,
    GEMM — every panel's two transfers and its compute fully serialize,
    and each blocking collective pays the per-round synchronization gap.

``streaming``
    Tile-depth pipelining: a sliding window of ``depth`` panels keeps that
    many (row ``Ibcast``, col ``Ibcast``) pairs in flight, so panel
    ``l+1..l+depth-1``'s transfers overlap panel ``l``'s GEMM and each
    other.  All traffic rides fabric lane 0 — in-flight panels share every
    link equally.

``colored``
    Pipelined multicast: the row/col communicators are duplicated
    ``colors`` times (2 or 4) and duplicate ``c`` is pinned to fabric
    channel ``c``; panel ``l`` broadcasts on color ``l % colors``.
    Successive panels' transfers therefore occupy *disjoint* link
    resources instead of fair-sharing one lane — the paper's
    overlapping-communication-with-communication technique applied to
    SUMMA's panel broadcasts.

All three express their broadcasts as :class:`CollectivePlan` schedules
(via :meth:`CommView.bcast` / :meth:`CommView.ibcast`), so they share the
plan cache, the zero-copy executor, and the static schedule verifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense.distribution import block_dim, block_range
from repro.dense.mesh import Mesh2D
from repro.mpi.world import RankEnv, World
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.sim.engine import DeadlineExceeded
from repro.tune.validity import SUMMA_ALGORITHMS, validate_summa_config

__all__ = [
    "SUMMA_ALGORITHMS",
    "SummaResult",
    "run_summa",
    "summa_pipelined_program",
    "summa_plan_population",
    "summa_channel_claims",
    "summa_program",
]


def summa_program(
    env: RankEnv,
    mesh: Mesh2D,
    n: int,
    a_block: np.ndarray | None,
    b_block: np.ndarray | None,
):
    """Rank program: one plain SUMMA multiplication; returns my ``C[i,j]``."""
    p = mesh.p
    i, j = mesh.coords_of(env.rank)
    bi = block_dim(i, n, p)
    bj = block_dim(j, n, p)
    real = a_block is not None
    c_block = np.zeros((bi, bj)) if real else None
    row = env.view(mesh.row_comm(i))
    col = env.view(mesh.col_comm(j))
    for l in range(p):
        bl = block_dim(l, n, p)
        # Broadcast A[i,l] along row i (root = column l).
        if j == l:
            a_buf = a_block.ravel().copy() if real else None
        else:
            a_buf = np.empty(bi * bl) if real else None
        a_buf = yield from row.bcast(a_buf, nbytes=bi * bl * 8, root=l)
        a_panel = a_buf.reshape(bi, bl) if real else None
        # Broadcast B[l,j] along column j (root = row l).
        if i == l:
            b_buf = b_block.ravel().copy() if real else None
        else:
            b_buf = np.empty(bl * bj) if real else None
        b_buf = yield from col.bcast(b_buf, nbytes=bl * bj * 8, root=l)
        b_panel = b_buf.reshape(bl, bj) if real else None
        yield from env.gemm(a_panel, b_panel, bi, bl, bj,
                            accumulate=c_block, label="summa-gemm")
    return c_block


def summa_pipelined_program(
    env: RankEnv,
    mesh: Mesh2D,
    n: int,
    a_block: np.ndarray | None,
    b_block: np.ndarray | None,
    depth: int = 2,
):
    """Rank program: streaming/colored SUMMA with a ``depth``-panel window.

    ``mesh.n_dup`` is the color count: panel ``l``'s row/col ``Ibcast``
    pair is posted on communicator duplicate ``l % mesh.n_dup`` (the
    streaming variant simply runs with one duplicate).  Up to ``depth``
    panels are in flight at once; panel ``l``'s GEMM waits only on its own
    pair, so later panels' transfers hide behind it.
    """
    p = mesh.p
    colors = mesh.n_dup
    i, j = mesh.coords_of(env.rank)
    bi = block_dim(i, n, p)
    bj = block_dim(j, n, p)
    real = a_block is not None
    c_block = np.zeros((bi, bj)) if real else None
    reqs: list = [None] * p
    posted = 0
    for l in range(p):
        while posted < p and posted < l + depth:
            lp = posted
            bl = block_dim(lp, n, p)
            c = lp % colors
            rowv = env.view(mesh.row_comm(i, c))
            colv = env.view(mesh.col_comm(j, c))
            if j == lp:
                a_buf = a_block.ravel().copy() if real else None
            else:
                a_buf = np.empty(bi * bl) if real else None
            a_req = yield from rowv.ibcast(a_buf, nbytes=bi * bl * 8, root=lp)
            if i == lp:
                b_buf = b_block.ravel().copy() if real else None
            else:
                b_buf = np.empty(bl * bj) if real else None
            b_req = yield from colv.ibcast(b_buf, nbytes=bl * bj * 8, root=lp)
            reqs[lp] = (a_req, b_req)
            posted += 1
        a_req, b_req = reqs[l]
        reqs[l] = None
        bl = block_dim(l, n, p)
        a_buf = yield from a_req.wait()
        b_buf = yield from b_req.wait()
        a_panel = a_buf.reshape(bi, bl) if real else None
        b_panel = b_buf.reshape(bl, bj) if real else None
        yield from env.gemm(a_panel, b_panel, bi, bl, bj,
                            accumulate=c_block, label="summa-gemm")
    return c_block


def summa_plan_population(p: int, n: int, algorithm: str = "plain",
                          colors: int = 1, depth: int = 1) -> list[tuple]:
    """Every collective any rank posts, as ``(verb, size, root, n_elems,
    itemsize)`` tuples — the kernel side of the static-verification
    contract (:func:`repro.analysis.schedule.check_plans` rebuilds and
    proves each one's cross-rank plan set).

    All three variants post the same *population*: one row broadcast of
    ``A[i,l]`` and one column broadcast of ``B[l,j]`` per panel ``l``, on
    ``p``-rank communicators rooted at local rank ``l``.  The variants
    differ only in blocking/nonblocking posting and in which communicator
    duplicate carries each panel — neither changes the schedule shapes.
    """
    validate_summa_config(p, n, algorithm, colors, depth, 1)
    pop = set()
    for l in range(p):
        bl = block_dim(l, n, p)
        for i in range(p):
            pop.add(("bcast", p, l, block_dim(i, n, p) * bl, 8))
        for j in range(p):
            pop.add(("bcast", p, l, bl * block_dim(j, n, p), 8))
    return sorted(pop)


def summa_channel_claims(p: int, algorithm: str = "plain", colors: int = 1,
                         depth: int = 1) -> list[tuple[int, int]]:
    """The kernel's channel-claim declaration for the RA308 verifier check.

    Returns ``(color, channel)`` pairs: the colored variant claims that
    communicator duplicate ``c`` rides fabric lane ``c`` for every color,
    and that concurrently-in-flight panels (any window of ``min(depth,
    colors)`` consecutive panels) occupy pairwise-distinct lanes.  The
    verifier checks the pairs are in range and collision-free.
    """
    if algorithm not in SUMMA_ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    if algorithm != "colored":
        return [(0, 0)]
    return [(c, c) for c in range(colors)]


@dataclass
class SummaResult:
    """Outcome of :func:`run_summa`."""

    c: np.ndarray | None
    elapsed: float
    world: World
    algorithm: str = "plain"
    colors: int = 1
    depth: int = 1
    recording: "GraphRecorder | None" = None  # event graph when record=True  # noqa: F821
    tuning: "TuningRecord | None" = None  # decision trace when tune= given  # noqa: F821


def run_summa(
    p: int,
    n: int,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
    *,
    algorithm: str = "plain",
    colors: int | None = None,
    depth: int | None = None,
    ppn: int = 1,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
    tune=None,
    tune_db=None,
    deadline: float | None = None,
    record: bool = False,
    trace: bool = False,
) -> SummaResult:
    """Run one SUMMA product on a fresh world; assemble C in real mode.

    ``algorithm`` selects the variant (see the module docstring);
    ``colors`` defaults to 2 for ``colored`` and is fixed at 1 otherwise;
    ``depth`` defaults to a ``min(2, p)``-panel window for the pipelined
    variants.  When ``params`` is omitted the colored variant builds a
    fabric with ``num_channels = colors``; an explicit ``params`` must
    already provide enough lanes.  ``deadline`` bounds the run at that
    virtual time and raises :class:`DeadlineExceeded` (tuner early
    termination); ``record=True`` captures the event dependency graph
    (colored runs record but are marked invalid — multi-channel flows are
    not replayable); ``trace=True`` collects activity spans and per-flow
    link occupancy, the inputs of :mod:`repro.analytics`.

    ``tune`` hands the variant/colors/depth/PPN choice to :mod:`repro.tune`:
    a :class:`~repro.tune.tuner.TuningPolicy` string builds a private
    :class:`~repro.tune.tuner.Tuner`, while a ``Tuner`` or
    :class:`~repro.tune.service.TuningService` instance is used directly
    (many runs then share one warm cache and coalesced searches).  The
    decision trace is attached as ``SummaResult.tuning``.  ``tune_db`` is
    an optional :class:`~repro.tune.db.TuningDB` for warm starts (policy
    strings only — a tuner object brings its own db).
    """
    if tune is not None:
        from repro.tune.candidates import apply_collective
        from repro.tune.tuner import Tuner

        tuner = (Tuner(db=tune_db, policy=tune) if isinstance(tune, str)
                 else tune)
        decision = tuner.autotune_summa(p, n, ppn=ppn, params=params,
                                        machine=machine)
        best = decision.best
        eff = apply_collective(params or NetworkParams(), best.collective)
        if best.algorithm == "colored" and eff.num_channels < best.n_dup:
            eff = eff.replace(num_channels=best.n_dup)
        result = run_summa(
            p, n, a, b, algorithm=best.algorithm, colors=best.n_dup,
            depth=best.depth, ppn=best.ppn, params=eff, machine=machine,
            deadline=deadline, record=record,
        )
        result.tuning = decision
        return result
    if colors is None:
        colors = 2 if algorithm == "colored" else 1
    if depth is None:
        depth = 1 if algorithm == "plain" else min(2, p)
    if params is None and algorithm == "colored":
        params = NetworkParams(num_channels=colors)
    validate_summa_config(
        p, n, algorithm, colors, depth, max(ppn, 1),
        num_channels=None if params is None else params.num_channels,
    )
    if (a is None) != (b is None):
        raise ValueError("pass both a and b, or neither")
    world = World(block_placement(p * p, 1 if ppn < 1 else ppn), params=params,
                  machine=machine, record=record, trace=trace)
    if algorithm == "colored":
        mesh = Mesh2D(world, p, n_dup=colors, channels=tuple(range(colors)))
    else:
        mesh = Mesh2D(world, p)

    def program(env: RankEnv):
        i, j = mesh.coords_of(env.rank)
        if a is not None:
            rlo, rhi = block_range(i, n, p)
            clo, chi = block_range(j, n, p)
            a_blk = np.ascontiguousarray(a[rlo:rhi, clo:chi])
            b_blk = np.ascontiguousarray(b[rlo:rhi, clo:chi])
        else:
            a_blk = b_blk = None
        t0 = env.now
        env.mark("t0", 0)
        if algorithm == "plain":
            c_blk = yield from summa_program(env, mesh, n, a_blk, b_blk)
        else:
            c_blk = yield from summa_pipelined_program(env, mesh, n, a_blk,
                                                       b_blk, depth)
        env.mark("t1", 0)
        return (env.now - t0, c_blk)

    world.spawn_all(program, ranks=range(p * p))
    world.run(until=deadline)
    if deadline is not None and world.unfinished():
        raise DeadlineExceeded(
            f"run_summa(p={p}, n={n}, {algorithm!r}) exceeded deadline "
            f"{deadline:.6g}s: {len(world.unfinished())} rank program(s) "
            f"unfinished"
        )
    if world.recorder is not None:
        world.recorder.meta.update(kernel="summa", ranks=p * p, iterations=1)
    outs = world.results()
    # Per-call kernel time: max across ranks, the metric the tuner compares
    # (Engine.run(until=) pins the world clock to the deadline, so the
    # engine's final time is not usable under bounded runs).
    elapsed = max(outs[rank][0] for rank in range(p * p))
    c = None
    if a is not None:
        c = np.zeros((n, n))
        for rank in range(p * p):
            i, j = mesh.coords_of(rank)
            rlo, rhi = block_range(i, n, p)
            clo, chi = block_range(j, n, p)
            c[rlo:rhi, clo:chi] = outs[rank][1]
    return SummaResult(c=c, elapsed=elapsed, world=world,
                       algorithm=algorithm, colors=colors, depth=depth,
                       recording=world.recorder)
