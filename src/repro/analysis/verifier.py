"""Runtime MPI correctness verifier (the MUST/ISP-style dynamic checks).

A :class:`CommVerifier` is attached to a :class:`~repro.mpi.world.World`
(``World(verify=True)`` or ``World(verifier=CommVerifier(...))``) and is
driven by passive hooks in :mod:`repro.mpi.comm`,
:mod:`repro.mpi.requests`, :mod:`repro.mpi.transport` and
:meth:`repro.mpi.world.World.run`.  *Passive* is a hard invariant: the
verifier never yields, never schedules engine callbacks and never charges
virtual time, so a verified run is bit-for-bit timing-identical to an
unverified one (the golden-trace tests pin this).

Checks (stable IDs, see :mod:`repro.analysis.findings`):

RA101  collective-sequence matching per communicator — every member rank
       must post the same (op kind, root, byte count) at each sequence
       number; the first divergence is reported with both call sites.
RA102  request leak — a nonblocking operation whose Request was never
       completed by ``wait``/``test``/``waitall``/``waitany`` by exit.
RA103  in-flight buffer hazard — a buffer (or an overlapping view of it)
       passed to an operation while a prior nonblocking op on it is still
       incomplete.
RA104  unmatched point-to-point traffic left in the transport queues.
RA105  tag collision — a second send (or recv) posted with an identical
       user-tag envelope while the first is still unmatched; matching then
       depends on FIFO order only (warning).
RA106  deadlock/stall — the event queue drained with ranks suspended; each
       rank's pending wait is named and p2p wait-for cycles are reported.
RA107  ``waitany([])`` — undefined in MPI; flagged at the call site.

Disable individual checks with ``CommVerifier(disabled={"RA105"})`` — the
mutation-style tests use this to prove every check fails closed.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.analysis.findings import Finding, call_site

#: verifiers attached to live, unfinalized worlds — the delivery targets for
#: violations raised from code with no World in reach (e.g. ``waitany([])``).
_ACTIVE: list = []


def _active_verifiers() -> list["CommVerifier"]:
    alive, out = [], []
    for ref in _ACTIVE:
        v = ref()
        if v is not None and not v.finalized:
            alive.append(ref)
            out.append(v)
    _ACTIVE[:] = alive
    return out


def note_empty_waitany() -> None:
    """Report a ``waitany([])`` call site to every active verifier (RA107)."""
    verifiers = _active_verifiers()
    if not verifiers:
        return
    site = call_site()
    for v in verifiers:
        v.on_empty_waitany(site)


class _ReqInfo:
    """Verifier-side metadata for one user-visible Request."""

    __slots__ = ("req", "op", "rank", "peer", "cid", "seq", "tag", "nbytes",
                 "site", "consumed")

    def __init__(self, req, op, rank, peer, cid, seq, tag, nbytes, site):
        self.req = req
        self.op = op
        self.rank = rank          # global rank that posted the operation
        self.peer = peer          # global peer rank (p2p only)
        self.cid = cid
        self.seq = seq            # collective sequence number (collectives)
        self.tag = tag
        self.nbytes = nbytes
        self.site = site
        self.consumed = False


class _SeqEntry:
    """Reference record for one sequence slot of one communicator."""

    __slots__ = ("kind", "root", "nbytes", "rank", "site", "posted")

    def __init__(self, kind, root, nbytes, rank, site, local_rank):
        self.kind = kind
        self.root = root
        self.nbytes = nbytes
        self.rank = rank          # first global rank to reach this slot
        self.site = site
        self.posted = {local_rank}


class _BufEntry:
    __slots__ = ("rank", "arr", "op", "site")

    def __init__(self, rank, arr, op, site):
        self.rank = rank
        self.arr = arr
        self.op = op
        self.site = site


class CommVerifier:
    """Collects :class:`Finding` objects from the runtime hooks."""

    def __init__(self, disabled=(), max_findings: int = 1000):
        self.disabled = frozenset(disabled)
        self.max_findings = max_findings
        self.findings: list[Finding] = []
        self.finalized = False
        self.world = None
        self._comms: dict[int, tuple[str, tuple]] = {}   # cid -> (name, ranks)
        self._seq: dict[int, list[_SeqEntry]] = {}
        self._requests: dict[int, _ReqInfo] = {}
        self._buffers: dict[int, _BufEntry] = {}         # keyed by id(req)
        self._waiting: dict[int, tuple] = {}             # rank -> (label, reqs, site)

    # -- bookkeeping ----------------------------------------------------------

    def attach(self, world) -> None:
        """Bind to ``world``; called by :class:`~repro.mpi.world.World`."""
        self.world = world
        _ACTIVE.append(weakref.ref(self))

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def _now(self) -> float | None:
        return None if self.world is None else self.world.engine.now

    def _emit(self, check: str, message: str, *, rank=None, site=None,
              **extra) -> None:
        if check in self.disabled or len(self.findings) >= self.max_findings:
            return
        self.findings.append(Finding(
            check=check, message=message, rank=rank, time=self._now(),
            site=site, extra=extra,
        ))

    def _comm_name(self, cid: int) -> str:
        name, _ranks = self._comms.get(cid, (f"cid{cid}", ()))
        return name

    # -- hook: communicators ---------------------------------------------------

    def on_comm_created(self, comm) -> None:
        self._comms[comm.cid] = (comm.name, comm.ranks)

    # -- hook: collectives (RA101, RA103) -------------------------------------

    def on_collective_posted(self, comm, local_rank: int, seq: int, kind: str,
                             root, nbytes: int, buf) -> str | None:
        """Sequence-match this post; returns the captured call site."""
        site = call_site()
        global_rank = comm.ranks[local_rank]
        log = self._seq.setdefault(comm.cid, [])
        if seq == len(log):
            log.append(_SeqEntry(kind, root, nbytes, global_rank, site,
                                 local_rank))
        elif seq < len(log):
            ref = log[seq]
            ref.posted.add(local_rank)
            if (kind, root, nbytes) != (ref.kind, ref.root, ref.nbytes):
                self._emit(
                    "RA101",
                    f"comm {self._comm_name(comm.cid)!r} (cid {comm.cid}) "
                    f"seq {seq}: rank {global_rank} posted "
                    f"{kind}(root={root}, nbytes={nbytes}) but rank "
                    f"{ref.rank} posted {ref.kind}(root={ref.root}, "
                    f"nbytes={ref.nbytes}) at {ref.site}",
                    rank=global_rank, site=site,
                    other_rank=ref.rank, other_site=ref.site, seq=seq,
                )
        if buf is not None:
            self.check_buffer(global_rank, buf, kind, site)
        return site

    # -- hook: buffers (RA103) -------------------------------------------------

    def check_buffer(self, rank: int, arr, op: str,
                     site: str | None = None) -> None:
        """Flag overlap between ``arr`` and any in-flight buffer of ``rank``."""
        if arr is None:
            return
        if site is None:
            site = call_site()
        arr = np.asarray(arr)
        for entry in self._buffers.values():
            if entry.rank == rank and np.shares_memory(entry.arr, arr):
                self._emit(
                    "RA103",
                    f"rank {rank} passed a buffer to {op} that overlaps the "
                    f"buffer of an incomplete {entry.op} posted at "
                    f"{entry.site}",
                    rank=rank, site=site, pending_op=entry.op,
                    pending_site=entry.site,
                )
                return

    def hold_buffer(self, rank: int, arr, op: str, site: str | None,
                    req) -> None:
        """Track ``arr`` as in flight until ``req`` completes."""
        if arr is None:
            return
        key = id(req)
        self._buffers[key] = _BufEntry(rank, np.asarray(arr), op, site)
        req.done.add_callback(lambda _ev: self._buffers.pop(key, None))

    # -- hook: requests (RA102) ------------------------------------------------

    def track_request(self, req, op: str, rank: int,
                      site: str | None = None, *,
                      peer=None, cid=None, seq=None, tag=None,
                      nbytes: int = 0) -> None:
        if site is None:
            site = call_site()
        self._requests[id(req)] = _ReqInfo(
            req, op, rank, peer, cid, seq, tag, nbytes, site,
        )

    def on_p2p_posted(self, req, op: str, rank: int, *, peer: int, cid: int,
                      tag, nbytes: int, buf=None) -> None:
        """One-stop hook for ``isend``/``irecv``: RA102/RA103 bookkeeping."""
        site = call_site()
        if buf is not None:
            self.check_buffer(rank, buf, op, site)
        self.track_request(req, op, rank, site, peer=peer, cid=cid, tag=tag,
                           nbytes=nbytes)
        if op == "isend" and buf is not None and not req.done.fired:
            self.hold_buffer(rank, buf, op, site, req)

    def mark_consumed(self, req) -> None:
        info = self._requests.get(id(req))
        if info is not None:
            info.consumed = True

    # -- hook: waits (RA106 bookkeeping) ---------------------------------------

    def on_wait_begin(self, rank: int, reqs, label: str) -> None:
        self._waiting[rank] = (label, tuple(reqs), call_site())

    def on_wait_end(self, rank: int) -> None:
        self._waiting.pop(rank, None)

    def on_empty_waitany(self, site: str | None) -> None:
        self._emit(
            "RA107",
            "waitany([]) is undefined (MPI_Waitany of zero requests); "
            "use waitall([]) -> [] for the empty case",
            site=site,
        )

    # -- hook: transport (RA105) -----------------------------------------------

    def on_envelope_collision(self, kind: str, cid: int, src: int, dst: int,
                              tag, nbytes: int) -> None:
        if not (isinstance(tag, tuple) and tag and tag[0] == "u"):
            return  # collective-internal tags are sequence-disambiguated
        self._emit(
            "RA105",
            f"{kind} posted on comm {self._comm_name(cid)!r} with envelope "
            f"(src={src}, dst={dst}, tag={tag[1]}) while an earlier {kind} "
            f"with the identical envelope is still unmatched; message "
            f"matching now depends on FIFO order alone",
            rank=src if kind == "send" else dst,
            site=call_site(), nbytes=nbytes,
        )

    # -- end-of-run checks -----------------------------------------------------

    def finalize(self, world) -> None:
        """Exit-time checks: request leaks (RA102), unmatched p2p (RA104)."""
        if self.finalized:
            return
        self.finalized = True
        for info in self._requests.values():
            if not info.consumed:
                self._emit(
                    "RA102",
                    f"rank {info.rank} never completed the Request returned "
                    f"by {info.op} (posted at {info.site}); every "
                    f"nonblocking operation must be finished with "
                    f"wait/test/waitall/waitany",
                    rank=info.rank, site=info.site, op=info.op,
                )
        sends, recvs = world.transport.pending_details()
        for s in sends:
            self._emit(
                "RA104",
                f"send r{s['src']}->r{s['dst']} "
                f"(comm {self._comm_name(s['cid'])!r}, tag={s['tag']}, "
                f"{s['nbytes']}B) was never matched by a receive",
                rank=s["src"], **s,
            )
        for r in recvs:
            self._emit(
                "RA104",
                f"recv r{r['dst']}<-r{r['src']} "
                f"(comm {self._comm_name(r['cid'])!r}, tag={r['tag']}) was "
                f"never matched by a send",
                rank=r["dst"], **r,
            )

    # -- deadlock reporting (RA106) --------------------------------------------

    def _describe_pending(self, req) -> tuple[str, int | None]:
        """(description, wait-for peer or None) for one unfired request."""
        info = self._requests.get(id(req))
        if info is None:
            return f"pending {req.label!r}", None
        if info.op in ("isend", "irecv"):
            verb = "send to" if info.op == "isend" else "recv from"
            tag = info.tag[1] if isinstance(info.tag, tuple) else info.tag
            return f"{verb} r{info.peer} (tag={tag})", info.peer
        name = self._comm_name(info.cid)
        missing: list[int] = []
        log = self._seq.get(info.cid, [])
        if info.seq is not None and info.seq < len(log):
            _cname, ranks = self._comms.get(info.cid, ("?", ()))
            posted = log[info.seq].posted
            missing = [g for lr, g in enumerate(ranks) if lr not in posted]
        desc = f"{info.op} seq {info.seq} on comm {name!r}"
        if missing:
            desc += f" (ranks {missing} never posted seq {info.seq})"
        return desc, None

    def _find_cycle(self, edges: dict[int, set[int]]) -> list[int] | None:
        """A p2p wait-for cycle ``[r0, r1, ..., r0]``, or None."""
        visiting: dict[int, int] = {}  # rank -> position in current path
        visited: set[int] = set()

        def dfs(u: int, path: list[int]) -> list[int] | None:
            visiting[u] = len(path)
            path.append(u)
            for v in sorted(edges.get(u, ())):
                if v in visiting:
                    return path[visiting[v]:] + [v]
                if v not in visited:
                    found = dfs(v, path)
                    if found:
                        return found
            path.pop()
            del visiting[u]
            visited.add(u)
            return None

        for start in sorted(edges):
            if start not in visited:
                found = dfs(start, [])
                if found:
                    return found
        return None

    def on_deadlock(self, world, stuck_ranks: list[int]) -> str:
        """Record RA106 findings for a drained engine; returns a report."""
        lines = []
        edges: dict[int, set[int]] = {}
        for rank in stuck_ranks:
            entry = self._waiting.get(rank)
            if entry is None:
                desc = "suspended outside any MPI wait"
                site = None
            else:
                label, reqs, site = entry
                parts = []
                for req in reqs:
                    if req.done.fired:
                        continue
                    text, peer = self._describe_pending(req)
                    parts.append(text)
                    if peer is not None:
                        edges.setdefault(rank, set()).add(peer)
                desc = f"blocked in {label}: " + ("; ".join(parts) or
                                                 "no pending request")
            self._emit(
                "RA106",
                f"rank {rank} {desc}",
                rank=rank, site=site,
            )
            lines.append(f"rank {rank}: {desc}" + (f" [{site}]" if site else ""))
        cycle = self._find_cycle(edges)
        if cycle is not None:
            text = " -> ".join(f"r{r}" for r in cycle)
            self._emit("RA106", f"wait-for cycle: {text}", cycle=cycle)
            lines.append(f"wait-for cycle: {text}")
        self.finalized = True
        return "\n".join(lines)
