"""Static AST lint for generator rank programs (``repro.analysis lint``).

The repo's MPI layer is built on generator coroutines: every communication
verb (``bcast``, ``isend``, ``wait``, ...) is a generator that must be
driven with ``yield from`` inside a rank program.  Forgetting the
``yield from`` silently *skips the whole call* — Python just builds and
discards a generator object — which is the single easiest way to write a
schedule that looks right and communicates nothing.  These checks encode
that protocol (plus two determinism rules) as stdlib-``ast`` passes:

RA201  a known generator comm verb is called without ``yield from``
       (only inside generator functions, where the protocol applies);
RA202  ``yield from view.i*(...)`` as a bare statement — the returned
       :class:`~repro.mpi.requests.Request` is discarded, so the operation
       can never be waited on (a guaranteed RA102 at runtime);
RA203  a ``dup_many(K)`` result indexed with a constant outside ``[-K, K)``;
RA204  ``time``/``random`` (and unseeded ``numpy.random``) use inside
       ``repro.sim`` / ``repro.mpi`` — wall-clock or global-RNG state would
       break the simulator's bit-for-bit determinism;
RA205  a buffer passed to ``isend(data=...)`` is mutated between the post
       and the ``wait()`` that completes it — the transport may hold a
       zero-copy view, so the in-flight payload observes the write (the
       static twin of the runtime RA103 buffer-hazard check);
RA206  ``wait()``/``waitall()`` on a request variable that is never
       assigned from a communication call in the function — every binding
       is a bare literal (e.g. only ``req = None``), so the wait either
       crashes or completes nothing.
"""

from __future__ import annotations

import ast
import pathlib
from collections import deque

from repro.analysis.findings import Finding

#: methods of CommView / Request / RankEnv that are generator coroutines and
#: therefore do nothing unless driven with ``yield from``.
GENERATOR_METHODS = frozenset({
    "send", "recv", "sendrecv",
    "isend", "irecv",
    "bcast", "ibcast",
    "reduce", "ireduce",
    "allreduce", "iallreduce",
    "allgather", "iallgather",
    "reduce_scatter", "ireduce_scatter",
    "alltoall",
    "barrier", "ibarrier",
    "scatter", "gather",
    "wait",
    "compute", "compute_flops", "gemm", "sleep",
})

#: module-level generator helpers from :mod:`repro.mpi.requests`.
GENERATOR_FUNCTIONS = frozenset({"waitall", "waitany"})

#: calls returning a Request whose discard is always a bug.
REQUEST_RETURNING = frozenset({
    "isend", "irecv", "ibcast", "ireduce", "iallreduce", "iallgather",
    "ireduce_scatter", "ibarrier",
})

#: ``time`` attributes that read the wall clock.
_WALLCLOCK_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time",
})


def _callable_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_generator_call_name(name: str | None) -> bool:
    if name is None:
        return False
    return (name in GENERATOR_METHODS or name in GENERATOR_FUNCTIONS
            or name.endswith("_program"))


def _own_statements(fn: ast.FunctionDef):
    """Nodes of ``fn`` excluding bodies of nested function/class defs.

    Breadth-first, so assignments are seen before uses nested inside later
    statements (the RA203 bound table relies on this).
    """
    queue = deque(fn.body)
    while queue:
        node = queue.popleft()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        queue.extend(ast.iter_child_nodes(node))


def _is_generator_fn(fn: ast.FunctionDef) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _own_statements(fn))


class _FunctionLinter:
    """RA201/RA202/RA203 over one generator function."""

    def __init__(self, path: str, fn: ast.FunctionDef):
        self.path = path
        self.fn = fn
        self.findings: list[Finding] = []

    def _site(self, node: ast.AST) -> str:
        return f"{self.path}:{node.lineno}"

    def _emit(self, check: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(check=check, message=message,
                                     site=self._site(node)))

    def run(self) -> list[Finding]:
        # Parent links, scoped to this function body.
        parents: dict[ast.AST, ast.AST] = {}
        for node in _own_statements(self.fn):
            for child in ast.iter_child_nodes(node):
                parents[child] = node

        dup_bounds: dict[str, tuple[int, ast.AST]] = {}
        for node in _own_statements(self.fn):
            if isinstance(node, ast.Call):
                self._check_call(node, parents)
            elif isinstance(node, ast.Expr) and isinstance(node.value,
                                                           ast.YieldFrom):
                inner = node.value.value
                if isinstance(inner, ast.Call):
                    name = _callable_name(inner.func)
                    if name in REQUEST_RETURNING:
                        self._emit(
                            "RA202", node,
                            f"the Request returned by {name}() is discarded; "
                            f"assign it and complete it with "
                            f"wait/waitall/waitany",
                        )
            elif isinstance(node, ast.Assign):
                self._note_dup_many(node, dup_bounds)
            elif isinstance(node, ast.Subscript):
                self._check_dup_index(node, dup_bounds)
        self._check_request_protocol()
        return self.findings

    # -- RA205/RA206: request lifecycle within one function body ---------------

    @staticmethod
    def _buffer_base(expr: ast.expr) -> str | None:
        """Tracked base name of a ``data=`` argument (``buf`` / ``buf[a:b]``)."""
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Subscript) and isinstance(expr.value, ast.Name):
            return expr.value.id
        return None

    @staticmethod
    def _is_literal(expr: ast.expr) -> bool:
        """A binding that can never carry a Request (``None``, ``[]``, 42)."""
        if isinstance(expr, ast.Constant):
            return True
        return isinstance(expr, (ast.List, ast.Tuple)) and not expr.elts

    def _check_request_protocol(self) -> None:
        """RA205 (mutation inside an isend..wait window) and RA206 (wait on
        a never-comm-assigned request variable).

        Both checks reason per-name over this function body using source
        order, so they are deliberately conservative: a name rebound inside
        the window stops RA205 tracking, and a single non-literal binding
        anywhere acquits a name for RA206 (the common
        ``req = None; if cond: req = yield from isend(...)`` guard pattern
        must never be flagged).
        """
        isends: list[tuple[str, str, int, ast.AST]] = []
        wait_lines: dict[str, int] = {}      # req name -> first wait/waitall
        mutations: list[tuple[str, int, ast.AST]] = []
        rebinds: list[tuple[str, int]] = []
        literal_only: dict[str, bool] = {}   # name -> every Assign is literal
        grown: set[str] = set()              # lists receiving append/extend
        waits: list[tuple[str, str, ast.AST]] = []  # (kind, name, node)
        members: dict[str, set[str]] = {}    # list name -> appended req names
        bound = {a.arg for a in (self.fn.args.args + self.fn.args.kwonlyargs
                                 + self.fn.args.posonlyargs)}

        def note_wait(name: str, lineno: int) -> None:
            if name not in wait_lines or lineno < wait_lines[name]:
                wait_lines[name] = lineno

        for node in _own_statements(self.fn):
            if isinstance(node, ast.Assign):
                value = node.value
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        rebinds.append((target.id, node.lineno))
                        literal_only[target.id] = (
                            literal_only.get(target.id, True)
                            and self._is_literal(value))
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                bound.add(elt.id)
                    elif isinstance(target, ast.Subscript):
                        base = self._buffer_base(target)
                        if base is not None:
                            mutations.append((base, node.lineno, node))
                if (isinstance(value, ast.YieldFrom)
                        and isinstance(value.value, ast.Call)
                        and _callable_name(value.value.func) == "isend"
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    for kw in value.value.keywords:
                        if kw.arg == "data":
                            buf = self._buffer_base(kw.value)
                            if buf is not None:
                                isends.append((node.targets[0].id, buf,
                                               node.lineno, node))
            elif isinstance(node, ast.AugAssign):
                base = self._buffer_base(node.target)
                if base is not None:
                    mutations.append((base, node.lineno, node))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
            elif isinstance(node, ast.withitem):
                if isinstance(node.optional_vars, ast.Name):
                    bound.add(node.optional_vars.id)
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in ("append", "extend")
                        and isinstance(func.value, ast.Name)):
                    grown.add(func.value.id)
                    reqs = members.setdefault(func.value.id, set())
                    for arg in node.args:
                        for name_node in ast.walk(arg):
                            if isinstance(name_node, ast.Name):
                                reqs.add(name_node.id)
            elif isinstance(node, ast.YieldFrom):
                call = node.value
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if (isinstance(func, ast.Attribute) and func.attr == "wait"
                        and isinstance(func.value, ast.Name)):
                    waits.append(("wait", func.value.id, node))
                    note_wait(func.value.id, node.lineno)
                elif (isinstance(func, ast.Name)
                      and func.id in GENERATOR_FUNCTIONS):
                    for name_node in ast.walk(
                            call.args[0] if call.args else ast.Tuple(elts=[])):
                        if isinstance(name_node, ast.Name):
                            note_wait(name_node.id, node.lineno)
                    if (call.args and isinstance(call.args[0], ast.Name)):
                        waits.append(("waitall", call.args[0].id, node))

        # waitall(lst) also completes every request appended into lst.
        for lst, req_names in members.items():
            if lst in wait_lines:
                for req in req_names:
                    note_wait(req, wait_lines[lst])

        # RA205: a tracked buffer is written inside an isend..wait window.
        for req, buf, post_line, _node in isends:
            end = wait_lines.get(req)
            if end is None or end <= post_line:
                continue
            for base, line, mut in mutations:
                if base != buf or not post_line < line < end:
                    continue
                if any(name == buf and post_line < rb_line < line
                       for name, rb_line in rebinds):
                    continue  # rebound: the write targets a fresh object
                self._emit(
                    "RA205", mut,
                    f"{buf!r} is mutated while the isend posted on line "
                    f"{post_line} is still in flight (completed on line "
                    f"{end}); the transport may hold a zero-copy view of "
                    f"the buffer — move the write after the wait or send a "
                    f"copy",
                )

        # RA206: wait on a name whose every binding is a bare literal.
        for kind, name, node in waits:
            if name in bound or name in grown:
                continue
            if literal_only.get(name, None) is True:
                self._emit(
                    "RA206", node,
                    f"{kind}() on {name!r}, but every assignment to it in "
                    f"this function is a bare literal — it is never "
                    f"assigned from a communication call, so this wait "
                    f"cannot complete anything",
                )

    def _check_call(self, node: ast.Call, parents: dict) -> None:
        name = _callable_name(node.func)
        if not _is_generator_call_name(name):
            return
        parent = parents.get(node)
        if isinstance(parent, ast.YieldFrom) and parent.value is node:
            return
        if name not in GENERATOR_METHODS and name not in GENERATOR_FUNCTIONS:
            # ``*_program`` is only a naming heuristic: rank-program
            # generators are legitimately instantiated and handed to a
            # driver (``spawn``, gated sections), so flag only the
            # bare-statement form where the generator is plainly discarded.
            if not isinstance(parent, ast.Expr):
                return
        # ``gen = comm.irecv(...)`` without yield from is equally broken, as
        # is passing the raw generator anywhere else.
        self._emit(
            "RA201", node,
            f"{name}() is a generator coroutine and must be driven with "
            f"'yield from' — as written the call builds a generator object "
            f"and performs no communication",
        )

    def _note_dup_many(self, node: ast.Assign,
                       bounds: dict[str, tuple[int, ast.AST]]) -> None:
        value = node.value
        if not (isinstance(value, ast.Call)
                and _callable_name(value.func) == "dup_many"
                and value.args
                and isinstance(value.args[0], ast.Constant)
                and isinstance(value.args[0].value, int)):
            # A reassigned name no longer carries a known bound.
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bounds.pop(target.id, None)
            return
        n_dup = value.args[0].value
        for target in node.targets:
            if isinstance(target, ast.Name):
                bounds[target.id] = (n_dup, node)

    def _check_dup_index(self, node: ast.Subscript,
                         bounds: dict[str, tuple[int, ast.AST]]) -> None:
        if not (isinstance(node.value, ast.Name)
                and node.value.id in bounds
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, int)):
            return
        n_dup, _origin = bounds[node.value.id]
        idx = node.slice.value
        if not -n_dup <= idx < n_dup:
            self._emit(
                "RA203", node,
                f"{node.value.id}[{idx}] is out of range: dup_many({n_dup}) "
                f"yields indices 0..{n_dup - 1}",
            )


def _lint_determinism(path: str, tree: ast.Module) -> list[Finding]:
    """RA204 over one ``repro.sim`` / ``repro.mpi`` module."""
    findings: list[Finding] = []

    def emit(node: ast.AST, message: str) -> None:
        findings.append(Finding(check="RA204", message=message,
                                site=f"{path}:{node.lineno}"))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in ("time", "random"):
                    emit(node, f"import of {alias.name!r} inside the "
                               f"deterministic core; use virtual time / "
                               f"seeded generators instead")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in ("time", "random"):
                emit(node, f"import from {node.module!r} inside the "
                           f"deterministic core")
        elif isinstance(node, ast.Attribute) and isinstance(node.value,
                                                            ast.Name):
            base = node.value.id
            if base == "time" and node.attr in _WALLCLOCK_ATTRS:
                emit(node, f"time.{node.attr} reads the wall clock; the "
                           f"simulator must only use Engine.now")
            elif base == "random":
                emit(node, f"random.{node.attr} uses the global RNG; use a "
                           f"seeded np.random.default_rng instead")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "random"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in ("np", "numpy")):
                if func.attr == "default_rng":
                    if not node.args and not node.keywords:
                        emit(node, "np.random.default_rng() without a seed "
                                   "is nondeterministic; pass an explicit "
                                   "seed")
                else:
                    emit(node, f"np.random.{func.attr} uses numpy's global "
                               f"RNG state; use a seeded "
                               f"np.random.default_rng instead")
    return findings


def _is_core_module(path: str) -> bool:
    p = path.replace("\\", "/")
    return "repro/sim/" in p or "repro/mpi/" in p


def lint_source(source: str, path: str = "<string>",
                determinism: bool | None = None) -> list[Finding]:
    """Lint one module's source text; ``path`` is used for finding sites.

    ``determinism`` forces the RA204 pass on (True) or off (False);
    ``None`` enables it automatically for ``repro/sim`` and ``repro/mpi``
    modules.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(check="RA201",
                        message=f"could not parse: {exc.msg}",
                        site=f"{path}:{exc.lineno or 0}")]
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and _is_generator_fn(node):
            findings.extend(_FunctionLinter(path, node).run())
    if determinism is None:
        determinism = _is_core_module(path)
    if determinism:
        findings.extend(_lint_determinism(path, tree))
    return findings


def lint_file(path: str | pathlib.Path,
              determinism: bool | None = None) -> list[Finding]:
    p = pathlib.Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p), determinism)


def lint_paths(paths) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories.

    Findings are sorted by (file, line, check) so the output is stable.
    """
    files: list[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))

    def sort_key(f: Finding):
        site = f.site or ""
        name, _, line = site.rpartition(":")
        return (name, int(line) if line.isdigit() else 0, f.check)

    return sorted(findings, key=sort_key)
