"""Static AST lint for generator rank programs (``repro.analysis lint``).

The repo's MPI layer is built on generator coroutines: every communication
verb (``bcast``, ``isend``, ``wait``, ...) is a generator that must be
driven with ``yield from`` inside a rank program.  Forgetting the
``yield from`` silently *skips the whole call* — Python just builds and
discards a generator object — which is the single easiest way to write a
schedule that looks right and communicates nothing.  These checks encode
that protocol (plus two determinism rules) as stdlib-``ast`` passes:

RA201  a known generator comm verb is called without ``yield from``
       (only inside generator functions, where the protocol applies);
RA202  ``yield from view.i*(...)`` as a bare statement — the returned
       :class:`~repro.mpi.requests.Request` is discarded, so the operation
       can never be waited on (a guaranteed RA102 at runtime);
RA203  a ``dup_many(K)`` result indexed with a constant outside ``[-K, K)``;
RA204  ``time``/``random`` (and unseeded ``numpy.random``) use inside
       ``repro.sim`` / ``repro.mpi`` — wall-clock or global-RNG state would
       break the simulator's bit-for-bit determinism.
"""

from __future__ import annotations

import ast
import pathlib
from collections import deque

from repro.analysis.findings import Finding

#: methods of CommView / Request / RankEnv that are generator coroutines and
#: therefore do nothing unless driven with ``yield from``.
GENERATOR_METHODS = frozenset({
    "send", "recv", "sendrecv",
    "isend", "irecv",
    "bcast", "ibcast",
    "reduce", "ireduce",
    "allreduce", "iallreduce",
    "allgather", "iallgather",
    "reduce_scatter", "ireduce_scatter",
    "alltoall",
    "barrier", "ibarrier",
    "scatter", "gather",
    "wait",
    "compute", "compute_flops", "gemm", "sleep",
})

#: module-level generator helpers from :mod:`repro.mpi.requests`.
GENERATOR_FUNCTIONS = frozenset({"waitall", "waitany"})

#: calls returning a Request whose discard is always a bug.
REQUEST_RETURNING = frozenset({
    "isend", "irecv", "ibcast", "ireduce", "iallreduce", "iallgather",
    "ireduce_scatter", "ibarrier",
})

#: ``time`` attributes that read the wall clock.
_WALLCLOCK_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time",
})


def _callable_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_generator_call_name(name: str | None) -> bool:
    if name is None:
        return False
    return (name in GENERATOR_METHODS or name in GENERATOR_FUNCTIONS
            or name.endswith("_program"))


def _own_statements(fn: ast.FunctionDef):
    """Nodes of ``fn`` excluding bodies of nested function/class defs.

    Breadth-first, so assignments are seen before uses nested inside later
    statements (the RA203 bound table relies on this).
    """
    queue = deque(fn.body)
    while queue:
        node = queue.popleft()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        queue.extend(ast.iter_child_nodes(node))


def _is_generator_fn(fn: ast.FunctionDef) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _own_statements(fn))


class _FunctionLinter:
    """RA201/RA202/RA203 over one generator function."""

    def __init__(self, path: str, fn: ast.FunctionDef):
        self.path = path
        self.fn = fn
        self.findings: list[Finding] = []

    def _site(self, node: ast.AST) -> str:
        return f"{self.path}:{node.lineno}"

    def _emit(self, check: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(check=check, message=message,
                                     site=self._site(node)))

    def run(self) -> list[Finding]:
        # Parent links, scoped to this function body.
        parents: dict[ast.AST, ast.AST] = {}
        for node in _own_statements(self.fn):
            for child in ast.iter_child_nodes(node):
                parents[child] = node

        dup_bounds: dict[str, tuple[int, ast.AST]] = {}
        for node in _own_statements(self.fn):
            if isinstance(node, ast.Call):
                self._check_call(node, parents)
            elif isinstance(node, ast.Expr) and isinstance(node.value,
                                                           ast.YieldFrom):
                inner = node.value.value
                if isinstance(inner, ast.Call):
                    name = _callable_name(inner.func)
                    if name in REQUEST_RETURNING:
                        self._emit(
                            "RA202", node,
                            f"the Request returned by {name}() is discarded; "
                            f"assign it and complete it with "
                            f"wait/waitall/waitany",
                        )
            elif isinstance(node, ast.Assign):
                self._note_dup_many(node, dup_bounds)
            elif isinstance(node, ast.Subscript):
                self._check_dup_index(node, dup_bounds)
        return self.findings

    def _check_call(self, node: ast.Call, parents: dict) -> None:
        name = _callable_name(node.func)
        if not _is_generator_call_name(name):
            return
        parent = parents.get(node)
        if isinstance(parent, ast.YieldFrom) and parent.value is node:
            return
        if name not in GENERATOR_METHODS and name not in GENERATOR_FUNCTIONS:
            # ``*_program`` is only a naming heuristic: rank-program
            # generators are legitimately instantiated and handed to a
            # driver (``spawn``, gated sections), so flag only the
            # bare-statement form where the generator is plainly discarded.
            if not isinstance(parent, ast.Expr):
                return
        # ``gen = comm.irecv(...)`` without yield from is equally broken, as
        # is passing the raw generator anywhere else.
        self._emit(
            "RA201", node,
            f"{name}() is a generator coroutine and must be driven with "
            f"'yield from' — as written the call builds a generator object "
            f"and performs no communication",
        )

    def _note_dup_many(self, node: ast.Assign,
                       bounds: dict[str, tuple[int, ast.AST]]) -> None:
        value = node.value
        if not (isinstance(value, ast.Call)
                and _callable_name(value.func) == "dup_many"
                and value.args
                and isinstance(value.args[0], ast.Constant)
                and isinstance(value.args[0].value, int)):
            # A reassigned name no longer carries a known bound.
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bounds.pop(target.id, None)
            return
        n_dup = value.args[0].value
        for target in node.targets:
            if isinstance(target, ast.Name):
                bounds[target.id] = (n_dup, node)

    def _check_dup_index(self, node: ast.Subscript,
                         bounds: dict[str, tuple[int, ast.AST]]) -> None:
        if not (isinstance(node.value, ast.Name)
                and node.value.id in bounds
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, int)):
            return
        n_dup, _origin = bounds[node.value.id]
        idx = node.slice.value
        if not -n_dup <= idx < n_dup:
            self._emit(
                "RA203", node,
                f"{node.value.id}[{idx}] is out of range: dup_many({n_dup}) "
                f"yields indices 0..{n_dup - 1}",
            )


def _lint_determinism(path: str, tree: ast.Module) -> list[Finding]:
    """RA204 over one ``repro.sim`` / ``repro.mpi`` module."""
    findings: list[Finding] = []

    def emit(node: ast.AST, message: str) -> None:
        findings.append(Finding(check="RA204", message=message,
                                site=f"{path}:{node.lineno}"))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in ("time", "random"):
                    emit(node, f"import of {alias.name!r} inside the "
                               f"deterministic core; use virtual time / "
                               f"seeded generators instead")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in ("time", "random"):
                emit(node, f"import from {node.module!r} inside the "
                           f"deterministic core")
        elif isinstance(node, ast.Attribute) and isinstance(node.value,
                                                            ast.Name):
            base = node.value.id
            if base == "time" and node.attr in _WALLCLOCK_ATTRS:
                emit(node, f"time.{node.attr} reads the wall clock; the "
                           f"simulator must only use Engine.now")
            elif base == "random":
                emit(node, f"random.{node.attr} uses the global RNG; use a "
                           f"seeded np.random.default_rng instead")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "random"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in ("np", "numpy")):
                if func.attr == "default_rng":
                    if not node.args and not node.keywords:
                        emit(node, "np.random.default_rng() without a seed "
                                   "is nondeterministic; pass an explicit "
                                   "seed")
                else:
                    emit(node, f"np.random.{func.attr} uses numpy's global "
                               f"RNG state; use a seeded "
                               f"np.random.default_rng instead")
    return findings


def _is_core_module(path: str) -> bool:
    p = path.replace("\\", "/")
    return "repro/sim/" in p or "repro/mpi/" in p


def lint_source(source: str, path: str = "<string>",
                determinism: bool | None = None) -> list[Finding]:
    """Lint one module's source text; ``path`` is used for finding sites.

    ``determinism`` forces the RA204 pass on (True) or off (False);
    ``None`` enables it automatically for ``repro/sim`` and ``repro/mpi``
    modules.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(check="RA201",
                        message=f"could not parse: {exc.msg}",
                        site=f"{path}:{exc.lineno or 0}")]
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and _is_generator_fn(node):
            findings.extend(_FunctionLinter(path, node).run())
    if determinism is None:
        determinism = _is_core_module(path)
    if determinism:
        findings.extend(_lint_determinism(path, tree))
    return findings


def lint_file(path: str | pathlib.Path,
              determinism: bool | None = None) -> list[Finding]:
    p = pathlib.Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p), determinism)


def lint_paths(paths) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories.

    Findings are sorted by (file, line, check) so the output is stable.
    """
    files: list[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))

    def sort_key(f: Finding):
        site = f.site or ""
        name, _, line = site.rpartition(":")
        return (name, int(line) if line.isdigit() else 0, f.check)

    return sorted(findings, key=sort_key)
