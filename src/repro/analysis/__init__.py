"""MPI correctness analysis: runtime verifier + static comm-lint.

Two cooperating passes over the simulated-MPI stack:

* :class:`CommVerifier` (``World(verify=True)``) — MUST/ISP-style runtime
  checks: collective-sequence matching, request-leak / buffer-hazard /
  tag-collision detection, unmatched p2p traffic, and a deadlock reporter
  (check IDs ``RA101``-``RA107``);
* :func:`lint_paths` (``python -m repro.analysis lint``) — stdlib-``ast``
  checks that know the repo's generator protocol (``RA201``-``RA204``).

See ``docs/analysis.md`` for every check ID with a minimal offending
snippet.
"""

from repro.analysis.findings import (
    CHECKS,
    Finding,
    render_json,
    render_text,
)
from repro.analysis.lint import lint_file, lint_paths, lint_source
from repro.analysis.verifier import CommVerifier

__all__ = [
    "CHECKS",
    "CommVerifier",
    "Finding",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
