"""Static schedule verifier: symbolic analysis of collective plans (RA3xx).

The runtime :class:`~repro.analysis.verifier.CommVerifier` checks the one
interleaving a simulation happens to execute.  This module closes the gap
for **all** interleavings by symbolically executing
:class:`~repro.mpi.collectives.plan.CollectivePlan` rounds over abstract
ranks — pure data, no engine, no virtual time — and proving four
properties of every plan *set* (the ``p`` per-rank plans of one
collective):

RA301  **deadlock-freedom.**  Build the happens-before graph over
       ``(rank, round)`` nodes under the *synchronous-send* assumption
       (every send blocks until its matching receive is posted — the
       strongest protocol MPI permits, so acyclicity here implies
       deadlock-freedom under eager, rendezvous and any mix).  A cycle is
       a schedule that some protocol/interleaving can wedge.
RA302  **match completeness.**  Pairing each channel's sends and receives
       in posting order (the transport matches FIFO per envelope), every
       send must meet exactly one ``copy``/``add`` and vice versa.
RA303  **match consistency.**  Matched pairs must agree on the element
       range (and therefore the byte count).
RA304  **zero-copy soundness.**  A send whose precomputed ``needs_copy``
       bit is ``False`` hands the transport a zero-copy view; the view may
       be consumed arbitrarily late (eager payloads park in the unexpected
       queue), so *no* ``copy``/``add`` of the same or any later round on
       that rank may overlap the sent range.  This pass recomputes the
       may-alias facts with an independent forward interval sweep, so a
       corrupted bit — whichever layer corrupted it — is caught rather
       than trusted.  The inverse defect (``True`` where no write can ever
       overlap) is reported as the RA305 *warning*: a wasted snapshot,
       not a race.
RA306  **replay-envelope conformance.**  Schedule structure must be a pure
       function of inputs that are invariant under
       :data:`~repro.sim.replay.REPLAY_SAFE_FIELDS` perturbations;
       otherwise a recorded event graph silently replays the *wrong*
       structure when the tuner re-prices it under perturbed constants.
       The protocol-selection functions
       (:data:`~repro.mpi.collectives.plan.SELECTORS`) are executed with a
       field-access-tracing parameter proxy; reading any replay-safe field
       is the finding.
RA307  **structural validity** of the plan data itself (op kinds, peer
       ranges, interval sanity, precomputed sizes, key consistency).
RA308  **channel-claim soundness.**  Kernels that pin communicator colors
       to fabric channels (the pipelined-multicast SUMMA family) declare
       their ``(color, channel)`` claims
       (:func:`repro.dense.summa.summa_channel_claims`); every claimed
       channel must exist on the fabric (``0..num_channels-1`` — an
       out-of-range index would key resources outside the per-channel
       tables) and no two *distinct* colors may claim the same channel:
       their flows would share every ``(link, channel)`` resource while
       the schedule prices them as disjoint capacity.

Entry points
------------
:func:`verify_plan_set` is the core pass over one plan set;
:func:`verify_collective` builds the set for a generator registry key;
:func:`check_plans` walks whole workloads — the tune candidate enumeration
of table1/table2-style signatures, or a single signature — deduplicating
plan sets along the way (the CLI ``python -m repro.analysis check-plans``).
:func:`assert_plan_sound` is the executor's opt-in debug hook
(``World(verify_plans=True)``): it verifies the *live cached* plan set the
runner is about to execute, memoized per key, and raises
:class:`PlanVerificationError` on any error finding.
:func:`mutation_fixtures` returns the deliberately-broken plan sets
(seeded deadlock, flipped alias bit, dropped recv, ...) that the tests and
the CI ``--selftest`` gate require to fail closed with their exact check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.mpi.collectives.plan import (
    GENERATORS,
    SELECTORS,
    CollectivePlan,
    get_plan,
)
from repro.netmodel.params import NetworkParams
from repro.sim.replay import REPLAY_SAFE_FIELDS

#: the op kinds a plan round may contain (receives are ``copy``/``add``).
OP_KINDS = frozenset({"send", "copy", "add"})


class PlanVerificationError(RuntimeError):
    """An executed plan failed static verification (``verify_plans=True``)."""

    def __init__(self, message: str, findings: list[Finding]):
        super().__init__(message)
        self.findings = findings


def _set_label(plans, label: str | None) -> str:
    """Human-readable name of a plan set for finding sites."""
    if label is not None:
        return label
    for plan in plans:
        if plan.key is not None:
            algorithm, p, _me, root, n_elems, itemsize = plan.key
            return f"{algorithm}[p={p},root={root},n={n_elems}x{itemsize}B]"
    return f"<anonymous plan set p={len(plans)}>"


# ---------------------------------------------------------------------------
# core pass: one plan set
# ---------------------------------------------------------------------------


def verify_plan_set(plans, label: str | None = None) -> list[Finding]:
    """Statically verify the per-rank plans of one collective.

    ``plans[me]`` must be rank ``me``'s :class:`CollectivePlan` (local
    ranks ``0..p-1``).  Returns every RA30x finding; an empty list is a
    proof (not a sample) that the schedule is deadlock-free, completely
    matched, and zero-copy sound for all interleavings.
    """
    p = len(plans)
    name = _set_label(plans, label)
    findings: list[Finding] = []

    def emit(check: str, message: str, *, rank=None, **extra) -> None:
        findings.append(Finding(check=check, message=message, rank=rank,
                                site=name, extra=extra))

    # -- RA307: structural validity -------------------------------------------
    for me, plan in enumerate(plans):
        if plan.key is not None:
            algorithm, kp, kme, kroot, kn, kitem = plan.key
            if kme != me or kp != p:
                emit("RA307",
                     f"plan at local rank {me} carries key rank={kme}, "
                     f"p={kp} (set has p={p}); the set was assembled from "
                     f"mismatched cache keys", rank=me)
        for r, ops in enumerate(plan.rounds):
            for idx, op in enumerate(ops):
                ok = (
                    isinstance(op, tuple) and len(op) == 6
                    and op[0] in OP_KINDS
                    and isinstance(op[1], int) and 0 <= op[1] < p
                    and op[1] != me
                    and 0 <= op[2] <= op[3]
                    and op[4] == (op[3] - op[2]) * _itemsize_of(plan)
                )
                if not ok:
                    emit("RA307",
                         f"rank {me} round {r} op {idx} is malformed: "
                         f"{op!r} (kind/peer/range/size invariant violated)",
                         rank=me, round=r, op=idx)

    # -- RA302/RA303: channel matching ----------------------------------------
    # The executor posts a rank's rounds in order and a round's ops in list
    # order; the transport matches FIFO per (src, dst) within one collective
    # tag.  Pairing each channel's sends and receives in that posting order
    # is therefore exact, not heuristic.
    sends: dict[tuple[int, int], list] = {}
    recvs: dict[tuple[int, int], list] = {}
    for me, plan in enumerate(plans):
        for r, ops in enumerate(plan.rounds):
            for idx, op in enumerate(ops):
                kind, peer = op[0], op[1]
                if kind not in OP_KINDS or not (isinstance(peer, int)
                                                and 0 <= peer < p):
                    continue  # malformed; already reported as RA307
                if kind == "send":
                    sends.setdefault((me, peer), []).append((r, idx, op))
                else:
                    recvs.setdefault((peer, me), []).append((r, idx, op))
    pairs: list[tuple] = []  # (src, s_round, dst, r_round) of matched ops
    for chan in sorted(set(sends) | set(recvs)):
        src, dst = chan
        slist = sends.get(chan, [])
        rlist = recvs.get(chan, [])
        if len(slist) != len(rlist):
            emit("RA302",
                 f"channel r{src}->r{dst}: {len(slist)} send(s) but "
                 f"{len(rlist)} receive(s); the surplus op(s) can never "
                 f"complete",
                 rank=src if len(slist) > len(rlist) else dst,
                 channel=chan, sends=len(slist), recvs=len(rlist))
        for (sr, si, sop), (rr, ri, rop) in zip(slist, rlist):
            if (sop[2], sop[3]) != (rop[2], rop[3]):
                emit("RA303",
                     f"channel r{src}->r{dst}: send [{sop[2]},{sop[3]}) in "
                     f"round {sr} is matched by {rop[0]} [{rop[2]},{rop[3]}) "
                     f"in round {rr}; ranges must be identical",
                     rank=src, channel=chan, send_round=sr, recv_round=rr)
            pairs.append((src, sr, dst, rr))

    # -- RA301: happens-before cycle over (rank, round) nodes -----------------
    # Completion of (rank, round) requires: the rank's previous round
    # (posting order), the sender's preceding rounds for each receive
    # (the send must be *posted*), and — synchronous-send assumption — the
    # receiver's preceding rounds for each send (the receive must be
    # posted before a blocking send can complete).
    edges: dict[tuple[int, int], set] = {}

    def edge(a: tuple[int, int], b: tuple[int, int]) -> None:
        edges.setdefault(a, set()).add(b)

    for me, plan in enumerate(plans):
        for r in range(1, len(plan.rounds)):
            edge((me, r), (me, r - 1))
    for src, sr, dst, rr in pairs:
        if sr > 0:
            edge((dst, rr), (src, sr - 1))   # recv waits for the send post
        if rr > 0:
            edge((src, sr), (dst, rr - 1))   # sync send waits for recv post
    cycle = _find_cycle(edges)
    if cycle is not None:
        text = " -> ".join(f"r{rank}:round{rnd}" for rank, rnd in cycle)
        emit("RA301",
             f"send/recv dependency cycle {text}; under rendezvous "
             f"(synchronous-send) semantics no rank in the cycle can "
             f"complete its round", cycle=cycle)

    # -- RA304/RA305: zero-copy soundness -------------------------------------
    # Independent forward sweep: a zero-copy send's view may be consumed any
    # time after posting (eager payloads park in the unexpected queue until
    # the receiver posts), so any same-or-later-round receive overlapping
    # the range is a race.  This recomputes the may-alias facts from the op
    # intervals alone — it does not trust the plan builder's pass.
    for me, plan in enumerate(plans):
        writes = [
            (r, op[2], op[3])
            for r, ops in enumerate(plan.rounds)
            for op in ops
            if op[0] in ("copy", "add") and op[3] > op[2]
        ]
        for r, ops in enumerate(plan.rounds):
            for idx, op in enumerate(ops):
                if op[0] != "send" or op[3] <= op[2]:
                    continue
                lo, hi, needs_copy = op[2], op[3], op[5]
                hazard = next(
                    ((wr, wlo, whi) for wr, wlo, whi in writes
                     if wr >= r and wlo < hi and lo < whi), None)
                if hazard is not None and not needs_copy:
                    wr, wlo, whi = hazard
                    emit("RA304",
                         f"rank {me} round {r}: zero-copy send "
                         f"[{lo},{hi}) overlaps the receive [{wlo},{whi}) "
                         f"of round {wr}; the in-flight view can observe "
                         f"the concurrent write — the op needs "
                         f"needs_copy=True", rank=me, round=r, op=idx,
                         write_round=wr)
                elif hazard is None and needs_copy:
                    emit("RA305",
                         f"rank {me} round {r}: send [{lo},{hi}) snapshots "
                         f"its buffer but no same-or-later-round receive "
                         f"overlaps the range; the copy is provably "
                         f"unnecessary", rank=me, round=r, op=idx)
    return findings


def _itemsize_of(plan: CollectivePlan) -> int:
    """Itemsize a plan was built with (from its key, else inferred)."""
    if plan.key is not None:
        return plan.key[5]
    for ops in plan.rounds:
        for op in ops:
            if len(op) == 6 and op[3] > op[2]:
                return op[4] // (op[3] - op[2])
    return 1


def _find_cycle(edges: dict) -> list | None:
    """First dependency cycle ``[n0, n1, ..., n0]`` in ``edges``, or None."""
    visiting: dict = {}
    visited: set = set()
    for start in sorted(edges):
        if start in visited:
            continue
        stack = [(start, iter(sorted(edges.get(start, ()))))]
        visiting[start] = 0
        path = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt in visiting:
                    return path[visiting[nxt]:] + [nxt]
                if nxt in visited:
                    continue
                visiting[nxt] = len(path)
                path.append(nxt)
                stack.append((nxt, iter(sorted(edges.get(nxt, ())))))
                advanced = True
                break
            if not advanced:
                stack.pop()
                path.pop()
                del visiting[node]
                visited.add(node)
    return None


# ---------------------------------------------------------------------------
# generator-registry and cache-backed plan sets
# ---------------------------------------------------------------------------


def build_plan_set(algorithm: str, p: int, root: int = 0, n_elems: int = 0,
                   itemsize: int = 8) -> list[CollectivePlan]:
    """Freshly built per-rank plans for one generator-registry collective."""
    return [CollectivePlan.build(algorithm, p, me, root, n_elems, itemsize)
            for me in range(p)]


def verify_collective(algorithm: str, p: int, root: int = 0, n_elems: int = 0,
                      itemsize: int = 8) -> list[Finding]:
    """Verify one registry collective from fresh plans (pure static check)."""
    return verify_plan_set(build_plan_set(algorithm, p, root, n_elems,
                                          itemsize))


#: plan-set keys ``(algorithm, p, root, n_elems, itemsize)`` proven clean by
#: :func:`assert_plan_sound` this process — the executor-hook memo.
_VERIFIED: set[tuple] = set()


def reset_verified_cache() -> None:
    """Forget every proven plan set (tests corrupt cached plans in place)."""
    _VERIFIED.clear()


def assert_plan_sound(plan: CollectivePlan) -> None:
    """Executor debug hook: verify the live cached set ``plan`` belongs to.

    Looks the peer plans up through the shared cache — so a corrupted
    *cached* plan is caught, not just a misbuilt one — memoizes proven
    keys, and raises :class:`PlanVerificationError` carrying the findings
    when any error-severity finding exists.  Plans wrapped from raw
    schedules (``key is None``) have no cross-rank set to verify and are
    skipped.
    """
    key = plan.key
    if key is None:
        return
    algorithm, p, _me, root, n_elems, itemsize = key
    set_key = (algorithm, p, root, n_elems, itemsize)
    if set_key in _VERIFIED:
        return
    plans = [get_plan(algorithm, p, me, root, n_elems, itemsize)
             for me in range(p)]
    findings = [f for f in verify_plan_set(plans) if f.severity == "error"]
    if findings:
        rendered = "\n".join(f.render() for f in findings)
        raise PlanVerificationError(
            f"plan {set_key} failed static verification:\n{rendered}",
            findings,
        )
    _VERIFIED.add(set_key)


# ---------------------------------------------------------------------------
# RA306: replay-envelope conformance of the protocol selectors
# ---------------------------------------------------------------------------


class _TraceParams:
    """Read-tracing proxy over :class:`NetworkParams` (symbolic execution)."""

    __slots__ = ("_base", "reads")

    def __init__(self, base: NetworkParams):
        object.__setattr__(self, "_base", base)
        object.__setattr__(self, "reads", set())

    def __getattr__(self, name: str):
        self.reads.add(name)
        return getattr(self._base, name)

    def __setattr__(self, name: str, value) -> None:  # pragma: no cover
        raise AttributeError("selector parameters are read-only")


def verify_selector_envelope(p: int, n_elems: int, itemsize: int = 8,
                             params: NetworkParams | None = None,
                             verbs=None) -> list[Finding]:
    """RA306/RA307 over the protocol-selection functions for one op shape.

    Runs every selector in :data:`SELECTORS` (or the given ``verbs``) with
    a field-access-tracing parameter proxy: reading any
    :data:`REPLAY_SAFE_FIELDS` member means the *structure* of the chosen
    schedule varies with a constant the replay envelope allows to change —
    a recording made under one value would silently replay the wrong
    schedule under another.
    """
    findings: list[Finding] = []
    base = params or NetworkParams()
    for verb in sorted(verbs if verbs is not None else SELECTORS):
        tracer = _TraceParams(base)
        algorithm = SELECTORS[verb](p, n_elems, itemsize, tracer)
        site = f"select:{verb}[p={p},n={n_elems}x{itemsize}B]"
        unsafe = sorted(tracer.reads & REPLAY_SAFE_FIELDS)
        if unsafe:
            findings.append(Finding(
                check="RA306",
                message=(
                    f"{verb} schedule selection read replay-safe "
                    f"field(s) {unsafe}; schedule structure must not "
                    f"depend on constants the replay envelope lets vary "
                    f"(REPLAY_SAFE_FIELDS)"),
                site=site, extra={"fields": unsafe},
            ))
        if algorithm not in GENERATORS:
            findings.append(Finding(
                check="RA307",
                message=(f"{verb} selection returned {algorithm!r}, which "
                         f"is not a registered schedule generator"),
                site=site,
            ))
    return findings


# ---------------------------------------------------------------------------
# RA308: channel-claim soundness of color-to-lane pinnings
# ---------------------------------------------------------------------------


def verify_channel_claims(claims, num_channels: int,
                          label: str) -> list[Finding]:
    """RA308 over a kernel's declared ``(color, channel)`` pinning.

    ``claims`` lists which fabric channel each communicator color rides
    (e.g. :func:`repro.dense.summa.summa_channel_claims`).  Two defects
    are findings: a channel outside ``0..num_channels-1`` (the fabric has
    no such lane — resource keys would index past the per-channel
    tables), and two *different* colors claiming one channel (every
    ``(link, channel)`` resource is shared, so the disjoint-capacity
    assumption the colored schedule is priced under is false).  The same
    color may appear repeatedly — re-claiming its own lane is idempotent.
    """
    findings: list[Finding] = []
    owner: dict[int, int] = {}
    for color, channel in claims:
        if not (isinstance(channel, int) and 0 <= channel < num_channels):
            findings.append(Finding(
                check="RA308",
                message=(f"color {color} claims channel {channel!r}, "
                         f"outside the fabric's 0..{num_channels - 1} "
                         f"lane range"),
                site=label, extra={"color": color, "channel": channel}))
            continue
        first = owner.setdefault(channel, color)
        if first != color:
            findings.append(Finding(
                check="RA308",
                message=(f"colors {first} and {color} both claim channel "
                         f"{channel}; their flows share every (link, "
                         f"channel) resource the colored schedule prices "
                         f"as disjoint"),
                site=label,
                extra={"colors": (first, color), "channel": channel}))
    return findings


# ---------------------------------------------------------------------------
# Cannon shift-plan consistency (the 2.5D kernels' P2P itineraries)
# ---------------------------------------------------------------------------


def verify_cannon_shift_plans(q: int, n: int, steps: int,
                              offset: int = 0) -> list[Finding]:
    """Cross-rank consistency of the memoized Cannon itineraries.

    For every process ``(i, j)`` of a ``q x q`` layer the alignment peers
    must pair up (the rank I name as my A-source must name my column as
    its A-destination, and symmetrically for B), and each shift step's
    travelling block dimension must agree between the sendrecv neighbours
    — otherwise a sendrecv pairs messages of different sizes (RA303) or
    never pairs at all (RA302).
    """
    from repro.mpi.collectives.plan import cannon_shift_plan

    findings: list[Finding] = []
    site = f"cannon[q={q},n={n},steps={steps},offset={offset}]"

    def emit(check: str, message: str, **extra) -> None:
        findings.append(Finding(check=check, message=message, site=site,
                                extra=extra))

    plans = {(i, j): cannon_shift_plan(q, i, j, n, steps, offset)
             for i in range(q) for j in range(q)}
    for (i, j), ((a_dst, a_src, b_dst, b_src, _l0), shifts) in plans.items():
        # Alignment symmetry: my A-source's A-destination is me.
        src_align = plans[(i, a_src)][0]
        if src_align[0] != j:
            emit("RA302",
                 f"A alignment of ({i},{j}) expects its block from column "
                 f"{a_src}, but ({i},{a_src}) sends to column "
                 f"{src_align[0]}; the sendrecv never pairs",
                 coords=(i, j))
        src_align_b = plans[(b_src, j)][0]
        if src_align_b[2] != i:
            emit("RA302",
                 f"B alignment of ({i},{j}) expects its block from row "
                 f"{b_src}, but ({b_src},{j}) sends to row "
                 f"{src_align_b[2]}; the sendrecv never pairs",
                 coords=(i, j))
        # Shift-step sizes: the A block arriving after step t comes from the
        # right neighbour and must be the dimension I multiply at step t+1.
        right = plans[(i, (j + 1) % q)][1]
        for t in range(steps - 1):
            if right[t][1] != shifts[t + 1][1]:
                emit("RA303",
                     f"shift after step {t}: ({i},{(j + 1) % q}) forwards a "
                     f"{right[t][1]}-wide A block but ({i},{j}) multiplies "
                     f"a {shifts[t + 1][1]}-wide block at step {t + 1}",
                     coords=(i, j), step=t)
    return findings


# ---------------------------------------------------------------------------
# workload walk: kernel plan populations x tune candidates
# ---------------------------------------------------------------------------


@dataclass
class PlanCheckReport:
    """Outcome of :func:`check_plans` (what the CLI renders)."""

    findings: list[Finding] = field(default_factory=list)
    plan_sets: int = 0        #: distinct plan sets verified
    selector_checks: int = 0  #: selector-envelope checks run
    cannon_checks: int = 0    #: Cannon itinerary families verified
    channel_checks: int = 0   #: channel-claim (RA308) checks run
    workloads: list[str] = field(default_factory=list)
    candidates: int = 0       #: candidate configurations walked

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def summary(self) -> str:
        e = len(self.errors())
        w = len(self.findings) - e
        return (
            f"check-plans: {len(self.workloads)} workload(s), "
            f"{self.candidates} candidate(s), {self.plan_sets} plan set(s), "
            f"{self.selector_checks} selector check(s), "
            f"{self.cannon_checks} cannon famil{'y' if self.cannon_checks == 1 else 'ies'}, "
            f"{self.channel_checks} channel claim(s) "
            f"-> {e} error(s), {w} warning(s)"
        )


def _population_for(candidate, n: int) -> set:
    """``(verb, comm_size, root, n_elems, itemsize)`` ops of one candidate."""
    if candidate.kernel == "ssc":
        from repro.kernels.symmsquarecube import ssc_plan_population

        return ssc_plan_population(candidate.mesh[0], n,
                                   algorithm=candidate.algorithm,
                                   n_dup=candidate.n_dup)
    if candidate.kernel == "summa":
        from repro.dense.summa import summa_plan_population

        return set(summa_plan_population(candidate.mesh[0], n,
                                         algorithm=candidate.algorithm,
                                         colors=candidate.n_dup,
                                         depth=candidate.depth))
    from repro.kernels.ssc25d import ssc25d_plan_population

    q, _q, c = candidate.mesh
    return ssc25d_plan_population(q, c, n, n_dup=candidate.n_dup)


def check_plans(signatures=None, *, params: NetworkParams | None = None,
                machine=None, pessimism_warnings: bool = True,
                ) -> PlanCheckReport:
    """Verify every plan a set of workloads can put in front of the executor.

    For each signature, the tune candidate enumeration supplies the
    configurations a tuned run may pick (algorithm variant, ``N_DUP``,
    mesh factorization, collective override); each candidate's kernel
    describes its collective-op population
    (:func:`~repro.kernels.symmsquarecube.ssc_plan_population` /
    :func:`~repro.kernels.ssc25d.ssc25d_plan_population`); the protocol
    selectors map each op to a generator under the candidate's effective
    parameters; and every distinct resulting plan set is verified once.
    2.5D candidates additionally verify their Cannon shift itineraries.

    ``signatures=None`` walks the default population: the table1/table2
    quick workloads (the acceptance gate).  ``pessimism_warnings=False``
    drops RA305 warnings from the report (they are advisory).
    """
    from repro.tune.candidates import apply_collective, enumerate_candidates

    if signatures is None:
        signatures = default_signatures(params=params, machine=machine)
    report = PlanCheckReport()
    seen_sets: set[tuple] = set()
    seen_selectors: set[tuple] = set()
    seen_cannon: set[tuple] = set()
    seen_cand: set[tuple] = set()
    base = params or NetworkParams()
    for sig in signatures:
        report.workloads.append(sig.key)
        for cand in enumerate_candidates(sig, machine=machine):
            # PPN moves ranks across nodes but never changes a schedule;
            # dedupe so the walk is the distinct plan-shaping configs.
            cand_key = (cand.kernel, cand.algorithm, cand.mesh, cand.n_dup,
                        cand.collective, sig.n)
            if cand_key in seen_cand:
                continue
            seen_cand.add(cand_key)
            report.candidates += 1
            eff = apply_collective(base, cand.collective)
            for verb, size, root, n_elems, itemsize in sorted(
                    _population_for(cand, sig.n)):
                sel_key = (verb, size, n_elems, itemsize,
                           eff.long_message_threshold)
                if sel_key not in seen_selectors:
                    seen_selectors.add(sel_key)
                    report.selector_checks += 1
                    report.findings.extend(verify_selector_envelope(
                        size, n_elems, itemsize, eff, verbs=(verb,)))
                algorithm = SELECTORS[verb](size, n_elems, itemsize, eff)
                set_key = (algorithm, size, root, n_elems, itemsize)
                if set_key in seen_sets:
                    continue
                seen_sets.add(set_key)
                report.plan_sets += 1
                report.findings.extend(verify_plan_set(
                    build_plan_set(*set_key)))
            if cand.kernel == "ssc25d":
                q, _q, c = cand.mesh
                steps = q // c
                for k in range(c):
                    ckey = (q, sig.n, steps, k * steps)
                    if ckey in seen_cannon:
                        continue
                    seen_cannon.add(ckey)
                    report.cannon_checks += 1
                    report.findings.extend(
                        verify_cannon_shift_plans(*ckey))
            if cand.kernel == "summa":
                from repro.dense.summa import summa_channel_claims

                # Colored candidates run on a fabric widened to their
                # color count (run_summa/simulate_candidate bump
                # num_channels the same way).
                nch = max(base.num_channels, cand.n_dup)
                claims = summa_channel_claims(
                    cand.mesh[0], algorithm=cand.algorithm,
                    colors=cand.n_dup, depth=cand.depth)
                report.channel_checks += 1
                report.findings.extend(verify_channel_claims(
                    claims, nch,
                    f"summa[{cand.algorithm},p={cand.mesh[0]},"
                    f"colors={cand.n_dup},depth={cand.depth}]"))
    if not pessimism_warnings:
        report.findings = [f for f in report.findings if f.check != "RA305"]
    report.findings.sort(key=lambda f: (f.site or "", f.check))
    return report


def signature_from_key(key: str):
    """Rebuild a :class:`WorkloadSignature` from its canonical key string.

    Accepts the ``kernel:nN:rR:mAxBxC:ppnP:placement:fabric`` format of
    :attr:`~repro.tune.signature.WorkloadSignature.key`.  The trailing
    fabric-hash segment is ignored (and may be omitted): plan *structure*
    is independent of the fabric constants — that independence is exactly
    what RA306 proves — so ``check-plans`` verifies the same plan
    population whichever fabric the key was minted under.
    """
    parts = key.split(":")
    if len(parts) < 5:
        raise ValueError(
            f"malformed signature key {key!r}; expected "
            f"'kernel:nN:rR:mAxBxC:ppnP[:placement[:fabric]]'")
    kernel, n_s, r_s, mesh_s, ppn_s = parts[:5]
    placement = parts[5] if len(parts) > 5 else "block"
    try:
        n = int(n_s.removeprefix("n"))
        ranks = int(r_s.removeprefix("r"))
        mesh = tuple(int(x) for x in mesh_s.removeprefix("m").split("x"))
        ppn = int(ppn_s.removeprefix("ppn"))
    except ValueError:
        raise ValueError(f"malformed signature key {key!r}") from None
    if len(mesh) != 3 or mesh[0] * mesh[1] * mesh[2] != ranks:
        raise ValueError(
            f"signature key {key!r}: mesh {mesh_s!r} does not factor "
            f"{ranks} ranks")
    from repro.tune.signature import (signature_for_ssc, signature_for_ssc25d,
                                      signature_for_summa)

    if kernel == "ssc":
        return signature_for_ssc(mesh[0], n, ppn=ppn, placement=placement)
    if kernel == "ssc25d":
        return signature_for_ssc25d(mesh[0], mesh[2], n, ppn=ppn)
    if kernel == "summa":
        return signature_for_summa(mesh[0], n, ppn=ppn)
    raise ValueError(f"signature key {key!r}: unknown kernel {kernel!r}")


def default_signatures(*, params=None, machine=None):
    """The table1/table2 quick workloads — the CI acceptance population.

    Table I sweeps Algorithms 3-5 and Table II the ``N_DUP`` axis, both on
    the ``4^3`` mesh over the three molecular systems; one ``ssc``
    signature per system dimension covers both tables (the candidate
    enumeration spans every algorithm and ``N_DUP``), a small 2.5D
    signature keeps Algorithm 6's plan space and Cannon itineraries in
    the gate, and a SUMMA signature walks the pipelined-multicast family
    (its channel claims included — RA308).
    """
    from repro.purify import SYSTEMS
    from repro.tune.signature import (signature_for_ssc, signature_for_ssc25d,
                                      signature_for_summa)

    sigs = [signature_for_ssc(4, n, params=params, machine=machine)
            for n, _nocc in SYSTEMS.values()]
    sigs.append(signature_for_ssc25d(4, 2, 512, params=params,
                                     machine=machine))
    sigs.append(signature_for_summa(4, 1024, params=params, machine=machine))
    return sigs


# ---------------------------------------------------------------------------
# mutation fixtures (fail-closed gates for tests and `check-plans --selftest`)
# ---------------------------------------------------------------------------


def _clone_with_rounds(plan: CollectivePlan, rounds) -> CollectivePlan:
    """A structural copy of ``plan`` with substituted rounds.

    Bypasses ``__init__`` on purpose: the fixtures corrupt precomputed
    facts (alias bits) that rebuilding would silently repair.
    """
    clone = object.__new__(CollectivePlan)
    clone.key = plan.key
    clone.rounds = tuple(tuple(ops) for ops in rounds)
    clone.round_max_nbytes = plan.round_max_nbytes
    clone.round_adds = plan.round_adds
    return clone


def flip_needs_copy(plan: CollectivePlan, round_idx: int,
                    op_idx: int) -> CollectivePlan:
    """Copy of ``plan`` with one op's ``needs_copy`` bit inverted."""
    rounds = [list(ops) for ops in plan.rounds]
    op = rounds[round_idx][op_idx]
    rounds[round_idx][op_idx] = op[:5] + (not op[5],)
    return _clone_with_rounds(plan, rounds)


def drop_op(plan: CollectivePlan, round_idx: int,
            op_idx: int) -> CollectivePlan:
    """Copy of ``plan`` with one op removed (an unmatched-peer seed)."""
    rounds = [list(ops) for ops in plan.rounds]
    del rounds[round_idx][op_idx]
    return _clone_with_rounds(plan, rounds)


def _find_op(plans, kind: str, needs_copy: bool | None = None):
    """First ``(me, round, idx)`` of an op of ``kind`` in a plan set."""
    for me, plan in enumerate(plans):
        for r, ops in enumerate(plan.rounds):
            for idx, op in enumerate(ops):
                if op[0] != kind or op[3] <= op[2]:
                    continue
                if needs_copy is not None and op[5] is not needs_copy:
                    continue
                return me, r, idx
    raise LookupError(f"no {kind} op (needs_copy={needs_copy}) in plan set")


def mutation_fixtures() -> dict[str, tuple[list[CollectivePlan], str]]:
    """Deliberately-broken plan sets -> their one expected error check.

    Used by the tests and ``check-plans --selftest``: the verifier must
    fail closed, reporting *exactly* the seeded defect's check ID.
    """
    fixtures: dict[str, tuple[list[CollectivePlan], str]] = {}

    # Seeded deadlock: two ranks exchange head-to-head — both send in round
    # 0 and receive in round 1, a cycle under synchronous-send semantics.
    n = 16
    head_to_head = [
        CollectivePlan.from_schedule(
            [[("send", 1 - me, 0, n)], [("copy", 1 - me, 0, n)]], 8)
        for me in range(2)
    ]
    fixtures["seeded-deadlock"] = (head_to_head, "RA301")

    # Dropped recv: remove rank 1's copy from a binomial broadcast — the
    # root's send to it can never complete.
    bcast = build_plan_set("bcast_binomial", 4, 0, n)
    me, r, idx = _find_op([bcast[1]], "copy")
    bcast = list(bcast)
    bcast[1] = drop_op(bcast[1], r, idx)
    fixtures["dropped-recv"] = (bcast, "RA302")

    # Shrunk recv: the receive narrows its range — matched sizes disagree.
    bcast2 = build_plan_set("bcast_binomial", 4, 0, n)
    me, r, idx = _find_op([bcast2[1]], "copy")
    rounds = [list(ops) for ops in bcast2[1].rounds]
    kind, peer, lo, hi, _nb, nc = rounds[r][idx]
    rounds[r][idx] = (kind, peer, lo, hi - 1, (hi - 1 - lo) * 8, nc)
    bcast2 = list(bcast2)
    bcast2[1] = _clone_with_rounds(bcast2[1], rounds)
    fixtures["shrunk-recv"] = (bcast2, "RA303")

    # Flipped alias bit: allreduce_short's reduce-phase send is overwritten
    # by the broadcast-phase receive, so its needs_copy must be True;
    # flipping it to False is the unsound-zero-copy defect.
    short = build_plan_set("allreduce_short", 4, 0, n)
    me, r, idx = _find_op(short, "send", needs_copy=True)
    short = list(short)
    short[me] = flip_needs_copy(short[me], r, idx)
    fixtures["flipped-alias-bit"] = (short, "RA304")

    # Corrupted op: a peer outside the communicator (structural damage).
    ring = build_plan_set("allgather_ring", 4, 0, n)
    rounds = [list(ops) for ops in ring[0].rounds]
    kind, _peer, lo, hi, nb, nc = rounds[0][0]
    rounds[0][0] = (kind, 9, lo, hi, nb, nc)
    ring = list(ring)
    ring[0] = _clone_with_rounds(ring[0], rounds)
    fixtures["corrupt-peer"] = (ring, "RA307")

    return fixtures


def channel_claim_fixtures() -> dict[str, tuple[list, int, str]]:
    """Deliberately-broken channel claims -> ``(claims, num_channels, check)``.

    The RA308 analogue of :func:`mutation_fixtures`: each entry corrupts
    the 4-color SUMMA claim set one way (a lane past the fabric's range; a
    collision where two colors map onto one lane) and must fail closed
    with exactly RA308.
    """
    from repro.dense.summa import summa_channel_claims

    good = summa_channel_claims(4, algorithm="colored", colors=4, depth=4)
    collided = [(color, channel % 2) for color, channel in good]
    return {
        # 4 colors but only a 2-lane fabric: colors 2 and 3 are out of range.
        "channel-out-of-range": (good, 2, "RA308"),
        # Colors folded onto lanes 0/1 of a 4-lane fabric: pairwise sharing.
        "colliding-colors": (collided, 4, "RA308"),
    }


def run_selftest() -> list[str]:
    """Run every mutation fixture; returns failure descriptions (empty = ok).

    Each fixture must produce its expected check among the *error*
    findings, and the unmutated library population must verify clean —
    the two directions of fail-closed.
    """
    failures: list[str] = []
    for name, (plans, expected) in sorted(mutation_fixtures().items()):
        checks = {f.check for f in verify_plan_set(plans, label=name)
                  if f.severity == "error"}
        if expected not in checks:
            failures.append(
                f"{name}: expected {expected} among error findings, got "
                f"{sorted(checks) or 'none'}")
        # The seeded defect must not drown in unrelated error noise.
        unexpected = checks - {expected, "RA302", "RA303"}
        if name == "corrupt-peer":
            unexpected -= {"RA301"}  # a corrupt peer also breaks matching
        if unexpected:
            failures.append(
                f"{name}: unexpected extra error checks {sorted(unexpected)}")
    for name, (claims, nch, expected) in sorted(
            channel_claim_fixtures().items()):
        checks = {f.check
                  for f in verify_channel_claims(claims, nch, label=name)}
        if expected not in checks:
            failures.append(
                f"{name}: expected {expected} among error findings, got "
                f"{sorted(checks) or 'none'}")
        if checks - {expected}:
            failures.append(
                f"{name}: unexpected extra error checks "
                f"{sorted(checks - {expected})}")
    for algorithm in sorted(GENERATORS):
        for p in (2, 3, 4, 5, 8):
            findings = [f for f in verify_collective(algorithm, p, 0, 64)
                        if f.severity == "error"]
            if findings:
                failures.append(
                    f"{algorithm} p={p}: library plans not clean: "
                    + "; ".join(f.render() for f in findings))
    # The clean direction of RA308: every valid SUMMA variant's claims.
    from repro.dense.summa import summa_channel_claims

    for algorithm, colors, depth in (("plain", 1, 1), ("streaming", 1, 4),
                                     ("colored", 2, 2), ("colored", 4, 4)):
        claims = summa_channel_claims(4, algorithm=algorithm, colors=colors,
                                      depth=depth)
        bad = verify_channel_claims(claims, max(colors, 1),
                                    f"summa-{algorithm}-{colors}")
        if bad:
            failures.append(
                f"summa {algorithm} colors={colors}: claims not clean: "
                + "; ".join(f.render() for f in bad))
    return failures
