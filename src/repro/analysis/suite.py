"""The verified-kernel suite: every paper kernel under ``World(verify=True)``.

``python -m repro.analysis verify`` (and the CI ``analysis`` job) runs all
six SymmSquareCube / 2.5D program configurations — Algorithms 3, 4, 5
(N_DUP=1 and N_DUP=2) and Algorithm 6 (N_DUP=1 and N_DUP=2) — plus a
fault-injected chaos run of the optimized kernel, each with the runtime
verifier attached, and requires zero findings.  Any schedule regression
that reorders collectives, leaks a request, or reuses an in-flight buffer
turns into a named RA1xx finding instead of a silently wrong trace.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.analysis.findings import Finding


def _chaos_plan():
    from repro.sim.faults import (
        FaultPlan,
        LinkDegradation,
        MessageDrop,
        NicJitter,
        StragglerSlowdown,
    )

    return FaultPlan([
        LinkDegradation(node=1, t_start=5e-5, t_end=2e-4, factor=0.4),
        StragglerSlowdown(rank=3, t_start=0.0, t_end=1e-3, factor=2.5),
        NicJitter(node=0, t_start=0.0, t_end=1e-3, max_extra_latency=5e-6),
        MessageDrop(probability=0.2, max_drops=4),
    ], seed=2019)


def _programs() -> dict[str, Callable]:
    from repro.kernels.ssc25d import run_ssc25d
    from repro.kernels.symmsquarecube import run_ssc

    return {
        "ssc-original": lambda: run_ssc(
            2, 8, "original", ppn=2, verify=True),
        "ssc-baseline": lambda: run_ssc(
            2, 8, "baseline", ppn=2, verify=True),
        "ssc-optimized-ndup1": lambda: run_ssc(
            2, 8, "optimized", n_dup=1, ppn=2, verify=True),
        "ssc-optimized-ndup2": lambda: run_ssc(
            2, 8, "optimized", n_dup=2, ppn=2, iterations=2, verify=True),
        "ssc25d-ndup1": lambda: run_ssc25d(
            2, 1, 8, n_dup=1, ppn=2, verify=True),
        "ssc25d-ndup2": lambda: run_ssc25d(
            2, 2, 8, n_dup=2, ppn=2, verify=True),
        "ssc-optimized-faults": lambda: run_ssc(
            2, 8, "optimized", n_dup=2, ppn=2, iterations=2,
            faults=_chaos_plan(), verify=True),
    }


def verify_suite() -> dict[str, list[Finding]]:
    """Run every suite program under the verifier; name -> findings."""
    results: dict[str, list[Finding]] = {}
    for name, runner in _programs().items():
        res = runner()
        results[name] = list(res.world.verifier.findings)
    return results
