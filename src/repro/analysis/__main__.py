"""CLI: ``python -m repro.analysis {lint,verify,check-plans}``.

``lint PATH...``
    Static AST checks (RA2xx) over every ``.py`` file under the paths.
    Exit 0 when clean, 1 when findings exist, 2 on usage errors.

``verify``
    Run the verified-kernel suite (all six SymmSquareCube/2.5D programs
    plus the fault-injected run) under ``World(verify=True)`` and report
    any runtime findings (RA1xx).  Same exit-code convention.

``check-plans``
    Static schedule verification (RA3xx): prove every collective plan the
    table1/table2 quick workloads can execute deadlock-free, completely
    matched, and zero-copy sound — or restrict to one workload with
    ``--kernel``/``--n``/... or ``--signature``.  ``--selftest`` runs the
    built-in mutation fixtures instead (each must fail with its exact
    finding) plus a clean sweep of every library generator.

Every subcommand accepts ``--format {text,json,sarif}`` (``--json`` stays
as an alias for ``--format json``) and ``--fail-on {warning,error}``:
``warning`` (the default, matching the historical behavior) exits 1 on any
finding, ``error`` ignores warning-severity findings for the exit code.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.findings import render_json, render_sarif, render_text


def _add_output_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default=None, help="output format (default: text)")
    p.add_argument("--json", action="store_true",
                   help="alias for --format json")
    p.add_argument("--fail-on", choices=("warning", "error"),
                   default="warning", dest="fail_on",
                   help="lowest severity that fails the run "
                        "(default: warning — any finding exits 1)")


def _resolve_format(args) -> str:
    if args.format is not None:
        return args.format
    return "json" if args.json else "text"


def _exit_code(findings, fail_on: str) -> int:
    if fail_on == "error":
        findings = [f for f in findings if f.severity == "error"]
    return 1 if findings else 0


def _emit(findings, fmt: str, *, clean_line: str, header: str | None = None,
          ) -> None:
    if fmt == "json":
        print(render_json(findings))
    elif fmt == "sarif":
        print(render_sarif(findings))
    else:
        if header:
            print(header)
        if findings:
            print(render_text(findings))
        else:
            print(clean_line)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="MPI correctness analysis: static comm-lint, the "
                    "runtime-verified kernel suite, and static collective-"
                    "plan verification.",
    )
    sub = parser.add_subparsers(dest="command")
    lint_p = sub.add_parser("lint", help="static AST checks (RA2xx)")
    lint_p.add_argument("paths", nargs="+", help="files or directories")
    _add_output_options(lint_p)
    verify_p = sub.add_parser(
        "verify", help="run the kernel suite under the runtime verifier")
    _add_output_options(verify_p)
    plans_p = sub.add_parser(
        "check-plans",
        help="statically verify collective plan sets (RA3xx)")
    plans_p.add_argument("--kernel", choices=("ssc", "ssc25d", "summa"),
                         help="restrict to one kernel workload")
    plans_p.add_argument("--n", type=int,
                         help="matrix dimension of the workload")
    plans_p.add_argument("--p", type=int, default=4,
                         help="3D mesh side (ssc) or q (ssc25d); default 4")
    plans_p.add_argument("--c", type=int, default=2,
                         help="2.5D replication factor (ssc25d); default 2")
    plans_p.add_argument("--signature",
                         help="verify the workload of one signature key "
                              "(e.g. 'ssc:n7645:r64:m4x4x4:ppn1:block:...'; "
                              "the fabric hash segment is ignored)")
    plans_p.add_argument("--selftest", action="store_true",
                         help="run the mutation fixtures (each must produce "
                              "its exact finding) and the library-generator "
                              "clean sweep instead of a workload walk")
    _add_output_options(plans_p)
    args = parser.parse_args(argv)

    if args.command == "lint":
        from repro.analysis.lint import lint_paths

        try:
            findings = lint_paths(args.paths)
        except FileNotFoundError as exc:
            print(f"repro.analysis lint: {exc}", file=sys.stderr)
            return 2
        _emit(findings, _resolve_format(args), clean_line="lint clean")
        return _exit_code(findings, args.fail_on)

    if args.command == "verify":
        from repro.analysis.suite import verify_suite

        results = verify_suite()
        all_findings = [f for fs in results.values() for f in fs]
        fmt = _resolve_format(args)
        if fmt == "text":
            for name, fs in results.items():
                status = "clean" if not fs else f"{len(fs)} finding(s)"
                print(f"{name}: {status}")
            if all_findings:
                print(render_text(all_findings))
        else:
            _emit(all_findings, fmt, clean_line="")
        return _exit_code(all_findings, args.fail_on)

    if args.command == "check-plans":
        from repro.analysis import schedule

        fmt = _resolve_format(args)
        if args.selftest:
            failures = schedule.run_selftest()
            if fmt == "text":
                for line in failures:
                    print(f"selftest FAILED: {line}")
                if not failures:
                    print("check-plans selftest passed: every mutation "
                          "fixture produced its expected finding and every "
                          "library generator verified clean")
            else:
                import json as _json

                print(_json.dumps({"selftest_failures": failures}, indent=1))
            return 1 if failures else 0
        try:
            signatures = _signatures_from_args(args)
        except ValueError as exc:
            print(f"repro.analysis check-plans: {exc}", file=sys.stderr)
            return 2
        report = schedule.check_plans(signatures)
        _emit(report.findings, fmt, clean_line="",
              header=report.summary() if fmt == "text" else None)
        return _exit_code(report.findings, args.fail_on)

    parser.print_help()
    return 2


def _signatures_from_args(args):
    """Workload signatures selected by the check-plans flags (None = default)."""
    from repro.tune.signature import (signature_for_ssc, signature_for_ssc25d,
                                      signature_for_summa)

    if args.signature:
        from repro.analysis.schedule import signature_from_key

        return [signature_from_key(args.signature)]
    if args.kernel is None:
        if args.n is not None:
            raise ValueError("--n requires --kernel")
        return None  # the default table1/table2 quick population
    if args.n is None:
        raise ValueError("--kernel requires --n")
    if args.kernel == "ssc":
        return [signature_for_ssc(args.p, args.n)]
    if args.kernel == "summa":
        return [signature_for_summa(args.p, args.n)]
    return [signature_for_ssc25d(args.p, args.c, args.n)]


if __name__ == "__main__":
    raise SystemExit(main())
