"""CLI: ``python -m repro.analysis {lint,verify}``.

``lint PATH...``
    Static AST checks (RA2xx) over every ``.py`` file under the paths.
    Exit 0 when clean, 1 when findings exist, 2 on usage errors.

``verify``
    Run the verified-kernel suite (all six SymmSquareCube/2.5D programs
    plus the fault-injected run) under ``World(verify=True)`` and report
    any runtime findings (RA1xx).  Same exit-code convention.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.findings import render_json, render_text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="MPI correctness analysis: static comm-lint and the "
                    "runtime-verified kernel suite.",
    )
    sub = parser.add_subparsers(dest="command")
    lint_p = sub.add_parser("lint", help="static AST checks (RA2xx)")
    lint_p.add_argument("paths", nargs="+", help="files or directories")
    lint_p.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    verify_p = sub.add_parser(
        "verify", help="run the kernel suite under the runtime verifier")
    verify_p.add_argument("--json", action="store_true",
                          help="emit findings as JSON")
    args = parser.parse_args(argv)

    if args.command == "lint":
        from repro.analysis.lint import lint_paths

        try:
            findings = lint_paths(args.paths)
        except FileNotFoundError as exc:
            print(f"repro.analysis lint: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(render_json(findings))
        elif findings:
            print(render_text(findings))
        else:
            print("lint clean")
        return 1 if findings else 0

    if args.command == "verify":
        from repro.analysis.suite import verify_suite

        results = verify_suite()
        all_findings = [f for fs in results.values() for f in fs]
        if args.json:
            print(render_json(all_findings))
        else:
            for name, fs in results.items():
                status = "clean" if not fs else f"{len(fs)} finding(s)"
                print(f"{name}: {status}")
            if all_findings:
                print(render_text(all_findings))
        return 1 if all_findings else 0

    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
