"""Findings model shared by the runtime verifier and the static lint.

Every check has a stable ID (``RA1xx`` runtime, ``RA2xx`` static) so that
CI greps, docs and suppressions never chase renamed messages.  A
:class:`Finding` pins one violation to a rank / virtual time / call site
(runtime) or a file:line (static); the two reporters render the same list
as human-readable text or as JSON for tooling.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field


#: check id -> (kind, severity, one-line title)
CHECKS: dict[str, tuple[str, str, str]] = {
    "RA101": ("runtime", "error",
              "collective sequence mismatch across communicator ranks"),
    "RA102": ("runtime", "error",
              "request leak: nonblocking operation never wait/test-completed"),
    "RA103": ("runtime", "error",
              "buffer hazard: buffer reused while a nonblocking op is in flight"),
    "RA104": ("runtime", "error",
              "unmatched point-to-point send/recv at program exit"),
    "RA105": ("runtime", "warning",
              "tag collision: concurrent identical p2p envelopes (FIFO-order dependent)"),
    "RA106": ("runtime", "error",
              "deadlock: event queue drained with ranks still suspended"),
    "RA107": ("runtime", "error",
              "waitany called with an empty request list"),
    "RA201": ("static", "error",
              "generator comm call without 'yield from'"),
    "RA202": ("static", "error",
              "Request returned by a nonblocking call is discarded"),
    "RA203": ("static", "error",
              "dup_many result indexed out of range of N_DUP"),
    "RA204": ("static", "error",
              "nondeterministic time/random use inside repro.sim / repro.mpi"),
    "RA205": ("static", "error",
              "buffer mutated between isend() and the wait() that completes it"),
    "RA206": ("static", "error",
              "wait/waitall on a request variable never assigned from a comm call"),
    "RA301": ("plan", "error",
              "deadlock: send/recv dependency cycle across ranks"),
    "RA302": ("plan", "error",
              "unmatched plan op: a send without its recv (or vice versa)"),
    "RA303": ("plan", "error",
              "matched send/recv disagree on element range or byte count"),
    "RA304": ("plan", "error",
              "unsound zero-copy bit: alias-free send overlaps an in-flight write"),
    "RA305": ("plan", "warning",
              "pessimistic copy bit: snapshot taken for a provably alias-free send"),
    "RA306": ("plan", "error",
              "schedule structure depends on a replay-safe fabric constant"),
    "RA307": ("plan", "error",
              "malformed plan op (bad kind, peer, range or precomputed size)"),
    "RA308": ("plan", "error",
              "channel claim out of fabric range, or two disjoint colors "
              "sharing one (link, channel) resource"),
}


@dataclass(frozen=True)
class Finding:
    """One violation reported by a check.

    ``rank``/``time`` are set by runtime checks (``None`` for static ones);
    ``site`` is a ``file:line`` / ``file:line in func`` location — the user
    call site for runtime findings, the offending source line for lint ones.
    """

    check: str
    message: str
    rank: int | None = None
    time: float | None = None
    site: str | None = None
    extra: dict = field(default_factory=dict, compare=False)

    @property
    def severity(self) -> str:
        return CHECKS[self.check][1]

    @property
    def title(self) -> str:
        return CHECKS[self.check][2]

    def to_jsonable(self) -> dict:
        return {
            "check": self.check,
            "severity": self.severity,
            "message": self.message,
            "rank": self.rank,
            "time": self.time,
            "site": self.site,
            "extra": dict(self.extra),
        }

    def render(self) -> str:
        where = []
        if self.site:
            where.append(self.site)
        if self.rank is not None:
            where.append(f"rank {self.rank}")
        if self.time is not None:
            where.append(f"t={self.time:.9g}s")
        loc = " | ".join(where)
        head = f"{self.check} [{self.severity}]"
        return f"{head} {loc}: {self.message}" if loc else f"{head}: {self.message}"


def render_text(findings: list[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary line."""
    lines = [f.render() for f in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(f"{len(findings)} finding(s): {errors} error(s), "
                 f"{warnings} warning(s)")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """Machine-readable report (a JSON array of finding objects)."""
    return json.dumps([f.to_jsonable() for f in findings], indent=1)


#: SARIF severity levels by finding severity.
_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def _sarif_location(site: str | None) -> dict | None:
    """Physical location for a ``file:line[ in func]`` site, if it parses.

    Plan-level findings carry symbolic sites (plan keys, rank/round
    coordinates) instead of file positions; those stay in the message text
    and produce no SARIF location.
    """
    if not site:
        return None
    head = site.split(" in ")[0]
    path, _, line = head.rpartition(":")
    if not path or not line.isdigit():
        return None
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {"startLine": int(line)},
        }
    }


def render_sarif(findings: list[Finding], tool_name: str = "repro.analysis") -> str:
    """SARIF 2.1.0 report — what CI uploads so code hosts annotate findings.

    Every check in :data:`CHECKS` appears as a rule (stable IDs again), and
    each finding becomes one ``result``; findings with ``file:line`` sites
    carry a physical location, symbolic (plan) sites ride in the message.
    """
    rules = [
        {
            "id": check,
            "shortDescription": {"text": title},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(severity, "note"),
            },
        }
        for check, (_kind, severity, title) in sorted(CHECKS.items())
    ]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = []
    for f in findings:
        message = f.message
        where = []
        if f.rank is not None:
            where.append(f"rank {f.rank}")
        if f.time is not None:
            where.append(f"t={f.time:.9g}s")
        if where:
            message = f"{message} [{', '.join(where)}]"
        result = {
            "ruleId": f.check,
            "ruleIndex": rule_index[f.check],
            "level": _SARIF_LEVELS.get(f.severity, "note"),
            "message": {"text": message},
        }
        loc = _sarif_location(f.site)
        if loc is not None:
            result["locations"] = [loc]
        elif f.site:
            result["message"]["text"] += f" (at {f.site})"
        results.append(result)
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=1)


_LIBRARY_DIRS = ("repro/mpi", "repro/analysis", "repro/sim")


def call_site() -> str | None:
    """Best-effort user call site: innermost stack frame outside the library.

    Generator delegation (``yield from``) keeps the whole rank-program call
    chain on the Python stack while a comm method executes, so walking
    outward from the hook frame finds the program line that issued the
    operation.  Pure introspection — never touches the simulation clock.
    """
    try:
        stack = traceback.extract_stack()
    except Exception:  # pragma: no cover - extract_stack does not fail
        return None
    for frame in reversed(stack[:-1]):
        filename = frame.filename.replace("\\", "/")
        if not any(d in filename for d in _LIBRARY_DIRS):
            return f"{filename}:{frame.lineno} in {frame.name}"
    return None
