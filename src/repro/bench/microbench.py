"""Micro-benchmarks: the measurement programs behind Figs. 3, 5 and 6.

All run on tiny dedicated worlds in modeled (size-only) mode and return
virtual-time measurements.  The three collective cases follow §V-B:

1. *blocking*: one process per node, a single blocking collective;
2. *nonblocking overlap* (``N_DUP = 4``): one process per node, four
   duplicated communicators each carrying a nonblocking collective of a
   quarter of the message;
3. *4 PPN overlap*: four processes per node; the four "column"
   communicators (one process per node each) each run a blocking
   collective of a quarter of the message, naturally overlapped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.requests import waitall
from repro.mpi.world import RankEnv, World
from repro.netmodel import NetworkParams, split_placement
from repro.netmodel.analytic import collective_volume_long_message
from repro.netmodel.topology import Cluster, block_placement
from repro.util import check_positive


def p2p_bandwidth(
    msg_bytes: int,
    ppn: int,
    params: NetworkParams | None = None,
    window: int = 4,
) -> float:
    """Fig. 3 measurement: aggregate unidirectional bandwidth [B/s].

    ``ppn`` sender processes on node 0 each stream ``window`` back-to-back
    messages of ``msg_bytes`` to a partner process on node 1; returns
    ``ppn * window * msg_bytes / elapsed``.
    """
    check_positive("msg_bytes", msg_bytes)
    check_positive("ppn", ppn)
    check_positive("window", window)
    # split_placement puts ranks [0, ppn) on node 0 and [ppn, 2 ppn) on node 1.
    world = World(split_placement(ppn), params=params)
    comm = world.comm_world

    def sender(env: RankEnv):
        view = env.view(comm)
        reqs = []
        for w in range(window):
            req = yield from view.isend(env.rank + ppn, nbytes=msg_bytes, tag=w)
            reqs.append(req)
        yield from waitall(reqs)

    def receiver(env: RankEnv):
        view = env.view(comm)
        reqs = []
        for w in range(window):
            req = yield from view.irecv(env.rank - ppn, tag=w)
            reqs.append(req)
        yield from waitall(reqs)

    for r in range(ppn):
        world.spawn(r, sender(RankEnv(world, r)))
    for r in range(ppn, 2 * ppn):
        world.spawn(r, receiver(RankEnv(world, r)))
    elapsed = world.run()
    return ppn * window * msg_bytes / elapsed


_CASES = ("blocking", "nonblocking", "ppn", "multithread")
_OPS = ("bcast", "reduce")


def _single_collective(view, op: str, nbytes: int, blocking: bool):
    """Sub-generator: one bcast/reduce of ``nbytes`` on ``view``; returns request or None."""
    if op == "bcast":
        if blocking:
            yield from view.bcast(nbytes=nbytes, root=0)
            return None
        req = yield from view.ibcast(nbytes=nbytes, root=0)
        return req
    if op == "reduce":
        if blocking:
            yield from view.reduce(nbytes=nbytes, root=0)
            return None
        req = yield from view.ireduce(nbytes=nbytes, root=0)
        return req
    raise ValueError(f"unknown op {op!r}")


@dataclass
class CollectiveMeasurement:
    """One §V-B micro-benchmark point."""

    op: str
    case: str
    msg_bytes: int
    elapsed: float
    nodes: int = 4

    @property
    def bandwidth(self) -> float:
        """Paper convention: ``2 (p-1) n / p`` volume over elapsed time."""
        return collective_volume_long_message(self.msg_bytes, self.nodes) / self.elapsed


def collective_bandwidth(
    op: str,
    case: str,
    msg_bytes: int,
    params: NetworkParams | None = None,
    nodes: int = 4,
    n_dup: int = 4,
) -> CollectiveMeasurement:
    """Fig. 5 measurement: effective collective bandwidth for one case.

    ``op`` in {"bcast", "reduce"}; ``case`` in {"blocking", "nonblocking",
    "ppn", "multithread"} (see the module docstring).  The fourth case
    models the technique the paper tried and rejected (§I): ``n_dup``
    threads of one process each drive a *blocking* collective of a quarter
    of the message through a thread-safe MPI library — their internal
    rounds all serialize on the library's lock (modeled as a per-round
    critical section on the process's progress engine), and each call pays
    a thread-safety overhead.
    """
    if op not in _OPS:
        raise ValueError(f"op must be one of {_OPS}")
    if case not in _CASES:
        raise ValueError(f"case must be one of {_CASES}")
    check_positive("msg_bytes", msg_bytes)

    if case == "multithread":
        return _multithread_collective(op, msg_bytes, params, nodes, n_dup)
    if case in ("blocking", "nonblocking"):
        world = World(block_placement(nodes, 1), params=params)
        if case == "blocking":
            comm = world.comm_world

            def program(env: RankEnv):
                view = env.view(comm)
                yield from _single_collective(view, op, msg_bytes, blocking=True)

            world.spawn_all(program)
        else:
            dups = world.comm_world.dup_many(n_dup)
            part = msg_bytes // n_dup

            def program(env: RankEnv):
                reqs = []
                for c, comm in enumerate(dups):
                    view = env.view(comm)
                    req = yield from _single_collective(view, op, part, blocking=False)
                    reqs.append(req)
                yield from waitall(reqs)

            world.spawn_all(program)
    else:  # "ppn": nodes * n_dup ranks, n_dup per node; column communicators.
        world = World(block_placement(nodes * n_dup, n_dup), params=params)
        # Column communicator c holds the c-th rank of every node.
        columns = [
            world.new_comm([node * n_dup + c for node in range(nodes)], f"colcomm{c}")
            for c in range(n_dup)
        ]
        part = msg_bytes // n_dup

        def program(env: RankEnv):
            comm = columns[env.rank % n_dup]
            view = env.view(comm)
            yield from _single_collective(view, op, part, blocking=True)

        world.spawn_all(program)

    elapsed = world.run()
    return CollectiveMeasurement(op=op, case=case, msg_bytes=msg_bytes,
                                 elapsed=elapsed, nodes=nodes)


_THREAD_CALL_OVERHEAD = 3.0e-6   # per-MPI-call lock/thread-safety cost [s]
_THREAD_ROUND_LOCK = 2.0e-6      # per-round critical section [s]


def _multithread_collective(op, msg_bytes, params, nodes, n_threads):
    """The multithreaded-overlap case: n_threads blocking collectives from
    one process, with all internal rounds contending on the MPI lock."""
    from repro.mpi.collectives.executor import ScheduleRunner

    world = World(block_placement(nodes, 1), params=params)
    dups = world.comm_world.dup_many(n_threads)
    part = msg_bytes // n_threads

    def program(env: RankEnv):
        # Thread-safety cost of entering MPI from n_threads threads.
        yield from env.compute(n_threads * _THREAD_CALL_OVERHEAD, "mpi-locks")
        events = []
        for comm in dups:
            view = env.view(comm)
            if op == "bcast":
                sched = view._bcast_schedule(part, 1, 0)
            else:
                sched = view._reduce_schedule(part, 1, 0)
            # Blocking semantics per thread (round gaps apply), and every
            # round additionally passes through the process-wide MPI lock.
            runner = ScheduleRunner(
                world, comm, view.rank, view._next_tag(), sched, None, 1,
                blocking=True, label=f"mt-{op}",
            )
            for _ in sched:
                world.progress_of(env.rank).submit(_THREAD_ROUND_LOCK, "mpi-lock")
            events.append(runner.start())
        for ev in events:
            if not ev.fired:
                yield ev

    world.spawn_all(program)
    elapsed = world.run()
    return CollectiveMeasurement(op=op, case="multithread", msg_bytes=msg_bytes,
                                 elapsed=elapsed, nodes=nodes)


@dataclass
class TimingDetail:
    """Posting/wait breakdown of one operation instance (Fig. 6 bars)."""

    label: str
    post: float    # seconds spent inside the posting call
    wait: float    # seconds from posting return to completion
    total: float


def collective_timing_detail(
    op: str,
    case: str,
    msg_bytes: int,
    params: NetworkParams | None = None,
    nodes: int = 4,
    n_dup: int = 4,
) -> list[TimingDetail]:
    """Fig. 6 measurement: per-operation post/wait times on node 0.

    For ``blocking``/``nonblocking`` the measurements come from rank 0; for
    the PPN case one entry per node-0 process.
    """
    if op not in _OPS:
        raise ValueError(f"op must be one of {_OPS}")
    out: list[TimingDetail] = []

    if case == "blocking":
        world = World(block_placement(nodes, 1), params=params)
        comm = world.comm_world

        def program(env: RankEnv):
            view = env.view(comm)
            t0 = env.now
            yield from _single_collective(view, op, msg_bytes, blocking=True)
            if env.rank == 0:
                out.append(TimingDetail(f"blocking {op}", env.now - t0, 0.0,
                                        env.now - t0))

        world.spawn_all(program)
        world.run()
    elif case == "nonblocking":
        world = World(block_placement(nodes, 1), params=params)
        dups = world.comm_world.dup_many(n_dup)
        part = msg_bytes // max(n_dup, 1)

        def program(env: RankEnv):
            reqs = []
            posts = []
            for comm in dups:
                view = env.view(comm)
                t0 = env.now
                req = yield from _single_collective(view, op, part, blocking=False)
                posts.append((t0, env.now))
                reqs.append(req)
            for c, req in enumerate(reqs):
                t0, t1 = posts[c]
                yield from req.wait()
                if env.rank == 0:
                    out.append(
                        TimingDetail(
                            f"{c + 1}th nonblocking {op}",
                            t1 - t0,
                            env.now - t1,
                            env.now - posts[0][0],
                        )
                    )

        world.spawn_all(program)
        world.run()
    elif case == "ppn":
        world = World(block_placement(nodes * n_dup, n_dup), params=params)
        columns = [
            world.new_comm([node * n_dup + c for node in range(nodes)], f"colcomm{c}")
            for c in range(n_dup)
        ]
        part = msg_bytes // max(n_dup, 1)

        def program(env: RankEnv):
            comm = columns[env.rank % n_dup]
            view = env.view(comm)
            t0 = env.now
            yield from _single_collective(view, op, part, blocking=True)
            if env.rank < n_dup:  # node-0 processes
                out.append(
                    TimingDetail(
                        f"proc {env.rank + 1} blocking {op} (4 PPN)",
                        env.now - t0,
                        0.0,
                        env.now - t0,
                    )
                )

        world.spawn_all(program)
        world.run()
    else:
        raise ValueError(f"case must be one of {_CASES}")
    return out
