"""Benchmark harness regenerating every table and figure of the paper.

Each experiment lives in :mod:`repro.bench.experiments` and is registered in
:data:`repro.bench.harness.EXPERIMENTS`; run them with::

    python -m repro.bench --list
    python -m repro.bench fig3 fig5 table1
    python -m repro.bench all --quick

``--quick`` shrinks sweeps (fewer sizes / iterations / configurations) so the
whole suite finishes in a couple of minutes; the full runs regenerate the
paper-scale numbers recorded in ``EXPERIMENTS.md``.
"""

from repro.bench.harness import EXPERIMENTS, ExperimentOutput, run_experiment
from repro.bench.microbench import (
    p2p_bandwidth,
    collective_bandwidth,
    collective_timing_detail,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentOutput",
    "run_experiment",
    "p2p_bandwidth",
    "collective_bandwidth",
    "collective_timing_detail",
]
