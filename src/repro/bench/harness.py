"""Experiment registry and runner.

Every experiment module in :mod:`repro.bench.experiments` exposes

``run(quick: bool = False) -> ExperimentOutput``
    Execute the experiment (scaled down when ``quick``) and return the
    rendered tables plus a dict of raw values.

``check(output: ExperimentOutput) -> None``
    Assert the *qualitative* reproduction targets listed in DESIGN.md
    (who wins, rough factors, monotonicity) — the benchmark tests call it.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field

from repro.util import Table

#: experiment id -> (module name, one-line description)
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "alg12": ("alg12_matvec", "Algorithms 1-2: the didactic overlapped matvec"),
    "fig3": ("fig3_p2p_bandwidth", "P2P bandwidth vs message size for PPN=1,2,4,8"),
    "secva": ("secva_model", "alpha-beta model vs simulated baseline time (§V-A)"),
    "fig5": ("fig5_collective_bw", "Bcast/Reduce bandwidth: blocking vs both overlaps"),
    "fig6": ("fig6_time_diagram", "Posting/wait time diagram for 8 MB collectives"),
    "table1": ("table1_algorithms", "SymmSquareCube Alg. 3/4/5 performance"),
    "table2": ("table2_ndup", "Optimized SymmSquareCube vs N_DUP"),
    "table3": ("table3_ppn", "SymmSquareCube vs PPN with N_DUP=1 and 4"),
    "table4": ("table4_comm_volume", "Inter-node volume/bandwidth/time vs PPN"),
    "table5": ("table5_25d", "2.5D SymmSquareCube configurations"),
    "ext-cg": (
        "ext_cg_solver",
        "extension (§VI): overlapped reductions in conjugate gradient",
    ),
    "ablation-collectives": (
        "ablation_collectives",
        "binomial vs long-message collective algorithms under overlap",
    ),
    "ext-md": (
        "ext_md_forces",
        "extension (§VI): overlapped collectives in particle simulations",
    ),
    "ablation-multithread": (
        "ablation_multithread",
        "multithreaded overlap vs the paper's two techniques (§I)",
    ),
    "ablation-placement": (
        "ablation_placement",
        "rank-to-node placement sensitivity of the optimized kernel",
    ),
    "ablation-network": (
        "ablation_network",
        "sensitivity of the headline speedups to network-model constants",
    ),
    "ablation-faults": (
        "ablation_faults",
        "resilience of the overlap gains under injected fabric faults",
    ),
    "ablation-verify": (
        "ablation_verify",
        "runtime-verifier overhead: simulated time unchanged, wall cost only",
    ),
    "perf_sim_core": (
        "perf_sim_core",
        "simulator-core microbenchmark vs the committed perf baseline",
    ),
}


@dataclass
class ExperimentOutput:
    """Tables + raw values produced by one experiment run.

    ``sim_stats`` carries the simulator-cost counters accumulated while the
    experiment ran (events processed/cancelled, peak heap size, heap
    compactions) — kept separate from ``values`` because every experiment's
    ``check()`` treats ``values`` as *its own* result dictionary.
    """

    name: str
    tables: list[Table] = field(default_factory=list)
    values: dict = field(default_factory=dict)
    notes: str = ""
    sim_stats: dict = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"### {self.name}"]
        for t in self.tables:
            parts.append(t.render())
        if self.notes:
            parts.append(self.notes.rstrip() + "\n")
        if self.sim_stats:
            s = self.sim_stats
            parts.append(
                "simulator cost: "
                f"{s.get('events_processed', 0):,} events processed, "
                f"{s.get('events_cancelled', 0):,} cancelled, "
                f"peak heap {s.get('peak_heap_size', 0):,}, "
                f"{s.get('heap_compactions', 0)} compactions\n"
            )
        return "\n".join(parts)


def load_experiment(name: str):
    """Import the experiment module registered under ``name``."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
    module_name, _desc = EXPERIMENTS[name]
    return importlib.import_module(f"repro.bench.experiments.{module_name}")


def run_experiment(name: str, quick: bool = False) -> ExperimentOutput:
    """Run one experiment end to end and return its output.

    Simulator-cost counters (events processed/cancelled, peak heap size,
    compactions) are aggregated across every :class:`~repro.sim.engine.Engine`
    the experiment creates and attached as ``output.sim_stats`` so reports
    show simulator cost alongside simulated time.
    """
    from repro.sim.engine import Engine

    mod = load_experiment(name)
    Engine.reset_aggregate_stats()
    out = mod.run(quick=quick)
    if not out.sim_stats:
        out.sim_stats = Engine.aggregate_stats()
    return out
