"""Experiment registry and runner.

Every experiment module in :mod:`repro.bench.experiments` exposes

``run(quick: bool = False) -> ExperimentOutput``
    Execute the experiment (scaled down when ``quick``) and return the
    rendered tables plus a dict of raw values.

``check(output: ExperimentOutput) -> None``
    Assert the *qualitative* reproduction targets listed in DESIGN.md
    (who wins, rough factors, monotonicity) — the benchmark tests call it.

Sweep-style experiments may additionally expose the *grid protocol*:

``grid(quick: bool = False) -> list``
    The sweep's grid points, in output order.

``run_point(point, quick: bool = False) -> result``
    Run one grid point; the result must be picklable.

``assemble(results: list, quick: bool = False) -> ExperimentOutput``
    Build the experiment output from the per-point results (same order as
    ``grid()``).

When the protocol is present, :func:`run_experiment` drives the sweep
itself — serially, or across worker processes with ``jobs > 1`` — with
identical per-point isolation in both modes (simulator counters reset,
plan cache cleared, ``numpy.random`` reseeded from a stable hash of the
point index), so ``--jobs N`` output is byte-identical to the serial run.
"""

from __future__ import annotations

import importlib
import zlib
from dataclasses import dataclass, field

from repro.util import Table

#: experiment id -> (module name, one-line description)
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "alg12": ("alg12_matvec", "Algorithms 1-2: the didactic overlapped matvec"),
    "fig3": ("fig3_p2p_bandwidth", "P2P bandwidth vs message size for PPN=1,2,4,8"),
    "secva": ("secva_model", "alpha-beta model vs simulated baseline time (§V-A)"),
    "fig5": ("fig5_collective_bw", "Bcast/Reduce bandwidth: blocking vs both overlaps"),
    "fig6": ("fig6_time_diagram", "Posting/wait time diagram for 8 MB collectives"),
    "table1": ("table1_algorithms", "SymmSquareCube Alg. 3/4/5 performance"),
    "table2": ("table2_ndup", "Optimized SymmSquareCube vs N_DUP"),
    "table3": ("table3_ppn", "SymmSquareCube vs PPN with N_DUP=1 and 4"),
    "table4": ("table4_comm_volume", "Inter-node volume/bandwidth/time vs PPN"),
    "table5": ("table5_25d", "2.5D SymmSquareCube configurations"),
    "table6": (
        "table6_summa",
        "SUMMA family: colors x tile depth x mesh, with autotuned pick",
    ),
    "ext-cg": (
        "ext_cg_solver",
        "extension (§VI): overlapped reductions in conjugate gradient",
    ),
    "ablation-collectives": (
        "ablation_collectives",
        "binomial vs long-message collective algorithms under overlap",
    ),
    "ext-md": (
        "ext_md_forces",
        "extension (§VI): overlapped collectives in particle simulations",
    ),
    "ablation-multithread": (
        "ablation_multithread",
        "multithreaded overlap vs the paper's two techniques (§I)",
    ),
    "ablation-placement": (
        "ablation_placement",
        "rank-to-node placement sensitivity of the optimized kernel",
    ),
    "ablation-network": (
        "ablation_network",
        "sensitivity of the headline speedups to network-model constants",
    ),
    "ablation-faults": (
        "ablation_faults",
        "resilience of the overlap gains under injected fabric faults",
    ),
    "ablation-overlap": (
        "ablation_overlap",
        "measured comm-comm overlap fraction: plain vs pipelined SUMMA",
    ),
    "ablation-verify": (
        "ablation_verify",
        "runtime-verifier overhead: simulated time unchanged, wall cost only",
    ),
    "ablation-autotune": (
        "ablation_autotune",
        "repro.tune autotuned configuration vs the paper defaults",
    ),
    "ablation-tune-service": (
        "ablation_tune_service",
        "tuning service under load: coalescing, warm cache, interpolation",
    ),
    "perf_sim_core": (
        "perf_sim_core",
        "simulator-core microbenchmark vs the committed perf baseline",
    ),
}


@dataclass
class ExperimentOutput:
    """Tables + raw values produced by one experiment run.

    ``sim_stats`` carries the simulator-cost counters accumulated while the
    experiment ran (events processed/cancelled, peak heap size, heap
    compactions) — kept separate from ``values`` because every experiment's
    ``check()`` treats ``values`` as *its own* result dictionary.
    """

    name: str
    tables: list[Table] = field(default_factory=list)
    values: dict = field(default_factory=dict)
    notes: str = ""
    sim_stats: dict = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"### {self.name}"]
        for t in self.tables:
            parts.append(t.render())
        if self.notes:
            parts.append(self.notes.rstrip() + "\n")
        if self.sim_stats:
            s = self.sim_stats
            parts.append(
                "simulator cost: "
                f"{s.get('events_processed', 0):,} events processed, "
                f"{s.get('events_cancelled', 0):,} cancelled, "
                f"peak heap {s.get('peak_heap_size', 0):,}, "
                f"{s.get('heap_compactions', 0)} compactions\n"
            )
            pc = s.get("plan_cache")
            if pc and (pc.get("hits", 0) or pc.get("misses", 0)):
                parts.append(
                    "plan cache: "
                    f"{pc.get('hits', 0):,} hits, "
                    f"{pc.get('misses', 0):,} misses, "
                    f"{pc.get('evictions', 0)} evictions, "
                    f"hit rate {pc.get('hit_rate', 0.0):.1%}\n"
                )
            ov = s.get("overlap")
            if ov:
                parts.append(
                    "\n".join(
                        f"overlap[{variant}]: "
                        f"comm-comm {m['comm_comm_overlap_fraction']:.3f}, "
                        f"comm-compute "
                        f"{m['comm_compute_overlap_fraction']:.3f}, "
                        f"serialization {m['serialization_score']:.2f}"
                        for variant, m in ov.items()
                    )
                    + "\n"
                )
            fab = s.get("fabric")
            # Only worth a line when traffic actually used extra channels;
            # single-channel experiments keep their report bytes unchanged.
            if fab and any(fab.get("channel_messages", [0])[1:]):
                msgs = fab["channel_messages"]
                byts = fab["channel_bytes"]
                used = max(i for i, m in enumerate(msgs) if m) + 1
                parts.append(
                    "fabric channels: "
                    + ", ".join(
                        f"ch{i} {msgs[i]:,} msgs / {byts[i]:,.0f} B"
                        for i in range(used)
                    )
                    + "\n"
                )
        return "\n".join(parts)


def load_experiment(name: str):
    """Import the experiment module registered under ``name``."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
    module_name, _desc = EXPERIMENTS[name]
    return importlib.import_module(f"repro.bench.experiments.{module_name}")


def has_grid_protocol(mod) -> bool:
    """True when the module exposes ``grid``/``run_point``/``assemble``."""
    return all(hasattr(mod, a) for a in ("grid", "run_point", "assemble"))


def point_seed(name: str, idx: int) -> int:
    """Stable per-point RNG seed (same in serial and parallel sweeps)."""
    return zlib.crc32(f"{name}:{idx}".encode()) & 0x7FFFFFFF


def _isolate_point(name: str, idx: int) -> None:
    """Reset all cross-point process state before running one grid point."""
    import numpy as np

    from repro.mpi.collectives.plan import shared_plans
    from repro.netmodel.fabric import Fabric
    from repro.sim.engine import Engine

    shared_plans.clear()
    shared_plans.reset()
    Engine.reset_aggregate_stats()
    Fabric.reset_aggregate_stats()
    np.random.seed(point_seed(name, idx))


def _run_grid_point(payload):
    """Worker entry point (top-level so spawn contexts can pickle it)."""
    name, idx, point, quick = payload
    from repro.mpi.collectives.plan import shared_plans
    from repro.netmodel.fabric import Fabric
    from repro.sim.engine import Engine

    mod = load_experiment(name)
    _isolate_point(name, idx)
    result = mod.run_point(point, quick=quick)
    return (idx, result, Engine.aggregate_stats(), shared_plans.stats(),
            Fabric.aggregate_stats())


def _merge_point_stats(engine_stats: list[dict], plan_stats: list[dict],
                       fabric_stats: list[dict] | None = None) -> dict:
    """Combine per-point counters the way one long-lived process would.

    Engine events/cancellations/compactions, plan-cache counters and
    per-channel fabric traffic are extensive (summed; channel counters
    element-wise); peak heap size is a maximum.  The merge is a pure
    function of the ordered per-point stats, so serial and ``--jobs N``
    sweeps produce identical ``sim_stats``.
    """
    merged = {
        "events_processed": sum(s.get("events_processed", 0) for s in engine_stats),
        "events_cancelled": sum(s.get("events_cancelled", 0) for s in engine_stats),
        "peak_heap_size": max(
            (s.get("peak_heap_size", 0) for s in engine_stats), default=0
        ),
        "heap_compactions": sum(s.get("heap_compactions", 0) for s in engine_stats),
    }
    hits = sum(p.get("hits", 0) for p in plan_stats)
    misses = sum(p.get("misses", 0) for p in plan_stats)
    lookups = hits + misses
    merged["plan_cache"] = {
        "hits": hits,
        "misses": misses,
        "evictions": sum(p.get("evictions", 0) for p in plan_stats),
        "entries": sum(p.get("entries", 0) for p in plan_stats),
        "hit_rate": (hits / lookups) if lookups else 0.0,
    }
    if fabric_stats:
        from repro.netmodel.params import MAX_CHANNELS

        byts = [0.0] * MAX_CHANNELS
        msgs = [0] * MAX_CHANNELS
        for f in fabric_stats:
            for i, b in enumerate(f.get("channel_bytes", ())):
                byts[i] += b
            for i, m in enumerate(f.get("channel_messages", ())):
                msgs[i] += m
        merged["fabric"] = {"channel_bytes": byts, "channel_messages": msgs}
    return merged


def run_experiment(name: str, quick: bool = False, jobs: int = 1) -> ExperimentOutput:
    """Run one experiment end to end and return its output.

    Simulator-cost counters (events processed/cancelled, peak heap size,
    compactions) and plan-cache hit/miss counters are aggregated across
    every engine the experiment creates and attached as
    ``output.sim_stats`` so reports show simulator cost alongside simulated
    time.

    ``jobs > 1`` shards grid-protocol experiments across a spawn-context
    process pool; experiments without the protocol ignore ``jobs``.  Output
    (tables, values, and merged ``sim_stats``) is byte-identical to the
    serial run: points keep grid order and both modes apply the same
    per-point isolation.
    """
    from repro.mpi.collectives.plan import shared_plans
    from repro.netmodel.fabric import Fabric
    from repro.sim.engine import Engine

    mod = load_experiment(name)
    if has_grid_protocol(mod):
        points = list(mod.grid(quick=quick))
        payloads = [(name, i, pt, quick) for i, pt in enumerate(points)]
        if jobs > 1 and len(points) > 1:
            import multiprocessing

            ctx = multiprocessing.get_context("spawn")
            with ctx.Pool(min(jobs, len(points))) as pool:
                raw = pool.map(_run_grid_point, payloads)
        else:
            raw = [_run_grid_point(p) for p in payloads]
        raw.sort(key=lambda r: r[0])  # grid order regardless of completion
        out = mod.assemble([r[1] for r in raw], quick=quick)
        # ``assemble`` may surface derived per-run statistics (e.g. the
        # overlap report) via sim_stats; merge the harness counters in
        # without clobbering them.
        extra = out.sim_stats
        out.sim_stats = _merge_point_stats(
            [r[2] for r in raw], [r[3] for r in raw], [r[4] for r in raw]
        )
        if extra:
            out.sim_stats.update(extra)
        return out
    Engine.reset_aggregate_stats()
    Fabric.reset_aggregate_stats()
    shared_plans.clear()
    shared_plans.reset()
    out = mod.run(quick=quick)
    if not out.sim_stats:
        out.sim_stats = Engine.aggregate_stats()
        out.sim_stats["plan_cache"] = shared_plans.stats()
        out.sim_stats["fabric"] = Fabric.aggregate_stats()
    return out
