"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``.

Examples::

    python -m repro.bench --list
    python -m repro.bench table1 table3
    python -m repro.bench all --quick
    python -m repro.bench fig5 --csv out/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench.harness import EXPERIMENTS, load_experiment, run_experiment
from repro.util import MB
from repro.util.ascii import hbar_chart


def render_ascii(name: str, out) -> str:
    """ASCII bar charts for the bandwidth-style experiments (fig3/fig5)."""
    if name == "fig3":
        sizes = sorted({s for s, _p in out.values})
        lines = []
        for ppn in (1, 2, 4, 8):
            labels = [f"{s} B" for s in sizes]
            vals = [out.values[(s, ppn)] / MB for s in sizes]
            lines.append(f"PPN={ppn} (MB/s)\n" + hbar_chart(
                labels, vals, max_value=12_000))
        return "\n".join(lines)
    if name == "fig5":
        sizes = sorted({s for (_o, _c, s) in out.values})
        big = sizes[-1]
        lines = []
        for op in ("bcast", "reduce"):
            cases = ["blocking", "nonblocking", "ppn"]
            vals = [out.values[(op, c, big)] / MB for c in cases]
            lines.append(f"{op} @ {big} B (MB/s)\n" + hbar_chart(
                cases, vals, max_value=12_000))
        return "\n".join(lines)
    return ""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of Huang & Chow (IPDPS 2019).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--quick", action="store_true", help="shrink sweeps for a fast smoke run"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="also run each experiment's qualitative reproduction checks",
    )
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="write each experiment's tables as CSV files into DIR",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="write a combined markdown report of the selected experiments",
    )
    parser.add_argument(
        "--ascii", action="store_true",
        help="additionally render bandwidth experiments as ASCII bar charts",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap each experiment in cProfile and print the top-20 "
             "cumulative hot spots",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run sweep-style experiments across N worker processes "
             "(output is byte-identical to the serial run)",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        width = max(len(k) for k in EXPERIMENTS)
        for key, (_mod, desc) in EXPERIMENTS.items():
            print(f"  {key.ljust(width)}  {desc}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    if args.report:
        from repro.bench.report import generate_report

        markdown, failures = generate_report(names, quick=args.quick,
                                             check=True)
        pathlib.Path(args.report).write_text(markdown)
        print(f"wrote {args.report}")
        if failures:
            for name, msg in failures:
                print(f"[{name}] checks FAILED: {msg}", file=sys.stderr)
            return 1
        return 0

    failures = []
    for name in names:
        t0 = time.time()
        if args.profile:
            import cProfile
            import io
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            out = run_experiment(name, quick=args.quick, jobs=args.jobs)
            profiler.disable()
            stream = io.StringIO()
            pstats.Stats(profiler, stream=stream).sort_stats(
                "cumulative").print_stats(20)
            print(f"[{name}] cProfile top-20 by cumulative time:")
            print(stream.getvalue())
        else:
            out = run_experiment(name, quick=args.quick, jobs=args.jobs)
        wall = time.time() - t0
        print(out.render())
        if args.ascii:
            chart = render_ascii(name, out)
            if chart:
                print(chart)
        print(f"[{name}] completed in {wall:.1f}s wall time")
        if args.csv:
            directory = pathlib.Path(args.csv)
            directory.mkdir(parents=True, exist_ok=True)
            for i, table in enumerate(out.tables):
                path = directory / f"{name}_{i}.csv"
                path.write_text(table.to_csv())
                print(f"[{name}] wrote {path}")
        if args.check:
            try:
                load_experiment(name).check(out)
                print(f"[{name}] qualitative checks PASSED")
            except AssertionError as exc:
                failures.append((name, str(exc)))
                print(f"[{name}] qualitative checks FAILED: {exc}")
        print()
    if failures:
        print(f"{len(failures)} experiment(s) failed checks: "
              f"{', '.join(n for n, _ in failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
