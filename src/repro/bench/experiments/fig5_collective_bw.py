"""Fig. 5 — broadcast/reduction bandwidth for the three §V-B cases.

4 nodes; message sizes 16 B .. 16 MB; cases: blocking (not overlapped),
nonblocking overlap with N_DUP = 4, and 4-PPN overlap.  Bandwidth uses the
paper's ``2 (p-1) n / p`` volume convention with ``p = 4``.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.bench.microbench import collective_bandwidth
from repro.util import KIB, MB, MIB, Table, format_size

FULL_SIZES = (16, 128, 1 * KIB, 8 * KIB, 64 * KIB, 256 * KIB, 1 * MIB, 4 * MIB, 16 * MIB)
QUICK_SIZES = (1 * KIB, 256 * KIB, 8 * MIB)
CASES = ("blocking", "nonblocking", "ppn")
CASE_LABEL = {
    "blocking": "Blocking",
    "nonblocking": "Nonblocking overlap N_DUP=4",
    "ppn": "4 PPN overlap",
}


def run(quick: bool = False) -> ExperimentOutput:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    values: dict = {}
    tables = []
    for op in ("bcast", "reduce"):
        t = Table(
            ["Message size"] + [f"{CASE_LABEL[c]} (MB/s)" for c in CASES],
            title=f"Fig. 5: measured {op} bandwidth on 4 nodes",
        )
        for size in sizes:
            row = [format_size(size)]
            for case in CASES:
                m = collective_bandwidth(op, case, size)
                values[(op, case, size)] = m.bandwidth
                row.append(m.bandwidth / MB)
            t.add_row(row)
        tables.append(t)
    return ExperimentOutput(
        name="fig5",
        tables=tables,
        values=values,
        notes=(
            "Targets: blocking reduce far below blocking bcast; both overlap\n"
            "techniques improve both operations; 4-PPN strongest for reduce\n"
            "(parallel combines), nonblocking overlap strongest for bcast\n"
            "(no per-round blocking synchronization)."
        ),
    )


def check(output: ExperimentOutput) -> None:
    v = output.values
    sizes = sorted({s for (_op, _c, s) in v})
    big = sizes[-1]
    # Blocking reduce bandwidth is well below blocking bcast at large sizes.
    assert v[("reduce", "blocking", big)] < 0.55 * v[("bcast", "blocking", big)]
    # Both overlap techniques beat blocking for both ops at large sizes.
    for op in ("bcast", "reduce"):
        for case in ("nonblocking", "ppn"):
            assert v[(op, case, big)] > 1.1 * v[(op, "blocking", big)], (
                f"{case} did not beat blocking for {op}"
            )
    # 4-PPN wins for reduce; nonblocking overlap wins (or ties) for bcast.
    assert v[("reduce", "ppn", big)] > v[("reduce", "nonblocking", big)]
    assert v[("bcast", "nonblocking", big)] >= 0.95 * v[("bcast", "ppn", big)]
