"""Extension — overlapped reductions in an iterative solver (paper §VI).

The paper's conclusions propose applying communication-communication
overlap to "block iterative linear solvers, where reductions (vector norms
and dot products) involving large numbers of nodes are the bottleneck".
This experiment carries that out: classic CG (two blocking allreduces per
iteration) vs pipelined CG (one merged nonblocking allreduce overlapped
with the halo exchange and stencil) on a 1D Laplacian with a fixed local
problem size, sweeping the number of ranks.

Expected shape: at small scale the two are comparable (compute-bound); as
ranks grow the blocking reductions dominate classic CG's iteration time and
the pipelined variant's advantage approaches ~2x (it hides both
synchronization points behind other work).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.solvers import run_block_cg, run_cg
from repro.util import Table

LOCAL_N = 20_000
CONFIGS = ((4, 1), (16, 2), (64, 4), (256, 8), (512, 8))  # (ranks, ppn)
QUICK_CONFIGS = ((4, 1), (64, 4))
ITERS = 30


def run(quick: bool = False) -> ExperimentOutput:
    configs = QUICK_CONFIGS if quick else CONFIGS
    t = Table(
        ["Ranks", "PPN", "classic (us/iter)", "pipelined (us/iter)", "speedup"],
        title="Extension (§VI): CG iteration time, blocking vs overlapped reductions",
    )
    values: dict = {}
    for ranks, ppn in configs:
        n = ranks * LOCAL_N
        tc = run_cg(ranks, n, "classic", maxiter=ITERS, ppn=ppn).time_per_iteration
        tp = run_cg(ranks, n, "pipelined", maxiter=ITERS, ppn=ppn).time_per_iteration
        values[ranks] = (tc, tp)
        t.add_row([ranks, ppn, tc * 1e6, tp * 1e6, tc / tp])
    tb = Table(
        ["Ranks", "PPN", "classic (us/iter)", "pipelined (us/iter)", "speedup"],
        title="Extension (§VI): *block* CG (s=8 RHS), merged Gram reductions",
    )
    for ranks, ppn in configs:
        n = ranks * LOCAL_N
        tc = run_block_cg(ranks, n, 8, "classic", maxiter=ITERS,
                          ppn=ppn).time_per_iteration
        tp = run_block_cg(ranks, n, 8, "pipelined", maxiter=ITERS,
                          ppn=ppn).time_per_iteration
        values[("block", ranks)] = (tc, tp)
        tb.add_row([ranks, ppn, tc * 1e6, tp * 1e6, tc / tp])
    return ExperimentOutput(
        name="ext-cg",
        tables=[t, tb],
        values=values,
        notes=(
            "Pipelined CG replaces two blocking synchronization points per\n"
            "iteration with one nonblocking reduction overlapped with the\n"
            "halo exchange and local stencil — the paper's overlap idea\n"
            "applied to the solver setting its conclusions propose."
        ),
    )


def check(output: ExperimentOutput) -> None:
    v = {k: val for k, val in output.values.items() if not isinstance(k, tuple)}
    block = {k[1]: val for k, val in output.values.items() if isinstance(k, tuple)}
    big_b = max(block)
    tcb, tpb = block[big_b]
    assert tcb / tpb > 1.3, "pipelined block CG should clearly win at scale"
    ranks = sorted(v)
    big = ranks[-1]
    tc, tp = v[big]
    # At scale, hiding the reductions approaches the 2x bound.
    assert tc / tp > 1.5, f"pipelined CG speedup only {tc / tp:.2f}x at {big} ranks"
    # The advantage grows (weakly) with scale.
    small = ranks[0]
    assert v[big][0] / v[big][1] >= 0.9 * (v[small][0] / v[small][1])
    # Iteration time grows with rank count for classic (reduction latency).
    assert v[big][0] > v[small][0]
