"""Table II — optimized SymmSquareCube performance vs N_DUP.

Paper values (TFlop/s):

========  =====  =====  =====  =====  =====  =====
system    1      2      3      4      5      6
========  =====  =====  =====  =====  =====  =====
1hsg_45   13.17  15.30  14.61  16.05  16.19  16.07
1hsg_60   17.57  19.82  19.43  20.57  21.21  20.68
1hsg_70   19.21  21.51  21.47  22.48  22.39  22.54
========  =====  =====  =====  =====  =====  =====

Targets: N_DUP >= 2 clearly beats N_DUP = 1; returns flatten around
N_DUP = 4-6 ("the results justify our choice of using N_DUP = 4").
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.kernels import run_ssc
from repro.purify import SYSTEMS
from repro.util import Table

P = 4
NDUPS = (1, 2, 3, 4, 5, 6)


def _ndups(quick: bool):
    return (1, 2, 4, 6) if quick else NDUPS


def grid(quick: bool = False) -> list[tuple[str, int]]:
    """One point per (system, N_DUP) cell, in table order."""
    systems = ["1hsg_70"] if quick else list(SYSTEMS)
    return [(system, nd) for system in systems for nd in _ndups(quick)]


def run_point(point: tuple[str, int], quick: bool = False) -> float:
    system, nd = point
    # Two quick iterations (not one): the second exercises cross-iteration
    # plan-cache reuse, which this experiment's sim_stats report gates on.
    iterations = 2 if quick else 3
    n, _ = SYSTEMS[system]
    r = run_ssc(P, n, "optimized", n_dup=nd, iterations=iterations)
    return r.tflops


def assemble(results: list[float], quick: bool = False) -> ExperimentOutput:
    ndups = _ndups(quick)
    t = Table(
        ["System"] + [f"N_DUP={d}" for d in ndups],
        title="Table II: optimized SymmSquareCube (TFlop/s) vs N_DUP (p=4, PPN=1)",
    )
    values = dict(zip(grid(quick), results))
    for system in ["1hsg_70"] if quick else list(SYSTEMS):
        t.add_row([system] + [values[(system, nd)] for nd in ndups])
    return ExperimentOutput(name="table2", tables=[t], values=values)


def run(quick: bool = False) -> ExperimentOutput:
    return assemble([run_point(pt, quick=quick) for pt in grid(quick)], quick=quick)


def check(output: ExperimentOutput) -> None:
    v = output.values
    systems = sorted({s for s, _ in v})
    ndups = sorted({d for _, d in v})
    for s in systems:
        # N_DUP=2 already gives a clear gain over N_DUP=1...
        assert v[(s, 2)] > 1.08 * v[(s, 1)], f"{s}: no gain from N_DUP=2"
        # ...and the curve flattens: best N_DUP>=4 within 12% of N_DUP=4.
        best = max(v[(s, d)] for d in ndups)
        assert best <= 1.12 * v[(s, 4)], f"{s}: N_DUP=4 far from the plateau"
        # Large N_DUP never collapses below the N_DUP=2 level.
        assert v[(s, max(ndups))] >= 0.95 * v[(s, 2)]
