"""Table V — SymmSquareCube via 2.5D multiplication (Algorithm 6).

All the paper's process configurations (``sqrt(P/c) x sqrt(P/c) x c`` with
``<= 64`` nodes) for 1hsg_70, with N_DUP = 1 and 4.  Paper values (TFlop/s):

====  =========  ===========  =========  =========
PPN   mesh       total nodes  N_DUP = 1  N_DUP = 4
====  =========  ===========  =========  =========
2     8x8x2      64           24.39      24.55
5     12x12x2    58           26.36      28.04
8     16x16x2    64           32.16      34.69
4     9x9x3      61           22.86      23.53
7     12x12x3    62           28.21      30.15
1     4x4x4      64           10.75      11.86
4     8x8x4      64           22.05      23.03
2     5x5x5      63           11.25      12.22
4     6x6x6      54           18.12      19.14
6     7x7x7      58           18.96      20.05
8     8x8x8      64           20.28      21.70
====  =========  ===========  =========  =========

Targets: N_DUP = 4 gives a small but consistent gain over N_DUP = 1 (each
collective only overlaps with itself — no cross-operation pipeline); for a
fixed replication factor ``c``, more PPN is roughly better.
"""

from __future__ import annotations

import math

from repro.bench.harness import ExperimentOutput
from repro.kernels import run_ssc25d
from repro.purify import SYSTEMS
from repro.util import Table

N = SYSTEMS["1hsg_70"][0]
CONFIGS = (  # (ppn, q, c) in the paper's row order
    (2, 8, 2), (5, 12, 2), (8, 16, 2),
    (4, 9, 3), (7, 12, 3),
    (1, 4, 4), (4, 8, 4),
    (2, 5, 5), (4, 6, 6), (6, 7, 7), (8, 8, 8),
)
QUICK_CONFIGS = ((2, 8, 2), (1, 4, 4), (4, 6, 6))


NDUPS = (1, 4)


def _configs(quick: bool):
    return QUICK_CONFIGS if quick else CONFIGS


def grid(quick: bool = False) -> list[tuple[int, int, int, int]]:
    """One point per (ppn, q, c, N_DUP) kernel run, in table row order."""
    return [(ppn, q, c, nd) for ppn, q, c in _configs(quick) for nd in NDUPS]


def run_point(point: tuple[int, int, int, int], quick: bool = False) -> float:
    ppn, q, c, nd = point
    r = run_ssc25d(q, c, N, n_dup=nd, ppn=ppn, iterations=1)
    return r.tflops


def assemble(results: list[float], quick: bool = False) -> ExperimentOutput:
    t = Table(
        ["PPN", "Mesh", "Total nodes", "N_DUP=1 (TF)", "N_DUP=4 (TF)"],
        title="Table V: 2.5D SymmSquareCube configurations (1hsg_70)",
    )
    by_point = dict(zip(grid(quick), results))
    values: dict = {}
    for ppn, q, c in _configs(quick):
        t1, t4 = by_point[(ppn, q, c, 1)], by_point[(ppn, q, c, 4)]
        values[(ppn, q, c)] = (t1, t4)
        t.add_row([ppn, f"{q}x{q}x{c}", math.ceil(q * q * c / ppn), t1, t4])
    return ExperimentOutput(
        name="table5",
        tables=[t],
        values=values,
        notes=(
            "Targets: modest but consistent N_DUP=4 gain (self-overlap only);\n"
            "for fixed c, more PPN is roughly better; c=2 meshes with high\n"
            "PPN perform best overall."
        ),
    )


def run(quick: bool = False) -> ExperimentOutput:
    return assemble([run_point(pt, quick=quick) for pt in grid(quick)], quick=quick)


def check(output: ExperimentOutput) -> None:
    v = output.values
    # N_DUP=4 never loses and usually gains a little.
    gains = []
    for (_ppn, _q, _c), (t1, t4) in v.items():
        assert t4 >= 0.97 * t1, f"N_DUP=4 lost at {(_ppn, _q, _c)}"
        gains.append(t4 / t1)
    assert max(gains) > 1.02, "self-overlap should give some gain somewhere"
    # For fixed c, higher PPN helps (paper's last observation), when present.
    by_c: dict[int, list[tuple[int, float]]] = {}
    for (ppn, _q, c), (t1, _t4) in v.items():
        by_c.setdefault(c, []).append((ppn, t1))
    for c, series in by_c.items():
        series.sort()
        if len(series) >= 2:
            assert series[-1][1] > 0.9 * series[0][1], f"PPN hurt badly at c={c}"
