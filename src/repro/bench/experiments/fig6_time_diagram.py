"""Fig. 6 — posting/wait time breakdown for 8 MB reductions and broadcasts.

Regenerates the bar data of the paper's Fig. 6: for each of reduction and
broadcast, the time on a node-0 process split into the posting call and the
wait, for (a) a single blocking call (8 MB and 2 MB), (b) a single
nonblocking call (8 MB and 2 MB), (c) nonblocking overlap with N_DUP = 4
(four 2 MB parts), and (d) 4-PPN overlap (four 2 MB blocking calls).

Key phenomena to reproduce: posting MPI_Ireduce is expensive and roughly
size-proportional (the marshalling), posting MPI_Ibcast is cheap, the four
overlapped operations complete at almost the same time, and both overlap
techniques finish well before the blocking baseline.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.bench.microbench import collective_timing_detail
from repro.util import MIB, Table


def _rows_for(op: str, full: int, quick: bool):
    part = full // 4
    rows = []
    # Reference bars: single blocking / nonblocking calls at 8 MB and 2 MB.
    sizes = ((full, "8MB"), (part, "2MB")) if not quick else ((full, "8MB"),)
    for size, label in sizes:
        (b,) = collective_timing_detail(op, "blocking", size, n_dup=1)
        rows.append((f"Blocking {label}", b.post, b.wait, b.total))
        (nb,) = [
            d for d in collective_timing_detail(op, "nonblocking", size, n_dup=1)
        ]
        rows.append((f"Nonblocking {label}", nb.post, nb.wait, nb.total))
    # The two overlap cases at 8 MB total.
    for d in collective_timing_detail(op, "nonblocking", full, n_dup=4):
        rows.append((d.label, d.post, d.wait, d.total))
    for d in collective_timing_detail(op, "ppn", full, n_dup=4):
        rows.append((d.label, d.post, d.wait, d.total))
    return rows


def run(quick: bool = False) -> ExperimentOutput:
    full = 8 * MIB
    tables = []
    values: dict = {}
    for op in ("reduce", "bcast"):
        t = Table(
            ["Operation", "post (us)", "wait (us)", "finishes at (us)"],
            title=f"Fig. 6: {op} timing on node 0, 8 MB total, 4 nodes",
        )
        for label, post, wait, total in _rows_for(op, full, quick):
            t.add_row([label, post * 1e6, wait * 1e6, total * 1e6])
            values[(op, label)] = (post, wait, total)
        tables.append(t)
    return ExperimentOutput(
        name="fig6",
        tables=tables,
        values=values,
        notes=(
            "'finishes at' is measured from the first posting, so the four\n"
            "overlapped entries show near-simultaneous completion (the\n"
            "paper's observation that transfers complete together)."
        ),
    )


def check(output: ExperimentOutput) -> None:
    v = output.values
    # Ireduce posting is expensive and size-dependent; Ibcast posting cheap.
    red_post_8 = v[("reduce", "Nonblocking 8MB")][0]
    bc_post_8 = v[("bcast", "Nonblocking 8MB")][0]
    assert red_post_8 > 500e-6, "Ireduce posting should be ~1 ms for 8 MB"
    assert bc_post_8 < 50e-6, "Ibcast posting should be cheap"
    # Posting the four overlapped Ireduces is serialized: each part costs
    # roughly a quarter of the 8 MB posting.
    parts = [v[("reduce", f"{i}th nonblocking reduce")][0] for i in (1, 2, 3, 4)]
    assert abs(sum(parts) - red_post_8) / red_post_8 < 0.35
    # Overlapped operations complete nearly together.
    finishes = [v[("reduce", f"{i}th nonblocking reduce")][2] for i in (1, 2, 3, 4)]
    assert max(finishes) - min(finishes) < 0.35 * max(finishes)
    # Both overlap techniques beat blocking; 4-PPN wins for reduce,
    # nonblocking overlap wins for bcast.
    red_blocking = v[("reduce", "Blocking 8MB")][2]
    red_nbc = max(finishes)
    red_ppn = max(v[("reduce", f"proc {i} blocking reduce (4 PPN)")][2] for i in (1, 2, 3, 4))
    assert red_nbc < red_blocking and red_ppn < red_blocking
    assert red_ppn < red_nbc, "4-PPN should beat nonblocking overlap for reduce"
    bc_blocking = v[("bcast", "Blocking 8MB")][2]
    bc_nbc = max(v[("bcast", f"{i}th nonblocking bcast")][2] for i in (1, 2, 3, 4))
    bc_ppn = max(v[("bcast", f"proc {i} blocking bcast (4 PPN)")][2] for i in (1, 2, 3, 4))
    assert bc_nbc < bc_blocking and bc_ppn < bc_blocking
    assert bc_nbc < bc_ppn, "nonblocking overlap should beat 4-PPN for bcast"
