"""Fig. 3 — unidirectional point-to-point bandwidth vs message size and PPN.

Paper setup: all source processes on one Stampede2 node, all destinations on
a second node; peak ~12000 MB/s; a single process only approaches the peak
for very large messages, while higher PPN saturates the NIC at smaller
sizes.  That single-process shortfall is "the root motivation for
overlapping communication operations".
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.bench.microbench import p2p_bandwidth
from repro.util import KIB, MB, MIB, Table, format_size

PPNS = (1, 2, 4, 8)
FULL_SIZES = (
    1, 16, 256, 2 * KIB, 16 * KIB, 128 * KIB, 1 * MIB, 4 * MIB, 16 * MIB
)
QUICK_SIZES = (256, 16 * KIB, 1 * MIB, 16 * MIB)


def run(quick: bool = False) -> ExperimentOutput:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    table = Table(
        ["Message size"] + [f"PPN={p} (MB/s)" for p in PPNS],
        title="Fig. 3: unidirectional inter-node bandwidth vs message size",
    )
    values: dict = {}
    for size in sizes:
        row = [format_size(size)]
        for ppn in PPNS:
            bw = p2p_bandwidth(size, ppn)
            values[(size, ppn)] = bw
            row.append(bw / MB)
        table.add_row(row)
    return ExperimentOutput(
        name="fig3",
        tables=[table],
        values=values,
        notes=(
            "Qualitative target: peak ~12000 MB/s; PPN=1 approaches it only at\n"
            "multi-MB sizes, larger PPN saturates earlier (paper Fig. 3)."
        ),
    )


def check(output: ExperimentOutput) -> None:
    values = output.values
    sizes = sorted({s for s, _ in values})
    largest = sizes[-1]
    # Aggregate bandwidth grows (weakly) with PPN at every size.
    for size in sizes:
        bws = [values[(size, p)] for p in PPNS]
        for lo, hi in zip(bws, bws[1:]):
            assert hi >= 0.9 * lo, f"PPN increase hurt bandwidth at {size} B"
    # PPN>=2 reaches >=90% of the 12 GB/s peak at the largest size.
    assert values[(largest, 8)] >= 0.9 * 12_000 * MB
    # PPN=1 is clearly short of the NIC peak at mid sizes (the paper's root
    # motivation), and bandwidth rises strongly with message size.
    mid = sizes[len(sizes) // 2]
    assert values[(mid, 1)] < 0.75 * 12_000 * MB
    assert values[(largest, 1)] > 5 * values[(sizes[0], 1)]
