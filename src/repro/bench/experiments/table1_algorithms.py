"""Table I — SymmSquareCube performance of Algorithms 3, 4 and 5.

Paper setup: 64 Skylake nodes, single PPN, 4x4x4 process mesh, N_DUP = 4
for the optimized algorithm, three molecular systems; performance is the
average TFlop/s of the kernel (``4 N^3`` flops per call) over SCF
iterations.  Paper values:

========  =========  ======  ======  ======  ==========
system    dimension  Alg.3   Alg.4   Alg.5   Alg5/Alg4
========  =========  ======  ======  ======  ==========
1hsg_45   5330       12.36   13.20   16.05   1.21
1hsg_60   6895       16.83   17.57   20.57   1.17
1hsg_70   7645       18.49   19.21   22.48   1.17
========  =========  ======  ======  ======  ==========
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.kernels import run_ssc
from repro.purify import SYSTEMS
from repro.util import Table

P = 4
N_DUP = 4
PAPER = {
    "1hsg_45": (12.36, 13.20, 16.05),
    "1hsg_60": (16.83, 17.57, 20.57),
    "1hsg_70": (18.49, 19.21, 22.48),
}


def run(quick: bool = False) -> ExperimentOutput:
    iterations = 1 if quick else 3
    systems = ["1hsg_70"] if quick else list(SYSTEMS)
    t = Table(
        ["System", "Dim", "Alg.3 (TF)", "Alg.4 (TF)", "Alg.5 (TF)",
         "Alg5/Alg4", "paper Alg5/Alg4"],
        title="Table I: SymmSquareCube algorithm comparison (p=4, PPN=1, N_DUP=4)",
    )
    values: dict = {}
    for system in systems:
        n, _nocc = SYSTEMS[system]
        r3 = run_ssc(P, n, "original", iterations=iterations)
        r4 = run_ssc(P, n, "baseline", iterations=iterations)
        r5 = run_ssc(P, n, "optimized", n_dup=N_DUP, iterations=iterations)
        values[system] = (r3.tflops, r4.tflops, r5.tflops)
        paper = PAPER[system]
        t.add_row(
            [system, n, r3.tflops, r4.tflops, r5.tflops,
             r5.tflops / r4.tflops, paper[2] / paper[1]]
        )
    return ExperimentOutput(
        name="table1",
        tables=[t],
        values=values,
        notes=(
            "Targets: Alg.4 >= Alg.3; the nonblocking-overlap Alg.5 beats the\n"
            "baseline by >= 15% (paper: 17-21%)."
        ),
    )


def check(output: ExperimentOutput) -> None:
    for system, (t3, t4, t5) in output.values.items():
        assert t4 >= 0.98 * t3, f"{system}: baseline should not lose to original"
        ratio = t5 / t4
        assert 1.10 <= ratio <= 1.55, (
            f"{system}: Alg5/Alg4 speedup {ratio:.2f} out of the paper's band"
        )
    # Larger systems run at higher absolute TFlop/s (bandwidth amortization).
    if len(output.values) == 3:
        t45, t60, t70 = (output.values[s][2] for s in ("1hsg_45", "1hsg_60", "1hsg_70"))
        assert t45 < t60 < t70
