"""Table I — SymmSquareCube performance of Algorithms 3, 4 and 5.

Paper setup: 64 Skylake nodes, single PPN, 4x4x4 process mesh, N_DUP = 4
for the optimized algorithm, three molecular systems; performance is the
average TFlop/s of the kernel (``4 N^3`` flops per call) over SCF
iterations.  Paper values:

========  =========  ======  ======  ======  ==========
system    dimension  Alg.3   Alg.4   Alg.5   Alg5/Alg4
========  =========  ======  ======  ======  ==========
1hsg_45   5330       12.36   13.20   16.05   1.21
1hsg_60   6895       16.83   17.57   20.57   1.17
1hsg_70   7645       18.49   19.21   22.48   1.17
========  =========  ======  ======  ======  ==========
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.kernels import run_ssc
from repro.purify import SYSTEMS
from repro.util import Table

P = 4
N_DUP = 4
PAPER = {
    "1hsg_45": (12.36, 13.20, 16.05),
    "1hsg_60": (16.83, 17.57, 20.57),
    "1hsg_70": (18.49, 19.21, 22.48),
}


_ALGS = (("original", {}), ("baseline", {}), ("optimized", {"n_dup": N_DUP}))


def grid(quick: bool = False) -> list[tuple[str, str]]:
    """One point per (system, algorithm), row-major in table order."""
    systems = ["1hsg_70"] if quick else list(SYSTEMS)
    return [(system, alg) for system in systems for alg, _kw in _ALGS]


def run_point(point: tuple[str, str], quick: bool = False) -> float:
    system, alg = point
    iterations = 1 if quick else 3
    n, _nocc = SYSTEMS[system]
    kwargs = dict(_ALGS)[alg]
    r = run_ssc(P, n, alg, iterations=iterations, **kwargs)
    return r.tflops


def assemble(results: list[float], quick: bool = False) -> ExperimentOutput:
    t = Table(
        ["System", "Dim", "Alg.3 (TF)", "Alg.4 (TF)", "Alg.5 (TF)",
         "Alg5/Alg4", "paper Alg5/Alg4"],
        title="Table I: SymmSquareCube algorithm comparison (p=4, PPN=1, N_DUP=4)",
    )
    by_point = dict(zip(grid(quick), results))
    values: dict = {}
    for system in ["1hsg_70"] if quick else list(SYSTEMS):
        n, _nocc = SYSTEMS[system]
        t3, t4, t5 = (by_point[(system, alg)] for alg, _kw in _ALGS)
        values[system] = (t3, t4, t5)
        paper = PAPER[system]
        t.add_row([system, n, t3, t4, t5, t5 / t4, paper[2] / paper[1]])
    return ExperimentOutput(
        name="table1",
        tables=[t],
        values=values,
        notes=(
            "Targets: Alg.4 >= Alg.3; the nonblocking-overlap Alg.5 beats the\n"
            "baseline by >= 15% (paper: 17-21%)."
        ),
    )


def run(quick: bool = False) -> ExperimentOutput:
    return assemble([run_point(pt, quick=quick) for pt in grid(quick)], quick=quick)


def check(output: ExperimentOutput) -> None:
    for system, (t3, t4, t5) in output.values.items():
        assert t4 >= 0.98 * t3, f"{system}: baseline should not lose to original"
        ratio = t5 / t4
        assert 1.10 <= ratio <= 1.55, (
            f"{system}: Alg5/Alg4 speedup {ratio:.2f} out of the paper's band"
        )
    # Larger systems run at higher absolute TFlop/s (bandwidth amortization).
    if len(output.values) == 3:
        t45, t60, t70 = (output.values[s][2] for s in ("1hsg_45", "1hsg_60", "1hsg_70"))
        assert t45 < t60 < t70
