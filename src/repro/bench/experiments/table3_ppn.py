"""Table III — optimized SymmSquareCube vs processes per node (1hsg_70).

PPN is chosen so ``64 (PPN-1) < p^3 <= 64 PPN`` (64-node pool); the "total
nodes" column is ``ceil(p^3 / PPN)``.  Paper values (TFlop/s):

====  ========  ===========  =========  =========
PPN   mesh      total nodes  N_DUP = 1  N_DUP = 4
====  ========  ===========  =========  =========
1     4x4x4     64           19.21      22.48
2     5x5x5     63           20.61      26.45
4     6x6x6     54           26.24      33.87
6     7x7x7     58           27.53      36.73
8     8x8x8     64           24.98      32.38
====  ========  ===========  =========  =========

Headline: the best combination (PPN=6, N_DUP=4) is 91.2% faster than the
non-overlapped baseline (PPN=1, N_DUP=1); N_DUP=4 with only 2 PPN already
beats N_DUP=1 at *any* PPN.
"""

from __future__ import annotations

import math

from repro.bench.harness import ExperimentOutput
from repro.kernels import run_ssc
from repro.purify import SYSTEMS
from repro.util import Table

N = SYSTEMS["1hsg_70"][0]
CONFIGS = ((1, 4), (2, 5), (4, 6), (6, 7), (8, 8))  # (ppn, mesh side)
NDUPS = (1, 4)


def _configs(quick: bool):
    return ((1, 4), (2, 5), (4, 6)) if quick else CONFIGS


def grid(quick: bool = False) -> list[tuple[int, int, int]]:
    """One point per (ppn, mesh side, N_DUP) kernel run, in table order."""
    return [(ppn, p, nd) for ppn, p in _configs(quick) for nd in NDUPS]


def run_point(point: tuple[int, int, int], quick: bool = False) -> float:
    ppn, p, nd = point
    r = run_ssc(p, N, "optimized", n_dup=nd, ppn=ppn, iterations=1)
    return r.tflops


def assemble(results: list[float], quick: bool = False) -> ExperimentOutput:
    configs = _configs(quick)
    t = Table(
        ["PPN", "Process mesh", "Total nodes", "N_DUP=1 (TF)", "N_DUP=4 (TF)"],
        title="Table III: optimized SymmSquareCube vs PPN (1hsg_70)",
    )
    by_point = dict(zip(grid(quick), results))
    values = {(ppn, nd): by_point[(ppn, p, nd)]
              for ppn, p in configs for nd in NDUPS}
    for ppn, p in configs:
        t.add_row([ppn, f"{p}x{p}x{p}", math.ceil(p**3 / ppn),
                   values[(ppn, 1)], values[(ppn, 4)]])
    best = max(values[(ppn, 4)] for ppn, _ in configs)
    baseline = values[(configs[0][0], 1)]
    notes = (
        f"Best combined configuration is {100 * (best / baseline - 1):.1f}% faster\n"
        f"than the non-overlapped single-PPN baseline (paper: 91.2%)."
    )
    return ExperimentOutput(name="table3", tables=[t], values=values, notes=notes)


def run(quick: bool = False) -> ExperimentOutput:
    return assemble([run_point(pt, quick=quick) for pt in grid(quick)], quick=quick)


def check(output: ExperimentOutput) -> None:
    v = output.values
    ppns = sorted({p for p, _ in v})
    # N_DUP=4 beats N_DUP=1 at every PPN.
    for ppn in ppns:
        assert v[(ppn, 4)] > 1.05 * v[(ppn, 1)], f"N_DUP=4 not faster at PPN={ppn}"
    # Multiple PPN helps even without nonblocking overlap.
    assert max(v[(p, 1)] for p in ppns if p > 1) > 1.1 * v[(1, 1)]
    # The paper's surprise: N_DUP=4 @ PPN=2 >= N_DUP=1 @ any PPN.
    if (2, 4) in v:
        assert v[(2, 4)] >= 0.98 * max(v[(p, 1)] for p in ppns)
    # Combined techniques give a large end-to-end speedup (paper: +91%).
    best = max(v[(p, 4)] for p in ppns)
    assert best > 1.45 * v[(1, 1)], "combined overlap speedup too small"
