"""Ablation — collective algorithm choice under overlap.

DESIGN.md calls out two implementation choices worth isolating:

1. long-message algorithms (scatter+allgather bcast / Rabenseifner-or-ring
   reduce) vs plain binomial trees, and
2. how much of the overlap gain survives when the "wrong" algorithm family
   is forced.

We force the choice through ``NetworkParams.long_message_threshold``: a huge
threshold makes every collective binomial; zero makes everything use the
long-message family.  Measured on the Fig. 5 micro-benchmark geometry and
on the full kernel.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.bench.microbench import collective_bandwidth
from repro.kernels import run_ssc
from repro.netmodel import NetworkParams
from repro.purify import SYSTEMS
from repro.util import GB, MIB, Table

N = SYSTEMS["1hsg_70"][0]
HUGE = 1 << 62


def run(quick: bool = False) -> ExperimentOutput:
    size = 8 * MIB
    long_params = NetworkParams(long_message_threshold=0)
    binom_params = NetworkParams(long_message_threshold=HUGE)
    t1 = Table(
        ["Op / case", "long-message algos (GB/s)", "binomial only (GB/s)"],
        title="Ablation: collective algorithm family at 8 MiB, 4 nodes",
    )
    values: dict = {}
    for op in ("bcast", "reduce"):
        for case in ("blocking", "nonblocking"):
            bw_long = collective_bandwidth(op, case, size, params=long_params).bandwidth
            bw_bin = collective_bandwidth(op, case, size, params=binom_params).bandwidth
            values[(op, case)] = (bw_long, bw_bin)
            t1.add_row([f"{op} / {case}", bw_long / GB, bw_bin / GB])
    t2 = Table(
        ["Algorithm family", "baseline (TF)", "optimized N_DUP=4 (TF)", "speedup"],
        title="Ablation: kernel-level effect (1hsg_70, p=4, PPN=1)",
    )
    for label, params in (("long-message", long_params), ("binomial", binom_params)):
        rb = run_ssc(4, N, "baseline", ppn=1, iterations=1, params=params)
        ro = run_ssc(4, N, "optimized", n_dup=4, ppn=1, iterations=1, params=params)
        values[("kernel", label)] = (rb.tflops, ro.tflops)
        t2.add_row([label, rb.tflops, ro.tflops, ro.tflops / rb.tflops])
    return ExperimentOutput(
        name="ablation-collectives",
        tables=[t1, t2],
        values=values,
        notes=(
            "Long-message algorithms dominate binomial trees at multi-MB sizes\n"
            "(binomial moves log2(p) full copies of the buffer); the overlap\n"
            "speedup survives either family, i.e. the paper's technique is not\n"
            "an artifact of one collective implementation."
        ),
    )


def check(output: ExperimentOutput) -> None:
    v = output.values
    # Long-message algorithms beat binomial at 8 MiB for both ops (blocking).
    for op in ("bcast", "reduce"):
        bw_long, bw_bin = v[(op, "blocking")]
        assert bw_long > bw_bin, f"{op}: binomial should lose at 8 MiB"
    # The overlap speedup exists under either family.
    for label in ("long-message", "binomial"):
        tb, to = v[("kernel", label)]
        assert to > 1.05 * tb, f"no overlap gain with {label} collectives"
