"""Algorithms 1-2 — the paper's didactic matvec example, measured.

§III-A introduces nonblocking overlap on a distributed matrix-vector
multiplication (Figs. 1-2 illustrate the communication patterns; the paper
reports no numbers for them).  This experiment supplies the measurement:
Algorithm 1 (blocking row-reduce + column-broadcast) vs Algorithm 2 (N_DUP
parts, Ireduce pipelined into Ibcast) in the communication-dominated
regime, across N_DUP and problem sizes.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.dense import run_matvec
from repro.netmodel import MachineParams
from repro.util import Table

P = 8
SIZES = (500_000, 2_000_000, 8_000_000)
QUICK_SIZES = (2_000_000,)
NDUPS = (2, 4, 8)
MACHINE = MachineParams(node_flops=1e18)  # isolate the communication phases


def run(quick: bool = False) -> ExperimentOutput:
    sizes = QUICK_SIZES if quick else SIZES
    t = Table(
        ["n", "Alg.1 (ms)"] + [f"Alg.2 N_DUP={d} (ms)" for d in NDUPS]
        + ["best speedup"],
        title=f"Algorithms 1-2: distributed matvec on an {P}x{P} mesh",
    )
    values: dict = {}
    for n in sizes:
        t1 = run_matvec(P, n, overlapped=False, machine=MACHINE).elapsed
        row = [n, t1 * 1e3]
        best = t1
        for nd in NDUPS:
            t2 = run_matvec(P, n, overlapped=True, n_dup=nd,
                            machine=MACHINE).elapsed
            values[(n, nd)] = t2
            best = min(best, t2)
            row.append(t2 * 1e3)
        values[(n, 1)] = t1
        row.append(t1 / best)
        t.add_row(row)
    return ExperimentOutput(
        name="alg12",
        tables=[t],
        values=values,
        notes=(
            "Algorithm 2's part-wise Ireduce -> Ibcast pipeline hides the\n"
            "reduction's combine and synchronization behind the broadcast of\n"
            "already-finished parts (paper Fig. 2), yielding 1.3-1.6x in the\n"
            "communication-dominated regime."
        ),
    )


def check(output: ExperimentOutput) -> None:
    v = output.values
    sizes = sorted({n for n, _d in v})
    for n in sizes:
        t1 = v[(n, 1)]
        t4 = v[(n, 4)]
        assert t4 < 0.85 * t1, f"Alg.2 N_DUP=4 too weak at n={n}"
        # More parts keep helping or plateau; never collapse.
        assert v[(n, 8)] < 1.1 * v[(n, 4)]
