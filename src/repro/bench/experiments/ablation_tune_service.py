"""Ablation — the tuning service under concurrent load.

Stress-tests :class:`repro.tune.service.TuningService`, one grid point per
service mechanism:

``stampede``
    Hundreds (quick) to a thousand (full) concurrent ``tune()`` threads
    over at most 8 distinct signatures.  The coalescer must collapse the
    stampede to exactly one search per signature, and the db written
    through the service must be **byte-identical** to
    :func:`repro.tune.service.tune_serial` replaying the same first-miss
    order.

``warm``
    A tuned service takes a second wave of requests: every one must be a
    lock-free cache hit and the simulator must not run at all.

``interpolate``
    After tuning one workload, a request for the same family at ``n``
    within ±5% must resolve through the interpolated warm start: simulator
    cost bounded by the shortlist size, trace entries marked
    ``interpolated``, and bytes equal to the serial twin.

``swr``
    A :class:`~repro.sim.faults.FaultPlan` changes the effective fabric
    constants (:func:`~repro.tune.service.degraded_params`): with
    stale-while-revalidate the service answers from the newest same-workload
    record immediately and commits the re-tuned record in the background.

Every reported value is deterministic — the stampede launches its threads
one at a time behind a closed search gate, polling the service's exact
counters until each request is *registered* (leader in flight or follower
coalesced) before launching the next, so the first-miss order, the
coalesced/hit split, and therefore the db bytes are schedule-independent.
That is what lets the CI gate run this experiment with ``--jobs 2`` and
require byte-identical output.
"""

from __future__ import annotations

import threading
import time

from repro.bench.harness import ExperimentOutput
from repro.util import Table

#: Tuning-search seed — fixed so sweeps are byte-reproducible.
SEED = 0

#: Stampede load: (threads, distinct signatures).  The acceptance gate is
#: ``searches == signatures`` — 1000 clients cost 8 searches.
STAMPEDE_FULL = (1000, 8)
STAMPEDE_QUICK = (200, 4)

#: Warm wave size (second pass over a tuned service).
WARM_FULL = 500
WARM_QUICK = 100

#: The signature family: ("ssc", p, n) workloads, all cheap enough that a
#: full point stays seconds.  Entries beyond the quick signature count are
#: only used in full mode.
FAMILY = (
    ("ssc", 2, 48), ("ssc", 2, 64), ("ssc", 2, 96), ("ssc", 2, 128),
    ("ssc", 3, 48), ("ssc", 3, 96), ("ssc25d", 2, 2, 48),
    ("ssc25d", 2, 2, 96),
)

#: Interpolation probe: tune the base n, then request n scaled by this
#: (within the service's ±10% neighborhood; the ISSUE gate uses ±5%).
INTERP_BASE_N = 64
INTERP_SCALE = 1.05


def _sig(point, *, scale_n: float = 1.0):
    from repro.tune.signature import signature_for_ssc, signature_for_ssc25d

    if point[0] == "ssc":
        _k, p, n = point
        return signature_for_ssc(p, round(n * scale_n))
    _k, q, c, n = point
    return signature_for_ssc25d(q, c, round(n * scale_n))


def _reset_shared_plans() -> None:
    """Zero the shared plan cache before this point's stats are collected.

    Concurrent searches race on plan-cache *misses* (two threads can both
    miss the same key and build twice), so the hit/miss split is the one
    schedule-dependent counter in the process.  Resetting it keeps this
    experiment's ``sim_stats`` — and hence the ``--jobs 2`` byte-identity
    gate — deterministic.  Engine/fabric aggregates are extensive sums of
    per-world counters and stay exact under any interleaving.
    """
    from repro.mpi.collectives.plan import shared_plans

    shared_plans.clear()
    shared_plans.reset()


def _spin(predicate, what: str, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError(f"stampede setup stalled waiting for {what}")
        time.sleep(0.0005)


def run_coalescing_stampede(threads_n: int, sigs_n: int,
                            warm_n: int = 0) -> dict:
    """Gate-orchestrated stampede over ``sigs_n`` signatures, fully pinned.

    ``threads_n`` concurrent ``tune()`` threads are launched one at a time
    behind a closed search gate, each polled until *registered* (leader in
    flight or follower coalesced), then the gate opens and the whole batch
    resolves.  An optional ``warm_n`` lookups-only wave follows on the
    tuned service (its wall time is the only nondeterministic output —
    ``warm_lookups_per_sec`` is informative, everything else is exact).
    Shared with ``perf_sim_core``'s ``tune_service`` section so the bench
    baseline and this ablation pin the same machinery.
    """
    from repro.tune.db import TuningDB
    from repro.tune.service import TuningService, tune_serial

    sigs = [_sig(pt) for pt in FAMILY[:sigs_n]]
    plan = [sigs[i % sigs_n] for i in range(threads_n)]

    gate = threading.Event()
    svc = TuningService(TuningDB(), seed=SEED, search_gate=gate)
    try:
        results: list = [None] * threads_n
        workers = []
        seen: set[str] = set()
        followers = 0
        for i, sig in enumerate(plan):
            th = threading.Thread(
                target=lambda i=i, sig=sig: results.__setitem__(
                    i, svc.tune(sig)),
                daemon=True)
            th.start()
            workers.append(th)
            # Wait until this request is *registered* before launching the
            # next: the first-miss order and the coalesced count become a
            # pure function of the plan, not of thread scheduling.
            if sig.key in seen:
                followers += 1
                want = followers
                _spin(lambda: svc.stats()["coalesced"] >= want,
                      f"follower {i}")
            else:
                seen.add(sig.key)
                _spin(lambda key=sig.key: key in svc._inflight,
                      f"leader {i}")
        gate.set()
        for th in workers:
            th.join(timeout=120.0)
            if th.is_alive():
                raise TimeoutError("stampede worker did not finish")
        svc.drain()
        cold = svc.stats()
        service_bytes = svc.db.to_json()
        warm_wall = 0.0
        if warm_n:
            warm_plan = [sigs[i % sigs_n] for i in range(warm_n)]
            t0 = time.perf_counter()
            for sig in warm_plan:
                svc.tune(sig)
            warm_wall = time.perf_counter() - t0
        warm = svc.stats()
    finally:
        svc.close()

    # The serial twin replays the first-miss order (= plan order with
    # duplicates dropped); byte-identical db bytes are the determinism
    # contract the service docstring pins.
    twin = tune_serial(sigs, seed=SEED)
    assert all(r is not None for r in results)
    _reset_shared_plans()
    return {
        "threads": threads_n,
        "signatures": sigs_n,
        "requests": cold["requests"],
        "searches": cold["searches"],
        "coalesced": cold["coalesced"],
        "hits": cold["hits"],
        "simulations": cold["simulations"],
        "records": cold["records"],
        "byte_identical": service_bytes == twin.to_json(),
        "warm_requests": warm_n,
        "warm_hits": warm["hits"] - cold["hits"],
        "warm_searches": warm["searches"] - cold["searches"],
        "warm_simulations": warm["simulations"] - cold["simulations"],
        "warm_lookups_per_sec": (warm_n / warm_wall) if warm_n else 0.0,
    }


def _run_stampede(quick: bool) -> dict:
    threads_n, sigs_n = STAMPEDE_QUICK if quick else STAMPEDE_FULL
    result = run_coalescing_stampede(threads_n, sigs_n)
    for key in ("warm_requests", "warm_hits", "warm_searches",
                "warm_simulations", "warm_lookups_per_sec"):
        del result[key]
    return result


def _run_warm(quick: bool) -> dict:
    from repro.tune.db import TuningDB
    from repro.tune.service import TuningService

    threads_n, sigs_n = STAMPEDE_QUICK if quick else STAMPEDE_FULL
    warm_n = WARM_QUICK if quick else WARM_FULL
    sigs = [_sig(pt) for pt in FAMILY[:sigs_n]]
    svc = TuningService(TuningDB(), seed=SEED)
    try:
        for sig in sigs:  # tune once, serially (deterministic order)
            svc.tune(sig)
        cold = svc.stats()
        plan = [sigs[i % sigs_n] for i in range(warm_n)]
        results: list = [None] * warm_n
        workers = [threading.Thread(
            target=lambda i=i, sig=sig: results.__setitem__(i, svc.tune(sig)),
            daemon=True) for i, sig in enumerate(plan)]
        for th in workers:
            th.start()
        for th in workers:
            th.join(timeout=120.0)
        svc.drain()
        warm = svc.stats()
    finally:
        svc.close()
    assert all(r is not None for r in results)
    _reset_shared_plans()
    return {
        "tuned_signatures": sigs_n,
        "warm_requests": warm_n,
        "warm_hits": warm["hits"] - cold["hits"],
        "warm_searches": warm["searches"] - cold["searches"],
        "warm_simulations": warm["simulations"] - cold["simulations"],
    }


def _run_interpolate(quick: bool) -> dict:
    from repro.tune.db import TuningDB
    from repro.tune.search import DEFAULT_SHORTLIST
    from repro.tune.service import TuningService, tune_serial
    from repro.tune.signature import signature_for_ssc

    base = signature_for_ssc(2, INTERP_BASE_N)
    near = signature_for_ssc(2, round(INTERP_BASE_N * INTERP_SCALE))
    svc = TuningService(TuningDB(), seed=SEED)
    try:
        svc.tune(base)
        cold = svc.stats()
        record = svc.tune(near)
        stats = svc.stats()
        service_bytes = svc.db.to_json()
    finally:
        svc.close()
    twin = tune_serial([base, near], seed=SEED)
    statuses = {t.status for t in record.trace}
    _reset_shared_plans()
    return {
        "base_n": INTERP_BASE_N,
        "near_n": round(INTERP_BASE_N * INTERP_SCALE),
        "shortlist": DEFAULT_SHORTLIST,
        "interpolated": stats["interpolated"] - cold["interpolated"],
        "interp_simulations": stats["simulations"] - cold["simulations"],
        "interp_searches": stats["searches"] - cold["searches"],
        "has_interpolated_status": "interpolated" in statuses,
        "byte_identical": service_bytes == twin.to_json(),
    }


def _run_swr(quick: bool) -> dict:
    from repro.netmodel.params import NetworkParams
    from repro.sim.faults import FaultPlan
    from repro.tune.db import TuningDB
    from repro.tune.service import TuningService, degraded_params
    from repro.tune.signature import signature_for_ssc

    base_params = NetworkParams()
    plan = FaultPlan.random(seed=3, num_ranks=8, num_nodes=8, horizon=1.0,
                            kinds=("link",))
    eff = degraded_params(base_params, plan)
    base = signature_for_ssc(2, 64, params=base_params)
    degraded = signature_for_ssc(2, 64, params=eff)

    svc = TuningService(TuningDB(), seed=SEED, stale_while_revalidate=True)
    try:
        fresh = svc.tune(base, params=base_params)
        stale = svc.tune(degraded, params=eff)  # served instantly from base
        svc.drain()  # background re-search commits the degraded record
        stats = svc.stats()
        refreshed = svc.tune(degraded, params=eff)
    finally:
        svc.close()
    _reset_shared_plans()
    return {
        "fabric_changed": base.key != degraded.key,
        "stale_is_base": stale.signature.key == base.key,
        "stale_served": stats["stale_served"],
        "refreshes": stats["refreshes"],
        "refreshed_is_degraded": refreshed.signature.key == degraded.key,
        "records": stats["records"],
    }


_POINTS = {
    "stampede": _run_stampede,
    "warm": _run_warm,
    "interpolate": _run_interpolate,
    "swr": _run_swr,
}


def grid(quick: bool = False) -> list[tuple]:
    """One point per service mechanism (same grid in both modes)."""
    return [(name,) for name in _POINTS]


def run_point(point: tuple, quick: bool = False) -> dict:
    name = point[0]
    result = _POINTS[name](quick)
    result["point"] = name
    return result


def assemble(results: list[dict], quick: bool = False) -> ExperimentOutput:
    values = {res["point"]: res for res in results}
    st = values["stampede"]
    wm = values["warm"]
    ip = values["interpolate"]
    sw = values["swr"]
    t = Table(
        ["Mechanism", "Load", "Searches", "Amortized", "Sims", "Bytes OK"],
        title="Ablation: tuning service under concurrent load",
    )
    t.add_row(["stampede (coalescing)",
               f"{st['threads']} threads / {st['signatures']} sigs",
               st["searches"], f"coalesced {st['coalesced']}",
               st["simulations"], st["byte_identical"]])
    t.add_row(["warm cache", f"{wm['warm_requests']} requests",
               wm["warm_searches"], f"hits {wm['warm_hits']}",
               wm["warm_simulations"], True])
    t.add_row(["interpolation", f"n={ip['base_n']} -> n={ip['near_n']}",
               ip["interp_searches"],
               f"interpolated {ip['interpolated']}",
               ip["interp_simulations"], ip["byte_identical"]])
    t.add_row(["stale-while-revalidate", "fault-plan fabric change",
               sw["refreshes"], f"stale served {sw['stale_served']}",
               "-", True])
    return ExperimentOutput(
        name="ablation-tune-service",
        tables=[t],
        values=values,
        notes=(
            "The stampede registers requests one at a time behind a closed\n"
            "search gate, so the first-miss order (and the db bytes) are\n"
            "schedule-independent; 'Bytes OK' compares the service db\n"
            "against tune_serial() replaying that order.  See docs/tuning.md."
        ),
    )


def run(quick: bool = False) -> ExperimentOutput:
    return assemble([run_point(pt, quick=quick) for pt in grid(quick)],
                    quick=quick)


def check(output: ExperimentOutput) -> None:
    """The service acceptance gates (ISSUE 9)."""
    st = output.values["stampede"]
    assert st["requests"] == st["threads"], st
    # Coalescing: N concurrent requests over S signatures cost S searches.
    assert st["searches"] == st["signatures"] <= 8, (
        f"stampede ran {st['searches']} searches for "
        f"{st['signatures']} signatures"
    )
    assert st["coalesced"] == st["threads"] - st["signatures"], st
    assert st["coalesced"] >= 1, "no request was coalesced"
    assert st["records"] == st["signatures"], st
    assert st["byte_identical"], (
        "stampede db bytes differ from serial tuning — the determinism "
        "contract is broken"
    )
    wm = output.values["warm"]
    assert wm["warm_hits"] == wm["warm_requests"], wm
    assert wm["warm_searches"] == 0, wm
    # The warm-start-zero-sims gate: a tuned service never re-simulates.
    assert wm["warm_simulations"] == 0, (
        f"warm repeat pass ran {wm['warm_simulations']} simulations"
    )
    ip = output.values["interpolate"]
    # Interpolated resolutions are counted apart from full searches: the
    # near-n request must cost zero fresh searches.
    assert ip["interpolated"] == 1 and ip["interp_searches"] == 0, ip
    assert ip["has_interpolated_status"], ip
    # Interpolation: simulator cost bounded by the shortlist size.
    assert 1 <= ip["interp_simulations"] <= ip["shortlist"], (
        f"interpolated request simulated {ip['interp_simulations']} "
        f"candidates (shortlist {ip['shortlist']})"
    )
    assert ip["byte_identical"], "interpolated db bytes differ from serial"
    sw = output.values["swr"]
    assert sw["fabric_changed"] and sw["stale_is_base"], sw
    assert sw["stale_served"] == 1 and sw["refreshes"] == 1, sw
    assert sw["refreshed_is_degraded"] and sw["records"] == 2, sw
