"""Ablation — sensitivity of the headline result to network-model constants.

The reproduction's conclusions should not hinge on one calibration value.
This experiment re-runs the Table I comparison (baseline vs optimized,
1hsg_70) while perturbing each of the load-bearing constants:

* ``process_injection_bandwidth`` — remove the single-process cap entirely;
* ``combine_bandwidth`` — double the reduction combine rate;
* ``round_copy_bandwidth`` — halve the staging copy cost;
* ``blocking_round_gap`` — remove blocking-round synchronization.

The overlap speedup should persist (possibly attenuated) in every variant:
it stems from overlapping *mechanisms*, not from a single magic constant.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.kernels import run_ssc
from repro.netmodel import NetworkParams
from repro.purify import SYSTEMS
from repro.util import MB, Table

N = SYSTEMS["1hsg_70"][0]

VARIANTS = (
    ("calibrated defaults", {}),
    ("no per-process injection cap", {"process_injection_bandwidth": 12_000 * MB}),
    ("2x combine rate", {"combine_bandwidth": 3_600 * MB}),
    ("2x staging copy cost", {"round_copy_bandwidth": 6_000 * MB}),
    ("no blocking round gap", {"blocking_round_gap": 0.0}),
)


def run(quick: bool = False) -> ExperimentOutput:
    variants = VARIANTS[:3] if quick else VARIANTS
    t = Table(
        ["Variant", "baseline (TF)", "optimized N_DUP=4 (TF)", "speedup"],
        title="Ablation: Table-I speedup under perturbed network constants",
    )
    values: dict = {}
    for label, overrides in variants:
        params = NetworkParams(**overrides)
        rb = run_ssc(4, N, "baseline", ppn=1, iterations=1, params=params)
        ro = run_ssc(4, N, "optimized", n_dup=4, ppn=1, iterations=1, params=params)
        values[label] = (rb.tflops, ro.tflops)
        t.add_row([label, rb.tflops, ro.tflops, ro.tflops / rb.tflops])
    return ExperimentOutput(
        name="ablation-network",
        tables=[t],
        values=values,
        notes="The nonblocking-overlap speedup survives every perturbation.",
    )


def check(output: ExperimentOutput) -> None:
    for label, (tb, to) in output.values.items():
        assert to > 1.04 * tb, f"overlap gain vanished under variant {label!r}"
    tb0, to0 = output.values["calibrated defaults"]
    assert 1.10 <= to0 / tb0 <= 1.55
