"""Table VI — the SUMMA family: colors x tile depth x mesh.

Not a paper table: SUMMA is the related-work 2D algorithm
(:mod:`repro.dense.summa`), and this sweep demonstrates the two ways the
repo overlaps its panel broadcasts with *other* broadcasts — the paper's
central idea applied to a kernel the paper does not optimize:

* **streaming** — pre-post a depth-``d`` window of panel ``ibcast`` pairs
  on one lane, so successive rounds' broadcasts share the wire;
* **colored** — pin successive panels to 2 or 4 disjoint virtual channels
  (``Mesh2D(n_dup=colors)`` communicator duplicates, one per color), so
  the link is split but never idles between rounds.

The grid is (mesh, variant) with variants spanning color count and
pre-posted tile depth; a final *tune* point runs the autotuner on the
p=4 mesh and must pick a non-default (variant, colors, depth) winner.

Targets: on the bandwidth-bound p=4 / n=2048 configuration the 4-color
pipelined variant beats plain SUMMA by >= 1.5x simulated time, streaming
with depth 4 beats depth 2, and the tuner's pick is not the plain default.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.dense import run_summa
from repro.tune.validity import validate_summa_config
from repro.util import Table

#: Problem size: (n/p)^2 * 8B panels keep every mesh bandwidth-bound.
N = 2048
#: The committed speedup gate for colored-4 vs plain on the p=4 mesh
#: (mirrored by the ``summa`` section of ``perf_sim_core``).
SPEEDUP_TARGET = 1.5

#: label -> (algorithm, colors, depth)
VARIANTS: dict[str, tuple[str, int, int]] = {
    "plain": ("plain", 1, 1),
    "stream-d2": ("streaming", 1, 2),
    "stream-d4": ("streaming", 1, 4),
    "col2-d2": ("colored", 2, 2),
    "col4-d4": ("colored", 4, 4),
}

TUNE_P = 4


def _meshes(quick: bool) -> tuple[int, ...]:
    return (2, 4) if quick else (2, 4, 8)


def _valid(p: int, label: str) -> bool:
    alg, colors, depth = VARIANTS[label]
    try:
        validate_summa_config(p, N, alg, colors, depth, 1)
    except ValueError:
        return False
    return True


def grid(quick: bool = False) -> list[tuple]:
    """One point per valid (mesh, variant) cell plus the tune point."""
    pts: list[tuple] = [
        ("variant", p, label)
        for p in _meshes(quick)
        for label in VARIANTS
        if _valid(p, label)
    ]
    pts.append(("tune", TUNE_P))
    return pts


def run_point(point: tuple, quick: bool = False) -> dict:
    if point[0] == "tune":
        from repro.tune import Tuner

        _, p = point
        decision = Tuner().autotune_summa(p, N)
        return {
            "best": decision.best.key,
            "best_time": decision.best_time,
            "default": decision.default.key,
            "default_time": decision.default_time,
            "non_default": decision.best.key != decision.default.key,
            "simulations": decision.simulations,
        }
    _, p, label = point
    alg, colors, depth = VARIANTS[label]
    res = run_summa(p, N, algorithm=alg, colors=colors, depth=depth)
    return {"elapsed": res.elapsed}


def assemble(results: list[dict], quick: bool = False) -> ExperimentOutput:
    values = dict(zip(grid(quick), results))
    t = Table(
        ["Mesh"] + list(VARIANTS) + ["best/plain"],
        title=f"Table VI: SUMMA variants, simulated time (ms), n={N}, PPN=1",
    )
    for p in _meshes(quick):
        row: list = [f"{p}x{p}"]
        times = {}
        for label in VARIANTS:
            v = values.get(("variant", p, label))
            times[label] = v["elapsed"] if v else None
            row.append(v["elapsed"] * 1e3 if v else "-")
        pipelined = [e for lb, e in times.items() if lb != "plain" and e]
        row.append(times["plain"] / min(pipelined))
        t.add_row(row)
    tune = values[("tune", TUNE_P)]
    tt = Table(
        ["Mesh", "Default", "ms", "Autotuned", "ms", "Sims"],
        title="Table VI: autotuned SUMMA configuration",
    )
    tt.add_row([
        f"{TUNE_P}x{TUNE_P}", tune["default"], tune["default_time"] * 1e3,
        tune["best"], tune["best_time"] * 1e3, tune["simulations"],
    ])
    return ExperimentOutput(
        name="table6",
        tables=[t, tt],
        values=values,
        notes=(
            "plain = blocking broadcasts, serialized rounds.  stream-dK\n"
            "pre-posts a K-deep window of panel ibcasts on one lane;\n"
            "colC-dK pins successive panels to C disjoint virtual channels\n"
            "(C communicator duplicates, 1/C link share each).  See\n"
            "docs/channels.md."
        ),
    )


def run(quick: bool = False) -> ExperimentOutput:
    return assemble([run_point(pt, quick=quick) for pt in grid(quick)], quick=quick)


def check(output: ExperimentOutput) -> None:
    v = output.values
    meshes = sorted({p for pt in v if pt[0] == "variant" for p in [pt[1]]})

    def elapsed(p: int, label: str) -> float:
        return v[("variant", p, label)]["elapsed"]

    for p in meshes:
        plain = elapsed(p, "plain")
        # Every pipelined variant overlaps broadcasts that plain serializes.
        for label in VARIANTS:
            if label != "plain" and ("variant", p, label) in v:
                assert elapsed(p, label) < plain, f"{label} no gain at p={p}"
        # Deeper pre-posting windows keep more broadcasts in flight
        # (depth 4 needs p >= 4 panels to pre-post).
        if ("variant", p, "stream-d4") in v:
            assert elapsed(p, "stream-d4") <= elapsed(p, "stream-d2") * 1.001, (
                f"depth-4 streaming slower than depth-2 at p={p}"
            )
    # The committed gate: 4-color pipelined multicast >= 1.5x over plain
    # on the bandwidth-bound p=4 mesh.
    speedup = elapsed(4, "plain") / elapsed(4, "col4-d4")
    assert speedup >= SPEEDUP_TARGET, (
        f"colored-4 speedup {speedup:.2f}x below {SPEEDUP_TARGET:.1f}x at p=4"
    )
    tune = v[("tune", TUNE_P)]
    assert tune["non_default"], (
        f"autotuner kept the plain default ({tune['best']})"
    )
    assert tune["best_time"] < tune["default_time"], "autotuned pick not faster"
