"""Ablation — comm-comm overlap, *measured* instead of inferred from time.

The table-6 sweep shows the pipelined SUMMA variants are faster than plain
SUMMA; this ablation shows **why**, using the :mod:`repro.analytics` link
accounting: it reruns the p=4 / n=2048 variants with tracing enabled and
reports, per variant, the fraction of per-wire busy time during which
flows of two or more distinct operations shared a wire (comm-comm
overlap), the comm-compute overlap fraction, and the serialization score
(communication horizon over bottleneck-link busy time; 1.0 = the
bottleneck never idles).

Targets: plain SUMMA's blocking broadcasts serialize every wire, so its
comm-comm overlap is ~0 while every pipelined variant keeps a substantial
fraction of wire time multi-operation; the colored-4 variant's comm-comm
overlap is *strictly* higher than plain's (the PR's committed gate), and
serialization scores order plain >> pipelined.
"""

from __future__ import annotations

from repro.analytics.overlap import overlap_report_for_world
from repro.bench.harness import ExperimentOutput
from repro.dense import run_summa
from repro.util import Table

#: Same bandwidth-bound configuration as the table-6 headline mesh.
N = 2048
P = 4

#: label -> (algorithm, colors, depth); the table-6 variants that matter
#: for the overlap story (one blocking baseline, one fair-sharing
#: pipeline, two colored-lane pipelines).
VARIANTS: dict[str, tuple[str, int, int]] = {
    "plain": ("plain", 1, 1),
    "stream-d4": ("streaming", 1, 4),
    "col2-d4": ("colored", 2, 4),
    "col4-d4": ("colored", 4, 4),
}

#: Minimum comm-comm overlap fraction every pipelined variant must show
#: (measured ~0.6-0.7; plain measures exactly 0.0).
PIPELINED_OVERLAP_FLOOR = 0.3


def grid(quick: bool = False) -> list[str]:
    """One point per variant (the sweep is small; quick == full)."""
    return list(VARIANTS)


def run_point(point: str, quick: bool = False) -> dict:
    alg, colors, depth = VARIANTS[point]
    res = run_summa(P, N, algorithm=alg, colors=colors, depth=depth,
                    trace=True)
    report = overlap_report_for_world(res.world)
    return {
        "elapsed": res.elapsed,
        "overlap": report.summary(),
        "last_active_link": report.last_active_link,
    }


def assemble(results: list[dict], quick: bool = False) -> ExperimentOutput:
    values = dict(zip(grid(quick), results))
    t = Table(
        ["Variant", "ms", "comm-comm", "flow", "comm-compute",
         "serialization", "flows"],
        title=f"Ablation: measured overlap fractions, SUMMA {P}x{P}, n={N}",
    )
    for label, v in values.items():
        m = v["overlap"]
        t.add_row([
            label,
            v["elapsed"] * 1e3,
            m["comm_comm_overlap_fraction"],
            m["flow_overlap_fraction"],
            m["comm_compute_overlap_fraction"],
            m["serialization_score"],
            m["total_flows"],
        ])
    return ExperimentOutput(
        name="ablation-overlap",
        tables=[t],
        values=values,
        notes=(
            "comm-comm = fraction of per-wire busy time with >= 2 distinct\n"
            "operations' flows sharing a wire; comm-compute = fraction of\n"
            "comm-busy wall time under at least one COMPUTE span;\n"
            "serialization = comm horizon / bottleneck-wire busy time\n"
            "(1.0 = ideally pipelined).  See docs/analytics.md."
        ),
        sim_stats={
            "overlap": {label: v["overlap"] for label, v in values.items()}
        },
    )


def run(quick: bool = False) -> ExperimentOutput:
    return assemble([run_point(pt, quick=quick) for pt in grid(quick)],
                    quick=quick)


def check(output: ExperimentOutput) -> None:
    v = output.values

    def frac(label: str) -> float:
        return v[label]["overlap"]["comm_comm_overlap_fraction"]

    def serial(label: str) -> float:
        return v[label]["overlap"]["serialization_score"]

    # The committed gate: the 4-color pipelined schedule measurably
    # overlaps communications that plain SUMMA serializes.
    assert frac("col4-d4") > frac("plain"), (
        f"colored-4 comm-comm overlap {frac('col4-d4'):.3f} not above "
        f"plain's {frac('plain'):.3f}"
    )
    # Blocking broadcasts leave no instant with two operations on a wire.
    assert frac("plain") < 0.01, (
        f"plain SUMMA shows comm-comm overlap {frac('plain'):.3f}; "
        "expected ~0 for a fully serialized schedule"
    )
    for label in VARIANTS:
        if label == "plain":
            continue
        assert frac(label) >= PIPELINED_OVERLAP_FLOOR, (
            f"{label} comm-comm overlap {frac(label):.3f} below "
            f"{PIPELINED_OVERLAP_FLOOR}"
        )
        # Overlap shows up as time: pipelined variants idle their
        # bottleneck wire less than the blocking baseline.
        assert serial(label) < serial("plain"), (
            f"{label} serialization {serial(label):.2f} not below plain's "
            f"{serial('plain'):.2f}"
        )
    # Overlap is not a free lunch detector: it must coexist with the
    # table-6 timing story (pipelined variants are actually faster).
    for label in VARIANTS:
        if label != "plain":
            assert v[label]["elapsed"] < v["plain"]["elapsed"], (
                f"{label} slower than plain despite higher overlap"
            )
