"""Ablation — overlap gains and graceful degradation under injected faults.

The paper's overlap techniques assume a healthy fabric; T3 (Pati et al.) and
the resource-aware-overlap line of work both observe that fine-grained
compute/communication overlap is brittle when links congest or ranks
straggle.  This experiment runs the optimized SymmSquareCube kernel under a
ladder of deterministic fault scenarios (see :mod:`repro.sim.faults`) and
reports:

* how much of the N_DUP overlap win survives each fault kind;
* the transport's drop/retransmission counts (timeout + bounded exponential
  backoff keeps every chaos run live);
* how often the kernel's negotiated nonblocking -> blocking fallback fired.

Every scenario is seed-driven: rerunning the experiment reproduces each row
bit for bit, which ``check`` asserts explicitly.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.kernels import run_ssc
from repro.purify import SYSTEMS
from repro.sim.faults import (
    FaultPlan,
    LinkDegradation,
    MessageDrop,
    NicJitter,
    StragglerSlowdown,
)
from repro.util import Table

N = SYSTEMS["1hsg_70"][0]
FULL = (4, 4, 4)    # (mesh side, ppn, n_dup)
QUICK = (2, 2, 2)
ITERATIONS = 2


def _scenarios(horizon: float, num_ranks: int) -> dict[str, FaultPlan | None]:
    """The fault ladder, windows scaled to the healthy per-call time."""
    return {
        "healthy": None,
        "degraded-link": FaultPlan([
            LinkDegradation(node=0, t_start=0.0, t_end=1e9, factor=0.4),
        ]),
        "straggler": FaultPlan([
            StragglerSlowdown(rank=num_ranks // 2, t_start=0.0, t_end=1e9,
                              factor=2.5),
        ]),
        "jitter+drops": FaultPlan([
            NicJitter(node=0, t_start=0.0, t_end=1e9, max_extra_latency=10e-6),
            MessageDrop(probability=0.1, max_drops=8),
        ], seed=11),
        "chaos": FaultPlan([
            LinkDegradation(node=1, t_start=0.25 * horizon, t_end=1e9, factor=0.4),
            StragglerSlowdown(rank=3, t_start=0.0, t_end=1e9, factor=2.0),
            NicJitter(node=0, t_start=0.0, t_end=1e9, max_extra_latency=10e-6),
            MessageDrop(probability=0.1, max_drops=8),
        ], seed=2019),
    }


def run(quick: bool = False) -> ExperimentOutput:
    p, ppn, n_dup = QUICK if quick else FULL
    healthy = run_ssc(p, N, "optimized", n_dup=n_dup, ppn=ppn)
    horizon = healthy.times[0]
    t = Table(
        ["Scenario", "TFlop/s", "vs healthy", "Drops", "Retries", "Fallbacks"],
        title=f"Ablation: optimized SSC under faults (1hsg_70, {p}^3, "
              f"PPN={ppn}, N_DUP={n_dup})",
    )
    values: dict = {}
    for name, plan in _scenarios(horizon, p**3).items():
        res = run_ssc(p, N, "optimized", n_dup=n_dup, ppn=ppn,
                      iterations=ITERATIONS, faults=plan)
        rerun = run_ssc(p, N, "optimized", n_dup=n_dup, ppn=ppn,
                        iterations=ITERATIONS, faults=plan)
        stats = res.world.transport.fault_stats()
        values[name] = {
            "tflops": res.tflops,
            "times": list(res.times),
            "rerun_times": list(rerun.times),
            "drops": stats["dropped_transmissions"],
            "retries": stats["retransmissions"],
            "fallbacks": res.fallbacks,
        }
        t.add_row([
            name, res.tflops, res.tflops / healthy.tflops,
            stats["dropped_transmissions"], stats["retransmissions"],
            res.fallbacks,
        ])
    return ExperimentOutput(
        name="ablation-faults",
        tables=[t],
        values=values,
        notes=(
            "Dropped messages are absorbed by timeout + exponential-backoff\n"
            "retransmission; a degraded link triggers the negotiated\n"
            "nonblocking->blocking fallback, trading the overlap win for a\n"
            "schedule that is robust on a throttled fabric.  Every scenario\n"
            "is seed-driven and replays bit-identically."
        ),
    )


def check(output: ExperimentOutput) -> None:
    v = output.values
    healthy = v["healthy"]
    # Faults never corrupt the run, only slow it: each scenario completes
    # with positive throughput no better than the healthy fabric.
    for name, row in v.items():
        assert row["tflops"] > 0, f"{name} produced no throughput"
        assert row["tflops"] <= healthy["tflops"] * 1.001, f"{name} sped up?!"
        # Determinism: the immediate rerun reproduced every per-call time.
        assert row["times"] == row["rerun_times"], f"{name} not reproducible"
    assert v["degraded-link"]["fallbacks"] > 0, "fallback path never exercised"
    assert v["jitter+drops"]["drops"] > 0, "drop scenario was vacuous"
    assert v["jitter+drops"]["drops"] == v["jitter+drops"]["retries"]
    assert v["chaos"]["tflops"] < healthy["tflops"]
