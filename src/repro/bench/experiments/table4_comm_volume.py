"""Table IV — inter-node communication volume, bandwidth and time vs PPN.

For the *baseline* SymmSquareCube algorithm (1hsg_70), the paper estimates
the inter-node communication volume (it grows with PPN because more of the
collective traffic crosses node boundaries), the achievable collective
bandwidths from the §V-B micro-benchmark, and the resulting time — and
compares against the measured inter-node communication time, which *drops*
with PPN despite the larger volume.  Paper values:

====  ===========  =========  ========  ========  ============
PPN   volume (MB)  Reduce BW  Bcast BW  est. (s)  actual (s)
====  ===========  =========  ========  ========  ============
1     265.0        2.4        8.5       0.058     0.073
2     311.5        3.1        8.8       0.056     0.066
4     405.1        5.1        9.0       0.054     0.056
6     429.7        8.3        9.1       0.047     0.050
8     390.5        8.7        9.1       0.043     0.054
====  ===========  =========  ========  ========  ============

Here the volume comes from the fabric's flow accounting (per-node
inter-node bytes), the bandwidths from the micro-benchmark run at the
kernel's block size with the corresponding overlap width, and the actual
time is the kernel elapsed minus the local-multiply time (the paper's
notion of the kernel's communication time).
"""

from __future__ import annotations

import math

from repro.bench.harness import ExperimentOutput
from repro.bench.microbench import collective_bandwidth
from repro.dense.distribution import block_dim
from repro.kernels import run_ssc
from repro.netmodel.analytic import collective_volume_long_message, t_point_to_point
from repro.netmodel.params import MachineParams, NetworkParams
from repro.purify import SYSTEMS
from repro.util import GB, MB, Table

N = SYSTEMS["1hsg_70"][0]
CONFIGS = ((1, 4), (2, 5), (4, 6), (6, 7), (8, 8))  # (ppn, mesh side)


def _configs(quick: bool):
    return ((1, 4), (4, 6), (8, 8)) if quick else CONFIGS


def grid(quick: bool = False) -> list[tuple[int, int]]:
    """One point per (ppn, mesh side) table row."""
    return list(_configs(quick))


def run_point(point: tuple[int, int], quick: bool = False) -> dict:
    """Micro-benchmark bandwidths + one baseline kernel run for one row."""
    ppn, p = point
    params = NetworkParams()
    block_bytes = block_dim(0, N, p) ** 2 * 8
    case = "blocking" if ppn == 1 else "ppn"
    bw_reduce = collective_bandwidth("reduce", case, block_bytes, n_dup=max(ppn, 1)).bandwidth
    bw_bcast = collective_bandwidth("bcast", case, block_bytes, n_dup=max(ppn, 1)).bandwidth
    # Estimated time: the paper's recipe — per-op long-message volumes
    # over micro-benchmark bandwidths (3 broadcasts, 2 reductions, 2
    # point-to-point block transfers).
    vol_op = collective_volume_long_message(block_bytes, p)
    est = (
        3 * vol_op / bw_bcast
        + 2 * vol_op / bw_reduce
        + 2 * t_point_to_point(block_bytes, params.alpha, params.beta())
    )
    r = run_ssc(p, N, "baseline", ppn=ppn, iterations=1)
    stats = r.world.fabric.snapshot_stats()
    nodes = math.ceil(p**3 / ppn)
    vol_node = stats["inter_node_bytes"] / nodes
    # Actual communication time the way the paper reports it: kernel
    # elapsed minus the two local multiplications (whose per-process
    # rate already accounts for node sharing).
    machine = MachineParams()
    block = block_dim(0, N, p)
    mm_time = 2 * (2.0 * block**3) / machine.process_flops(ppn)
    return {
        "volume_per_node": vol_node,
        "bw_reduce": bw_reduce,
        "bw_bcast": bw_bcast,
        "est_time": est,
        "actual_time": r.elapsed - mm_time,
    }


def assemble(results: list[dict], quick: bool = False) -> ExperimentOutput:
    t = Table(
        ["PPN", "volume/node (MB)", "Reduce BW (GB/s)", "Bcast BW (GB/s)",
         "est. time (s)", "actual inter-node time (s)"],
        title="Table IV: baseline SymmSquareCube inter-node communication vs PPN",
    )
    values: dict = {}
    for (ppn, _p), row in zip(grid(quick), results):
        values[ppn] = row
        t.add_row([ppn, row["volume_per_node"] / MB, row["bw_reduce"] / GB,
                   row["bw_bcast"] / GB, row["est_time"], row["actual_time"]])
    return ExperimentOutput(
        name="table4",
        tables=[t],
        values=values,
        notes=(
            "Target: inter-node volume per node *increases* with PPN while the\n"
            "achieved collective bandwidth rises faster, so the inter-node\n"
            "communication time *decreases* — the paper's counter-intuitive\n"
            "argument for multiple-PPN overlap."
        ),
    )


def run(quick: bool = False) -> ExperimentOutput:
    return assemble([run_point(pt, quick=quick) for pt in grid(quick)], quick=quick)


def check(output: ExperimentOutput) -> None:
    v = output.values
    ppns = sorted(v)
    lo, hi = ppns[0], ppns[-1]
    # Volume per node grows with PPN...
    assert v[hi]["volume_per_node"] > 1.1 * v[lo]["volume_per_node"]
    # ...while measured collective bandwidths grow...
    assert v[hi]["bw_reduce"] > 1.5 * v[lo]["bw_reduce"]
    assert v[hi]["bw_bcast"] >= 0.95 * v[lo]["bw_bcast"]
    # ...and the actual inter-node communication time drops.
    assert v[hi]["actual_time"] < 0.9 * v[lo]["actual_time"]
