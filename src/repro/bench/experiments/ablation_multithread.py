"""Ablation — multithreaded overlap, the technique the paper rejected (§I).

"A third technique for overlapping communication operations is to use
multithreading...  Unfortunately, this technique usually has high overheads
due to the need to guarantee thread safety within multithreaded MPI, in
addition to the overhead of multithreading itself.  Our tests with using
multithreading to overlap communication operations typically show poor
performance (particularly for message sizes less than 64K) compared to
using the above two techniques."

This experiment reproduces that comparison: four threads of one process
each driving a blocking collective of a quarter message (their internal
rounds serializing on the MPI lock, each call paying a thread-safety
overhead) versus the paper's two chosen techniques.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.bench.microbench import collective_bandwidth
from repro.util import KIB, MB, MIB, Table, format_size

SIZES = (16 * KIB, 64 * KIB, 1 * MIB, 8 * MIB)
QUICK_SIZES = (16 * KIB, 8 * MIB)
CASES = ("blocking", "multithread", "nonblocking", "ppn")
LABELS = {
    "blocking": "Blocking (none)",
    "multithread": "Multithreaded overlap",
    "nonblocking": "Nonblocking overlap",
    "ppn": "4-PPN overlap",
}


def run(quick: bool = False) -> ExperimentOutput:
    sizes = QUICK_SIZES if quick else SIZES
    values: dict = {}
    tables = []
    for op in ("bcast", "reduce"):
        t = Table(
            ["Message size"] + [f"{LABELS[c]} (MB/s)" for c in CASES],
            title=f"Ablation: multithreaded vs the paper's overlap techniques ({op})",
        )
        for size in sizes:
            row = [format_size(size)]
            for case in CASES:
                bw = collective_bandwidth(op, case, size).bandwidth
                values[(op, case, size)] = bw
                row.append(bw / MB)
            t.add_row(row)
        tables.append(t)
    return ExperimentOutput(
        name="ablation-multithread",
        tables=tables,
        values=values,
        notes=(
            "Multithreaded overlap trails at least one of the paper's two\n"
            "techniques everywhere, and is weakest for small messages —\n"
            "matching the paper's reason for setting it aside (§I)."
        ),
    )


def check(output: ExperimentOutput) -> None:
    v = output.values
    sizes = sorted({s for (_o, _c, s) in v})
    small, big = sizes[0], sizes[-1]
    for op in ("bcast", "reduce"):
        for size in (small, big):
            mt = v[(op, "multithread", size)]
            best = max(v[(op, "nonblocking", size)], v[(op, "ppn", size)])
            assert mt < best, f"multithreading should not win ({op}, {size})"
        # The small-message penalty is pronounced (paper: "< 64K").
        mt_rel_small = v[(op, "multithread", small)] / max(
            v[(op, "nonblocking", small)], v[(op, "ppn", small)]
        )
        assert mt_rel_small < 0.9
