"""§V-A — alpha-beta model of the baseline SymmSquareCube vs simulation.

The paper computes, for 1hsg_70 (N = 7645) on 64 nodes with p = 4 and
single-PPN, block messages of 1912^2 * 8 B = 27.89 MB and the model

    T_p2p    = 2.324e-3 s
    T_bcast  = T_reduce = 3.487e-3 s
    T_baseline = 2 (T_p2p + T_reduce) + 3 T_bcast = 0.02208 s

then observes the *measured* baseline communication time is 0.07312 s —
only 30.19% of peak bandwidth — while two local DGEMMs take 0.01794 s.
This experiment regenerates the model numbers exactly and compares them
with the simulated baseline kernel.
"""

from __future__ import annotations

import math

from repro.bench.harness import ExperimentOutput
from repro.kernels import run_ssc
from repro.netmodel import NetworkParams
from repro.netmodel.analytic import baseline_ssc_comm_time_model
from repro.netmodel.params import MachineParams
from repro.util import MB, MIB, Table

N = 7645
P = 4


def run(quick: bool = False) -> ExperimentOutput:
    iterations = 1 if quick else 3
    block = math.ceil(N / P)
    block_bytes = block * block * 8
    # The paper quotes the block as "27.89 MB": that is 1912^2*8 bytes
    # converted with binary MiB, then divided by the *decimal* 12000 MB/s —
    # we reproduce that arithmetic exactly to regenerate its numbers.
    block_paper_units = block_bytes / MIB * MB
    params = NetworkParams()
    model = baseline_ssc_comm_time_model(
        block_paper_units, P, alpha=params.alpha, beta=1.0 / (12_000 * MB)
    )
    r = run_ssc(P, N, "baseline", ppn=1, iterations=iterations, params=params)
    machine = MachineParams()
    mm_time = 2 * (2.0 * block**3) / machine.node_flops  # two local multiplies
    comm_time = r.elapsed - mm_time
    t = Table(["Quantity", "Paper model", "This repro"], title="§V-A analysis (1hsg_70)")
    t.add_row(["block message size (paper MB)", 27.89, block_paper_units / MB])
    t.add_row(["T_p2p (s)", 2.324e-3, model["T_p2p"]])
    t.add_row(["T_bcast (s)", 3.487e-3, model["T_bcast"]])
    t.add_row(["T_reduce (s)", 3.487e-3, model["T_reduce"]])
    t.add_row(["T_baseline model (s)", 0.02208, model["T_baseline"]])
    t.add_row(["measured comm time (s)", 0.07312, comm_time])
    t.add_row(["local multiplies (s)", 0.01794, mm_time])
    t.add_row(
        ["achieved fraction of peak", 0.3019, model["T_baseline"] / comm_time]
    )
    values = {
        "model": model,
        "comm_time": comm_time,
        "mm_time": mm_time,
        "elapsed": r.elapsed,
        "block_bytes": block_bytes,
        "block_paper_units": block_paper_units,
    }
    return ExperimentOutput(
        name="secva",
        tables=[t],
        values=values,
        notes=(
            "The simulated baseline, like the paper's measurement, falls well\n"
            "short of the alpha-beta lower bound: synchronization, staging\n"
            "copies, reduction compute and single-process injection limits\n"
            "consume the rest — the headroom the overlap techniques reclaim."
        ),
    )


def check(output: ExperimentOutput) -> None:
    v = output.values
    model = v["model"]
    # The closed-form model regenerates the paper's numbers exactly (<2%).
    assert abs(model["T_p2p"] - 2.324e-3) / 2.324e-3 < 0.02
    assert abs(model["T_bcast"] - 3.487e-3) / 3.487e-3 < 0.02
    assert abs(model["T_baseline"] - 0.02208) / 0.02208 < 0.02
    assert abs(v["block_paper_units"] / MB - 27.89) < 0.1
    # Simulated comm time exceeds the ideal model (paper: 3.3x; accept >1.5x)
    # and computation is clearly dominated by communication.
    assert v["comm_time"] > 1.5 * model["T_baseline"]
    assert v["comm_time"] > v["mm_time"]
