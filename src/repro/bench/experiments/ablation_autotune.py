"""Ablation — autotuned configuration vs the paper's defaults.

The paper fixes ``N_DUP = 4``, picks PPN per machine by hand (Table III)
and chooses the 2.5D replication factor per node count (Table V).  This
experiment lets :mod:`repro.tune` make those choices per workload across a
size sweep and compares the tuned configuration's simulated time against
the paper-default configuration of the same workload.

By construction (the default seeds the search incumbent and is always
simulated) the tuned time can never be worse than the default; the
interesting output is *how much* headroom the hand-picked defaults leave at
each scale, and which knob the tuner moved.  The CI ``tune`` job runs this
with ``--quick``, asserts the no-regression property via :func:`check`, and
uploads the tuning database assembled by :func:`export_db` as an artifact.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.util import Table

#: Tuning-search seed — fixed so sweeps are byte-reproducible.
SEED = 0

# Workload points: ("ssc", p, n) or ("ssc25d", q, c, n).  Sizes are scaled
# down from the paper's n=7645..15305 so the full sweep stays minutes, not
# hours; the knob trade-offs (latency- vs bandwidth-bound) already flip
# across this range.
WORKLOADS = (
    ("ssc", 2, 256),
    ("ssc", 2, 1024),
    ("ssc", 3, 768),
    ("ssc", 4, 1536),
    ("ssc25d", 4, 2, 512),
    ("ssc25d", 6, 2, 1024),
)
QUICK_WORKLOADS = (
    ("ssc", 2, 256),
    ("ssc", 3, 384),
    ("ssc25d", 4, 2, 256),
)


def _workload_label(point) -> str:
    if point[0] == "ssc":
        _k, p, n = point
        return f"ssc p={p} n={n}"
    _k, q, c, n = point
    return f"ssc25d {q}x{q}x{c} n={n}"


def grid(quick: bool = False) -> list[tuple]:
    """One point per tuned workload."""
    return list(QUICK_WORKLOADS if quick else WORKLOADS)


def run_point(point: tuple, quick: bool = False) -> dict:
    """Run one tuning search; returns the full record as a plain dict."""
    from repro.tune.tuner import Tuner

    tuner = Tuner(policy="auto", seed=SEED)
    if point[0] == "ssc":
        _k, p, n = point
        record = tuner.autotune_ssc(p, n)
    else:
        _k, q, c, n = point
        record = tuner.autotune_ssc25d(q, c, n)
    return record.as_dict()


def assemble(results: list[dict], quick: bool = False) -> ExperimentOutput:
    t = Table(
        ["Workload", "Paper default", "default (s)", "Tuned", "tuned (s)",
         "Speedup", "Sims"],
        title="Ablation: autotuned configuration vs paper default",
    )
    values: dict = {}
    for point, rec in zip(grid(quick), results):
        values[point] = rec
        t.add_row([
            _workload_label(point),
            rec["default"]["algorithm"] + f":nd{rec['default']['n_dup']}"
            f":ppn{rec['default']['ppn']}",
            rec["default_time"],
            rec["best"]["algorithm"] + f":nd{rec['best']['n_dup']}"
            f":ppn{rec['best']['ppn']}:{rec['best']['collective']}",
            rec["best_time"],
            rec["speedup_vs_default"],
            rec["simulations"],
        ])
    return ExperimentOutput(
        name="ablation-autotune",
        tables=[t],
        values=values,
        notes=(
            "Tuned time can never exceed the paper default (the default\n"
            "seeds the search incumbent); the speedup column is the headroom\n"
            "the hand-picked N_DUP=4 / per-machine PPN defaults leave on the\n"
            "table at each scale."
        ),
    )


def run(quick: bool = False) -> ExperimentOutput:
    return assemble([run_point(pt, quick=quick) for pt in grid(quick)], quick=quick)


def export_db(output: ExperimentOutput, path) -> None:
    """Rebuild a :class:`~repro.tune.db.TuningDB` from the sweep and save it.

    The CI ``tune`` job uploads the result as an artifact so a workflow run
    doubles as a warm-start database for local use.
    """
    from repro.tune.db import TuningDB, TuningRecord

    db = TuningDB(path=path)
    for rec in output.values.values():
        db.insert(TuningRecord.from_dict(rec))
    db.save()


def check(output: ExperimentOutput) -> None:
    for point, rec in output.values.items():
        best, default = rec["best_time"], rec["default_time"]
        assert best is not None and default is not None, point
        # The no-regression guarantee: tuned never slower than the default.
        assert best <= default, (
            f"tuned config slower than paper default at {point}: "
            f"{best} > {default}"
        )
        assert rec["simulations"] >= 1, f"no simulation backed {point}"
    # The defaults should leave measurable headroom somewhere in the sweep
    # (otherwise the tuner is pointless at these scales).
    speedups = [rec["speedup_vs_default"] for rec in output.values.values()]
    assert max(speedups) > 1.01, f"tuner found no headroom: {speedups}"
