"""Ablation — rank-to-node placement sensitivity.

The paper pins a specific placement (§V-D): "a 'natural' assignment of the
MPI ranks to the p x p x p process mesh, i.e., the ranks are assigned row by
row in one plane and then plane by plane.  Also, the MPI ranks on a node are
numbered consecutively."  With that map, whole communicator families can end
up co-resident (e.g. at PPN=8 on an 8^3 mesh every col_comm is intra-node),
which changes which traffic rides shared memory versus the NIC.

This ablation quantifies the sensitivity by comparing the paper's block
placement against a round-robin map for the optimized kernel — a knob the
paper holds fixed but any practitioner retuning PPN should know about.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.kernels import run_ssc
from repro.purify import SYSTEMS
from repro.util import Table

N = SYSTEMS["1hsg_70"][0]
CONFIGS = ((2, 5), (4, 6), (8, 8))  # (ppn, mesh side)
QUICK_CONFIGS = ((4, 6),)


def run(quick: bool = False) -> ExperimentOutput:
    configs = QUICK_CONFIGS if quick else CONFIGS
    t = Table(
        ["PPN", "Mesh", "block / natural (TF)", "round-robin (TF)", "ratio"],
        title="Ablation: rank placement, optimized kernel (1hsg_70, N_DUP=4)",
    )
    values: dict = {}
    for ppn, p in configs:
        rb = run_ssc(p, N, "optimized", n_dup=4, ppn=ppn, placement="block")
        rr = run_ssc(p, N, "optimized", n_dup=4, ppn=ppn,
                     placement="round_robin")
        values[(ppn, p)] = (rb.tflops, rr.tflops)
        t.add_row([ppn, f"{p}^3", rb.tflops, rr.tflops, rr.tflops / rb.tflops])
    return ExperimentOutput(
        name="ablation-placement",
        tables=[t],
        values=values,
        notes=(
            "Placement shifts throughput by up to ~10% at multi-PPN: it\n"
            "decides which communicator families become intra-node.  The\n"
            "paper's conclusions are placement-robust (both maps show the\n"
            "same overlap gains), but the PPN sweet spot can move."
        ),
    )


def check(output: ExperimentOutput) -> None:
    for (ppn, p), (tb, tr) in output.values.items():
        # Both placements produce sane throughput; sensitivity is bounded.
        assert tb > 0 and tr > 0
        ratio = tr / tb
        assert 0.7 < ratio < 1.4, f"implausible placement swing at PPN={ppn}"
