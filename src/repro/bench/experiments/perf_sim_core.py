"""perf-sim-core — microbenchmark of the simulator core (engine + fabric).

Every reproduced number in this repo comes out of the discrete-event engine
driving the fluid-flow fabric, and the paper's interesting regimes (large P,
large ``N_DUP``, PPN sweeps) are exactly the ones that explode the number of
concurrent flows.  This experiment measures that core in isolation: three
*flow storms* whose concurrency patterns are shaped like the repo's main
workloads, driven directly through :class:`~repro.netmodel.fabric.Fabric`
with no MPI/collective layer on top.

=========  ==================================================================
workload   shape
=========  ==================================================================
table1     64 nodes, PPN=1, staggered bursts of 256 multi-MB flows — the
           Table I SymmSquareCube regime (p=4 mesh, N_DUP pipelined
           rendezvous-class block broadcasts).
table2     32 nodes, PPN=4, 256-flow bursts of ~1 MB — the Table II/III
           N_DUP x PPN regime with intra-node (shm) traffic mixed in.
ext_cg     64 nodes, PPN=4, many small waves of 20 kB flows — the §VI
           conjugate-gradient regime: latency-bound, high event rate.
=========  ==================================================================

Metrics per workload:

``events_processed`` / ``events_cancelled`` / ``peak_heap_size`` /
``heap_compactions``
    Deterministic simulator-cost counters — identical on every machine and
    every run, so the CI gate compares them **exactly** (any drift means the
    event structure changed).

``events/sec``
    ``events_processed / wall`` (best wall time of several repetitions).

``canonical events/sec``
    ``baseline_pre_events / wall``: the event count is pinned to what the
    *pre-optimization* simulator processed for the same storm (stored in
    ``BENCH_sim_core.json``), so the metric is a pure wall-time throughput
    measure on a fixed workload — it cannot be inflated by processing more
    (e.g. stale no-op) events, and the ≥2x acceptance criterion on the
    table1 storm equals a ≥2x wall-time speedup.

``ref_loop_eps``
    Throughput of a trivial schedule-one-fire-one engine loop, measured in
    the same process.  The CI gate divides walls by it to normalize away
    machine speed before applying its 20% regression tolerance.

``plan_cache``
    A deterministic sweep over the collective plan cache (every algorithm
    x process count x message size x rank, several passes): hit/miss/
    eviction/entry counters are exact and gated against the baseline like
    the engine counters; warm lookups/sec is informative only.

``summa``
    The SUMMA-family headline numbers on the bandwidth-bound p=4 /
    n=2048 configuration: simulated times of plain, streaming(depth 4)
    and 4-color pipelined-multicast SUMMA.  Virtual times are
    deterministic, so they are gated **exactly** against the baseline,
    and the colored-4 vs plain speedup must reach
    :data:`SUMMA_SPEEDUP_TARGET`.

``replay``
    The event-graph replay stage (:mod:`repro.sim.replay`): record the
    tuner's shortlist for the quick Table I workload once, then re-score it
    under a sweep of perturbed fabric constants both ways — full simulation
    vs graph replay.  The scores must match **bit for bit** (gated, and the
    score list itself is pinned in the baseline), the graph/counter values
    are exact, and the in-run wall ratio (machine speed cancels) must reach
    :data:`REPLAY_SPEEDUP_TARGET`.

Run ``python -m repro.bench perf_sim_core --check`` to compare against the
committed baseline; see ``docs/perf.md`` for how to regenerate it.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.bench.harness import ExperimentOutput
from repro.netmodel.fabric import Fabric
from repro.netmodel.topology import block_placement
from repro.sim.engine import Engine
from repro.util import Table

BASELINE_FILE = "BENCH_sim_core.json"

#: name -> (nodes, ppn, flows/wave, quick waves, full waves, nbytes, stagger)
WORKLOADS: dict[str, tuple[int, int, int, int, int, int, int]] = {
    "table1": (64, 1, 256, 12, 40, 3_822_500, 4),
    "table2": (32, 4, 256, 12, 40, 1_000_000, 4),
    "ext_cg": (64, 4, 64, 40, 120, 20_000, 2),
}

#: The acceptance criterion: canonical events/sec on the table1 storm must
#: be at least this multiple of the pre-optimization baseline.
SPEEDUP_TARGET = 2.0
#: CI regression tolerance on (machine-normalized) events/sec.
EPS_TOLERANCE = 0.20

#: SUMMA acceptance criterion: 4-color pipelined-multicast SUMMA must beat
#: plain SUMMA by at least this factor of *simulated* time on the
#: bandwidth-bound configuration below (deterministic — no tolerance).
SUMMA_SPEEDUP_TARGET = 1.5
#: The committed bandwidth-bound SUMMA configuration: (p, n, ppn).
SUMMA_CONFIG = (4, 2048, 1)

#: Replay acceptance criterion: re-scoring the tuner's recorded shortlist
#: by graph replay must beat full simulation by at least this wall-time
#: ratio (measured in-run, so machine speed cancels exactly).
REPLAY_SPEEDUP_TARGET = 3.0
#: Fabric-constant perturbations for the replay sweep, ``(field, scale)``.
#: Every field is in :data:`repro.sim.replay.REPLAY_SAFE_FIELDS` — the
#: sweep exercises the replayer's validity envelope, not its fallback.
REPLAY_SWEEP = (
    ("alpha", 1.25), ("alpha", 1.5), ("alpha", 0.75),
    ("nic_bandwidth", 0.5), ("nic_bandwidth", 0.8),
    ("shm_bandwidth", 0.5),
)

#: Tuning-service load: (concurrent threads, distinct signatures, warm
#: lookups).  The coalescing gate requires exactly one search per
#: signature; the warm wave must be all lock-free cache hits with zero
#: simulator runs.  Same in quick and full mode (it is a microbench).
TUNE_SERVICE_LOAD = (64, 4, 256)


def run_storm(nodes: int, ppn: int, wave: int, waves: int, nbytes: int,
              stagger: int) -> Engine:
    """Drive one flow storm to completion; returns the drained engine.

    Deliberately uses only the long-stable public surface (``call_after``,
    ``Fabric.transfer``, ``Engine.run``) so the very same function can be
    executed against an older simulator to (re)produce pre-optimization
    baseline numbers.
    """
    eng = Engine()
    fab = Fabric(eng, block_placement(nodes * ppn, ppn))
    ranks = nodes * ppn
    state = {"left": waves}

    def post_wave(_ev=None):
        w = waves - state["left"]
        state["left"] -= 1
        evs = []
        for i in range(wave):
            src = (i + w) % ranks
            dst = (src + 1 + (i % 7)) % ranks
            evs.append(fab.transfer(src, dst, nbytes))
        if state["left"] > 0:
            evs[-1].add_callback(lambda _e: post_wave())

    # Staggered sub-waves approximate the N_DUP pipeline's overlapping
    # posting fronts (several communicators in flight at once).
    for s in range(stagger):
        eng.call_after(s * 1e-5, post_wave)
    eng.run()
    return eng


def ref_loop_eps(n: int = 200_000) -> float:
    """Events/sec of a bare schedule-one-fire-one engine loop.

    A machine-speed yardstick: it exercises only the heap and the dispatch
    path, so dividing a storm's wall time by it cancels host speed without
    hiding changes to the code under test.
    """
    eng = Engine()
    state = {"left": n}

    def tick():
        if state["left"] > 0:
            state["left"] -= 1
            eng.call_after(1e-6, tick)

    tick()
    t0 = time.perf_counter()
    eng.run()
    return n / (time.perf_counter() - t0)


def _measure(name: str, quick: bool, reps: int = 3) -> dict:
    nodes, ppn, wave, wq, wf, nbytes, stagger = WORKLOADS[name]
    waves = wq if quick else wf
    run_storm(nodes, ppn, wave, min(waves, 4), nbytes, stagger)  # warmup
    best_wall = None
    eng = None
    for _ in range(reps):
        t0 = time.perf_counter()
        eng = run_storm(nodes, ppn, wave, waves, nbytes, stagger)
        wall = time.perf_counter() - t0
        if best_wall is None or wall < best_wall:
            best_wall = wall
    # getattr defaults: counters that only exist post-optimization read as 0
    # when this module is executed against an older simulator.
    return {
        "wall": best_wall,
        "events": eng.events_processed,
        "cancelled": getattr(eng, "events_cancelled", 0),
        "peak_heap": getattr(eng, "peak_heap_size", 0),
        "compactions": getattr(eng, "compactions", 0),
        "eps": eng.events_processed / best_wall,
    }


#: The plan-cache sweep: every combination below is looked up once per rank
#: per pass.  Counters are a pure function of these constants.
PLAN_ALGS = ("bcast_binomial", "bcast_long", "reduce_rabenseifner",
             "allreduce_long", "allgather_ring", "barrier")
PLAN_PS = (4, 16, 64)
PLAN_SIZES = (1_000, 1_000_000)
PLAN_PASSES = 4


def run_plan_cache_bench() -> dict:
    """Deterministic plan-cache microbenchmark (same sweep in both modes).

    Returns the cache's counters after the sweep plus ``lookups`` and the
    (machine-dependent, informative-only) ``lookups_per_sec``.
    """
    from repro.mpi.collectives.plan import PlanCache

    cache = PlanCache()
    t0 = time.perf_counter()
    for _ in range(PLAN_PASSES):
        for alg in PLAN_ALGS:
            for p in PLAN_PS:
                for n in PLAN_SIZES:
                    for me in range(p):
                        cache.get(alg, p, me, 0, n, 8)
    wall = time.perf_counter() - t0
    stats = cache.stats()
    stats["lookups"] = stats["hits"] + stats["misses"]
    stats["lookups_per_sec"] = stats["lookups"] / wall
    return stats


def run_replay_bench(quick: bool) -> dict:
    """The tuner's shortlist-scoring stage: full simulation vs graph replay.

    Records the shortlist of the quick Table I SymmSquareCube tuning
    workload (p=2 mesh, n=64, PPN=1) once via ``search(replay="auto")``,
    then re-scores it under every :data:`REPLAY_SWEEP` setting both ways —
    ``simulate_candidate`` (fresh simulation) and ``replay_kernel`` (the
    recorded event graph under the new constants).  Every score pair must
    match bit for bit; walls are best-of-``reps`` per setting and summed,
    and ``speedup`` is their in-run ratio.

    Everything except the three walls is deterministic: the shortlist, the
    graph sizes, the warm re-search's replay/simulation counters and the
    replayed scores themselves are pure functions of the workload and are
    gated exactly (the scores are pinned in the baseline, so replay must
    produce identical bits on every machine).
    """
    from repro.netmodel.params import NetworkParams
    from repro.sim.replay import replay_kernel
    from repro.tune.candidates import (apply_collective, enumerate_candidates,
                                       paper_default_candidate)
    from repro.tune.search import search, simulate_candidate
    from repro.tune.signature import signature_for_ssc

    reps = 3 if quick else 5
    base = NetworkParams()
    sig = signature_for_ssc(2, 64, ppn=1, params=base)
    cands = enumerate_candidates(sig)
    default = paper_default_candidate(sig)
    cand_by_key = {c.key: c for c in cands + [default]}

    # Record once: the first search simulates the shortlist with recording
    # on and fills the graph cache.
    cache: dict = {}
    first = search(sig, cands, default, params=base, replay="auto",
                   graph_cache=cache)
    shortlist = [(key[1], rec) for key, rec in sorted(cache.items())]

    settings = [base.replace(**{f: getattr(base, f) * s})
                for f, s in REPLAY_SWEEP]

    # Deterministic end-to-end check: a warm re-search under perturbed
    # constants must be served entirely by replay (zero simulator runs).
    warm = search(sig, cands, default, params=settings[0], replay="auto",
                  graph_cache=cache)

    sim_wall = rep_wall = 0.0
    scores: list[list[list[float]]] = []
    equivalent = True
    for params in settings:
        effs = [(apply_collective(params, cand_by_key[ck].collective), rec,
                 cand_by_key[ck]) for ck, rec in shortlist]
        sim_scores = rep_scores = None
        best = None
        for _ in range(reps):
            t0 = time.perf_counter()
            sim_scores = [simulate_candidate(sig, cand, params)
                          for _eff, _rec, cand in effs]
            wall = time.perf_counter() - t0
            best = wall if best is None or wall < best else best
        sim_wall += best
        best = None
        for _ in range(reps):
            t0 = time.perf_counter()
            rep_scores = [replay_kernel(rec, params=eff)
                          for eff, rec, _cand in effs]
            wall = time.perf_counter() - t0
            best = wall if best is None or wall < best else best
        rep_wall += best
        equivalent = equivalent and sim_scores == rep_scores
        scores.append([list(pair) for pair in rep_scores])

    return {
        "workload": sig.key.rsplit(":", 1)[0],
        "settings": len(settings),
        "shortlist": len(shortlist),
        "graph_nodes": sum(len(rec.kinds) for _ck, rec in shortlist),
        "graph_flows": sum(len(rec.flows) for _ck, rec in shortlist),
        "record_simulations": first.simulations,
        "warm_simulations": warm.simulations,
        "warm_replays": warm.replays,
        "equivalent": equivalent,
        "scores": scores,
        "sim_wall": sim_wall,
        "replay_wall": rep_wall,
        "speedup": sim_wall / rep_wall,
    }


def run_tune_service_bench() -> dict:
    """The tuning service's coalescing + warm-cache stage, fully pinned.

    Runs the gate-orchestrated stampede shared with the
    ``ablation-tune-service`` experiment: concurrent ``tune()`` threads
    over a few signatures must collapse to one search per signature, the
    warm wave must be all cache hits with zero simulator runs, and the db
    written through the service must be byte-identical to serial tuning.
    Every returned value except ``warm_lookups_per_sec`` (informative
    throughput) is deterministic and gated exactly against the baseline.
    """
    from repro.bench.experiments.ablation_tune_service import (
        run_coalescing_stampede,
    )

    threads_n, sigs_n, warm_n = TUNE_SERVICE_LOAD
    return run_coalescing_stampede(threads_n, sigs_n, warm_n)


def run_summa_bench() -> dict:
    """Deterministic SUMMA-family headline: plain vs pipelined variants.

    Simulates the three variants on the bandwidth-bound
    :data:`SUMMA_CONFIG` mesh in modeled-size mode.  Every returned time
    is *virtual* (discrete-event clock), hence bit-identical on every
    machine — the CI gate compares them exactly and requires the
    colored-4 speedup to reach :data:`SUMMA_SPEEDUP_TARGET`.
    """
    from repro.dense import run_summa

    p, n, ppn = SUMMA_CONFIG
    plain = run_summa(p, n, algorithm="plain", ppn=ppn)
    streaming = run_summa(p, n, algorithm="streaming", depth=4, ppn=ppn)
    colored = run_summa(p, n, algorithm="colored", colors=4, depth=4, ppn=ppn)
    return {
        "p": p,
        "n": n,
        "ppn": ppn,
        "plain_time": plain.elapsed,
        "streaming_time": streaming.elapsed,
        "colored4_time": colored.elapsed,
        "colored4_speedup": plain.elapsed / colored.elapsed,
        "streaming_speedup": plain.elapsed / streaming.elapsed,
    }


def find_baseline() -> pathlib.Path | None:
    """Locate the committed ``BENCH_sim_core.json`` (repo root)."""
    here = pathlib.Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / BASELINE_FILE
        if candidate.is_file():
            return candidate
    return None


def load_baseline() -> dict | None:
    path = find_baseline()
    if path is None:
        return None
    return json.loads(path.read_text())


def run(quick: bool = False) -> ExperimentOutput:
    mode = "quick" if quick else "full"
    baseline = load_baseline()
    base = (baseline or {}).get(mode, {})
    ref = ref_loop_eps()
    t = Table(
        ["Workload", "Events", "Cancelled", "Peak heap", "Compact",
         "Wall (s)", "ev/s", "canon ev/s", "vs pre"],
        title=f"perf-sim-core: simulator-core flow storms ({mode} mode)",
    )
    values: dict = {"mode": mode, "ref_eps": ref, "workloads": {}}
    for name in WORKLOADS:
        m = _measure(name, quick)
        pre = base.get("pre", {}).get(name)
        if pre:
            m["canonical_eps"] = pre["events"] / m["wall"]
            m["speedup_vs_pre"] = pre["wall"] / m["wall"]
        values["workloads"][name] = m
        t.add_row([
            name, m["events"], m["cancelled"], m["peak_heap"],
            m["compactions"], m["wall"],
            m["eps"],
            m.get("canonical_eps", float("nan")),
            m.get("speedup_vs_pre", float("nan")),
        ])
    pc = run_plan_cache_bench()
    values["plan_cache"] = pc
    pt = Table(
        ["Lookups", "Hits", "Misses", "Evictions", "Entries", "Hit rate",
         "lookups/s"],
        title="perf-sim-core: collective plan-cache sweep",
    )
    pt.add_row([
        pc["lookups"], pc["hits"], pc["misses"], pc["evictions"],
        pc["entries"], pc["hit_rate"], pc["lookups_per_sec"],
    ])
    sm = run_summa_bench()
    values["summa"] = sm
    st = Table(
        ["p", "n", "PPN", "plain (ms)", "stream-d4 (ms)", "col4-d4 (ms)",
         "col4 speedup"],
        title="perf-sim-core: SUMMA family, simulated time (deterministic)",
    )
    st.add_row([
        sm["p"], sm["n"], sm["ppn"], sm["plain_time"] * 1e3,
        sm["streaming_time"] * 1e3, sm["colored4_time"] * 1e3,
        sm["colored4_speedup"],
    ])
    rp = run_replay_bench(quick)
    values["replay"] = rp
    rt = Table(
        ["Shortlist", "Nodes", "Flows", "Settings", "Equal", "Sim (s)",
         "Replay (s)", "Speedup"],
        title="perf-sim-core: shortlist re-scoring, simulation vs replay",
    )
    rt.add_row([
        rp["shortlist"], rp["graph_nodes"], rp["graph_flows"],
        rp["settings"], rp["equivalent"], rp["sim_wall"],
        rp["replay_wall"], rp["speedup"],
    ])
    ts = run_tune_service_bench()
    values["tune_service"] = ts
    tt = Table(
        ["Threads", "Sigs", "Searches", "Coalesced", "Warm hits",
         "Warm sims", "Bytes OK", "warm lookups/s"],
        title="perf-sim-core: tuning-service stampede + warm cache",
    )
    tt.add_row([
        ts["threads"], ts["signatures"], ts["searches"], ts["coalesced"],
        ts["warm_hits"], ts["warm_simulations"], ts["byte_identical"],
        ts["warm_lookups_per_sec"],
    ])
    return ExperimentOutput(
        name="perf_sim_core",
        tables=[t, pt, st, rt, tt],
        values=values,
        notes=(
            "'canon ev/s' divides the PRE-optimization event count by the\n"
            "current wall time (fixed-workload throughput; 2x canon ev/s ==\n"
            "2x wall speedup).  'vs pre' is measured against the committed\n"
            f"{BASELINE_FILE}; counters are deterministic and gated exactly.\n"
            "The SUMMA table simulates the pipelined-multicast family on\n"
            "the committed bandwidth-bound mesh: virtual times are gated\n"
            f"bit for bit and colored-4 must reach\n"
            f">= {SUMMA_SPEEDUP_TARGET:.1f}x over plain (docs/channels.md).\n"
            "The replay table re-scores the recorded tuning shortlist under\n"
            "perturbed fabric constants: scores must match full simulation\n"
            f"bit for bit at >= {REPLAY_SPEEDUP_TARGET:.0f}x the speed.\n"
            "The tuning-service table pins the coalescing gate (one search\n"
            "per signature under a concurrent stampede), the warm-hit gate\n"
            "(zero simulations on the warm wave) and the serial byte-\n"
            "identity of the db written through the service.\n"
            "See docs/perf.md and docs/tuning.md."
        ),
    )


def check(output: ExperimentOutput) -> None:
    """CI gate: deterministic counters exact, throughput within tolerance.

    Wall-time comparisons are machine-normalized: both sides' walls are
    scaled by their own ``ref_loop_eps`` so a slower CI host does not fail
    the gate (and a faster one does not mask a regression).
    """
    baseline = load_baseline()
    assert baseline is not None, (
        f"{BASELINE_FILE} not found — regenerate it (see docs/perf.md)"
    )
    mode = output.values["mode"]
    base = baseline.get(mode)
    assert base is not None, f"baseline has no {mode!r} section"
    base_ref = baseline["ref_eps"]
    ref = output.values["ref_eps"]
    # normalized wall = wall / (machine slowness); slowness = base_ref / ref.
    scale = ref / base_ref
    for name, m in output.values["workloads"].items():
        post = base["post"][name]
        for key in ("events", "cancelled", "peak_heap", "compactions"):
            assert m[key] == post[key], (
                f"{name}: deterministic counter {key!r} drifted: "
                f"{m[key]} != baseline {post[key]}"
            )
        norm_wall = m["wall"] * scale
        limit = post["wall"] * (1.0 + EPS_TOLERANCE)
        assert norm_wall <= limit, (
            f"{name}: normalized wall {norm_wall:.4f}s exceeds baseline "
            f"{post['wall']:.4f}s by more than {EPS_TOLERANCE:.0%} "
            f"(events/sec regression)"
        )
        pre = base["pre"][name]
        speedup = pre["wall"] / norm_wall
        m["normalized_speedup_vs_pre"] = speedup
    t1 = output.values["workloads"]["table1"]["normalized_speedup_vs_pre"]
    assert t1 >= SPEEDUP_TARGET, (
        f"table1 storm speedup vs pre-optimization baseline is {t1:.2f}x, "
        f"below the required {SPEEDUP_TARGET:.1f}x"
    )
    base_pc = baseline.get("plan_cache")
    if base_pc is not None:
        pc = output.values["plan_cache"]
        for key in ("lookups", "hits", "misses", "evictions", "entries"):
            assert pc[key] == base_pc[key], (
                f"plan_cache: deterministic counter {key!r} drifted: "
                f"{pc[key]} != baseline {base_pc[key]}"
            )
    sm = output.values["summa"]
    assert sm["colored4_speedup"] >= SUMMA_SPEEDUP_TARGET, (
        f"4-color pipelined SUMMA speedup over plain is "
        f"{sm['colored4_speedup']:.2f}x, below the required "
        f"{SUMMA_SPEEDUP_TARGET:.1f}x on p={sm['p']}, n={sm['n']}"
    )
    base_sm = baseline.get("summa")
    if base_sm is not None:
        for key in ("p", "n", "ppn", "plain_time", "streaming_time",
                    "colored4_time"):
            assert sm[key] == base_sm[key], (
                f"summa: deterministic value {key!r} drifted: "
                f"{sm[key]!r} != baseline {base_sm[key]!r} — simulated "
                f"SUMMA times must be bit-identical on every machine"
            )
    base_rp = baseline.get("replay")
    if base_rp is not None:
        rp = output.values["replay"]
        assert rp["equivalent"] is True, (
            "replay: re-scored shortlist diverged from full simulation — "
            "graph replay is no longer bit-exact"
        )
        for key in ("workload", "settings", "shortlist", "graph_nodes",
                    "graph_flows", "record_simulations", "warm_simulations",
                    "warm_replays"):
            assert rp[key] == base_rp[key], (
                f"replay: deterministic value {key!r} drifted: "
                f"{rp[key]!r} != baseline {base_rp[key]!r}"
            )
        assert rp["scores"] == base_rp["scores"], (
            "replay: shortlist scores differ from the committed baseline — "
            "replayed virtual times must be bit-identical on every machine"
        )
        assert rp["speedup"] >= REPLAY_SPEEDUP_TARGET, (
            f"replay stage speedup is {rp['speedup']:.2f}x, below the "
            f"required {REPLAY_SPEEDUP_TARGET:.1f}x (sim "
            f"{rp['sim_wall']:.4f}s vs replay {rp['replay_wall']:.4f}s)"
        )
    ts = output.values["tune_service"]
    # Structural gates — hold with or without a committed baseline section.
    assert ts["searches"] == ts["signatures"], (
        f"coalescing gate: {ts['searches']} searches for "
        f"{ts['signatures']} signatures under a {ts['threads']}-thread "
        f"stampede"
    )
    assert ts["coalesced"] == ts["threads"] - ts["signatures"], ts
    assert ts["warm_hits"] == ts["warm_requests"], ts
    assert ts["warm_simulations"] == 0, (
        f"warm-hit gate: the warm wave ran {ts['warm_simulations']} "
        f"simulations (expected zero)"
    )
    assert ts["byte_identical"] is True, (
        "tune_service: db written through the service is not byte-identical "
        "to serial tuning"
    )
    base_ts = baseline.get("tune_service")
    if base_ts is not None:
        for key in ("threads", "signatures", "requests", "searches",
                    "coalesced", "hits", "simulations", "records",
                    "warm_requests", "warm_hits", "warm_searches",
                    "warm_simulations", "byte_identical"):
            assert ts[key] == base_ts[key], (
                f"tune_service: deterministic value {key!r} drifted: "
                f"{ts[key]!r} != baseline {base_ts[key]!r}"
            )
