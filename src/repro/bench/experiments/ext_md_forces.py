"""Extension — overlapped collectives in particle simulations (paper §VI).

The paper's first named future-work target: "In distributed particle
simulations, the forces between a set of particles can be arranged in a
matrix that is partitioned using a 2D partitioning.  This leads to
algorithms that use collective communication along processor rows and
columns of a processor mesh."

This experiment runs the force-decomposition step at several particle
counts on an 8x8 mesh and compares blocking row/column broadcasts + row
reduction against the overlapped variant (independent broadcasts overlap
each other; the reduction self-overlaps with N_DUP = 4).  Compute is
de-emphasized so the communication pattern dominates, as it does at scale
for mid-sized particle systems.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.netmodel import MachineParams
from repro.particles import run_force_step
from repro.util import Table

P = 8
COUNTS = (250_000, 1_000_000, 4_000_000, 16_000_000)
QUICK_COUNTS = (1_000_000, 4_000_000)
MACHINE = MachineParams(node_flops=1e16)  # isolate the communication pattern


def run(quick: bool = False) -> ExperimentOutput:
    counts = QUICK_COUNTS if quick else COUNTS
    t = Table(
        ["Particles", "blocking (ms/step)", "overlapped N_DUP=4 (ms/step)",
         "speedup"],
        title=f"Extension (§VI): force-decomposition step on an {P}x{P} mesh",
    )
    values: dict = {}
    for n in counts:
        tb = run_force_step(P, n, steps=2, machine=MACHINE).time_per_step
        to = run_force_step(P, n, steps=2, overlapped=True, n_dup=4,
                            machine=MACHINE).time_per_step
        values[n] = (tb, to)
        t.add_row([n, tb * 1e3, to * 1e3, tb / to])
    return ExperimentOutput(
        name="ext-md",
        tables=[t],
        values=values,
        notes=(
            "Row and column position broadcasts are independent collectives\n"
            "and overlap each other; the force reduction self-overlaps.\n"
            "The same N_DUP machinery as SymmSquareCube yields a 1.3-1.5x\n"
            "step speedup in the communication-dominated regime."
        ),
    )


def check(output: ExperimentOutput) -> None:
    v = output.values
    for n, (tb, to) in v.items():
        assert to < tb, f"overlap did not help at n={n}"
    big = max(v)
    tb, to = v[big]
    assert tb / to > 1.2, f"speedup only {tb / to:.2f}x at n={big}"
    # Step time grows with the particle count (sanity).
    counts = sorted(v)
    assert v[counts[-1]][0] > v[counts[0]][0]
