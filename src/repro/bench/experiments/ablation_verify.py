"""Ablation — runtime-verifier overhead: virtual time free, wall time cheap.

``World(verify=True)`` attaches the :class:`repro.analysis.CommVerifier`,
whose hooks are passive by construction: they read state and register
event callbacks but never schedule work or charge virtual time.  This
experiment makes that contract measurable.  For each kernel configuration
it runs the same schedule verified and unverified and reports:

* the simulated per-call times — asserted *identical*, list for list
  (the verifier is invisible to the model being studied);
* the host wall-clock cost of the two runs — the only price of verifying,
  paid in real seconds on the workstation, not in modeled seconds;
* the finding count, which must be zero for the paper kernels.
"""

from __future__ import annotations

import time

from repro.bench.harness import ExperimentOutput
from repro.kernels import run_ssc
from repro.kernels.ssc25d import run_ssc25d
from repro.purify import SYSTEMS
from repro.util import Table

N = SYSTEMS["1hsg_70"][0]
ITERATIONS = 2


def _configs(quick: bool) -> dict[str, dict]:
    p = 2 if quick else 4
    ppn = 2 if quick else 4
    return {
        f"ssc-optimized-{p}^3": dict(
            kind="ssc", p=p, n_dup=2, ppn=ppn),
        f"ssc-baseline-{p}^3": dict(
            kind="ssc", p=p, algorithm="baseline", n_dup=1, ppn=ppn),
        f"ssc25d-{p}x{p}x{p // 2 or 1}": dict(
            kind="25d", q=p, c=max(p // 2, 1), n_dup=2, ppn=ppn),
    }


def _run_one(cfg: dict, verify: bool):
    t0 = time.perf_counter()
    if cfg["kind"] == "ssc":
        res = run_ssc(cfg["p"], N, cfg.get("algorithm", "optimized"),
                      n_dup=cfg["n_dup"], ppn=cfg["ppn"],
                      iterations=ITERATIONS, verify=verify)
    else:
        res = run_ssc25d(cfg["q"], cfg["c"], N, n_dup=cfg["n_dup"],
                         ppn=cfg["ppn"], iterations=ITERATIONS, verify=verify)
    wall = time.perf_counter() - t0
    findings = 0 if res.world.verifier is None \
        else len(res.world.verifier.findings)
    return list(res.times), wall, findings


def run(quick: bool = False) -> ExperimentOutput:
    t = Table(
        ["Config", "Sim time/call [s]", "Sim identical", "Wall off [s]",
         "Wall on [s]", "Overhead", "Findings"],
        title="Ablation: CommVerifier overhead (simulated vs wall clock)",
    )
    values: dict = {}
    for name, cfg in _configs(quick).items():
        times_off, wall_off, _ = _run_one(cfg, verify=False)
        times_on, wall_on, findings = _run_one(cfg, verify=True)
        identical = times_off == times_on
        overhead = wall_on / wall_off if wall_off > 0 else float("inf")
        values[name] = {
            "times_off": times_off,
            "times_on": times_on,
            "sim_identical": identical,
            "wall_off": wall_off,
            "wall_on": wall_on,
            "wall_overhead": overhead,
            "findings": findings,
        }
        t.add_row([
            name, sum(times_on) / len(times_on), identical,
            wall_off, wall_on, overhead, findings,
        ])
    return ExperimentOutput(
        name="ablation-verify",
        tables=[t],
        values=values,
        notes=(
            "Verification is free in simulated time: per-call times match\n"
            "the unverified run exactly (the hooks never touch the event\n"
            "heap).  The wall-clock ratio is the only cost — bookkeeping\n"
            "plus call-site capture on the host — and buys sequence,\n"
            "leak, hazard, tag and deadlock checking on every run."
        ),
    )


def check(output: ExperimentOutput) -> None:
    for name, row in output.values.items():
        assert row["sim_identical"], (
            f"{name}: verifier changed simulated timings "
            f"{row['times_off']} -> {row['times_on']}"
        )
        assert row["findings"] == 0, f"{name}: verifier reported findings"
        assert row["wall_on"] > 0 and row["wall_off"] > 0
