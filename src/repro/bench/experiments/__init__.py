"""One module per paper table/figure (plus ablations); see the registry in
:mod:`repro.bench.harness` and the per-experiment index in ``DESIGN.md``."""
