"""Block conjugate gradient with merged/overlapped Gram reductions (§VI).

The paper's conclusions name *block* iterative solvers specifically: with
``s`` right-hand sides the per-iteration reductions are ``s x s`` Gram
matrices (``P^T A P``, ``R^T R``), and at scale their latency — not the
halo exchange or the stencil — dominates the iteration.

``classic`` — O'Leary (1980) block CG, two exposed global synchronization
points per iteration::

    Q     = A P
    ptq   = allreduce(P^T Q)                     <- sync point 1
    alpha = ptq^+ rtr
    X += P alpha ; R -= Q alpha
    rtr'  = allreduce(R^T R)                     <- sync point 2
    beta  = rtr^+ rtr' ;  P = R + P beta

``pipelined`` — the Ghysels-Vanroose-style rearrangement generalized to
blocks: maintain ``Q = A P`` by the recurrence ``Q' = W + Q beta`` with
``W = A R``, and obtain *every* Gram matrix of the next iteration from one
merged reduction of ``[R^T R, R^T W, R^T Q, P^T W]`` (posted nonblocking,
``4 s^2`` values)::

    ptq' = P'^T Q' = R^T W + (R^T Q) beta + beta^T (P^T W) + beta^T ptq beta

One global synchronization per iteration instead of two — the reductions
of the classic scheme are *merged and overlapped into a single pipelined
operation*, the same medicine the paper prescribes.  In exact arithmetic
the iterates are identical; the small solves use ``numpy.linalg.lstsq``
for robustness against block-CG's near-rank-deficiency as columns converge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense.distribution import block_range
from repro.mpi.world import RankEnv, World
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.solvers.cg import laplacian_1d_matvec_dense
from repro.util import check_positive

_TAG_DOWN = 44  # boundary row travelling toward lower ranks
_TAG_UP = 45    # boundary row travelling toward higher ranks


def _halo_rows(env, comm, me, p, v_loc, s, real):
    """Exchange boundary rows (length ``s``) of an ``(n_loc, s)`` block.

    Returns ``(left_row, right_row)`` — the lower neighbour's last row and
    the upper neighbour's first row (0 at domain boundaries / modeled mode).
    """
    reqs = []
    if me > 0:
        r = yield from comm.irecv(me - 1, tag=_TAG_UP)
        reqs.append(("left", r))
        data = np.array(v_loc[0]) if real else None
        q = yield from comm.isend(me - 1, data=data, nbytes=8 * s, tag=_TAG_DOWN)
        reqs.append((None, q))
    if me < p - 1:
        r = yield from comm.irecv(me + 1, tag=_TAG_DOWN)
        reqs.append(("right", r))
        data = np.array(v_loc[-1]) if real else None
        q = yield from comm.isend(me + 1, data=data, nbytes=8 * s, tag=_TAG_UP)
        reqs.append((None, q))
    left = right = 0.0
    for side, req in reqs:
        val = yield from req.wait()
        if side == "left" and val is not None:
            left = val
        elif side == "right" and val is not None:
            right = val
    return left, right


def _stencil_block(env, v_loc, left_row, right_row, n_loc, s, real):
    """Tridiagonal Laplacian applied to an ``(n_loc, s)`` block."""
    yield from env.compute_flops(3.0 * n_loc * s, label="bcg-stencil")
    if not real:
        return None
    w = 2.0 * v_loc
    w[:-1] -= v_loc[1:]
    w[1:] -= v_loc[:-1]
    w[0] -= left_row
    w[-1] -= right_row
    return w


def _solve(gram: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    return np.linalg.lstsq(gram, rhs, rcond=None)[0]


def _classic_program(env, comm_obj, n, s, b, tol, maxiter, real):
    p = comm_obj.size
    comm = env.view(comm_obj)
    me = comm.rank
    lo, hi = block_range(me, n, p)
    n_loc = hi - lo
    B = np.asarray(b[lo:hi], dtype=float) if real else None
    X = np.zeros((n_loc, s)) if real else None
    R = B.copy() if real else None
    P = R.copy() if real else None
    gram_nbytes = s * s * 8

    yield from env.compute_flops(2.0 * n_loc * s * s, label="bcg-gram")
    red = yield from comm.allreduce(
        (R.T @ R).ravel() if real else None, nbytes=gram_nbytes
    )
    rtr = red.reshape(s, s) if real else None
    rnorm0 = max(float(np.trace(rtr)), 1e-300) if real else 1.0

    iters = 0
    for _ in range(maxiter):
        iters += 1
        halo_p = yield from _halo_rows(env, comm, me, p, P, s, real)
        Q = yield from _stencil_block(env, P, halo_p[0], halo_p[1], n_loc, s, real)
        yield from env.compute_flops(2.0 * n_loc * s * s, label="bcg-gram")
        red = yield from comm.allreduce(
            (P.T @ Q).ravel() if real else None, nbytes=gram_nbytes
        )  # sync point 1
        yield from env.compute_flops(4.0 * n_loc * s * s, label="bcg-update")
        if real:
            ptq = red.reshape(s, s)
            alpha = _solve(ptq, rtr)
            X = X + P @ alpha
            R = R - Q @ alpha
        yield from env.compute_flops(2.0 * n_loc * s * s, label="bcg-gram")
        red = yield from comm.allreduce(
            (R.T @ R).ravel() if real else None, nbytes=gram_nbytes
        )  # sync point 2
        yield from env.compute_flops(2.0 * n_loc * s * s, label="bcg-update")
        if real:
            rtr_new = red.reshape(s, s)
            if np.sqrt(max(float(np.trace(rtr_new)), 0.0) / rnorm0) < tol:
                break
            beta = _solve(rtr, rtr_new)
            P = R + P @ beta
            rtr = rtr_new
    return X, iters


def _pipelined_program(env, comm_obj, n, s, b, tol, maxiter, real):
    p = comm_obj.size
    comm = env.view(comm_obj)
    me = comm.rank
    lo, hi = block_range(me, n, p)
    n_loc = hi - lo
    B = np.asarray(b[lo:hi], dtype=float) if real else None
    X = np.zeros((n_loc, s)) if real else None
    R = B.copy() if real else None
    P = R.copy() if real else None
    merged_nbytes = 4 * s * s * 8

    # Initial matvec Q = A P and initial Gram pair (one reduction).
    halo_p = yield from _halo_rows(env, comm, me, p, P, s, real)
    Q = yield from _stencil_block(env, P, halo_p[0], halo_p[1], n_loc, s, real)
    yield from env.compute_flops(4.0 * n_loc * s * s, label="bcg-gram")
    if real:
        packed = np.concatenate([(R.T @ R).ravel(), (P.T @ Q).ravel()])
    else:
        packed = None
    red = yield from comm.allreduce(packed, nbytes=2 * s * s * 8)
    if real:
        rtr = red[: s * s].reshape(s, s)
        ptq = red[s * s:].reshape(s, s)
        rnorm0 = max(float(np.trace(rtr)), 1e-300)

    iters = 0
    for _ in range(maxiter):
        iters += 1
        yield from env.compute_flops(4.0 * n_loc * s * s, label="bcg-update")
        if real:
            alpha = _solve(ptq, rtr)
            X = X + P @ alpha
            R = R - Q @ alpha
        # Matvec of the residual (the halo is tiny; the stencil local).
        halo_r = yield from _halo_rows(env, comm, me, p, R, s, real)
        W = yield from _stencil_block(env, R, halo_r[0], halo_r[1], n_loc, s, real)
        # The single merged Gram reduction of the iteration.
        yield from env.compute_flops(8.0 * n_loc * s * s, label="bcg-gram")
        if real:
            packed = np.concatenate([
                (R.T @ R).ravel(), (R.T @ W).ravel(),
                (R.T @ Q).ravel(), (P.T @ W).ravel(),
            ])
        else:
            packed = None
        req = yield from comm.iallreduce(packed, nbytes=merged_nbytes)
        red = yield from req.wait()
        yield from env.compute_flops(4.0 * n_loc * s * s, label="bcg-update")
        if real:
            ss = s * s
            rtr_new = red[:ss].reshape(s, s)
            rtw = red[ss:2 * ss].reshape(s, s)
            rtq = red[2 * ss:3 * ss].reshape(s, s)
            ptw = red[3 * ss:].reshape(s, s)
            if np.sqrt(max(float(np.trace(rtr_new)), 0.0) / rnorm0) < tol:
                break
            beta = _solve(rtr, rtr_new)
            # Next search block and its A-image, all local from here.
            P = R + P @ beta
            Q = W + Q @ beta
            ptq = rtw + rtq @ beta + beta.T @ ptw + beta.T @ ptq @ beta
            rtr = rtr_new
    return X, iters


@dataclass
class BlockCGResult:
    """Outcome of :func:`run_block_cg`."""

    x: np.ndarray | None          # (n, s) solution block (real mode)
    iterations: int
    elapsed: float
    residual: float | None        # max relative column residual
    world: World

    @property
    def time_per_iteration(self) -> float:
        return self.elapsed / max(self.iterations, 1)


def run_block_cg(
    num_ranks: int,
    n: int,
    s: int = 4,
    variant: str = "pipelined",
    b: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 2000,
    ppn: int = 1,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
) -> BlockCGResult:
    """Solve ``A X = B`` (1D Laplacian, ``s`` right-hand sides) distributed.

    ``variant`` is ``"classic"`` (two blocking Gram allreduces per
    iteration) or ``"pipelined"`` (one merged nonblocking Gram reduction —
    identical iterates in exact arithmetic).  Real mode: pass ``b`` of
    shape ``(n, s)``.
    """
    check_positive("num_ranks", num_ranks)
    check_positive("n", n)
    check_positive("s", s)
    if variant not in ("classic", "pipelined"):
        raise ValueError(
            f"variant must be 'classic' or 'pipelined', got {variant!r}"
        )
    real = b is not None
    if real and b.shape != (n, s):
        raise ValueError(f"b has shape {b.shape}, expected {(n, s)}")
    world = World(block_placement(num_ranks, max(ppn, 1)), params=params,
                  machine=machine)
    comm_obj = world.comm_world
    prog = _classic_program if variant == "classic" else _pipelined_program

    def program(env: RankEnv):
        out = yield from prog(env, comm_obj, n, s, b, tol, maxiter, real)
        return out

    world.spawn_all(program)
    elapsed = world.run()
    outs = world.results()
    iters = max(o[1] for o in outs)
    x = residual = None
    if real:
        x = np.vstack([o[0] for o in outs])
        resid = b - np.column_stack(
            [laplacian_1d_matvec_dense(x[:, c]) for c in range(s)]
        )
        residual = float(
            max(
                np.linalg.norm(resid[:, c]) / max(np.linalg.norm(b[:, c]), 1e-300)
                for c in range(s)
            )
        )
    return BlockCGResult(x=x, iterations=iters, elapsed=elapsed,
                         residual=residual, world=world)
