"""Iterative solvers with overlapped reductions — the paper's §VI outlook.

The conclusions of the paper name "block iterative linear solvers, where
reductions (vector norms and dot products) involving large numbers of nodes
are the bottleneck" as the next target for communication-communication
overlap.  This package implements that study on the simulated substrate:

* :func:`repro.solvers.cg.run_cg` — distributed conjugate gradient on a 1D
  Laplacian with halo exchanges, in two variants:

  - ``classic``: textbook CG with two blocking scalar allreduces per
    iteration (two global synchronization points);
  - ``pipelined``: the Ghysels-Vanroose rearrangement with a single
    *nonblocking* merged allreduce per iteration, overlapped with the halo
    exchange and the local stencil work — communications overlapping other
    communications, exactly the paper's idea applied to a solver.

* :func:`repro.solvers.block_cg.run_block_cg` — the *block* variant the
  paper's wording singles out (``s`` right-hand sides, ``s x s`` Gram
  reductions): O'Leary block CG classic vs a pipelined rearrangement whose
  four Gram products ride one merged nonblocking reduction per iteration.
"""

from repro.solvers.cg import run_cg, CGResult, laplacian_1d_matvec_dense
from repro.solvers.block_cg import run_block_cg, BlockCGResult

__all__ = ["run_cg", "CGResult", "laplacian_1d_matvec_dense",
           "run_block_cg", "BlockCGResult"]
