"""Distributed conjugate gradient with overlapped reductions (paper §VI).

The system is the 1D Dirichlet Laplacian ``A = tridiag(-1, 2, -1)`` of
dimension ``n``, row-partitioned across ``P`` ranks.  The local stencil
application needs one halo element from each neighbour (point-to-point), and
every iteration needs global dot products (scalar allreduces) — the
"reductions involving large numbers of nodes" the paper's conclusions call
the bottleneck of iterative solvers.

Two variants:

``classic``
    Textbook CG.  Two *blocking* allreduces per iteration — ``(p, A p)``
    and ``(r, r)`` — each a full synchronization of all ranks.

``pipelined``
    The Ghysels-Vanroose rearrangement: both dot products are merged into a
    single 2-scalar reduction, issued as a *nonblocking* ``iallreduce`` and
    overlapped with the halo exchange and local stencil of ``q = A w`` —
    the reduction's synchronization hides behind other communication and
    compute, at the cost of three extra AXPY recurrences per iteration.

In exact arithmetic both produce the same iterates; the tests verify both
against ``numpy.linalg.solve`` and the benchmark compares their speed at
scale, where the latency of blocking reductions dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense.distribution import block_range
from repro.mpi.world import RankEnv, World
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.util import check_positive

_TAG_LO = 41  # halo element travelling toward lower ranks
_TAG_HI = 42  # halo element travelling toward higher ranks


def laplacian_1d_matvec_dense(v: np.ndarray) -> np.ndarray:
    """Reference ``A v`` for the 1D Dirichlet Laplacian (numpy, sequential)."""
    w = 2.0 * v
    w[:-1] -= v[1:]
    w[1:] -= v[:-1]
    return w


def _halo_exchange(env, comm, me, p, v_loc, real):
    """Exchange boundary elements with both neighbours; returns (left, right).

    ``left`` is my lower neighbour's last element, ``right`` the upper
    neighbour's first (0.0 at the domain boundary / in modeled mode).
    """
    reqs = []
    if me > 0:
        r = yield from comm.irecv(me - 1, tag=_TAG_HI)
        reqs.append(("left", r))
        data = float(v_loc[0]) if real else None
        s = yield from comm.isend(me - 1, data=data, nbytes=8, tag=_TAG_LO)
        reqs.append((None, s))
    if me < p - 1:
        r = yield from comm.irecv(me + 1, tag=_TAG_LO)
        reqs.append(("right", r))
        data = float(v_loc[-1]) if real else None
        s = yield from comm.isend(me + 1, data=data, nbytes=8, tag=_TAG_HI)
        reqs.append((None, s))
    left = right = 0.0
    for side, req in reqs:
        val = yield from req.wait()
        if side == "left" and val is not None:
            left = val
        elif side == "right" and val is not None:
            right = val
    return left, right


def _local_stencil(env, v_loc, left, right, n_loc, real):
    """Apply the tridiagonal stencil locally (3 flops/row charged)."""
    yield from env.compute_flops(3.0 * n_loc, label="cg-stencil")
    if not real:
        return None
    w = 2.0 * v_loc
    w[:-1] -= v_loc[1:]
    w[1:] -= v_loc[:-1]
    w[0] -= left
    w[-1] -= right
    return w


def _classic_cg_program(env, comm_obj, n, b, tol, maxiter, real):
    p = comm_obj.size
    comm = env.view(comm_obj)
    me = comm.rank
    lo, hi = block_range(me, n, p)
    n_loc = hi - lo
    b_loc = np.asarray(b[lo:hi], dtype=float) if real else None
    x = np.zeros(n_loc) if real else None
    r = b_loc.copy() if real else None
    pvec = r.copy() if real else None

    yield from env.compute_flops(2.0 * n_loc, label="cg-dot")
    rs_loc = float(r @ r) if real else 0.0
    rsold = yield from comm.allreduce(np.array([rs_loc]))
    rsold = float(rsold[0]) if real else 1.0
    rs0 = max(rsold, 1e-300)

    iters = 0
    for _ in range(maxiter):
        iters += 1
        left, right = yield from _halo_exchange(env, comm, me, p, pvec, real)
        ap = yield from _local_stencil(env, pvec, left, right, n_loc, real)
        yield from env.compute_flops(2.0 * n_loc, label="cg-dot")
        pap_loc = float(pvec @ ap) if real else 0.0
        pap = yield from comm.allreduce(np.array([pap_loc]))  # sync point 1
        yield from env.compute_flops(4.0 * n_loc, label="cg-axpy")
        if real:
            alpha = rsold / float(pap[0])
            x += alpha * pvec
            r -= alpha * ap
        yield from env.compute_flops(2.0 * n_loc, label="cg-dot")
        rs_loc = float(r @ r) if real else 0.0
        rsnew = yield from comm.allreduce(np.array([rs_loc]))  # sync point 2
        if real:
            rsnew = float(rsnew[0])
            if np.sqrt(rsnew / rs0) < tol:
                break
            pvec = r + (rsnew / rsold) * pvec
            rsold = rsnew
        yield from env.compute_flops(2.0 * n_loc, label="cg-axpy")
    return x, iters


def _pipelined_cg_program(env, comm_obj, n, b, tol, maxiter, real):
    p = comm_obj.size
    comm = env.view(comm_obj)
    me = comm.rank
    lo, hi = block_range(me, n, p)
    n_loc = hi - lo
    b_loc = np.asarray(b[lo:hi], dtype=float) if real else None
    x = np.zeros(n_loc) if real else None
    r = b_loc.copy() if real else None  # x0 = 0 -> r0 = b
    # w = A r
    left, right = yield from _halo_exchange(env, comm, me, p, r, real)
    w = yield from _local_stencil(env, r, left, right, n_loc, real)
    z = s = pvec = None
    gam_old = alpha_old = None
    rs0 = None
    iters = 0
    for _ in range(maxiter):
        iters += 1
        # Merged 2-scalar reduction, posted nonblocking...
        yield from env.compute_flops(4.0 * n_loc, label="cg-dot")
        if real:
            pair = np.array([float(r @ r), float(w @ r)])
        else:
            pair = None
        req = yield from comm.iallreduce(pair, nbytes=16)
        # ...overlapped with the halo exchange + stencil of q = A w.
        left, right = yield from _halo_exchange(env, comm, me, p, w, real)
        q = yield from _local_stencil(env, w, left, right, n_loc, real)
        red = yield from req.wait()
        yield from env.compute_flops(12.0 * n_loc, label="cg-axpy")
        if real:
            gam, delta = float(red[0]), float(red[1])
            if rs0 is None:
                rs0 = max(gam, 1e-300)
            if np.sqrt(gam / rs0) < tol:
                break
            if gam_old is None:
                beta = 0.0
                alpha = gam / delta
            else:
                beta = gam / gam_old
                alpha = gam / (delta - beta * gam / alpha_old)
            z = q if z is None or beta == 0.0 else q + beta * z
            s = w if s is None or beta == 0.0 else w + beta * s
            pvec = r if pvec is None or beta == 0.0 else r + beta * pvec
            x = x + alpha * pvec
            r = r - alpha * s
            w = w - alpha * z
            gam_old, alpha_old = gam, alpha
    return x, iters


@dataclass
class CGResult:
    """Outcome of :func:`run_cg`."""

    x: np.ndarray | None          # assembled solution (real mode)
    iterations: int
    elapsed: float                # virtual seconds
    residual: float | None        # ||b - A x|| / ||b|| (real mode)
    world: World

    @property
    def time_per_iteration(self) -> float:
        return self.elapsed / max(self.iterations, 1)


def run_cg(
    num_ranks: int,
    n: int,
    variant: str = "pipelined",
    b: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 2000,
    ppn: int = 1,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
) -> CGResult:
    """Solve the 1D Laplacian system distributed over ``num_ranks`` ranks.

    Real mode (``b`` given, length ``n``): iterate to relative residual
    ``tol`` and return the assembled solution.  Modeled mode: run exactly
    ``maxiter`` iterations charging communication/computation costs only.
    """
    check_positive("num_ranks", num_ranks)
    check_positive("n", n)
    if variant not in ("classic", "pipelined"):
        raise ValueError(f"variant must be 'classic' or 'pipelined', got {variant!r}")
    real = b is not None
    if real and len(b) != n:
        raise ValueError(f"b has length {len(b)}, expected {n}")
    world = World(block_placement(num_ranks, max(ppn, 1)), params=params,
                  machine=machine)
    comm_obj = world.comm_world
    prog_fn = _classic_cg_program if variant == "classic" else _pipelined_cg_program

    def program(env: RankEnv):
        out = yield from prog_fn(env, comm_obj, n, b, tol, maxiter, real)
        return out

    world.spawn_all(program)
    elapsed = world.run()
    outs = world.results()
    iters = max(o[1] for o in outs)
    x = residual = None
    if real:
        x = np.concatenate([o[0] for o in outs])
        residual = float(
            np.linalg.norm(b - laplacian_1d_matvec_dense(x)) / np.linalg.norm(b)
        )
    return CGResult(x=x, iterations=iters, elapsed=elapsed, residual=residual,
                    world=world)
