"""Argument validation helpers and small integer math used across the library."""

from __future__ import annotations

import math
from typing import Any


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value >= 0``; return the value."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Raise ``ValueError`` unless ``lo <= value <= hi``; return the value."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> Any:
    """Raise ``TypeError`` unless ``isinstance(value, types)``; return the value."""
    if not isinstance(value, types):
        raise TypeError(f"{name} must be {types}, got {type(value).__name__}")
    return value


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def int_sqrt(n: int) -> int:
    """Exact integer square root; raises if ``n`` is not a perfect square."""
    if n < 0:
        raise ValueError(f"cannot take sqrt of negative {n}")
    r = math.isqrt(n)
    if r * r != n:
        raise ValueError(f"{n} is not a perfect square")
    return r


def int_cbrt(n: int) -> int:
    """Exact integer cube root; raises if ``n`` is not a perfect cube."""
    if n < 0:
        raise ValueError(f"cannot take cbrt of negative {n}")
    r = round(n ** (1.0 / 3.0))
    for cand in (r - 1, r, r + 1):
        if cand >= 0 and cand**3 == n:
            return cand
    raise ValueError(f"{n} is not a perfect cube")
