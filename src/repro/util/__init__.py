"""Small shared utilities: units, formatting, tables, argument validation.

These helpers are intentionally dependency-free (numpy only) so that every
layer of the library — the discrete-event simulator, the network model, the
MPI substrate and the benchmarks — can use them without import cycles.
"""

from repro.util.units import (
    KB,
    MB,
    GB,
    KIB,
    MIB,
    GIB,
    parse_size,
    format_size,
    format_time,
    format_bandwidth,
)
from repro.util.tables import Table, format_series
from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_type,
    is_power_of_two,
    int_cbrt,
    int_sqrt,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "parse_size",
    "format_size",
    "format_time",
    "format_bandwidth",
    "Table",
    "format_series",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_type",
    "is_power_of_two",
    "int_cbrt",
    "int_sqrt",
]
