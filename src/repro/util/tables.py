"""Plain-text table rendering for the benchmark harness.

The benchmark experiments print rows in the same layout as the paper's
tables; this module provides the shared monospace rendering plus CSV export
so results can be diffed across runs.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Sequence
from typing import Any


class Table:
    """A simple column-aligned text table.

    >>> t = Table(["System", "TFlops"], title="Demo")
    >>> t.add_row(["1hsg_45", 12.36])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], *, title: str | None = None):
        if not columns:
            raise ValueError("table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        """Append a row; floats are rendered with 4 significant digits."""
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(v: Any) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000 or abs(v) < 1e-3:
                return f"{v:.3e}"
            return f"{v:.4g}"
        return str(v)

    def render(self) -> str:
        """Render to an aligned monospace string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        out = io.StringIO()
        if self.title:
            out.write(self.title + "\n")
        sep = "-+-".join("-" * w for w in widths)
        out.write(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)) + "\n")
        out.write(sep + "\n")
        for row in self.rows:
            out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Render as CSV (comma-separated, no quoting of numeric cells)."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(cell.replace(",", ";") for cell in row))
        return "\n".join(lines) + "\n"

    def column(self, name: str) -> list[str]:
        """Return the rendered cells of one column by header name."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]


def format_series(xs: Sequence[Any], ys: Sequence[Any], *, xlabel: str, ylabel: str) -> str:
    """Render paired series (a 'figure' in text form) as a two-column table."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    t = Table([xlabel, ylabel])
    for x, y in zip(xs, ys):
        t.add_row([x, y])
    return t.render()
