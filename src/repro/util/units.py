"""Byte-size and time units plus human-readable formatting.

The paper mixes decimal units for bandwidth ("12000 MB/s") with binary units
for message sizes ("16 KB", "27.89 MB" = 1912^2 * 8 bytes).  We follow the
same convention: *sizes* are plain byte counts, *bandwidths* are reported in
decimal MB/s (1 MB = 1e6 bytes) exactly as in the paper's figures, and the
binary constants are available for configuring workloads.
"""

from __future__ import annotations

import re

# Decimal units (used for bandwidth, matching the paper's MB/s axis).
KB = 10**3
MB = 10**6
GB = 10**9

# Binary units (used for message-size sweeps, matching the paper's x-axes).
KIB = 2**10
MIB = 2**20
GIB = 2**30

_SIZE_RE = re.compile(
    r"^\s*([0-9]*\.?[0-9]+)\s*(b|kb|kib|mb|mib|gb|gib)?\s*$", re.IGNORECASE
)

_SIZE_FACTORS = {
    None: 1,
    "b": 1,
    "kb": KB,
    "kib": KIB,
    "mb": MB,
    "mib": MIB,
    "gb": GB,
    "gib": GIB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human size string like ``"16 KiB"`` or ``"8MB"`` into bytes.

    Integers and floats pass through (rounded to an int byte count).

    >>> parse_size("16 KiB")
    16384
    >>> parse_size("2MB")
    2000000
    >>> parse_size(4096)
    4096
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be nonnegative, got {text!r}")
        return int(round(text))
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"unparseable size: {text!r}")
    value = float(m.group(1))
    unit = m.group(2).lower() if m.group(2) else None
    return int(round(value * _SIZE_FACTORS[unit]))


def format_size(nbytes: float, *, binary: bool = True) -> str:
    """Render a byte count for tables, e.g. ``format_size(8*MIB) == '8.0 MiB'``."""
    if nbytes < 0:
        raise ValueError(f"size must be nonnegative, got {nbytes!r}")
    if binary:
        steps = [("GiB", GIB), ("MiB", MIB), ("KiB", KIB)]
    else:
        steps = [("GB", GB), ("MB", MB), ("KB", KB)]
    for name, factor in steps:
        if nbytes >= factor:
            return f"{nbytes / factor:.1f} {name}"
    return f"{int(nbytes)} B"


def format_time(seconds: float) -> str:
    """Render a duration with an appropriate unit (s / ms / us / ns)."""
    a = abs(seconds)
    if a >= 1.0 or a == 0.0:
        return f"{seconds:.3f} s"
    if a >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if a >= 1e-6:
        return f"{seconds * 1e6:.1f} us"
    return f"{seconds * 1e9:.0f} ns"


def format_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth in the paper's decimal MB/s convention."""
    if bytes_per_second >= GB:
        return f"{bytes_per_second / GB:.2f} GB/s"
    return f"{bytes_per_second / MB:.1f} MB/s"
