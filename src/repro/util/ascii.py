"""ASCII chart rendering for examples and the benchmark CLI.

The paper's figures are line charts; in a terminal we render horizontal bar
charts and simple log-x series, which is all the reproduction targets need
(relative ordering and crossovers).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.util.validation import check_positive


def hbar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 48,
    max_value: float | None = None,
    fmt: str = "{:.0f}",
    fill: str = "#",
) -> str:
    """Horizontal bar chart: one line per (label, value).

    ``max_value`` fixes the scale (default: max of the data) so multiple
    charts can share an axis.  Values render right of the bars.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values differ in length")
    if not labels:
        return "(empty chart)\n"
    check_positive("width", width)
    scale = max_value if max_value is not None else max(values)
    if scale <= 0:
        scale = 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        if value < 0:
            raise ValueError(f"negative value {value} not chartable")
        n = min(width, int(round(width * value / scale)))
        bar = fill * max(n, 1 if value > 0 else 0)
        lines.append(f"{str(label).rjust(label_w)} | {bar.ljust(width)} {fmt.format(value)}")
    return "\n".join(lines) + "\n"


def series_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 48,
    x_fmt=str,
    fmt: str = "{:.0f}",
) -> str:
    """Grouped bars: for each x, one bar per named series (shared scale).

    Renders the multi-line structure of the paper's Fig. 3/5 in text form.
    """
    if not series:
        return "(empty chart)\n"
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length != xs length")
    scale = max(max(ys) for ys in series.values())
    name_w = max(len(n) for n in series)
    out = []
    for i, x in enumerate(xs):
        out.append(f"{x_fmt(x)}:")
        for name, ys in series.items():
            n = min(width, int(round(width * ys[i] / scale))) if scale > 0 else 0
            out.append(
                f"  {name.rjust(name_w)} | {('#' * n).ljust(width)} {fmt.format(ys[i])}"
            )
    return "\n".join(out) + "\n"
