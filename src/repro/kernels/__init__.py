"""The paper's kernels: SymmSquareCube (Algs. 3-5) and its 2.5D variant (Alg. 6).

``SymmSquareCube`` computes ``D^2`` and ``D^3`` of a symmetric matrix ``D``
distributed in ``p x p`` blocks on the front face of a ``p x p x p`` process
mesh — the communication-dominated core of density-matrix purification.

* :func:`ssc_original_program` — Algorithm 3, the GTFock release version
  (separate D^2 transpose step);
* :func:`ssc_baseline_program` — Algorithm 4, transpose eliminated and the
  point-to-point sends moved last;
* :func:`ssc_optimized_program` — Algorithm 5, the nonblocking-overlap
  version: every block split into ``N_DUP`` parts, each part on its own
  duplicated communicator, with the grid-broadcast -> row-broadcast and
  reduce -> broadcast pipelines of the paper;
* :func:`ssc25d_program` — Algorithm 6, SymmSquareCube via 2.5D
  multiplication with each collective overlapped with itself.

:func:`run_ssc` is the convenience runner used by tests, examples and the
benchmark harness.
"""

from repro.kernels.symmsquarecube import (
    ssc_original_program,
    ssc_baseline_program,
    ssc_optimized_program,
    run_ssc,
    ssc_flops,
    SSCResult,
)
from repro.kernels.ssc25d import ssc25d_program, run_ssc25d

__all__ = [
    "ssc_original_program",
    "ssc_baseline_program",
    "ssc_optimized_program",
    "run_ssc",
    "ssc_flops",
    "SSCResult",
    "ssc25d_program",
    "run_ssc25d",
]
