"""SymmSquareCube via 2.5D matrix multiplication — the paper's Algorithm 6.

On a ``q x q x c`` mesh (``P = q^2 c`` processes, replication factor ``c``):

1. ``(i,j,0)`` grid-broadcasts ``D[i,j]`` to all layers (A and B share it).
2. ``s = q/c`` Cannon steps per layer at inner offset ``k*s`` accumulate the
   layer's share of ``D^2``.
3. ``MPI_Allreduce`` over the grid dimension sums the layers; every layer
   now holds ``D2[i,j]``, the B blocks of the second multiplication.
4. A second alignment + ``s`` Cannon steps accumulate the layer's share of
   ``D^3``.
5. ``MPI_Reduce`` over the grid dimension lands ``D3[i,j]`` on the front.

Nonblocking overlap (``n_dup > 1``) splits each of the three collectives
into ``N_DUP`` parts on duplicated grid communicators — each collective is
overlapped *with itself*; as the paper notes, this algorithm offers no
cross-operation pipelining like Algorithm 5, so the gains are smaller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense.cannon import cannon_program
from repro.dense.distribution import block_dim, block_range, part_slices
from repro.dense.mesh import Mesh3D
from repro.mpi.requests import waitall
from repro.mpi.world import RankEnv, World
from repro.kernels.symmsquarecube import ssc_flops
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.sim.engine import DeadlineExceeded
from repro.tune.validity import validate_ssc25d_config
from repro.util import check_positive


def _overlapped_grd_bcast(env, mesh, i, j, n_dup, buf, total, root):
    """Ibcast each of the buffer's N_DUP parts on its own grid-comm duplicate."""
    reqs = []
    for c, (lo, hi) in enumerate(part_slices(total, n_dup)):
        gv = env.view(mesh.grd_comm(i, j, c))
        part = None if buf is None else buf[lo:hi]
        req = yield from gv.ibcast(part, nbytes=(hi - lo) * 8, root=root)
        reqs.append(req)
    yield from waitall(reqs)
    return buf


def _overlapped_grd_allreduce(env, mesh, i, j, n_dup, buf, total):
    """Iallreduce the buffer's parts on duplicated grid comms; returns result."""
    reqs = []
    parts = part_slices(total, n_dup)
    for c, (lo, hi) in enumerate(parts):
        gv = env.view(mesh.grd_comm(i, j, c))
        part = None if buf is None else buf[lo:hi]
        req = yield from gv.iallreduce(part, nbytes=(hi - lo) * 8)
        reqs.append(req)
    results = yield from waitall(reqs)
    if buf is None:
        return None
    out = np.empty(total)
    for (lo, hi), part in zip(parts, results):
        out[lo:hi] = part
    return out


def _overlapped_grd_reduce(env, mesh, i, j, n_dup, buf, total, root):
    """Ireduce the buffer's parts on duplicated grid comms; returns root result."""
    reqs = []
    parts = part_slices(total, n_dup)
    for c, (lo, hi) in enumerate(parts):
        gv = env.view(mesh.grd_comm(i, j, c))
        part = None if buf is None else buf[lo:hi]
        req = yield from gv.ireduce(part, nbytes=(hi - lo) * 8, root=root)
        reqs.append(req)
    results = yield from waitall(reqs)
    me_local = mesh.grd_comm(i, j).local(env.rank)
    if buf is None or me_local != root:
        return None
    out = np.empty(total)
    for (lo, hi), part in zip(parts, results):
        out[lo:hi] = part
    return out


def ssc25d_program(env: RankEnv, mesh: Mesh3D, n: int,
                   d_blk: np.ndarray | None, real: bool, n_dup: int = 1):
    """One SymmSquareCube call via 2.5D multiplication (Algorithm 6).

    Front-face ranks return ``(d2_block, d3_block)``; others ``None``.
    """
    q, c = mesh.pi, mesh.pk
    if q % c != 0:
        raise ValueError(f"2.5D requires c | q, got q={q}, c={c}")
    check_positive("n_dup", n_dup)
    s = q // c
    i, j, k = mesh.coords_of(env.rank)
    bi, bj = block_dim(i, n, q), block_dim(j, n, q)

    # Step 1: replicate D[i,j] to every layer (A and B alias it).
    if k == 0 and real:
        d_home = np.ascontiguousarray(d_blk).ravel().copy()
    else:
        d_home = np.empty(bi * bj) if real else None
    d_home = yield from _overlapped_grd_bcast(
        env, mesh, i, j, n_dup, d_home, bi * bj, root=0
    )
    d_mat = d_home.reshape(bi, bj) if real else None

    # Step 2: this layer's Cannon share of D^2 = D * D.
    c1 = yield from cannon_program(
        env, mesh, k, i, j, n, steps=s, offset=k * s,
        a_blk=d_mat, b_blk=d_mat, c_acc=None,
    )

    # Step 3: allreduce across layers -> D2[i,j] everywhere.
    c1_buf = c1.ravel() if real else None
    d2_buf = yield from _overlapped_grd_allreduce(
        env, mesh, i, j, n_dup, c1_buf, bi * bj
    )
    d2_mat = d2_buf.reshape(bi, bj) if real else None

    # Step 4: second alignment + Cannon share of D^3 = D * D2.
    c2 = yield from cannon_program(
        env, mesh, k, i, j, n, steps=s, offset=k * s,
        a_blk=d_mat, b_blk=d2_mat, c_acc=None,
    )

    # Step 5: reduce across layers to the front face -> D3[i,j].
    c2_buf = c2.ravel() if real else None
    d3_buf = yield from _overlapped_grd_reduce(
        env, mesh, i, j, n_dup, c2_buf, bi * bj, root=0
    )

    if k != 0:
        return None
    if not real:
        return (None, None)
    return (d2_mat.copy(), d3_buf.reshape(bi, bj))


def ssc25d_plan_population(q: int, c: int, n: int,
                           n_dup: int = 1) -> set[tuple]:
    """Every collective op shape Algorithm 6 can post, as
    ``(verb, comm_size, root, n_elems, itemsize)`` tuples.

    The 2.5D kernel's three collectives (replicating broadcast, inter-layer
    allreduce, front-face reduce) all run over the grid dimension — ``c``
    ranks, root 0 — moving ``n_dup`` contiguous parts of the ``bi*bj``
    blocks of the ``q``-way partition; the per-iteration barrier spans the
    full ``q^2 c`` mesh.  The Cannon shift itineraries are point-to-point
    and are covered separately by
    :func:`repro.analysis.schedule.verify_cannon_shift_plans`.
    """
    dims = sorted({block_dim(x, n, q) for x in range(q)})
    blocks = sorted({a * b for a in dims for b in dims})
    sizes = sorted({hi - lo for blk in blocks
                    for lo, hi in part_slices(blk, n_dup)})
    pop: set[tuple] = {("barrier", q * q * c, 0, 0, 1)}
    for sz in sizes:
        pop.add(("bcast", c, 0, sz, 8))
        pop.add(("allreduce", c, 0, sz, 8))
        pop.add(("reduce", c, 0, sz, 8))
    return pop


@dataclass
class SSC25DResult:
    """Outcome of :func:`run_ssc25d`."""

    d2: np.ndarray | None
    d3: np.ndarray | None
    times: list[float]
    n: int
    world: World
    mesh: Mesh3D
    tuning: "TuningRecord | None" = None  # decision trace when run with tune=  # noqa: F821
    recording: "GraphRecorder | None" = None  # event graph when run with record=True  # noqa: F821

    @property
    def elapsed(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def tflops(self) -> float:
        return ssc_flops(self.n) / self.elapsed / 1e12


def run_ssc25d(
    q: int,
    c: int,
    n: int,
    d: np.ndarray | None = None,
    *,
    n_dup: int = 1,
    ppn: int = 1,
    iterations: int = 1,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
    verify: bool = False,
    verify_plans: bool = False,
    tune=None,
    tune_db=None,
    deadline: float | None = None,
    record: bool = False,
    solver: str = "scalar",
) -> SSC25DResult:
    """Run Algorithm 6 on a fresh ``q x q x c`` world (cf. :func:`run_ssc`).

    ``tune`` / ``tune_db`` / ``deadline`` mirror :func:`repro.kernels.run_ssc`
    (``tune`` accepts a policy string or a ``Tuner``/``TuningService``
    object): the tuner may move to any ``q' x q' x c'`` factorization with
    the same rank count and picks ``N_DUP``, PPN and the collective
    schedule; the record lands on ``SSC25DResult.tuning``.
    """
    check_positive("iterations", iterations)
    validate_ssc25d_config(q, c, n, n_dup, ppn=max(ppn, 1))
    if tune is not None:
        from repro.tune.candidates import apply_collective
        from repro.tune.tuner import Tuner

        tuner = (Tuner(db=tune_db, policy=tune) if isinstance(tune, str)
                 else tune)
        decision = tuner.autotune_ssc25d(q, c, n, ppn=ppn, params=params,
                                         machine=machine)
        best = decision.best
        bq, _bq, bc = best.mesh
        eff = apply_collective(params or NetworkParams(), best.collective)
        result = run_ssc25d(
            bq, bc, n, d, n_dup=best.n_dup, ppn=best.ppn,
            iterations=iterations, params=eff, machine=machine, verify=verify,
            verify_plans=verify_plans, deadline=deadline, record=record,
            solver=solver,
        )
        result.tuning = decision
        return result
    real = d is not None
    if real and not np.allclose(d, d.T):
        raise ValueError("SymmSquareCube requires a symmetric input matrix")
    world = World(block_placement(q * q * c, max(ppn, 1)), params=params,
                  machine=machine, verify=verify, verify_plans=verify_plans,
                  record=record, solver=solver)
    mesh = Mesh3D(world, q, q, c, n_dup=max(n_dup, 1))

    def program(env: RankEnv):
        i, j, k = mesh.coords_of(env.rank)
        d_blk = None
        if real and k == 0:
            rlo, rhi = block_range(i, n, q)
            clo, chi = block_range(j, n, q)
            d_blk = np.ascontiguousarray(d[rlo:rhi, clo:chi])
        gv = env.view(mesh.global_comm)
        times = []
        result = None
        for it in range(iterations):
            yield from gv.barrier()
            t0 = env.now
            env.mark("t0", it)
            result = yield from ssc25d_program(env, mesh, n, d_blk, real, n_dup)
            env.mark("t1", it)
            times.append(env.now - t0)
        return (times, result)

    world.spawn_all(program, ranks=range(q * q * c))
    world.run(until=deadline)
    if deadline is not None and world.unfinished():
        raise DeadlineExceeded(
            f"run_ssc25d(q={q}, c={c}, n={n}) exceeded deadline "
            f"{deadline:.6g}s: {len(world.unfinished())} rank program(s) unfinished"
        )
    outs = world.results()
    iter_times = [
        max(outs[r][0][it] for r in range(q * q * c)) for it in range(iterations)
    ]
    d2 = d3 = None
    if real:
        d2 = np.zeros((n, n))
        d3 = np.zeros((n, n))
        for rank in range(q * q * c):
            i, j, k = mesh.coords_of(rank)
            if k != 0:
                continue
            blk2, blk3 = outs[rank][1]
            rlo, rhi = block_range(i, n, q)
            clo, chi = block_range(j, n, q)
            d2[rlo:rhi, clo:chi] = blk2
            d3[rlo:rhi, clo:chi] = blk3
    if world.recorder is not None:
        world.recorder.meta.update(kernel="ssc25d", ranks=q * q * c,
                                   iterations=iterations)
    return SSC25DResult(d2=d2, d3=d3, times=iter_times, n=n, world=world,
                        mesh=mesh, recording=world.recorder)
