"""SymmSquareCube on the 3D mesh — the paper's Algorithms 3, 4 and 5.

Mesh conventions (see :class:`repro.dense.mesh.Mesh3D`): process ``(i,j,k)``;
``row_comm(j,k)`` spans ``P[:,j,k]`` (local rank = ``i``), ``col_comm(i,k)``
spans ``P[i,:,k]`` (local rank = ``j``), ``grd_comm(i,j)`` spans ``P[i,j,:]``
(local rank = ``k``).  ``D[i,j]`` starts on the front face ``(i,j,0)``; the
results ``D^2`` and ``D^3`` are returned distributed the same way.

Data flow (Algorithm 4, the baseline):

1. ``(i,j,0)`` grid-broadcasts ``D[i,j]`` as ``A[i,j]`` to ``(i,j,:)``.
2. ``(k,j,k)`` row-broadcasts its ``D[k,j]``; receivers transpose locally to
   get ``B[j,k] = D[k,j]^T`` — the one place the symmetry of D is used.
3. ``C[i,j,k] = A[i,j] @ B[j,k]``.
4. Column-reduce ``C[i,:,k]`` to ``D2[i,k]`` on ``(i,i,k)``.
5. ``(j,j,k)`` row-broadcasts ``D2[j,k]`` as the new ``B[j,k]``.
6. Second local multiply; column-reduce to ``D3[i,k]`` on ``(i,k,k)``.
7. Point-to-point to the front face: ``D2[i,k]``: ``(i,i,k) -> (i,k,0)``
   (global comm); ``D3[i,k]``: ``(i,k,k) -> (i,k,0)`` (grid comm).

Algorithm 3 (original) reduces ``D2`` onto ``(i,k,k)`` instead, ships it to
the front immediately, and needs an extra transpose exchange
``(j,k,k) -> (k,j,k)`` before the second row broadcast.

Algorithm 5 (optimized) is Algorithm 4 with every communicated block split
into ``N_DUP`` contiguous parts, each part travelling on its own duplicated
communicator via nonblocking collectives, and the dependent phases pipelined
part-by-part exactly as in the paper's listing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense.distribution import block_dim, block_range, part_slices
from repro.dense.mesh import Mesh3D
from repro.mpi.requests import waitall
from repro.mpi.world import RankEnv, World
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.netmodel.topology import round_robin_placement
from repro.sim.engine import DeadlineExceeded
from repro.sim.faults import FaultPlan
from repro.sim.trace import SpanKind
from repro.tune.validity import check_placement, validate_ssc_config
from repro.util import check_positive

_TAG_D2 = 21
_TAG_D3 = 22
_TAG_TR = 23
_TAG_FB = 24


def ssc_flops(n: int) -> float:
    """Total flops of one SymmSquareCube call: two N^3 multiplies -> ``4 n^3``."""
    return 4.0 * float(n) ** 3


def _empty(real: bool, size: int):
    return np.empty(size) if real else None


# ---------------------------------------------------------------------------
# shared phases (blocking forms, Algorithms 3 and 4)
# ---------------------------------------------------------------------------


def _grd_bcast_A(env, mesh, i, j, k, n, d_blk, real):
    """Step 1: broadcast D[i,j] from the front face along the grid dimension."""
    p = mesh.pi
    bi, bj = block_dim(i, n, p), block_dim(j, n, p)
    if k == 0 and real:
        a_buf = np.ascontiguousarray(d_blk).ravel().copy()
    else:
        a_buf = _empty(real, bi * bj)
    grd = env.view(mesh.grd_comm(i, j))
    a_buf = yield from grd.bcast(a_buf, nbytes=bi * bj * 8, root=0)
    return a_buf  # raveled D[i,j]


def _row_bcast_Bt(env, mesh, i, j, k, n, a_buf, real):
    """Step 2: root (k,j,k) broadcasts D[k,j]; returns B[j,k] = D[k,j]^T."""
    p = mesh.pi
    bj, bk = block_dim(j, n, p), block_dim(k, n, p)
    row = env.view(mesh.row_comm(j, k))
    bt_buf = a_buf if i == k else _empty(real, bk * bj)
    bt_buf = yield from row.bcast(bt_buf, nbytes=bk * bj * 8, root=k)
    if not real:
        return None
    return np.ascontiguousarray(bt_buf.reshape(bk, bj).T)


def _d3_to_front(env, mesh, i, j, k, n, d3_red, real):
    """Step 7b/10: (i,k,k) sends D3[i,k] to (i,k,0) in its grid comm."""
    p = mesh.pi
    bi, bj = block_dim(i, n, p), block_dim(j, n, p)
    grd = env.view(mesh.grd_comm(i, j))
    if j == k and k == 0:
        return d3_red  # (i,0,0) already holds D3[i,0]
    if j == k:
        yield from grd.send(0, data=d3_red, nbytes=bi * bj * 8, tag=_TAG_D3)
        return None
    if k == 0:
        got = yield from grd.recv(j, tag=_TAG_D3)
        return got if real else True
    return None


# ---------------------------------------------------------------------------
# Algorithm 3 — original
# ---------------------------------------------------------------------------


def ssc_original_program(env: RankEnv, mesh: Mesh3D, n: int,
                         d_blk: np.ndarray | None, real: bool):
    """One SymmSquareCube call, Algorithm 3 (original GTFock version).

    Front-face ranks return ``(d2_block, d3_block)``; other ranks ``None``.
    In modeled mode front-face ranks return ``(None, None)``.
    """
    p = mesh.pi
    i, j, k = mesh.coords_of(env.rank)
    bi, bj, bk = (block_dim(x, n, p) for x in (i, j, k))

    a_buf = yield from _grd_bcast_A(env, mesh, i, j, k, n, d_blk, real)
    b1 = yield from _row_bcast_Bt(env, mesh, i, j, k, n, a_buf, real)
    a_mat = a_buf.reshape(bi, bj) if real else None
    c1 = yield from env.gemm(a_mat, b1, bi, bj, bk, label="ssc-mm1")

    # Step 4: reduce C[i,:,k] to D2[i,k] on (i,k,k)  [col_comm root j=k].
    col = env.view(mesh.col_comm(i, k))
    send = c1.ravel() if real else None
    d2_red = yield from col.reduce(send, nbytes=bi * bk * 8, root=k)

    # Step 5: D2[i,k] from (i,k,k) to the front (i,k,0) via grid comm.
    grd = env.view(mesh.grd_comm(i, j))
    d2_front = None
    if j == k and k == 0:
        d2_front = d2_red
    elif j == k:
        yield from grd.send(0, data=d2_red, nbytes=bi * bj * 8, tag=_TAG_D2)
    elif k == 0:
        got = yield from grd.recv(j, tag=_TAG_D2)
        d2_front = got if real else True

    # Step 6: transpose exchange (j',k',k') -> (k',j',k') in the global comm
    # so that P[k,j,k] holds D2[j,k] for the step-7 row broadcast.
    b2_buf = None  # raveled D2[j,k] at the row-broadcast root
    gv = env.view(mesh.global_comm)
    if j == k and i == k:
        b2_buf = d2_red
    else:
        sreq = rreq = None
        if j == k:  # I am (i,k,k) holding D2[i,k]: send to (k,i,k).
            peer = mesh.global_comm.local(mesh.rank_of(k, i, k))
            sreq = yield from gv.isend(
                peer, data=d2_red, nbytes=bi * bk * 8, tag=_TAG_TR
            )
        if i == k:  # I am (k,j,k): receive D2[j,k] from (j,k,k).
            peer = mesh.global_comm.local(mesh.rank_of(j, k, k))
            rreq = yield from gv.irecv(peer, tag=_TAG_TR)
        if sreq is not None:
            yield from sreq.wait()
        if rreq is not None:
            b2_buf = yield from rreq.wait()

    # Step 7: row-broadcast D2[j,k] from P[k,j,k] (root local rank k).
    row = env.view(mesh.row_comm(j, k))
    if i == k:
        buf = b2_buf if not real or b2_buf is None else np.asarray(b2_buf).ravel()
        if real and buf is None:
            raise RuntimeError("transpose exchange did not deliver D2[j,k]")
    else:
        buf = _empty(real, bj * bk)
    buf = yield from row.bcast(buf, nbytes=bj * bk * 8, root=k)
    b2 = buf.reshape(bj, bk) if real else None

    # Steps 8-10: second multiply, reduce to (i,k,k), ship D3 to the front.
    c2 = yield from env.gemm(a_mat, b2, bi, bj, bk, label="ssc-mm2")
    send = c2.ravel() if real else None
    d3_red = yield from col.reduce(send, nbytes=bi * bk * 8, root=k)
    d3_front = yield from _d3_to_front(env, mesh, i, j, k, n, d3_red, real)

    if k == 0:
        if not real:
            return (None, None)
        d2 = np.asarray(d2_front).reshape(bi, bj)
        d3 = np.asarray(d3_front).reshape(bi, bj)
        return (d2, d3)
    return None


# ---------------------------------------------------------------------------
# Algorithm 4 — baseline
# ---------------------------------------------------------------------------


def ssc_baseline_program(env: RankEnv, mesh: Mesh3D, n: int,
                         d_blk: np.ndarray | None, real: bool):
    """One SymmSquareCube call, Algorithm 4 (baseline: no transpose step)."""
    p = mesh.pi
    i, j, k = mesh.coords_of(env.rank)
    bi, bj, bk = (block_dim(x, n, p) for x in (i, j, k))

    a_buf = yield from _grd_bcast_A(env, mesh, i, j, k, n, d_blk, real)
    b1 = yield from _row_bcast_Bt(env, mesh, i, j, k, n, a_buf, real)
    a_mat = a_buf.reshape(bi, bj) if real else None
    c1 = yield from env.gemm(a_mat, b1, bi, bj, bk, label="ssc-mm1")

    # Step 4: reduce C[i,:,k] to D2[i,k] on (i,i,k)  [col_comm root j=i].
    col = env.view(mesh.col_comm(i, k))
    send = c1.ravel() if real else None
    d2_red = yield from col.reduce(send, nbytes=bi * bk * 8, root=i)

    # Step 5: (j,j,k) row-broadcasts D2[j,k] as the new B[j,k] (root j).
    row = env.view(mesh.row_comm(j, k))
    buf = d2_red if i == j else _empty(real, bj * bk)
    buf = yield from row.bcast(buf, nbytes=bj * bk * 8, root=j)
    b2 = buf.reshape(bj, bk) if real else None

    # Step 6-7: second multiply; reduce C to D3[i,k] on (i,k,k) (root j=k).
    c2 = yield from env.gemm(a_mat, b2, bi, bj, bk, label="ssc-mm2")
    send = c2.ravel() if real else None
    d3_red = yield from col.reduce(send, nbytes=bi * bk * 8, root=k)

    # Step 8: D2[i,k]: (i,i,k) -> (i,k,0) via the global comm (both roles may
    # apply to one rank; post the receive first to stay deadlock-free).
    gv = env.view(mesh.global_comm)
    d2_front = None
    rreq = sreq = None
    if k == 0:  # receiver of D2[i,j] from (i,i,j)
        src = mesh.global_comm.local(mesh.rank_of(i, i, j))
        if mesh.rank_of(i, i, j) == env.rank:
            d2_front = d2_red
        else:
            rreq = yield from gv.irecv(src, tag=_TAG_D2)
    if j == i and not (i == k and k == 0):
        dst_rank = mesh.rank_of(i, k, 0)
        if dst_rank != env.rank:
            dst = mesh.global_comm.local(dst_rank)
            sreq = yield from gv.isend(
                dst, data=d2_red, nbytes=bi * bk * 8, tag=_TAG_D2
            )
        else:
            d2_front = d2_red
    # Step 9: D3[i,k]: (i,k,k) -> (i,k,0) via the grid comm.
    d3_front = yield from _d3_to_front(env, mesh, i, j, k, n, d3_red, real)
    if rreq is not None:
        got = yield from rreq.wait()
        d2_front = got if real else True
    if sreq is not None:
        yield from sreq.wait()

    if k == 0:
        if not real:
            return (None, None)
        d2 = np.asarray(d2_front).reshape(bi, bj)
        d3 = np.asarray(d3_front).reshape(bi, bj)
        return (d2, d3)
    return None


# ---------------------------------------------------------------------------
# Algorithm 5 — optimized (nonblocking overlap, N_DUP pipeline)
# ---------------------------------------------------------------------------


def ssc_optimized_program(env: RankEnv, mesh: Mesh3D, n: int,
                          d_blk: np.ndarray | None, real: bool,
                          n_dup: int | None = None):
    """One SymmSquareCube call, Algorithm 5 (pipelined nonblocking overlap).

    ``n_dup`` defaults to the mesh's duplicate count.  With ``n_dup == 1``
    this is communication-equivalent to the baseline algorithm executed
    with nonblocking calls.
    """
    p = mesh.pi
    n_dup = mesh.n_dup if n_dup is None else n_dup
    check_positive("n_dup", n_dup)
    if n_dup > mesh.n_dup:
        raise ValueError(f"mesh only has {mesh.n_dup} communicator duplicates")
    i, j, k = mesh.coords_of(env.rank)
    bi, bj, bk = (block_dim(x, n, p) for x in (i, j, k))

    # --- Phase 1 (lines 1-8): pipelined grid bcast of A -> row bcast of B^T.
    if k == 0 and real:
        a_buf = np.ascontiguousarray(d_blk).ravel().copy()
    else:
        a_buf = _empty(real, bi * bj)
    a_parts = part_slices(bi * bj, n_dup)
    grd_reqs = []
    for c, (lo, hi) in enumerate(a_parts):
        gv = env.view(mesh.grd_comm(i, j, c))
        part = None if a_buf is None else a_buf[lo:hi]
        req = yield from gv.ibcast(part, nbytes=(hi - lo) * 8, root=0)
        grd_reqs.append(req)
    # B^T buffer: D[k,j] raveled (the row-broadcast root is (k,j,k), whose
    # own A buffer is exactly D[k,j]).
    bt_buf = a_buf if i == k else _empty(real, bk * bj)
    bt_parts = part_slices(bk * bj, n_dup)
    row_reqs = []
    for c, (lo, hi) in enumerate(bt_parts):
        rv = env.view(mesh.row_comm(j, k, c))
        if i == k:
            yield from grd_reqs[c].wait()  # part c of my D[k,j] has arrived
        part = None if bt_buf is None else bt_buf[lo:hi]
        req = yield from rv.ibcast(part, nbytes=(hi - lo) * 8, root=k)
        row_reqs.append(req)
    yield from waitall(row_reqs + grd_reqs)
    a_mat = a_buf.reshape(bi, bj) if real else None
    b1 = np.ascontiguousarray(bt_buf.reshape(bk, bj).T) if real else None

    # --- Phase 2 (line 9): first local multiply.
    c1 = yield from env.gemm(a_mat, b1, bi, bj, bk, label="ssc-mm1")

    # --- Phase 3 (lines 10-17): pipelined Ireduce of C -> row Ibcast of D2.
    c1_buf = c1.ravel() if real else None
    ck_parts = part_slices(bi * bk, n_dup)
    red2_reqs = []
    for c, (lo, hi) in enumerate(ck_parts):
        cv = env.view(mesh.col_comm(i, k, c))
        part = None if c1_buf is None else c1_buf[lo:hi]
        req = yield from cv.ireduce(part, nbytes=(hi - lo) * 8, root=i)
        red2_reqs.append(req)
    d2_buf = _empty(real, bi * bk) if i == j else None
    b2_buf = _empty(real, bj * bk) if i != j else d2_buf  # D2[j,k] raveled
    b2_parts = part_slices(bj * bk, n_dup)
    bc2_reqs = []
    for c, (lo, hi) in enumerate(b2_parts):
        rv = env.view(mesh.row_comm(j, k, c))
        if i == j:
            red_part = yield from red2_reqs[c].wait()
            if real:
                d2_buf[lo:hi] = red_part
            part = None if d2_buf is None else d2_buf[lo:hi]
        else:
            part = None if b2_buf is None else b2_buf[lo:hi]
        req = yield from rv.ibcast(part, nbytes=(hi - lo) * 8, root=j)
        bc2_reqs.append(req)
    yield from waitall(bc2_reqs)
    b2 = b2_buf.reshape(bj, bk) if real else None

    # --- Phase 4 (line 18): second local multiply.
    c2 = yield from env.gemm(a_mat, b2, bi, bj, bk, label="ssc-mm2")

    # --- Phase 5 (lines 19-27): Ireduce of D3 overlapped with shipping D2
    # and D3 parts to the front face.
    c2_buf = c2.ravel() if real else None
    red3_reqs = []
    for c, (lo, hi) in enumerate(ck_parts):
        cv = env.view(mesh.col_comm(i, k, c))
        part = None if c2_buf is None else c2_buf[lo:hi]
        req = yield from cv.ireduce(part, nbytes=(hi - lo) * 8, root=k)
        red3_reqs.append(req)

    final_reqs = []
    # Receivers on the front face post all irecvs up front.
    d2_src = mesh.rank_of(i, i, j)   # holder of D2[i,j]
    d3_src = mesh.rank_of(i, j, j)   # holder of D3[i,j] (coords (i,k,k), k=j)
    d2_rreqs = d3_rreqs = None
    bij_parts = part_slices(bi * bj, n_dup)
    if k == 0:
        gvs = [env.view(mesh.global_dup(c)) for c in range(n_dup)]
        grds = [env.view(mesh.grd_comm(i, j, c)) for c in range(n_dup)]
        if d2_src != env.rank:
            d2_rreqs = []
            for c in range(n_dup):
                src = mesh.global_dups[c].local(d2_src)
                req = yield from gvs[c].irecv(src, tag=_TAG_D2)
                d2_rreqs.append(req)
        if d3_src != env.rank:
            d3_rreqs = []
            for c in range(n_dup):
                req = yield from grds[c].irecv(j, tag=_TAG_D3)
                d3_rreqs.append(req)
    # Senders: D2 part c posted immediately; D3 part c posted as its
    # reduction completes (paper lines 22-26).
    d3_buf = _empty(real, bi * bk) if j == k else None
    d2_dst = mesh.rank_of(i, k, 0)
    for c, (lo, hi) in enumerate(ck_parts):
        if j == i and d2_dst != env.rank:
            gv = env.view(mesh.global_dup(c))
            dst = mesh.global_dups[c].local(d2_dst)
            part = None if d2_buf is None else np.array(d2_buf[lo:hi])
            req = yield from gv.isend(
                dst, data=part, nbytes=(hi - lo) * 8, tag=_TAG_D2
            )
            final_reqs.append(req)
        if j == k:
            red_part = yield from red3_reqs[c].wait()
            if real:
                d3_buf[lo:hi] = red_part
            if k != 0:
                grd_v = env.view(mesh.grd_comm(i, j, c))
                part = None if d3_buf is None else np.array(d3_buf[lo:hi])
                req = yield from grd_v.isend(
                    0, data=part, nbytes=(hi - lo) * 8, tag=_TAG_D3
                )
                final_reqs.append(req)
    # Collect everything outstanding (line 27) + leftover reduce requests.
    final_reqs.extend(r for r in red3_reqs if j != k)
    final_reqs.extend(r for r in red2_reqs if i != j)
    yield from waitall(final_reqs)

    if k != 0:
        return None
    # Collect the front-face result parts (line 27 covers these irecvs too).
    d2 = d3 = None
    if d2_src == env.rank:
        d2 = d2_buf.reshape(bi, bj) if real else None
    else:
        parts = yield from waitall(d2_rreqs)
        if real:
            d2 = np.empty(bi * bj)
            for (lo, hi), part in zip(bij_parts, parts):
                d2[lo:hi] = part
            d2 = d2.reshape(bi, bj)
    if d3_src == env.rank:
        d3 = d3_buf.reshape(bi, bj) if real else None
    else:
        parts = yield from waitall(d3_rreqs)
        if real:
            d3 = np.empty(bi * bj)
            for (lo, hi), part in zip(bij_parts, parts):
                d3[lo:hi] = part
            d3 = d3.reshape(bi, bj)
    return (d2, d3)


# ---------------------------------------------------------------------------
# graceful degradation under faults
# ---------------------------------------------------------------------------


def negotiate_fallback(env, gv, local_flag: bool):
    """Generator: agree communicator-wide on a nonblocking->blocking fallback.

    Ranks observe the fault state at slightly different virtual times, so a
    purely local decision could split the mesh between Algorithm 5 and the
    blocking baseline and deadlock.  Rank 0 gathers every rank's flag,
    takes the OR, and distributes the verdict with 1-byte control messages
    (a tiny, fully deterministic control round — its cost is modeled like
    any other traffic).
    """
    flags = yield from gv.gather(data=bool(local_flag), nbytes=1, root=0)
    if gv.rank == 0:
        decision = any(flags)
        for dst in range(1, gv.size):
            yield from gv.send(dst, data=decision, nbytes=1, tag=_TAG_FB)
        return decision
    decision = yield from gv.recv(0, tag=_TAG_FB)
    return bool(decision)


# ---------------------------------------------------------------------------
# convenience runner
# ---------------------------------------------------------------------------

_ALGORITHMS = {
    "original": ssc_original_program,
    "baseline": ssc_baseline_program,
    "optimized": ssc_optimized_program,
}


def ssc_plan_population(p: int, n: int, algorithm: str = "optimized",
                        n_dup: int = 1) -> set[tuple]:
    """Every collective op shape Algorithms 3-5 can post, as
    ``(verb, comm_size, root, n_elems, itemsize)`` tuples.

    This is the kernel's side of the static schedule-verification contract
    (:func:`repro.analysis.schedule.check_plans`): the grid/row broadcasts
    and column reductions move ``bi*bj`` / ``bk*bj`` / ``bi*bk`` / ``bj*bk``
    blocks — all products of the ``p``-way block dimensions — with roots
    drawn from the mesh coordinates, and Algorithm 5 splits each block into
    ``n_dup`` contiguous parts.  The per-iteration barrier spans the full
    ``p^3`` mesh.  Roots are enumerated over ``range(p)`` (a superset of
    the coordinate-derived roots), so verifying this population proves
    every plan the kernel can request.
    """
    dims = sorted({block_dim(x, n, p) for x in range(p)})
    blocks = sorted({a * b for a in dims for b in dims})
    if algorithm == "optimized":
        sizes = sorted({hi - lo for blk in blocks
                        for lo, hi in part_slices(blk, n_dup)})
    else:
        sizes = blocks
    pop: set[tuple] = {("barrier", p ** 3, 0, 0, 1)}
    for sz in sizes:
        for root in range(p):
            pop.add(("bcast", p, root, sz, 8))
            pop.add(("reduce", p, root, sz, 8))
    return pop


@dataclass
class SSCResult:
    """Outcome of :func:`run_ssc`."""

    d2: np.ndarray | None          # assembled D^2 (real mode, last call)
    d3: np.ndarray | None          # assembled D^3
    times: list[float]             # per-call elapsed virtual seconds (max over ranks)
    n: int                         # matrix dimension
    world: World
    mesh: Mesh3D
    fallbacks: int = 0             # iterations that degraded to the blocking baseline
    tuning: "TuningRecord | None" = None  # decision trace when run with tune=  # noqa: F821
    recording: "GraphRecorder | None" = None  # event graph when run with record=True  # noqa: F821

    @property
    def elapsed(self) -> float:
        """Mean per-call time."""
        return sum(self.times) / len(self.times)

    @property
    def tflops(self) -> float:
        """Mean achieved TFlop/s of the kernel — the paper's reported metric."""
        return ssc_flops(self.n) / self.elapsed / 1e12


def run_ssc(
    p: int,
    n: int,
    algorithm: str = "optimized",
    d: np.ndarray | None = None,
    *,
    n_dup: int = 1,
    ppn: int = 1,
    iterations: int = 1,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
    placement: str = "block",
    trace: bool = False,
    faults: FaultPlan | None = None,
    verify: bool = False,
    verify_plans: bool = False,
    tune=None,
    tune_db=None,
    deadline: float | None = None,
    record: bool = False,
    solver: str = "scalar",
) -> SSCResult:
    """Run ``iterations`` SymmSquareCube calls on a fresh ``p^3`` world.

    ``algorithm`` is ``"original"`` (Alg. 3), ``"baseline"`` (Alg. 4) or
    ``"optimized"`` (Alg. 5 with ``n_dup`` pipeline stages).  ``placement``
    selects the rank-to-node map: ``"block"`` is the paper's natural
    assignment (consecutive ranks share a node, §V-D); ``"round_robin"``
    scatters consecutive ranks across nodes.  Real mode
    (``d`` given, must be symmetric) verifies nothing itself but returns the
    assembled ``D^2``/``D^3`` for the caller to check; modeled mode times the
    kernel at full paper scale without allocating matrix data.  Each call is
    preceded by a barrier and timed as the max across ranks.

    ``verify_plans`` is the opt-in static-verification debug gate: every
    collective plan set is proven deadlock-free / zero-copy sound before
    its first execution, and any RA3xx error finding raises
    :class:`~repro.analysis.schedule.PlanVerificationError` (see
    :mod:`repro.analysis.schedule`).

    ``faults`` attaches a :class:`~repro.sim.faults.FaultPlan`.  Under an
    active plan the optimized algorithm degrades gracefully: before each
    iteration the ranks agree (see :func:`negotiate_fallback`) on whether a
    link-degradation window is active, and if so run the blocking baseline
    for that iteration instead of the N_DUP nonblocking pipeline — the
    duplicated communicators' independent channels are pointless on a
    throttled link, and the blocking schedule is the safer citizen.  Fallen
    back iterations are counted in ``SSCResult.fallbacks`` and recorded in
    the trace as ``fallback:blocking`` MISC spans.

    ``tune`` hands configuration choice to :mod:`repro.tune`: a
    :class:`~repro.tune.tuner.TuningPolicy` string (``"auto"``,
    ``"model-only"``, ``"exhaustive"``, ``"db-only"``) builds a private
    :class:`~repro.tune.tuner.Tuner`; a ``Tuner`` or
    :class:`~repro.tune.service.TuningService` instance is used directly,
    so many runs share one warm cache and coalesced searches.  The tuner
    picks algorithm variant, ``N_DUP``, PPN and collective schedule for
    this workload (overriding the corresponding arguments), and the
    decision trace is attached as ``SSCResult.tuning``.  ``tune_db`` is an
    optional :class:`~repro.tune.db.TuningDB` for warm starts (policy
    strings only — a tuner object brings its own db).

    ``deadline`` bounds the simulation at that virtual time and raises
    :class:`~repro.sim.engine.DeadlineExceeded` if the kernel has not
    finished — the tuner's early-termination hook.
    """
    check_positive("iterations", iterations)
    check_placement(placement)
    validate_ssc_config(p, n, algorithm, n_dup, ppn=max(ppn, 1))
    if tune is not None:
        from repro.tune.candidates import apply_collective
        from repro.tune.tuner import Tuner

        tuner = (Tuner(db=tune_db, policy=tune) if isinstance(tune, str)
                 else tune)
        decision = tuner.autotune_ssc(p, n, ppn=ppn, placement=placement,
                                      params=params, machine=machine)
        best = decision.best
        eff = apply_collective(params or NetworkParams(), best.collective)
        result = run_ssc(
            p, n, best.algorithm, d, n_dup=best.n_dup, ppn=best.ppn,
            iterations=iterations, params=eff, machine=machine,
            placement=placement, trace=trace, faults=faults, verify=verify,
            verify_plans=verify_plans, deadline=deadline, record=record,
            solver=solver,
        )
        result.tuning = decision
        return result
    real = d is not None
    if real and not np.allclose(d, d.T):
        raise ValueError("SymmSquareCube requires a symmetric input matrix")
    ranks = p**3
    ppn = max(ppn, 1)
    if placement == "block":
        cluster = block_placement(ranks, ppn)
    else:  # "round_robin" — check_placement already rejected anything else
        cluster = round_robin_placement(ranks, -(-ranks // ppn))
    world = World(cluster, params=params, machine=machine, trace=trace,
                  faults=faults, verify=verify, verify_plans=verify_plans,
                  record=record, solver=solver)
    mesh = Mesh3D(world, p, n_dup=max(n_dup, 1))
    program_fn = _ALGORITHMS[algorithm]

    def program(env: RankEnv):
        i, j, k = mesh.coords_of(env.rank)
        d_blk = None
        if real and k == 0:
            rlo, rhi = block_range(i, n, p)
            clo, chi = block_range(j, n, p)
            d_blk = np.ascontiguousarray(d[rlo:rhi, clo:chi])
        gv = env.view(mesh.global_comm)
        times = []
        result = None
        fallbacks = 0
        for it in range(iterations):
            yield from gv.barrier()
            t0 = env.now
            env.mark("t0", it)
            fall_back = False
            if algorithm == "optimized" and world.faults is not None:
                flag = world.faults.link_degraded(env.now)
                fall_back = yield from negotiate_fallback(env, gv, flag)
            if fall_back:
                fallbacks += 1
                world.trace.add(env.rank, env.now, env.now, SpanKind.MISC,
                                "fallback:blocking")
                result = yield from ssc_baseline_program(env, mesh, n, d_blk, real)
            elif algorithm == "optimized":
                result = yield from program_fn(env, mesh, n, d_blk, real, n_dup)
            else:
                result = yield from program_fn(env, mesh, n, d_blk, real)
            t1 = env.now
            env.mark("t1", it)
            times.append(t1 - t0)
        return (times, result, fallbacks)

    world.spawn_all(program, ranks=range(p**3))
    world.run(until=deadline)
    if deadline is not None and world.unfinished():
        raise DeadlineExceeded(
            f"run_ssc(p={p}, n={n}, {algorithm!r}) exceeded deadline "
            f"{deadline:.6g}s: {len(world.unfinished())} rank program(s) unfinished"
        )
    outs = world.results()
    iter_times = [
        max(outs[r][0][it] for r in range(p**3)) for it in range(iterations)
    ]
    fallbacks = max(outs[r][2] for r in range(p**3))
    d2 = d3 = None
    if real:
        d2 = np.zeros((n, n))
        d3 = np.zeros((n, n))
        for rank in range(p**3):
            i, j, k = mesh.coords_of(rank)
            if k != 0:
                continue
            blk2, blk3 = outs[rank][1]
            rlo, rhi = block_range(i, n, p)
            clo, chi = block_range(j, n, p)
            d2[rlo:rhi, clo:chi] = blk2
            d3[rlo:rhi, clo:chi] = blk3
    if world.recorder is not None:
        world.recorder.meta.update(kernel="ssc", ranks=ranks,
                                   iterations=iterations)
    return SSCResult(d2=d2, d3=d3, times=iter_times, n=n, world=world, mesh=mesh,
                     fallbacks=fallbacks, recording=world.recorder)
