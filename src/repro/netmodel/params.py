"""Calibration constants for the simulated cluster.

Every constant is traceable to a number in the paper (Huang & Chow,
IPDPS 2019) or to a standard property of the Stampede2 Skylake partition the
paper used.  The defaults are chosen so the micro-benchmarks in
``repro.bench`` reproduce the *shape* of Figs. 3, 5, 6 and the paper's §V-A
analysis; they are plain dataclass fields, so every experiment (and the
ablation benchmarks) can perturb them.

Calibration notes
-----------------
``nic_bandwidth``
    Fig. 3: "the peak unidirectional bandwidth is about 12000 MB/s".
``process_injection_bandwidth``
    §III-B: "a single MPI process on a node cannot saturate that node's
    available network bandwidth" — all concurrent flows *sourced by one
    process* share this cap (single-core packet/doorbell processing), so
    multiple PPN raises achievable node throughput toward the NIC peak
    even for multi-MB messages.  This is the mechanism behind the large
    multiple-PPN gains of Tables III-V.
``flow_half_size``
    Fig. 3: a single process only attains the peak for >= 16 MB messages.
    With ``flow_cap(n) = B_nic * n / (n + n_half)`` and ``n_half = 256 KiB``
    a 16 MiB flow reaches 98.5% of peak, a 1 MiB flow 80%, a 64 KiB flow 20%.
``alpha``
    Omni-Path MPI latency is ~1-2 us for small messages; we use 1.5 us.
``ireduce_post_per_byte``
    Fig. 6 (top): posting MPI_Ireduce took 265-357 us for 2 MB and 1139 us
    for 8 MB -> ~135 us per MiB ~= 1/(7.8 GB/s).  This is the data
    marshalling / first-combine staging cost charged on the calling CPU.
``ibcast_post_seconds``
    Fig. 6 (bottom): posting MPI_Ibcast usually takes "very little time"
    (1-2 us).
``combine_bandwidth``
    Fig. 5 / Table IV: blocking reduce bandwidth saturates near 2.4 GB/s at
    PPN=1, far below the bcast bandwidth; the gap is the single-threaded
    per-byte summation inside the reduction (~1.8 GB/s of produced output
    for a memory-bound scalar loop on one Skylake core reproduces that).
``round_copy_bandwidth``
    Collective implementations stage received data through internal buffers
    each round (pack/unpack); ~12 GB/s single-core memcpy.  Together with
    the round gap this brings the blocking broadcast to the ~8.5 GB/s the
    paper measures (Fig. 5 / Table IV) instead of the NIC's 12 GB/s.
``blocking_round_gap``
    Blocking collectives synchronize at every internal round (a process
    cannot pre-post the next round's transfers); nonblocking schedules are
    driven by the progress engine and chain rounds without this gap.  This
    reproduces Fig. 6's observation that four overlapped Ibcasts beat four
    per-process blocking bcasts (4-PPN) of the same total volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util import GB, KIB, MB, check_nonnegative, check_positive

#: Hard ceiling on ``NetworkParams.num_channels`` — the fabric packs the
#: channel index into 3 bits of its resource keys (see
#: :mod:`repro.netmodel.fabric`), and no modeled NIC splits further anyway.
MAX_CHANNELS = 8


@dataclass
class NetworkParams:
    """Tunable constants of the network/communication model (all SI units)."""

    # --- NIC / link ---------------------------------------------------------
    nic_bandwidth: float = 12_000 * MB        # full-duplex per direction [B/s]
    process_injection_bandwidth: float = 10_500 * MB  # per-process cap [B/s]
    flow_half_size: float = 256 * KIB         # n_half in flow_cap(n) [B]
    alpha: float = 1.5e-6                     # per-message network latency [s]
    rendezvous_threshold: int = 64 * KIB      # eager/rendezvous switch [B]
    rendezvous_extra: float = 3.0e-6          # RTS/CTS handshake cost [s]

    # --- intra-node shared-memory path --------------------------------------
    shm_bandwidth: float = 40_000 * MB        # aggregate per node [B/s]
    shm_flow_cap: float = 16_000 * MB         # single-copy engine limit [B/s]
    shm_alpha: float = 0.4e-6                 # shm message latency [s]

    # --- CPU-side overheads --------------------------------------------------
    send_overhead: float = 0.5e-6             # o_send per posted message [s]
    recv_overhead: float = 0.5e-6             # o_recv per posted receive [s]
    eager_copy_bandwidth: float = 8_000 * MB  # eager buffer copy rate [B/s]
    ibcast_post_seconds: float = 1.5e-6       # constant Ibcast posting cost [s]
    ireduce_post_base: float = 5.0e-6         # Ireduce posting, constant part [s]
    ireduce_post_per_byte: float = 1.0 / (7_800 * MB)  # marshalling [s/B]
    combine_bandwidth: float = 1_800 * MB     # reduction combine rate [B/s]
    round_copy_bandwidth: float = 12_000 * MB  # per-round staging copy [B/s]

    # --- collective behaviour -------------------------------------------------
    blocking_round_gap: float = 25.0e-6       # per-round sync gap, blocking [s]
    long_message_threshold: int = 16 * KIB    # binomial vs long-message algos

    # --- virtual lanes (channels) ---------------------------------------------
    # Every link resource (tx/rx/px/shm) is split into ``num_channels``
    # independently fair-shared lanes.  ``channel_split`` gives each lane's
    # capacity fraction (normalized; ``None`` = equal split).  Flows carry a
    # channel index (see Fabric.transfer); with the default of one channel
    # the model is exactly the unsplit link of the paper's measurements.
    num_channels: int = 1
    channel_split: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        check_positive("nic_bandwidth", self.nic_bandwidth)
        check_positive("process_injection_bandwidth", self.process_injection_bandwidth)
        check_positive("flow_half_size", self.flow_half_size)
        check_nonnegative("alpha", self.alpha)
        check_nonnegative("rendezvous_extra", self.rendezvous_extra)
        check_positive("shm_bandwidth", self.shm_bandwidth)
        check_positive("shm_flow_cap", self.shm_flow_cap)
        check_nonnegative("shm_alpha", self.shm_alpha)
        check_nonnegative("send_overhead", self.send_overhead)
        check_nonnegative("recv_overhead", self.recv_overhead)
        check_positive("eager_copy_bandwidth", self.eager_copy_bandwidth)
        check_nonnegative("ibcast_post_seconds", self.ibcast_post_seconds)
        check_nonnegative("ireduce_post_base", self.ireduce_post_base)
        check_nonnegative("ireduce_post_per_byte", self.ireduce_post_per_byte)
        check_positive("combine_bandwidth", self.combine_bandwidth)
        check_positive("round_copy_bandwidth", self.round_copy_bandwidth)
        check_nonnegative("blocking_round_gap", self.blocking_round_gap)
        if self.rendezvous_threshold < 0:
            raise ValueError("rendezvous_threshold must be >= 0")
        check_positive("num_channels", self.num_channels)
        if self.num_channels > MAX_CHANNELS:
            raise ValueError(
                f"num_channels must be <= {MAX_CHANNELS}, got {self.num_channels}"
            )
        if self.channel_split is not None:
            split = tuple(float(f) for f in self.channel_split)
            if len(split) != self.num_channels:
                raise ValueError(
                    f"channel_split has {len(split)} entries for "
                    f"{self.num_channels} channels"
                )
            if any(f <= 0.0 for f in split):
                raise ValueError(f"channel_split entries must be > 0: {split}")
            self.channel_split = split

    # -- derived quantities ----------------------------------------------------

    def flow_cap(self, nbytes: float) -> float:
        """Maximum sustained rate of a single message of ``nbytes`` [B/s].

        ``B_nic * n / (n + n_half)``: small messages cannot keep the wire
        full (protocol round-trips, packetization, single-core packet
        processing), which is what Fig. 3 measures.
        """
        if nbytes <= 0:
            return self.nic_bandwidth
        return self.nic_bandwidth * nbytes / (nbytes + self.flow_half_size)

    def shm_cap(self, nbytes: float) -> float:
        """Single intra-node message rate cap [B/s]."""
        if nbytes <= 0:
            return self.shm_flow_cap
        return self.shm_flow_cap * nbytes / (nbytes + self.flow_half_size / 4)

    def beta(self) -> float:
        """Transfer seconds per byte at peak NIC bandwidth (paper's beta)."""
        return 1.0 / self.nic_bandwidth

    def channel_fractions(self) -> tuple[float, ...]:
        """Normalized per-channel capacity fractions (sum exactly 1.0).

        With one channel this is ``(1.0,)`` and the fabric skips the lane
        scaling entirely, keeping the single-channel arithmetic bit-for-bit
        identical to the unsplit model.
        """
        if self.channel_split is None:
            return (1.0 / self.num_channels,) * self.num_channels
        total = sum(self.channel_split)
        return tuple(f / total for f in self.channel_split)

    def replace(self, **kw) -> "NetworkParams":
        """Return a copy with some fields overridden (ablation helper)."""
        return replace(self, **kw)


@dataclass
class MachineParams:
    """Per-node compute constants (Stampede2 Skylake-like)."""

    # 2x Xeon 8160: nominal DP peak ~3.1 TF/s; the paper's DGEMM timings
    # (0.01794 s for 2 multiplies of 1912^3 blocks across 64 nodes) imply
    # ~1.56 TF/s of *achieved* node throughput inside this kernel, so we use
    # an achieved rate, not the nominal peak.
    node_flops: float = 1.56e12               # achieved DGEMM flops/s/node
    cores_per_node: int = 48
    node_memory_bytes: int = 192 * 2**30

    def __post_init__(self) -> None:
        check_positive("node_flops", self.node_flops)
        check_positive("cores_per_node", self.cores_per_node)

    def process_flops(self, ppn: int) -> float:
        """Achieved GEMM rate of one process when ``ppn`` processes share a node."""
        check_positive("ppn", ppn)
        return self.node_flops / ppn

    def replace(self, **kw) -> "MachineParams":
        """Return a copy with some fields overridden (ablation helper)."""
        return replace(self, **kw)
