"""Closed-form alpha-beta models used by the paper's analysis (§V-A, Table IV).

The paper models the time to send an ``n``-byte message as ``alpha + n*beta``
and assumes recursive doubling for broadcast and Rabenseifner's algorithm for
reduction, giving::

    T_bcast  = alpha * (log2(p) + p - 1) + 2 * beta * (p - 1) * n / p
    T_reduce = 2 * alpha * log2(p)       + 2 * beta * (p - 1) * n / p

These functions regenerate the §V-A numbers (T_p2p = 2.324 ms etc. for
n = 27.89 MB, p = 4, beta = 1/12000 MB/s) and the "estimated" columns of
Table IV.
"""

from __future__ import annotations

import math

from repro.netmodel.params import MachineParams, NetworkParams
from repro.util import check_positive


def t_point_to_point(nbytes: float, alpha: float, beta: float) -> float:
    """``alpha + n*beta`` — the paper's point-to-point model."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    return alpha + nbytes * beta


def t_bcast_scatter_allgather(
    nbytes: float, p: int, alpha: float, beta: float
) -> float:
    """Long-message broadcast model (recursive-doubling / scatter-allgather).

    ``alpha*(log2(p) + p - 1) + 2*beta*(p-1)*n/p`` — §V-A of the paper.

    Degenerate cases are explicit: ``p == 1`` has nobody to talk to
    (0.0), and ``nbytes == 0`` pays only the latency term (bit-identical
    to the full formula with a zero bandwidth term — the early return
    documents the contract rather than changing it).
    """
    check_positive("p", p)
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if p == 1:
        return 0.0
    if nbytes == 0:
        return alpha * (math.log2(p) + p - 1)
    return alpha * (math.log2(p) + p - 1) + 2.0 * beta * (p - 1) * nbytes / p


def t_reduce_rabenseifner(nbytes: float, p: int, alpha: float, beta: float) -> float:
    """Long-message reduction model (Rabenseifner).

    ``2*alpha*log2(p) + 2*beta*(p-1)*n/p`` — §V-A of the paper (compute term
    omitted, as in the paper).

    Degenerate cases mirror :func:`t_bcast_scatter_allgather`: ``p == 1``
    reduces onto itself (0.0); ``nbytes == 0`` pays only the latency term.
    """
    check_positive("p", p)
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if p == 1:
        return 0.0
    if nbytes == 0:
        return 2.0 * alpha * math.log2(p)
    return 2.0 * alpha * math.log2(p) + 2.0 * beta * (p - 1) * nbytes / p


def collective_volume_long_message(nbytes: float, p: int) -> float:
    """Per-process communicated volume ``2*(p-1)*n/p`` of the long-message
    broadcast/reduction algorithms (used to convert times to the bandwidths
    plotted in Fig. 5)."""
    check_positive("p", p)
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    return 2.0 * (p - 1) * nbytes / p


def effective_p2p_bandwidth(nbytes: float, params: NetworkParams) -> float:
    """Model-predicted single-flow bandwidth ``n / (overheads + n/flow_cap(n))``.

    This is the smooth curve behind the simulated Fig. 3 PPN=1 series; tests
    compare the simulation against it.
    """
    if nbytes <= 0:
        return 0.0
    p = params
    overhead = p.send_overhead + p.recv_overhead + p.alpha
    if nbytes > p.rendezvous_threshold:
        overhead += p.rendezvous_extra
    return nbytes / (overhead + nbytes / p.flow_cap(nbytes))


def baseline_ssc_comm_time_model(
    block_bytes: float, p: int, alpha: float, beta: float
) -> dict:
    """§V-A composite model of the baseline SymmSquareCube communication time.

    ``T = 2*(T_p2p + T_reduce) + 3*T_bcast`` with the paper's collective
    models.  Returns the individual terms too, so the §V-A experiment can
    print the same breakdown as the paper (T_p2p = 2.324e-3 etc.).
    """
    t_p2p = t_point_to_point(block_bytes, alpha, beta)
    t_bc = t_bcast_scatter_allgather(block_bytes, p, alpha, beta)
    t_rd = t_reduce_rabenseifner(block_bytes, p, alpha, beta)
    return {
        "T_p2p": t_p2p,
        "T_bcast": t_bc,
        "T_reduce": t_rd,
        "T_baseline": 2.0 * (t_p2p + t_rd) + 3.0 * t_bc,
    }


# ---------------------------------------------------------------------------
# candidate-scoring models for the autotuner (repro.tune)
# ---------------------------------------------------------------------------
#
# These are deliberately coarse: the tuner's first stage only needs to RANK
# configurations well enough to prune the candidate space before the
# discrete-event simulator scores the shortlist exactly.  Each model splits
# every operation into a latency term L (paid once per message, so N_DUP
# pipelining multiplies it) and a bandwidth term W (partially hidden by the
# overlap, see ``overlapped_time``).


def t_bcast_binomial(nbytes: float, p: int, alpha: float, beta: float) -> float:
    """Short-message binomial broadcast: ``ceil(log2 p) * (alpha + n*beta)``."""
    check_positive("p", p)
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * (alpha + nbytes * beta)


def t_reduce_binomial(nbytes: float, p: int, alpha: float, beta: float) -> float:
    """Short-message binomial reduction (same shape as the broadcast)."""
    return t_bcast_binomial(nbytes, p, alpha, beta)


def overlapped_time(latency: float, bandwidth: float, n_dup: int,
                    pipeline_fraction: float) -> float:
    """Time of a phase split into ``n_dup`` pipelined parts.

    Every part pays the latency term (``latency * n_dup``), while up to
    ``pipeline_fraction`` of the bandwidth term hides behind neighbouring
    parts/phases as ``n_dup`` grows: ``W * (1 - f * (1 - 1/n_dup))``.
    ``n_dup = 1`` returns exactly ``latency + bandwidth``; large ``n_dup``
    trades hidden bandwidth for extra latency — the model reproduces the
    paper's Table II plateau-then-flatten shape.
    """
    check_positive("n_dup", n_dup)
    if not 0.0 <= pipeline_fraction <= 1.0:
        raise ValueError(f"pipeline_fraction must be in [0, 1], got {pipeline_fraction}")
    hidden = pipeline_fraction * (1.0 - 1.0 / n_dup)
    return latency * n_dup + bandwidth * (1.0 - hidden)


def effective_collective_bandwidth(part_bytes: float, p: int, ppn: int,
                                   params: NetworkParams) -> float:
    """Per-process achieved rate inside a ``p``-rank long-message collective.

    Inter-node flows are capped by the single-flow curve ``flow_cap``, the
    per-process injection limit (§III-B), and NIC sharing between the
    node's co-resident active processes; with block placement, roughly
    ``min(ppn-1, p-1)/(p-1)`` of a rank's peers are on-node and use the
    shared-memory path instead.
    """
    check_positive("p", p)
    check_positive("ppn", ppn)
    active = max(1, min(ppn, p))
    inter = min(
        params.flow_cap(part_bytes),
        params.process_injection_bandwidth,
        params.nic_bandwidth / active,
    )
    if p == 1:
        return inter
    f_intra = min(ppn - 1, p - 1) / (p - 1)
    intra = min(params.shm_cap(part_bytes), params.shm_bandwidth / active)
    return f_intra * intra + (1.0 - f_intra) * inter


#: Fraction of SymmSquareCube bandwidth time the Alg. 5 cross-operation
#: pipeline can hide (grid-bcast with row-bcast, reduce with bcast/p2p).
SSC_PIPELINE_FRACTION = 0.5
#: Alg. 6 only overlaps each collective with itself — smaller gains.
SSC25D_PIPELINE_FRACTION = 0.25


def _collective_terms(nbytes: float, p: int, collective: str, kind: str,
                      alpha: float, beta: float) -> tuple[float, float]:
    """(latency, bandwidth) split of one collective under an override."""
    if p == 1:
        return 0.0, 0.0
    binomial = collective == "binomial" or (
        collective == "auto" and p <= 2
    )
    if binomial:
        rounds = math.ceil(math.log2(p))
        return rounds * alpha, rounds * nbytes * beta
    if kind == "bcast":
        return alpha * (math.log2(p) + p - 1), 2.0 * beta * (p - 1) * nbytes / p
    return 2.0 * alpha * math.log2(p), 2.0 * beta * (p - 1) * nbytes / p


def estimate_ssc_time(
    n: int,
    p: int,
    algorithm: str,
    n_dup: int,
    ppn: int,
    collective: str = "auto",
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
) -> float:
    """Modeled per-call time of SymmSquareCube (Algs. 3-5) — tuner stage 1.

    Composite of the §V-A recipe (2 point-to-points + 2 reductions +
    3 broadcasts on ``(n/p)^2`` blocks), an effective per-process bandwidth
    that accounts for PPN (injection cap, NIC sharing, shm peers), the
    reduction-combine rate, Ireduce posting costs, and the
    :func:`overlapped_time` pipeline transformation for ``n_dup``.
    """
    params = params or NetworkParams()
    machine = machine or MachineParams()
    block_elems = (n / p) ** 2
    block_bytes = block_elems * 8.0
    part_bytes = block_bytes / n_dup
    alpha = params.alpha
    bw = effective_collective_bandwidth(part_bytes, p, ppn, params)
    beta = 1.0 / bw
    # Reductions additionally pay the per-byte combine on the critical path.
    beta_red = 1.0 / min(bw, 4.0 / 3.0 * params.combine_bandwidth)
    bc_l, bc_w = _collective_terms(block_bytes, p, collective, "bcast",
                                   alpha, beta)
    rd_l, rd_w = _collective_terms(block_bytes, p, collective, "reduce",
                                   alpha, beta_red)
    p2p_l, p2p_w = alpha, block_bytes * beta
    latency = 3.0 * bc_l + 2.0 * rd_l + 2.0 * p2p_l
    bandwidth = 3.0 * bc_w + 2.0 * rd_w + 2.0 * p2p_w
    if algorithm == "original":
        # Alg. 3's extra transpose exchange before the second row broadcast.
        latency += p2p_l
        bandwidth += p2p_w
    if algorithm == "optimized":
        t_comm = overlapped_time(latency, bandwidth, n_dup,
                                 SSC_PIPELINE_FRACTION)
    else:
        t_comm = latency + bandwidth
        # Blocking collectives synchronize at every internal round.
        t_comm += 5.0 * math.ceil(math.log2(max(p, 2))) * params.blocking_round_gap
    t_post = 2.0 * (params.ireduce_post_base
                    + block_bytes * params.ireduce_post_per_byte)
    t_comp = 4.0 * (n / p) ** 3 / machine.process_flops(ppn)
    return t_comp + t_comm + t_post


def estimate_summa_time(
    n: int,
    p: int,
    algorithm: str = "plain",
    colors: int = 1,
    depth: int = 1,
    ppn: int = 1,
    collective: str = "auto",
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
) -> float:
    """Modeled per-call time of the SUMMA family — tuner stage 1.

    ``p`` panels, each one row broadcast + one column broadcast of a
    ``(n/p)^2`` block followed by the panel GEMM.  ``plain`` serializes
    everything and pays the blocking per-round gap; the pipelined variants
    keep a ``depth``-panel ``Ibcast`` window in flight, so the steady state
    runs at ``max(gemm, comm)`` per panel with in-flight transfers either
    fair-sharing one lane (``streaming`` — concurrent flows aggregate
    toward the NIC peak) or riding disjoint ``1/colors``-capacity lanes
    (``colored`` — full aggregation while the window is color-covered, but
    fill/drain panels run alone on a fractional lane).
    """
    params = params or NetworkParams()
    machine = machine or MachineParams()
    t_gemm = 2.0 * (n / p) ** 3 / machine.process_flops(ppn)
    if p == 1:
        return t_gemm
    block_bytes = (n / p) ** 2 * 8.0
    alpha = params.alpha
    bw = effective_collective_bandwidth(block_bytes, p, ppn, params)
    beta = 1.0 / bw
    bc_l, bc_w = _collective_terms(block_bytes, p, collective, "bcast",
                                   alpha, beta)
    if algorithm == "plain":
        gaps = 0.0
        if block_bytes / p > params.rendezvous_threshold:
            gaps = 2.0 * math.ceil(math.log2(p)) * params.blocking_round_gap
        return p * (2.0 * (bc_l + bc_w) + gaps + t_gemm)
    window = min(max(depth, 1), p)
    if colors > 1:
        agg = min(window, colors) * params.nic_bandwidth / colors
    else:
        agg = min(window * bw, params.nic_bandwidth)
    boost = max(1.0, agg / bw)
    t_fill = 2.0 * bc_l + 2.0 * bc_w / boost
    t_steady = max(t_gemm, 2.0 * bc_l / window + 2.0 * bc_w / boost)
    t = t_fill + p * t_steady
    if colors > 1:
        # Drain: the last panels run alone on a 1/colors-capacity lane.
        t += (1.0 - 1.0 / colors) * 2.0 * bc_w
    return t


def estimate_ssc25d_time(
    n: int,
    q: int,
    c: int,
    n_dup: int,
    ppn: int,
    collective: str = "auto",
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
) -> float:
    """Modeled per-call time of 2.5D SymmSquareCube (Alg. 6) — tuner stage 1.

    One grid broadcast + one allreduce + one reduce over the ``c`` layers on
    ``(n/q)^2`` blocks, plus ``2 q/c`` Cannon shift steps of neighbour
    point-to-points, plus the two Cannon multiply passes.  ``n_dup`` applies
    the self-overlap-only pipeline fraction.
    """
    params = params or NetworkParams()
    machine = machine or MachineParams()
    block_bytes = (n / q) ** 2 * 8.0
    part_bytes = block_bytes / n_dup
    alpha = params.alpha
    bw = effective_collective_bandwidth(part_bytes, c, ppn, params)
    beta = 1.0 / bw
    beta_red = 1.0 / min(bw, 4.0 / 3.0 * params.combine_bandwidth)
    bc_l, bc_w = _collective_terms(block_bytes, c, collective, "bcast",
                                   alpha, beta)
    rd_l, rd_w = _collective_terms(block_bytes, c, collective, "reduce",
                                   alpha, beta_red)
    # Allreduce ~ reduce-scatter + allgather: twice the reduce volume.
    latency = bc_l + 3.0 * rd_l
    bandwidth = bc_w + 3.0 * rd_w
    t_coll = overlapped_time(latency, bandwidth, n_dup,
                             SSC25D_PIPELINE_FRACTION)
    s = q // c
    shift_bw = effective_collective_bandwidth(block_bytes, q * q, ppn, params)
    t_cannon = 2.0 * s * (alpha + block_bytes / shift_bw)
    t_post = 2.0 * (params.ireduce_post_base
                    + block_bytes * params.ireduce_post_per_byte)
    t_comp = 4.0 * s * (n / q) ** 3 / machine.process_flops(ppn)
    return t_comp + t_coll + t_cannon + t_post
