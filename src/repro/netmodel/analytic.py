"""Closed-form alpha-beta models used by the paper's analysis (§V-A, Table IV).

The paper models the time to send an ``n``-byte message as ``alpha + n*beta``
and assumes recursive doubling for broadcast and Rabenseifner's algorithm for
reduction, giving::

    T_bcast  = alpha * (log2(p) + p - 1) + 2 * beta * (p - 1) * n / p
    T_reduce = 2 * alpha * log2(p)       + 2 * beta * (p - 1) * n / p

These functions regenerate the §V-A numbers (T_p2p = 2.324 ms etc. for
n = 27.89 MB, p = 4, beta = 1/12000 MB/s) and the "estimated" columns of
Table IV.
"""

from __future__ import annotations

import math

from repro.netmodel.params import NetworkParams
from repro.util import check_positive


def t_point_to_point(nbytes: float, alpha: float, beta: float) -> float:
    """``alpha + n*beta`` — the paper's point-to-point model."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    return alpha + nbytes * beta


def t_bcast_scatter_allgather(
    nbytes: float, p: int, alpha: float, beta: float
) -> float:
    """Long-message broadcast model (recursive-doubling / scatter-allgather).

    ``alpha*(log2(p) + p - 1) + 2*beta*(p-1)*n/p`` — §V-A of the paper.
    """
    check_positive("p", p)
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if p == 1:
        return 0.0
    return alpha * (math.log2(p) + p - 1) + 2.0 * beta * (p - 1) * nbytes / p


def t_reduce_rabenseifner(nbytes: float, p: int, alpha: float, beta: float) -> float:
    """Long-message reduction model (Rabenseifner).

    ``2*alpha*log2(p) + 2*beta*(p-1)*n/p`` — §V-A of the paper (compute term
    omitted, as in the paper).
    """
    check_positive("p", p)
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if p == 1:
        return 0.0
    return 2.0 * alpha * math.log2(p) + 2.0 * beta * (p - 1) * nbytes / p


def collective_volume_long_message(nbytes: float, p: int) -> float:
    """Per-process communicated volume ``2*(p-1)*n/p`` of the long-message
    broadcast/reduction algorithms (used to convert times to the bandwidths
    plotted in Fig. 5)."""
    check_positive("p", p)
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    return 2.0 * (p - 1) * nbytes / p


def effective_p2p_bandwidth(nbytes: float, params: NetworkParams) -> float:
    """Model-predicted single-flow bandwidth ``n / (overheads + n/flow_cap(n))``.

    This is the smooth curve behind the simulated Fig. 3 PPN=1 series; tests
    compare the simulation against it.
    """
    if nbytes <= 0:
        return 0.0
    p = params
    overhead = p.send_overhead + p.recv_overhead + p.alpha
    if nbytes > p.rendezvous_threshold:
        overhead += p.rendezvous_extra
    return nbytes / (overhead + nbytes / p.flow_cap(nbytes))


def baseline_ssc_comm_time_model(
    block_bytes: float, p: int, alpha: float, beta: float
) -> dict:
    """§V-A composite model of the baseline SymmSquareCube communication time.

    ``T = 2*(T_p2p + T_reduce) + 3*T_bcast`` with the paper's collective
    models.  Returns the individual terms too, so the §V-A experiment can
    print the same breakdown as the paper (T_p2p = 2.324e-3 etc.).
    """
    t_p2p = t_point_to_point(block_bytes, alpha, beta)
    t_bc = t_bcast_scatter_allgather(block_bytes, p, alpha, beta)
    t_rd = t_reduce_rabenseifner(block_bytes, p, alpha, beta)
    return {
        "T_p2p": t_p2p,
        "T_bcast": t_bc,
        "T_reduce": t_rd,
        "T_baseline": 2.0 * (t_p2p + t_rd) + 3.0 * t_bc,
    }
