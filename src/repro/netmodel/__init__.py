"""Deterministic network model of a Stampede2-like cluster.

The model is a *fluid-flow* abstraction calibrated against the paper's
measurements (Figs. 3, 5, 6):

* every node has a full-duplex NIC of capacity ``B_nic`` (default 12 GB/s,
  the paper's measured Omni-Path peak);
* a single message of size ``n`` can sustain at most ``flow_cap(n) =
  B_nic * n / (n + n_half)`` — a single stream only approaches the NIC peak
  for multi-megabyte messages, exactly the phenomenon Fig. 3 documents and
  the paper calls "the root motivation for overlapping communication";
* concurrent flows sharing a NIC direction split its capacity equally
  (non-work-conserving equal share: bandwidth freed by a stalled operation
  cannot push another flow beyond its own ``flow_cap``);
* each message additionally pays a latency ``alpha`` before bytes flow, and
  large messages pay a rendezvous handshake;
* intra-node traffic uses a separate shared-memory path per node.

The :class:`~repro.netmodel.fabric.Fabric` integrates these rules with the
discrete-event engine; :mod:`repro.netmodel.analytic` holds the closed-form
alpha-beta collective models the paper uses in §V-A and Table IV.
"""

from repro.netmodel.params import NetworkParams, MachineParams
from repro.netmodel.topology import Cluster, block_placement, split_placement
from repro.netmodel.fabric import Fabric, Flow
from repro.netmodel.analytic import (
    t_point_to_point,
    t_bcast_scatter_allgather,
    t_reduce_rabenseifner,
    effective_p2p_bandwidth,
    collective_volume_long_message,
)

__all__ = [
    "NetworkParams",
    "MachineParams",
    "Cluster",
    "block_placement",
    "split_placement",
    "Fabric",
    "Flow",
    "t_point_to_point",
    "t_bcast_scatter_allgather",
    "t_reduce_rabenseifner",
    "effective_p2p_bandwidth",
    "collective_volume_long_message",
]
