"""Fluid-flow network fabric integrated with the discrete-event engine.

Each message becomes a :class:`Flow`: after a latency phase, its bytes drain
at a rate recomputed every time a flow starts or finishes on a shared
resource.  Resources are per-node, per-direction NIC capacities (``tx`` /
``rx``) and a per-node shared-memory capacity (``shm``) for intra-node
traffic.

Rate rule (equal share, non-work-conserving)::

    rate(f) = min( flow_cap(f.nbytes),
                   B_nic / n_tx_flows(src_node),
                   B_nic / n_rx_flows(dst_node) )

Equal sharing models NIC arbitration among concurrent messages; *not*
redistributing a capped flow's unused share is deliberate — it reproduces the
paper's observation that a single operation cannot soak up bandwidth freed by
another operation that is stuck in a synchronization stage, which is exactly
why overlapping communications helps.
"""

from __future__ import annotations

from repro.netmodel.params import NetworkParams
from repro.netmodel.topology import Cluster
from repro.sim.engine import Engine, SimEvent
from repro.sim.faults import FaultPlan
from repro.sim.trace import SpanKind, Trace

_EPS_BYTES = 1e-6


class Flow:
    """One in-flight message's fluid state."""

    __slots__ = (
        "fid",
        "src_rank",
        "dst_rank",
        "src_node",
        "dst_node",
        "nbytes",
        "remaining",
        "rate",
        "last_t",
        "version",
        "done",
        "resources",
        "cap",
        "start_time",
        "active",
    )

    def __init__(self, fid, src_rank, dst_rank, src_node, dst_node, nbytes, cap, done):
        self.fid = fid
        self.src_rank = src_rank
        self.dst_rank = dst_rank
        self.src_node = src_node
        self.dst_node = dst_node
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.last_t = 0.0
        self.version = 0
        self.done: SimEvent = done
        self.resources: tuple = ()
        self.cap = cap
        self.start_time = 0.0
        self.active = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.fid} r{self.src_rank}->r{self.dst_rank} "
            f"{self.remaining:.0f}/{self.nbytes:.0f}B @{self.rate:.3g}B/s>"
        )


class Fabric:
    """Shared-network simulator for one cluster.

    Use :meth:`transfer` to move bytes between ranks; the returned event
    fires when the last byte arrives.  The fabric also accumulates the
    inter-node / intra-node byte counters used by the Table IV experiment.
    """

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        params: NetworkParams | None = None,
        trace: Trace | None = None,
        faults: FaultPlan | None = None,
    ):
        self.engine = engine
        self.cluster = cluster
        self.params = params or NetworkParams()
        self.trace = trace
        self.faults = faults
        if faults is not None:
            # Re-share capacities at every degradation window edge so flows
            # already in flight feel the throttle (and its lifting) mid-run.
            for when in faults.link_boundaries():
                engine.call_at(when, self._refresh_rates)
        self._flows_at: dict[tuple[str, int], set[Flow]] = {}
        self._next_fid = 0
        # Statistics (Table IV and the EXPERIMENTS report).
        self.inter_node_bytes = 0.0
        self.intra_node_bytes = 0.0
        self.inter_node_messages = 0
        self.intra_node_messages = 0
        # Busy-time integral of the union of active inter-node flows.
        self._active_inter = 0
        self._busy_since = 0.0
        self.inter_busy_time = 0.0

    # -- public API -----------------------------------------------------------

    def transfer(
        self, src_rank: int, dst_rank: int, nbytes: float, extra_latency: float = 0.0
    ) -> SimEvent:
        """Start moving ``nbytes`` from ``src_rank`` to ``dst_rank``.

        Returns an event that fires when delivery completes.  ``extra_latency``
        adds protocol costs (e.g. a rendezvous handshake) ahead of the wire
        latency.  A transfer between co-located ranks rides the node's
        shared-memory path.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if extra_latency < 0:
            raise ValueError(f"negative extra latency: {extra_latency}")
        p = self.params
        src_node = self.cluster.node_of(src_rank)
        dst_node = self.cluster.node_of(dst_rank)
        if self.faults is not None:
            extra_latency += self.faults.jitter_latency(
                src_node, dst_node, self.engine.now
            )
        done = self.engine.event(f"flow(r{src_rank}->r{dst_rank},{nbytes:.0f}B)")
        self._next_fid += 1
        if src_node == dst_node:
            latency = p.shm_alpha + extra_latency
            cap = p.shm_cap(nbytes)
            resources = ((("shm", src_node)),)
            self.intra_node_bytes += nbytes
            self.intra_node_messages += 1
        else:
            latency = p.alpha + extra_latency
            cap = p.flow_cap(nbytes)
            resources = (("tx", src_node), ("rx", dst_node), ("px", src_rank))
            self.inter_node_bytes += nbytes
            self.inter_node_messages += 1
        flow = Flow(
            self._next_fid, src_rank, dst_rank, src_node, dst_node, nbytes, cap, done
        )
        flow.resources = resources
        self.engine.call_after(latency, lambda: self._activate(flow))
        return done

    def snapshot_stats(self) -> dict:
        """Current transfer counters (bytes are cumulative since creation)."""
        return {
            "inter_node_bytes": self.inter_node_bytes,
            "intra_node_bytes": self.intra_node_bytes,
            "inter_node_messages": self.inter_node_messages,
            "intra_node_messages": self.intra_node_messages,
            "inter_busy_time": self.inter_busy_time
            + (
                (self.engine.now - self._busy_since) if self._active_inter > 0 else 0.0
            ),
        }

    # -- internals --------------------------------------------------------------

    def _flows(self, key: tuple[str, int]) -> set[Flow]:
        s = self._flows_at.get(key)
        if s is None:
            s = set()
            self._flows_at[key] = s
        return s

    def _activate(self, flow: Flow) -> None:
        flow.active = True
        flow.start_time = self.engine.now
        flow.last_t = self.engine.now
        if flow.src_node != flow.dst_node:
            if self._active_inter == 0:
                self._busy_since = self.engine.now
            self._active_inter += 1
        if flow.nbytes <= 0:
            self._complete(flow)
            return
        for key in flow.resources:
            self._flows(key).add(flow)
        self._update(flow.resources)

    def _complete(self, flow: Flow) -> None:
        flow.active = False
        flow.remaining = 0.0
        for key in flow.resources:
            self._flows_at.get(key, set()).discard(flow)
        if flow.src_node != flow.dst_node:
            self._active_inter -= 1
            if self._active_inter == 0:
                self.inter_busy_time += self.engine.now - self._busy_since
        if self.trace is not None and self.trace.enabled:
            self.trace.add(
                flow.src_rank,
                flow.start_time,
                self.engine.now,
                SpanKind.TRANSFER,
                f"flow->r{flow.dst_rank}",
                nbytes=flow.nbytes,
            )
        flow.done.succeed(None)
        self._update(flow.resources)

    def _share(self, key: tuple[str, int]) -> float:
        kind, owner = key
        count = len(self._flows_at.get(key, ()))
        if count == 0:
            return float("inf")
        if kind == "shm":
            total = self.params.shm_bandwidth
        elif kind == "px":
            total = self.params.process_injection_bandwidth
        else:
            total = self.params.nic_bandwidth
            if self.faults is not None:
                total *= self.faults.bandwidth_factor(kind, owner, self.engine.now)
        return total / count

    def _refresh_rates(self) -> None:
        """Recompute every active flow's rate (a degradation window edge)."""
        keys = tuple(k for k, flows in self._flows_at.items() if flows)
        if keys:
            self._update(keys)

    def _update(self, keys: tuple) -> None:
        """Recompute rates of every flow touching ``keys``; reschedule completions."""
        now = self.engine.now
        affected: set[Flow] = set()
        for key in keys:
            affected |= self._flows_at.get(key, set())
        shares = {key: self._share(key) for key in keys}
        for f in affected:
            new_rate = f.cap
            for key in f.resources:
                share = shares.get(key)
                if share is None:
                    share = self._share(key)
                if share < new_rate:
                    new_rate = share
            if new_rate == f.rate and f.rate > 0.0:
                continue  # unchanged binding: existing completion stays valid
            # Settle progress at the old rate.
            if f.rate > 0.0:
                f.remaining -= f.rate * (now - f.last_t)
                if f.remaining < 0.0:
                    f.remaining = 0.0
            f.last_t = now
            f.rate = new_rate
            f.version += 1
            if f.remaining <= _EPS_BYTES:
                ver = f.version
                self.engine.call_after(0.0, lambda f=f, v=ver: self._maybe_done(f, v))
            elif new_rate > 0.0:
                eta = f.remaining / new_rate
                ver = f.version
                self.engine.call_after(eta, lambda f=f, v=ver: self._maybe_done(f, v))

    def _maybe_done(self, flow: Flow, version: int) -> None:
        if not flow.active or flow.version != version:
            return  # a newer rate assignment superseded this completion
        # Settle and verify the bytes are indeed drained (guards float drift).
        flow.remaining -= flow.rate * (self.engine.now - flow.last_t)
        flow.last_t = self.engine.now
        if flow.remaining <= _EPS_BYTES * max(1.0, flow.nbytes):
            self._complete(flow)
        else:  # pragma: no cover - defensive; only reachable via float drift
            flow.version += 1
            eta = flow.remaining / flow.rate if flow.rate > 0 else 0.0
            ver = flow.version
            self.engine.call_after(eta, lambda f=flow, v=ver: self._maybe_done(f, v))
