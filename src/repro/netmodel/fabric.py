"""Fluid-flow network fabric integrated with the discrete-event engine.

Each message becomes a :class:`Flow`: after a latency phase, its bytes drain
at a rate recomputed every time a flow starts or finishes on a shared
resource.  Resources are per-node, per-direction NIC capacities (``tx`` /
``rx``) and a per-node shared-memory capacity (``shm``) for intra-node
traffic.

Rate rule (equal share, non-work-conserving)::

    rate(f) = min( flow_cap(f.nbytes),
                   B_nic / n_tx_flows(src_node),
                   B_nic / n_rx_flows(dst_node) )

Equal sharing models NIC arbitration among concurrent messages; *not*
redistributing a capped flow's unused share is deliberate — it reproduces the
paper's observation that a single operation cannot soak up bandwidth freed by
another operation that is stuck in a synchronization stage, which is exactly
why overlapping communications helps.

Batched rate resharing
----------------------
Rates depend only on which flows are active, so all the membership changes
that happen at one virtual instant (a collective posting ``P`` flows at
once, ``P`` ring-round flows finishing together) are coalesced into a
*single* recompute, run as an end-of-instant engine hook
(:meth:`~repro.sim.engine.Engine.at_instant_end`) after the instant's
activations/completions have settled.  Per recompute, every affected flow's
rate is derived once from the final membership — instead of once per
membership change — and the per-resource equal share is memoized.  This
turns the naive O(F) work *per flow event* (O(F²) per burst) into
O(affected) per burst, without changing any completion time: intermediate
rates during an instant are unobservable, because a rate only matters for
the *duration* it is in effect, and that duration is zero within an
instant.

Cross-instant share caching
---------------------------
The equal share of a resource (``total / n_flows``) only changes when the
resource's membership changes (or a fault window edge rescales ``total``).
Shares are therefore cached *across* recomputes in :attr:`Fabric._share_cache`
and invalidated per dirty key: a recompute only re-divides the resources
whose flow sets actually changed this instant, while the min-rate scan over
an affected flow's other resources hits the cache at C dict-lookup speed
(the cache is a ``__missing__`` dict, so misses compute-and-store without an
interpreted probe/branch).  Fault boundary refreshes clear the whole cache,
because ``bandwidth_factor`` is piecewise-constant between boundaries.  The
cached value is produced by the exact same expression as before
(``total / len(flows)``), so every rate — and hence every completion
timestamp — is bit-for-bit identical.

Lazy completion timers
----------------------
Each active flow tracks its exact completion time ``eta`` (recomputed on
every rate change from the same floats the naive design used, so completion
timestamps are bit-for-bit identical).  The heap entry for the completion
is only *moved* when the new ``eta`` is earlier than the scheduled one;
when a rate drop pushes ``eta`` later, the existing entry is kept and, on
firing early, hops to the current ``eta`` — one cheap re-push absorbing any
number of intervening rate drops.  Entries that must move earlier are
:meth:`~repro.sim.engine.Engine.cancel`-ed rather than left in the heap as
version-guarded no-ops, so the heap stays O(active flows) on long runs
(see ``docs/perf.md``).
"""

from __future__ import annotations

import heapq
from typing import NamedTuple

import numpy as np

from repro.netmodel.params import MAX_CHANNELS, NetworkParams
from repro.netmodel.topology import Cluster
from repro.sim.engine import _COMPACT_MIN, Engine, SimEvent
from repro.sim.faults import FaultPlan
from repro.sim.trace import SpanKind, Trace

_EPS_BYTES = 1e-6
_INF = float("inf")


class FlowRecord(NamedTuple):
    """One completed flow, as exported to :mod:`repro.analytics`.

    ``t_start`` is the instant the payload hit the wire (post latency
    already paid) and ``t_end`` the delivery of the last byte, so
    ``[t_start, t_end)`` is exactly the interval the flow occupied its link
    resources.  ``op`` is an opaque operation key — ``(cid, tag)`` for MPI
    traffic, so each collective instance (one tag per instance) and each
    p2p envelope stream gets a distinct key; ``None`` for raw
    :meth:`Fabric.transfer` calls.
    """

    fid: int
    src_rank: int
    dst_rank: int
    src_node: int
    dst_node: int
    nbytes: float
    channel: int
    t_start: float
    t_end: float
    op: object | None

# Resource keys are packed ints — ``(((ident << 2) | kind) << 3) | channel``
# — so the hot dict operations (share cache hits, dirty marks, membership
# updates) hash a small int instead of a (str, int, int) tuple.  ``ident`` is
# a node index for tx/rx/shm and a rank for px; ``channel`` is the virtual
# lane (3 bits, see :data:`repro.netmodel.params.MAX_CHANNELS`).  With
# ``num_channels=1`` every key has channel bits 0, so the packed values are
# simply 8x the pre-channel keys — same hashing, same uniqueness, same
# deterministic orderings.
_K_TX, _K_RX, _K_PX, _K_SHM = 0, 1, 2, 3
_CH_BITS = 3
assert MAX_CHANNELS <= 1 << _CH_BITS

#: ``solver="auto"`` switches to the vectorized fair-share pass at this many
#: merged flows per recompute; below it the scalar loop's lower constant
#: wins.  The two paths are bit-for-bit identical (the vector pass only
#: replaces the min-reduction; settle/eta arithmetic stays scalar).
_VEC_MIN_FLOWS = 24


class Flow:
    """One in-flight message's fluid state."""

    __slots__ = (
        "fid",
        "src_rank",
        "dst_rank",
        "src_node",
        "dst_node",
        "nbytes",
        "remaining",
        "rate",
        "last_t",
        "eta",
        "done_cb",
        "done_args",
        "resources",
        "cap",
        "start_time",
        "active",
        "timer",
        "rec_node",
        "channel",
        "op",
    )

    def __init__(self, fid, src_rank, dst_rank, src_node, dst_node, nbytes, cap,
                 done_cb, done_args):
        self.fid = fid
        self.src_rank = src_rank
        self.dst_rank = dst_rank
        self.src_node = src_node
        self.dst_node = dst_node
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.last_t = 0.0
        self.eta = _INF  # exact completion time under the current rate
        self.done_cb = done_cb
        self.done_args = done_args
        self.resources: tuple = ()
        self.cap = cap
        self.start_time = 0.0
        self.active = False
        self.timer: list | None = None  # pending completion heap entry
        self.rec_node = None  # recording: this flow's K_FLOW graph node
        self.channel = 0  # virtual lane the flow's shares come from
        self.op = None    # opaque operation key ((cid, tag)) for analytics

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.fid} r{self.src_rank}->r{self.dst_rank} "
            f"{self.remaining:.0f}/{self.nbytes:.0f}B @{self.rate:.3g}B/s>"
        )


class _ShareCache(dict):
    """Per-resource equal-share cache, valid across recomputes.

    ``cache[key]`` returns the resource's current equal share; a miss
    computes ``total / len(flows)`` from the live membership and stores it.
    The fabric invalidates exactly the dirty keys each instant (membership
    changed) and clears the cache at fault window edges (``total`` changed).
    """

    __slots__ = ("fabric",)

    def __init__(self, fabric: "Fabric"):
        super().__init__()
        self.fabric = fabric

    def __missing__(self, key):
        fab = self.fabric
        fset = fab._flows_at.get(key)
        if not fset:
            share = _INF
        else:
            kind = (key >> _CH_BITS) & 3
            params = fab.params
            if kind == _K_SHM:
                total = params.shm_bandwidth
            elif kind == _K_PX:
                total = params.process_injection_bandwidth
            else:
                total = params.nic_bandwidth
                faults = fab.faults
                if faults is not None:
                    total *= faults.bandwidth_factor(
                        "tx" if kind == _K_TX else "rx",
                        key >> (_CH_BITS + 2), fab.engine.now,
                    )
            # Virtual lane: this channel owns its capacity fraction.  The
            # single-channel fraction is exactly 1.0, so the scaling is
            # skipped and the division below is the unsplit model's.
            frac = fab._ch_frac[key & 7]
            if frac != 1.0:
                total *= frac
            share = total / len(fset)
        self[key] = share
        return share


class Fabric:
    """Shared-network simulator for one cluster.

    Use :meth:`transfer` to move bytes between ranks; the returned event
    fires when the last byte arrives.  The fabric also accumulates the
    inter-node / intra-node byte counters used by the Table IV experiment.
    """

    # Class-level per-channel traffic aggregates, mirroring
    # Engine._agg_* : worker processes of a ``--jobs N`` grid sweep report
    # these via ``aggregate_stats()`` so the harness can merge per-channel
    # byte/flow counters byte-identically to a serial run.  Updated only by
    # :meth:`_flush_aggregate` (under ``Engine._agg_lock``, once per engine
    # run) rather than per transfer — fabrics run concurrently under the
    # tuning service and unlocked per-transfer ``+=`` would lose updates.
    # Byte counts are integral floats, so the delta sums are exact no
    # matter how flushes interleave.
    _agg_channel_bytes: list = [0.0] * MAX_CHANNELS
    _agg_channel_messages: list = [0] * MAX_CHANNELS

    @classmethod
    def reset_aggregate_stats(cls) -> None:
        cls._agg_channel_bytes = [0.0] * MAX_CHANNELS
        cls._agg_channel_messages = [0] * MAX_CHANNELS

    @classmethod
    def aggregate_stats(cls) -> dict:
        return {
            "channel_bytes": list(cls._agg_channel_bytes),
            "channel_messages": list(cls._agg_channel_messages),
        }

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        params: NetworkParams | None = None,
        trace: Trace | None = None,
        faults: FaultPlan | None = None,
        solver: str = "scalar",
    ):
        self.engine = engine
        self.cluster = cluster
        self.params = params or NetworkParams()
        # Fair-share solver: "scalar" (per-flow Python loop), "vector"
        # (numpy pass over the whole merged flow set), or "auto" (vector
        # above _VEC_MIN_FLOWS).  All three produce identical rates, etas
        # and event orderings — see tests/test_fabric_conservation.py.
        if solver not in ("scalar", "vector", "auto"):
            raise ValueError(f"solver must be scalar|vector|auto: {solver!r}")
        self.solver = solver
        self._vec_min = (2 if solver == "vector"
                         else _VEC_MIN_FLOWS if solver == "auto" else None)
        # Per-rank precomputation for the transfer_cb hot path: node lookup
        # without a method call, packed-int resource keys ready to use.
        placement = tuple(
            cluster.node_of(r) for r in range(cluster.num_ranks)
        )
        self._placement = placement
        nranks_on: dict[int, int] = {}
        for n in placement:
            nranks_on[n] = nranks_on.get(n, 0) + 1
        p = self.params
        # On a single-rank node the px flow set equals the tx flow set, so
        # whichever of the two capacities is smaller always yields the
        # smaller share — the other resource can never bind and is dropped
        # from the flow's resource tuple (pure wall-clock: the min-rate is
        # unchanged).  Faults rescale tx/rx, so with a fault plan attached
        # both are kept.
        drop_tx = faults is None and p.process_injection_bandwidth < p.nic_bandwidth
        drop_px = faults is None and p.process_injection_bandwidth >= p.nic_bandwidth
        # The channel split applies the same fraction to every resource kind,
        # so the single-rank-node tx/px dominance argument holds lane by lane
        # and the key tables are simply replicated per channel.
        nch = p.num_channels
        self._nch = nch
        self._ch_frac = p.channel_fractions()
        rx_keys, shm_ress, src_pfxs = [], [], []
        for ch in range(nch):
            rx_keys.append(tuple(
                (((n << 2) | _K_RX) << _CH_BITS) | ch for n in placement
            ))
            shm_ress.append(tuple(
                ((((n << 2) | _K_SHM) << _CH_BITS) | ch,) for n in placement
            ))
            src_pfx = []
            for r, n in enumerate(placement):
                tx = (((n << 2) | _K_TX) << _CH_BITS) | ch
                px = (((r << 2) | _K_PX) << _CH_BITS) | ch
                if nranks_on[n] == 1 and drop_tx:
                    src_pfx.append((px,))
                elif nranks_on[n] == 1 and drop_px:
                    src_pfx.append((tx,))
                else:
                    src_pfx.append((tx, px))
            src_pfxs.append(tuple(src_pfx))
        self._rx_keys = tuple(rx_keys)
        self._shm_ress = tuple(shm_ress)
        self._src_pfxs = tuple(src_pfxs)
        # Channel-0 aliases keep the hot path one indexing step shorter for
        # the (overwhelmingly common) default-channel transfer.
        self._rx_key = self._rx_keys[0]
        self._shm_res = self._shm_ress[0]
        self._src_pfx = self._src_pfxs[0]
        self.trace = trace
        self.faults = faults
        if faults is not None:
            # Re-share capacities at every degradation window edge so flows
            # already in flight feel the throttle (and its lifting) mid-run.
            for when in faults.link_boundaries():
                engine.schedule_at(when, self._refresh_rates)
        # Per-resource membership as fid->Flow dicts: C-speed unions via
        # dict.update and deterministic ordering via sorted(int fids).
        self._flows_at: dict[tuple[str, int], dict[int, Flow]] = {}
        self._share_cache = _ShareCache(self)
        self._next_fid = 0
        # Membership changes awaiting the coalesced recompute (a dict, not a
        # set, so iteration order is insertion order — independent of the
        # interpreter's hash seed).
        self._dirty: dict[int, None] = {}
        self._armed = False  # end-of-instant recompute hook registered
        # Same-instant activation batches: arrival time -> flows, drained by
        # one _activate_batch event per distinct arrival instant.
        self._act_pending: dict[float, list[Flow]] = {}
        # Statistics (Table IV and the EXPERIMENTS report).
        self.inter_node_bytes = 0.0
        self.intra_node_bytes = 0.0
        self.inter_node_messages = 0
        self.intra_node_messages = 0
        # Per-channel traffic counters (instance + process-wide aggregate).
        self.channel_bytes = [0.0] * nch
        self.channel_messages = [0] * nch
        # High-water marks already reported to the class aggregates; the
        # delta is flushed at the end of every engine run (see
        # Engine.aggregate_flushers) so the per-transfer hot path never
        # touches shared class state.
        self._flushed_channel_bytes = [0.0] * nch
        self._flushed_channel_messages = [0] * nch
        engine.aggregate_flushers.append(self._flush_aggregate)
        # Busy-time integral of the union of active inter-node flows.
        self._active_inter = 0
        self._busy_since = 0.0
        self.inter_busy_time = 0.0
        # Flow-record export for repro.analytics: one FlowRecord per
        # completed flow when a live trace is attached (observability runs
        # only — untraced sweeps pay nothing).  See :meth:`flow_records`.
        self.flow_log: list[FlowRecord] | None = (
            [] if trace is not None and trace.enabled else None
        )

    def _flush_aggregate(self) -> None:
        """Report this fabric's traffic deltas to the class-wide aggregates.

        Called by the engine at the end of every :meth:`Engine.run` (this
        fabric registered itself in ``engine.aggregate_flushers``).  The
        instance counters are the source of truth; only the delta since the
        last flush is added, under ``Engine._agg_lock``, so concurrent
        worlds (one per tuning-service search thread) never lose updates.
        """
        cb, cm = self.channel_bytes, self.channel_messages
        fb, fm = self._flushed_channel_bytes, self._flushed_channel_messages
        with Engine._agg_lock:
            ab = Fabric._agg_channel_bytes
            am = Fabric._agg_channel_messages
            for ch in range(self._nch):
                ab[ch] += cb[ch] - fb[ch]
                am[ch] += cm[ch] - fm[ch]
        self._flushed_channel_bytes = list(cb)
        self._flushed_channel_messages = list(cm)

    # -- public API -----------------------------------------------------------

    def transfer(
        self, src_rank: int, dst_rank: int, nbytes: float,
        extra_latency: float = 0.0, channel: int = 0,
    ) -> SimEvent:
        """Start moving ``nbytes`` from ``src_rank`` to ``dst_rank``.

        Returns an event that fires when delivery completes.  ``extra_latency``
        adds protocol costs (e.g. a rendezvous handshake) ahead of the wire
        latency.  A transfer between co-located ranks rides the node's
        shared-memory path.  ``channel`` selects the virtual lane the flow's
        bandwidth shares come from (see ``NetworkParams.num_channels``).
        """
        done = self.engine.event("flow")
        self.transfer_cb(src_rank, dst_rank, nbytes, extra_latency,
                         done.succeed, channel=channel)
        return done

    def transfer_cb(
        self,
        src_rank: int,
        dst_rank: int,
        nbytes: float,
        extra_latency: float,
        done_cb,
        *done_args,
        channel: int = 0,
        op: object | None = None,
    ) -> None:
        """Like :meth:`transfer`, but invokes ``done_cb(*done_args)`` on
        delivery instead of allocating a :class:`SimEvent` — the transport
        layer's per-message fast path.  ``op`` is an opaque operation key
        (the transport passes ``(cid, tag)``) carried through to the flow
        log for :mod:`repro.analytics`; it does not affect timing.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if extra_latency < 0:
            raise ValueError(f"negative extra latency: {extra_latency}")
        p = self.params
        placement = self._placement
        src_node = placement[src_rank]
        dst_node = placement[dst_rank]
        if self.faults is not None:
            extra_latency += self.faults.jitter_latency(
                src_node, dst_node, self.engine.now
            )
        self._next_fid += 1
        if channel:  # non-default lane: validate once, per-channel key tables
            if not 0 <= channel < self._nch:
                raise ValueError(
                    f"channel {channel} outside [0, {self._nch}) — the fabric "
                    f"has num_channels={self._nch}"
                )
            shm_res = self._shm_ress[channel]
            src_pfx = self._src_pfxs[channel]
            rx_key = self._rx_keys[channel]
        else:
            shm_res = self._shm_res
            src_pfx = self._src_pfx
            rx_key = self._rx_key
        if src_node == dst_node:
            latency = p.shm_alpha + extra_latency
            cap = p.shm_cap(nbytes)
            resources = shm_res[src_rank]
            self.intra_node_bytes += nbytes
            self.intra_node_messages += 1
        else:
            latency = p.alpha + extra_latency
            cap = p.flow_cap(nbytes)
            resources = src_pfx[src_rank] + (rx_key[dst_rank],)
            self.inter_node_bytes += nbytes
            self.inter_node_messages += 1
        self.channel_bytes[channel] += nbytes
        self.channel_messages[channel] += 1
        flow = Flow(
            self._next_fid, src_rank, dst_rank, src_node, dst_node, nbytes, cap,
            done_cb, done_args,
        )
        flow.resources = resources
        if channel:
            flow.channel = channel
        if op is not None:
            flow.op = op
        engine = self.engine
        rec = engine.recorder
        if rec is not None:
            if self.faults is not None:
                rec.invalidate("fault plan attached to the fabric")
            if channel:
                # The recorded graph has no channel dimension: a replay
                # would re-drive this flow on lane 0 and reshape every
                # shared rate.
                rec.invalidate("multi-channel flow")
            post = engine._rec_ctx
            if post is None:
                post = rec.const(engine.now)
            flow.rec_node = rec.flow(src_rank, dst_rank, nbytes,
                                     extra_latency, post)
            # The fabric's internal events (activation batches, completion
            # timers) are replayed by the fabric itself — suppress graph
            # nodes for the scheduling below.
            engine._rec_suspend = True
        if nbytes > 0:
            # Coalesce same-instant activations into one engine event: a
            # nonzero flow's activation is unobservable until the
            # end-of-instant recompute, so a wave of P postings with equal
            # arrival times needs one dispatch, not P.  Zero-byte flows
            # complete (and run user callbacks) at activation, so they keep
            # their own event to preserve intra-instant ordering.
            when = engine.now + latency
            batch = self._act_pending.get(when)
            if batch is None:
                self._act_pending[when] = batch = [flow]
                engine.schedule_at(when, self._activate_batch, when)
            else:
                batch.append(flow)
        else:
            engine.schedule_after(latency, self._activate, flow)
        if rec is not None:
            engine._rec_suspend = False

    def snapshot_stats(self) -> dict:
        """Current transfer counters (bytes are cumulative since creation).

        ``channel_bytes`` / ``channel_messages`` split the same traffic per
        virtual lane (length ``num_channels``; with one channel the single
        entry equals the inter+intra totals).
        """
        return {
            "inter_node_bytes": self.inter_node_bytes,
            "intra_node_bytes": self.intra_node_bytes,
            "inter_node_messages": self.inter_node_messages,
            "intra_node_messages": self.intra_node_messages,
            "inter_busy_time": self.inter_busy_time
            + (
                (self.engine.now - self._busy_since) if self._active_inter > 0 else 0.0
            ),
            "channel_bytes": list(self.channel_bytes),
            "channel_messages": list(self.channel_messages),
        }

    def flow_records(self) -> list["FlowRecord"]:
        """Completed flows in completion order (see :class:`FlowRecord`).

        Only collected while a live trace is attached (the fabric is then
        already in observability mode); untraced runs return ``[]`` so
        callers can probe unconditionally.
        """
        return list(self.flow_log) if self.flow_log is not None else []

    # -- internals --------------------------------------------------------------

    def _activate_batch(self, when: float) -> None:
        """Activate every nonzero flow that arrived at this exact instant."""
        flows = self._act_pending.pop(when)
        now = self.engine.now
        flows_at = self._flows_at
        dirty = self._dirty
        for flow in flows:
            flow.active = True
            flow.start_time = now
            flow.last_t = now
            if flow.src_node != flow.dst_node:
                if self._active_inter == 0:
                    self._busy_since = now
                self._active_inter += 1
            fid = flow.fid
            for key in flow.resources:
                s = flows_at.get(key)
                if s is None:
                    flows_at[key] = {fid: flow}
                else:
                    s[fid] = flow
                dirty[key] = None
        if not self._armed:
            self._armed = True
            self.engine.at_instant_end(self._recompute)

    def _activate(self, flow: Flow) -> None:
        flow.active = True
        flow.start_time = self.engine.now
        flow.last_t = self.engine.now
        if flow.src_node != flow.dst_node:
            if self._active_inter == 0:
                self._busy_since = self.engine.now
            self._active_inter += 1
        if flow.nbytes <= 0:
            self._complete(flow)
            return
        flows_at = self._flows_at
        fid = flow.fid
        dirty = self._dirty  # _touch inlined: membership + dirty in one pass
        for key in flow.resources:
            s = flows_at.get(key)
            if s is None:
                flows_at[key] = {fid: flow}
            else:
                s[fid] = flow
            dirty[key] = None
        if not self._armed:
            self._armed = True
            self.engine.at_instant_end(self._recompute)

    def _complete(self, flow: Flow) -> None:
        flow.active = False
        flow.remaining = 0.0
        if flow.timer is not None:
            self.engine.cancel(flow.timer)
            flow.timer = None
        flows_at = self._flows_at
        fid = flow.fid
        dirty = self._dirty  # _touch inlined, as in _activate
        for key in flow.resources:
            s = flows_at.get(key)
            if s is not None:
                s.pop(fid, None)
                if not s:
                    del flows_at[key]  # prune: keep _refresh_rates O(active)
            dirty[key] = None
        if not self._armed:
            self._armed = True
            self.engine.at_instant_end(self._recompute)
        if flow.src_node != flow.dst_node:
            self._active_inter -= 1
            if self._active_inter == 0:
                self.inter_busy_time += self.engine.now - self._busy_since
        if self.trace is not None and self.trace.enabled:
            # The link (src/dst node) and lane ids let repro.analytics
            # attribute this span to a per-(link, channel) timeline without
            # re-deriving them from packed resource keys.
            self.trace.add(
                flow.src_rank,
                flow.start_time,
                self.engine.now,
                SpanKind.TRANSFER,
                f"flow->r{flow.dst_rank}",
                nbytes=flow.nbytes,
                src_node=flow.src_node,
                dst_node=flow.dst_node,
                channel=flow.channel,
            )
        if self.flow_log is not None:
            self.flow_log.append(FlowRecord(
                fid, flow.src_rank, flow.dst_rank, flow.src_node,
                flow.dst_node, flow.nbytes, flow.channel, flow.start_time,
                self.engine.now, flow.op,
            ))
        if flow.rec_node is not None:
            # Everything caused by this delivery chains off the flow's
            # graph node, whose replayed value is the fabric's own answer.
            self.engine._rec_ctx = flow.rec_node
        flow.done_cb(*flow.done_args)

    def _touch(self, keys: tuple) -> None:
        """Mark resources dirty; coalesce into one end-of-instant recompute."""
        dirty = self._dirty
        for key in keys:
            dirty[key] = None
        if not self._armed:
            self._armed = True
            self.engine.at_instant_end(self._recompute)

    def _recompute(self) -> None:
        """The coalesced recompute: one `_update` over this instant's keys."""
        self._armed = False
        keys = tuple(self._dirty)
        self._dirty.clear()
        # Membership of exactly these keys changed this instant; drop their
        # cached shares so _update re-divides them (others stay valid).
        cache = self._share_cache
        for key in keys:
            cache.pop(key, None)
        self._update(keys)

    def _refresh_rates(self) -> None:
        """Recompute every active flow's rate (a degradation window edge)."""
        self._share_cache.clear()  # bandwidth factors just changed
        keys = tuple(self._flows_at)  # empty sets are pruned eagerly
        if keys:
            self._update(keys)

    def _update(self, keys: tuple) -> None:
        """Recompute rates of every flow touching ``keys``; move completions."""
        now = self.engine.now
        flows_at = self._flows_at
        if len(keys) == 1:
            s = flows_at.get(keys[0])
            merged = dict(s) if s else {}
        else:
            merged: dict[int, Flow] = {}
            update = merged.update
            for key in keys:
                s = flows_at.get(key)
                if s:
                    update(s)
        if len(merged) > 1:  # single-flow updates dominate; skip the sort
            flows = [merged[fid] for fid in sorted(merged)]
        else:
            flows = merged.values()
        shares = self._share_cache
        vec_rates = None
        if self._vec_min is not None and len(merged) >= self._vec_min:
            vec_rates = self._min_rates_vec(flows)
        engine = self.engine
        maybe_done = self._maybe_done
        # Timer cancel/reschedule is inlined below (identical counter and
        # heap semantics to Engine.cancel/schedule_at) — this loop runs
        # without reentrancy, so no callback can observe the intermediate
        # engine state.
        heap = engine._heap
        heappush = heapq.heappush
        for i, f in enumerate(flows):
            if vec_rates is not None:
                new_rate = vec_rates[i]
            else:
                new_rate = f.cap
                for key in f.resources:
                    share = shares[key]
                    if share < new_rate:
                        new_rate = share
            rate = f.rate
            if new_rate == rate and rate > 0.0:
                continue  # unchanged binding: existing completion stays valid
            # Settle progress at the old rate.
            if rate > 0.0:
                f.remaining -= rate * (now - f.last_t)
                if f.remaining < 0.0:
                    f.remaining = 0.0
            f.last_t = now
            f.rate = new_rate
            if f.remaining <= _EPS_BYTES:
                eta = now
            elif new_rate > 0.0:
                eta = now + f.remaining / new_rate
            else:
                # Throttled to zero: completion unschedulable until a rate
                # returns.  A pending early timer hops harmlessly via the
                # eta-is-inf guard in _maybe_done.
                f.eta = _INF
                continue
            f.eta = eta
            t = f.timer
            if t is not None:
                if t[0] <= eta:
                    # Rate dropped (or held): the earlier entry stays and
                    # hops to the new eta when it fires — no heap traffic.
                    continue
                # Superseded by an *earlier* completion: inline cancel.  A
                # flow's timer reference is cleared before any callback runs,
                # so the entry here is always live.
                t[2] = None
                t[3] = ()
                engine.events_cancelled += 1
                nd = engine._ndead = engine._ndead + 1
                if nd * 2 > len(heap) >= _COMPACT_MIN:
                    engine._compact()
            engine._seq = seq = engine._seq + 1
            f.timer = entry = [eta, seq, maybe_done, (f,)]
            heappush(heap, entry)

    def _min_rates_vec(self, flows) -> list:
        """Vectorized fair-share pass: min over each flow's resource shares.

        One array pass replaces the per-flow Python min-loop: the flows'
        resource keys are flattened, deduplicated with ``np.unique`` (one
        :class:`_ShareCache` probe per *distinct* resource instead of one
        per membership), gathered through the inverse index and segment-
        min-reduced per flow.  ``min`` over IEEE doubles is exact and
        order-free, so the returned rates are bit-for-bit the scalar
        loop's; the caller's settle/eta arithmetic is untouched.
        """
        shares = self._share_cache
        res_lists = [f.resources for f in flows]
        nf = len(res_lists)
        lens = np.fromiter((len(r) for r in res_lists), dtype=np.intp,
                           count=nf)
        flat = np.fromiter((k for r in res_lists for k in r), dtype=np.int64,
                           count=int(lens.sum()))
        uniq, inv = np.unique(flat, return_inverse=True)
        vals = np.fromiter((shares[int(k)] for k in uniq), dtype=np.float64,
                           count=len(uniq))
        offsets = np.zeros(nf, dtype=np.intp)
        np.cumsum(lens[:-1], out=offsets[1:])
        mins = np.minimum.reduceat(vals[inv], offsets)
        caps = np.fromiter((f.cap for f in flows), dtype=np.float64, count=nf)
        return np.minimum(caps, mins).tolist()

    def _maybe_done(self, flow: Flow) -> None:
        flow.timer = None
        if not flow.active:
            return
        eta = flow.eta
        engine = self.engine
        now = engine.now
        if now < eta:
            # Fired at a superseded (earlier) eta: hop to the exact current
            # one.  eta is absolute, so no float drift accumulates.  The
            # re-push is inlined (schedule_at semantics; eta > now here).
            if eta < _INF:
                engine._seq = seq = engine._seq + 1
                flow.timer = entry = [eta, seq, self._maybe_done, (flow,)]
                heapq.heappush(engine._heap, entry)
            return
        # Settle and verify the bytes are indeed drained (guards float drift).
        flow.remaining -= flow.rate * (now - flow.last_t)
        flow.last_t = now
        if flow.remaining <= _EPS_BYTES * max(1.0, flow.nbytes):
            self._complete(flow)
        else:  # pragma: no cover - defensive; only reachable via float drift
            eta = now + flow.remaining / flow.rate if flow.rate > 0 else now
            flow.eta = eta
            flow.timer = self.engine.schedule_at(eta, self._maybe_done, flow)
