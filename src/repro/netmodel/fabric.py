"""Fluid-flow network fabric integrated with the discrete-event engine.

Each message becomes a :class:`Flow`: after a latency phase, its bytes drain
at a rate recomputed every time a flow starts or finishes on a shared
resource.  Resources are per-node, per-direction NIC capacities (``tx`` /
``rx``) and a per-node shared-memory capacity (``shm``) for intra-node
traffic.

Rate rule (equal share, non-work-conserving)::

    rate(f) = min( flow_cap(f.nbytes),
                   B_nic / n_tx_flows(src_node),
                   B_nic / n_rx_flows(dst_node) )

Equal sharing models NIC arbitration among concurrent messages; *not*
redistributing a capped flow's unused share is deliberate — it reproduces the
paper's observation that a single operation cannot soak up bandwidth freed by
another operation that is stuck in a synchronization stage, which is exactly
why overlapping communications helps.

Batched rate resharing
----------------------
Rates depend only on which flows are active, so all the membership changes
that happen at one virtual instant (a collective posting ``P`` flows at
once, ``P`` ring-round flows finishing together) are coalesced into a
*single* recompute, run as an end-of-instant engine hook
(:meth:`~repro.sim.engine.Engine.at_instant_end`) after the instant's
activations/completions have settled.  Per recompute, every affected flow's
rate is derived once from the final membership — instead of once per
membership change — and the per-resource equal share is memoized.  This
turns the naive O(F) work *per flow event* (O(F²) per burst) into
O(affected) per burst, without changing any completion time: intermediate
rates during an instant are unobservable, because a rate only matters for
the *duration* it is in effect, and that duration is zero within an
instant.

Lazy completion timers
----------------------
Each active flow tracks its exact completion time ``eta`` (recomputed on
every rate change from the same floats the naive design used, so completion
timestamps are bit-for-bit identical).  The heap entry for the completion
is only *moved* when the new ``eta`` is earlier than the scheduled one;
when a rate drop pushes ``eta`` later, the existing entry is kept and, on
firing early, hops to the current ``eta`` — one cheap re-push absorbing any
number of intervening rate drops.  Entries that must move earlier are
:meth:`~repro.sim.engine.Engine.cancel`-ed rather than left in the heap as
version-guarded no-ops, so the heap stays O(active flows) on long runs
(see ``docs/perf.md``).
"""

from __future__ import annotations

from repro.netmodel.params import NetworkParams
from repro.netmodel.topology import Cluster
from repro.sim.engine import Engine, SimEvent
from repro.sim.faults import FaultPlan
from repro.sim.trace import SpanKind, Trace

_EPS_BYTES = 1e-6
_INF = float("inf")


class Flow:
    """One in-flight message's fluid state."""

    __slots__ = (
        "fid",
        "src_rank",
        "dst_rank",
        "src_node",
        "dst_node",
        "nbytes",
        "remaining",
        "rate",
        "last_t",
        "eta",
        "done_cb",
        "done_args",
        "resources",
        "cap",
        "start_time",
        "active",
        "timer",
    )

    def __init__(self, fid, src_rank, dst_rank, src_node, dst_node, nbytes, cap,
                 done_cb, done_args):
        self.fid = fid
        self.src_rank = src_rank
        self.dst_rank = dst_rank
        self.src_node = src_node
        self.dst_node = dst_node
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.last_t = 0.0
        self.eta = _INF  # exact completion time under the current rate
        self.done_cb = done_cb
        self.done_args = done_args
        self.resources: tuple = ()
        self.cap = cap
        self.start_time = 0.0
        self.active = False
        self.timer: list | None = None  # pending completion heap entry

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.fid} r{self.src_rank}->r{self.dst_rank} "
            f"{self.remaining:.0f}/{self.nbytes:.0f}B @{self.rate:.3g}B/s>"
        )


class Fabric:
    """Shared-network simulator for one cluster.

    Use :meth:`transfer` to move bytes between ranks; the returned event
    fires when the last byte arrives.  The fabric also accumulates the
    inter-node / intra-node byte counters used by the Table IV experiment.
    """

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        params: NetworkParams | None = None,
        trace: Trace | None = None,
        faults: FaultPlan | None = None,
    ):
        self.engine = engine
        self.cluster = cluster
        self.params = params or NetworkParams()
        self.trace = trace
        self.faults = faults
        if faults is not None:
            # Re-share capacities at every degradation window edge so flows
            # already in flight feel the throttle (and its lifting) mid-run.
            for when in faults.link_boundaries():
                engine.schedule_at(when, self._refresh_rates)
        self._flows_at: dict[tuple[str, int], set[Flow]] = {}
        self._next_fid = 0
        # Membership changes awaiting the coalesced recompute (a dict, not a
        # set, so iteration order is insertion order — independent of the
        # interpreter's hash seed).
        self._dirty: dict[tuple[str, int], None] = {}
        self._armed = False  # end-of-instant recompute hook registered
        # Statistics (Table IV and the EXPERIMENTS report).
        self.inter_node_bytes = 0.0
        self.intra_node_bytes = 0.0
        self.inter_node_messages = 0
        self.intra_node_messages = 0
        # Busy-time integral of the union of active inter-node flows.
        self._active_inter = 0
        self._busy_since = 0.0
        self.inter_busy_time = 0.0

    # -- public API -----------------------------------------------------------

    def transfer(
        self, src_rank: int, dst_rank: int, nbytes: float, extra_latency: float = 0.0
    ) -> SimEvent:
        """Start moving ``nbytes`` from ``src_rank`` to ``dst_rank``.

        Returns an event that fires when delivery completes.  ``extra_latency``
        adds protocol costs (e.g. a rendezvous handshake) ahead of the wire
        latency.  A transfer between co-located ranks rides the node's
        shared-memory path.
        """
        done = self.engine.event("flow")
        self.transfer_cb(src_rank, dst_rank, nbytes, extra_latency, done.succeed)
        return done

    def transfer_cb(
        self,
        src_rank: int,
        dst_rank: int,
        nbytes: float,
        extra_latency: float,
        done_cb,
        *done_args,
    ) -> None:
        """Like :meth:`transfer`, but invokes ``done_cb(*done_args)`` on
        delivery instead of allocating a :class:`SimEvent` — the transport
        layer's per-message fast path.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if extra_latency < 0:
            raise ValueError(f"negative extra latency: {extra_latency}")
        p = self.params
        cluster = self.cluster
        src_node = cluster.node_of(src_rank)
        dst_node = cluster.node_of(dst_rank)
        if self.faults is not None:
            extra_latency += self.faults.jitter_latency(
                src_node, dst_node, self.engine.now
            )
        self._next_fid += 1
        if src_node == dst_node:
            latency = p.shm_alpha + extra_latency
            cap = p.shm_cap(nbytes)
            resources = ((("shm", src_node)),)
            self.intra_node_bytes += nbytes
            self.intra_node_messages += 1
        else:
            latency = p.alpha + extra_latency
            cap = p.flow_cap(nbytes)
            resources = (("tx", src_node), ("rx", dst_node), ("px", src_rank))
            self.inter_node_bytes += nbytes
            self.inter_node_messages += 1
        flow = Flow(
            self._next_fid, src_rank, dst_rank, src_node, dst_node, nbytes, cap,
            done_cb, done_args,
        )
        flow.resources = resources
        self.engine.schedule_after(latency, self._activate, flow)

    def snapshot_stats(self) -> dict:
        """Current transfer counters (bytes are cumulative since creation)."""
        return {
            "inter_node_bytes": self.inter_node_bytes,
            "intra_node_bytes": self.intra_node_bytes,
            "inter_node_messages": self.inter_node_messages,
            "intra_node_messages": self.intra_node_messages,
            "inter_busy_time": self.inter_busy_time
            + (
                (self.engine.now - self._busy_since) if self._active_inter > 0 else 0.0
            ),
        }

    # -- internals --------------------------------------------------------------

    def _activate(self, flow: Flow) -> None:
        flow.active = True
        flow.start_time = self.engine.now
        flow.last_t = self.engine.now
        if flow.src_node != flow.dst_node:
            if self._active_inter == 0:
                self._busy_since = self.engine.now
            self._active_inter += 1
        if flow.nbytes <= 0:
            self._complete(flow)
            return
        flows_at = self._flows_at
        for key in flow.resources:
            s = flows_at.get(key)
            if s is None:
                flows_at[key] = {flow}
            else:
                s.add(flow)
        self._touch(flow.resources)

    def _complete(self, flow: Flow) -> None:
        flow.active = False
        flow.remaining = 0.0
        if flow.timer is not None:
            self.engine.cancel(flow.timer)
            flow.timer = None
        flows_at = self._flows_at
        for key in flow.resources:
            s = flows_at.get(key)
            if s is not None:
                s.discard(flow)
                if not s:
                    del flows_at[key]  # prune: keep _refresh_rates O(active)
        if flow.src_node != flow.dst_node:
            self._active_inter -= 1
            if self._active_inter == 0:
                self.inter_busy_time += self.engine.now - self._busy_since
        if self.trace is not None and self.trace.enabled:
            self.trace.add(
                flow.src_rank,
                flow.start_time,
                self.engine.now,
                SpanKind.TRANSFER,
                f"flow->r{flow.dst_rank}",
                nbytes=flow.nbytes,
            )
        flow.done_cb(*flow.done_args)
        self._touch(flow.resources)

    def _touch(self, keys: tuple) -> None:
        """Mark resources dirty; coalesce into one end-of-instant recompute."""
        dirty = self._dirty
        for key in keys:
            dirty[key] = None
        if not self._armed:
            self._armed = True
            self.engine.at_instant_end(self._recompute)

    def _recompute(self) -> None:
        """The coalesced recompute: one `_update` over this instant's keys."""
        self._armed = False
        keys = tuple(self._dirty)
        self._dirty.clear()
        self._update(keys)

    def _refresh_rates(self) -> None:
        """Recompute every active flow's rate (a degradation window edge)."""
        keys = tuple(self._flows_at)  # empty sets are pruned eagerly
        if keys:
            self._update(keys)

    def _update(self, keys: tuple) -> None:
        """Recompute rates of every flow touching ``keys``; move completions."""
        now = self.engine.now
        flows_at = self._flows_at
        affected: set[Flow] = set()
        for key in keys:
            s = flows_at.get(key)
            if s:
                affected |= s
        if len(affected) > 1:  # single-flow updates dominate; skip the sort
            affected = sorted(affected, key=_by_fid)
        shares: dict = {}
        engine = self.engine
        maybe_done = self._maybe_done
        params = self.params
        faults = self.faults
        for f in affected:
            new_rate = f.cap
            for key in f.resources:
                share = shares.get(key)
                if share is None:
                    # Equal share of the resource's capacity among the flows
                    # currently bound to it (memoized for this recompute).
                    fset = flows_at.get(key)
                    if not fset:
                        share = _INF
                    else:
                        kind = key[0]
                        if kind == "shm":
                            total = params.shm_bandwidth
                        elif kind == "px":
                            total = params.process_injection_bandwidth
                        else:
                            total = params.nic_bandwidth
                            if faults is not None:
                                total *= faults.bandwidth_factor(
                                    kind, key[1], now
                                )
                        share = total / len(fset)
                    shares[key] = share
                if share < new_rate:
                    new_rate = share
            rate = f.rate
            if new_rate == rate and rate > 0.0:
                continue  # unchanged binding: existing completion stays valid
            # Settle progress at the old rate.
            if rate > 0.0:
                f.remaining -= rate * (now - f.last_t)
                if f.remaining < 0.0:
                    f.remaining = 0.0
            f.last_t = now
            f.rate = new_rate
            if f.remaining <= _EPS_BYTES:
                eta = now
            elif new_rate > 0.0:
                eta = now + f.remaining / new_rate
            else:
                # Throttled to zero: completion unschedulable until a rate
                # returns.  A pending early timer hops harmlessly via the
                # eta-is-inf guard in _maybe_done.
                f.eta = _INF
                continue
            f.eta = eta
            t = f.timer
            if t is not None:
                if t[0] <= eta:
                    # Rate dropped (or held): the earlier entry stays and
                    # hops to the new eta when it fires — no heap traffic.
                    continue
                engine.cancel(t)  # superseded by an *earlier* completion
            f.timer = engine.schedule_at(eta, maybe_done, f)

    def _maybe_done(self, flow: Flow) -> None:
        flow.timer = None
        if not flow.active:
            return
        eta = flow.eta
        now = self.engine.now
        if now < eta:
            # Fired at a superseded (earlier) eta: hop to the exact current
            # one.  eta is absolute, so no float drift accumulates.
            if eta < _INF:
                flow.timer = self.engine.schedule_at(eta, self._maybe_done, flow)
            return
        # Settle and verify the bytes are indeed drained (guards float drift).
        flow.remaining -= flow.rate * (now - flow.last_t)
        flow.last_t = now
        if flow.remaining <= _EPS_BYTES * max(1.0, flow.nbytes):
            self._complete(flow)
        else:  # pragma: no cover - defensive; only reachable via float drift
            eta = now + flow.remaining / flow.rate if flow.rate > 0 else now
            flow.eta = eta
            flow.timer = self.engine.schedule_at(eta, self._maybe_done, flow)


def _by_fid(flow: Flow) -> int:
    """Deterministic iteration key for affected-flow sets (hash-seed-free)."""
    return flow.fid
