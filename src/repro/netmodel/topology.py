"""Cluster topology: nodes and the placement of ranks onto nodes.

The paper's experiments vary *processes per node* (PPN) while holding the
node pool fixed, using the "natural" placement: consecutive MPI ranks share a
node.  :func:`block_placement` builds exactly that map; :func:`split_placement`
puts sources and sinks on distinct nodes for the Fig. 3 micro-benchmark.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.util import check_positive


class Cluster:
    """An immutable rank -> node map plus node metadata.

    ``placement[i]`` is the node index hosting global rank ``i``.  Node
    indices must be dense (0..num_nodes-1 all used or at least bounded by
    ``num_nodes``).
    """

    def __init__(self, placement: Sequence[int], num_nodes: int | None = None):
        if not placement:
            raise ValueError("cluster needs at least one rank")
        self._placement = tuple(int(x) for x in placement)
        if min(self._placement) < 0:
            raise ValueError("node indices must be >= 0")
        inferred = max(self._placement) + 1
        self.num_nodes = int(num_nodes) if num_nodes is not None else inferred
        if self.num_nodes < inferred:
            raise ValueError(
                f"num_nodes={num_nodes} but placement references node {inferred - 1}"
            )

    @property
    def num_ranks(self) -> int:
        return len(self._placement)

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        return self._placement[rank]

    def ranks_on_node(self, node: int) -> list[int]:
        """All ranks placed on ``node`` (ascending)."""
        return [r for r, n in enumerate(self._placement) if n == node]

    def ppn_of_node(self, node: int) -> int:
        """Number of ranks on ``node``."""
        return sum(1 for n in self._placement if n == node)

    def max_ppn(self) -> int:
        """Largest PPN over all occupied nodes."""
        counts: dict[int, int] = {}
        for n in self._placement:
            counts[n] = counts.get(n, 0) + 1
        return max(counts.values())

    def same_node(self, a: int, b: int) -> bool:
        """True if ranks ``a`` and ``b`` share a node (shared-memory path)."""
        return self._placement[a] == self._placement[b]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cluster ranks={self.num_ranks} nodes={self.num_nodes}>"


def block_placement(num_ranks: int, ppn: int) -> Cluster:
    """The paper's "natural" placement: ranks ``[k*ppn, (k+1)*ppn)`` on node ``k``.

    Matches §V-D: "the MPI ranks on a node are numbered consecutively"; the
    number of nodes is ``ceil(num_ranks / ppn)`` (the paper's "total nodes"
    column in Table III).
    """
    check_positive("num_ranks", num_ranks)
    check_positive("ppn", ppn)
    placement = [r // ppn for r in range(num_ranks)]
    return Cluster(placement, num_nodes=math.ceil(num_ranks / ppn))


def split_placement(num_pairs: int) -> Cluster:
    """Fig.-3 micro-benchmark placement: ranks 0..k-1 on node 0, k..2k-1 on node 1.

    "We put all source processes on one node and all destination processes
    on a second node."
    """
    check_positive("num_pairs", num_pairs)
    placement = [0] * num_pairs + [1] * num_pairs
    return Cluster(placement, num_nodes=2)


def round_robin_placement(num_ranks: int, num_nodes: int) -> Cluster:
    """Cyclic placement (rank r on node r % num_nodes); used by ablations."""
    check_positive("num_ranks", num_ranks)
    check_positive("num_nodes", num_nodes)
    return Cluster([r % num_nodes for r in range(num_ranks)], num_nodes=num_nodes)
