"""Plimpton-style force decomposition on a 2D process mesh (§VI outlook).

``n`` particles, positions partitioned into ``p`` blocks; the ``p x p``
force matrix block ``(i, j)`` holds the forces of block-``j`` particles on
block-``i`` particles.  Process ``(i, j)`` needs position blocks ``x_i``
and ``x_j``, both broadcast from the diagonal owners; after the local
evaluation, the partial forces are reduced along mesh rows back to the
diagonal:

1. diagonal ``(i, i)`` broadcasts ``x_i`` along row ``i``;
2. diagonal ``(j, j)`` broadcasts ``x_j`` along column ``j``;
3. local evaluation of the block's pairwise forces;
4. row-reduce the partial forces to ``(i, i)``;
5. (diagonal) position update, next step.

The overlapped variant applies the paper's techniques: the row and column
broadcasts are *independent collectives* and overlap with each other, each
split into ``N_DUP`` parts on duplicated communicators; the force reduction
overlaps with itself the same way.  The force law is a softened inverse
square (no cutoff) so the dense reference is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense.distribution import block_dim, block_range, part_slices
from repro.dense.mesh import Mesh2D
from repro.mpi.requests import waitall
from repro.mpi.world import RankEnv, World
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.util import check_positive

_SOFTENING = 0.05
_PAIR_FLOPS = 20.0  # distance, softened inverse cube, 3-component accumulate


def pairwise_forces_dense(x: np.ndarray) -> np.ndarray:
    """Reference O(n^2) forces: softened inverse-square pair interactions."""
    if x.ndim != 2 or x.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {x.shape}")
    diff = x[:, None, :] - x[None, :, :]            # r_i - r_j
    dist2 = (diff**2).sum(axis=2) + _SOFTENING
    inv3 = dist2**-1.5
    np.fill_diagonal(inv3, 0.0)
    return (diff * inv3[:, :, None]).sum(axis=1)


def _block_forces(xi: np.ndarray, xj: np.ndarray, same_block: bool) -> np.ndarray:
    """Forces of block-j particles on block-i particles (softened 1/r^2)."""
    diff = xi[:, None, :] - xj[None, :, :]
    dist2 = (diff**2).sum(axis=2) + _SOFTENING
    inv3 = dist2**-1.5
    if same_block:
        np.fill_diagonal(inv3, 0.0)
    return (diff * inv3[:, :, None]).sum(axis=1)


def force_step_program(
    env: RankEnv,
    mesh: Mesh2D,
    n: int,
    x_blk: np.ndarray | None,
    real: bool,
    n_dup: int = 1,
    overlapped: bool = False,
    steps: int = 1,
    dt: float = 0.0,
):
    """Rank program: ``steps`` force evaluations (+ toy position updates).

    ``x_blk`` is this diagonal rank's position block (``(b_i, 3)``); other
    ranks pass ``None``.  Diagonal ranks return their final ``(x_blk,
    f_blk)``; off-diagonal ranks return ``None``.
    """
    check_positive("steps", steps)
    p = mesh.p
    i, j = mesh.coords_of(env.rank)
    bi = block_dim(i, n, p)
    bj = block_dim(j, n, p)
    row = env.view(mesh.row_comm(i))
    col = env.view(mesh.col_comm(j))
    f_blk = None
    for _step in range(steps):
        # -- phases 1+2: position broadcasts (row from (i,i); col from (j,j)).
        xi_buf = (np.ascontiguousarray(x_blk).ravel().copy()
                  if real and i == j else (np.empty(bi * 3) if real else None))
        xj_buf = (np.ascontiguousarray(x_blk).ravel().copy()
                  if real and i == j else (np.empty(bj * 3) if real else None))
        if not overlapped:
            xi_buf = yield from row.bcast(xi_buf, nbytes=bi * 3 * 8, root=i)
            xj_buf = yield from col.bcast(xj_buf, nbytes=bj * 3 * 8, root=j)
        else:
            reqs = []
            for c, (lo, hi) in enumerate(part_slices(bi * 3, n_dup)):
                rv = env.view(mesh.row_comm(i, c))
                part = None if xi_buf is None else xi_buf[lo:hi]
                req = yield from rv.ibcast(part, nbytes=(hi - lo) * 8, root=i)
                reqs.append(req)
            for c, (lo, hi) in enumerate(part_slices(bj * 3, n_dup)):
                cv = env.view(mesh.col_comm(j, c))
                part = None if xj_buf is None else xj_buf[lo:hi]
                req = yield from cv.ibcast(part, nbytes=(hi - lo) * 8, root=j)
                reqs.append(req)
            yield from waitall(reqs)
        # -- phase 3: local force block.
        yield from env.compute_flops(_PAIR_FLOPS * bi * bj, label="forces")
        if real:
            xi = xi_buf.reshape(bi, 3)
            xj = xj_buf.reshape(bj, 3)
            f_part = _block_forces(xi, xj, same_block=(i == j)).ravel()
        else:
            f_part = None
        # -- phase 4: row-reduce partial forces to the diagonal.
        if not overlapped:
            red = yield from row.reduce(f_part, nbytes=bi * 3 * 8, root=i)
            f_buf = red if i == j else None
        else:
            reqs = []
            for c, (lo, hi) in enumerate(part_slices(bi * 3, n_dup)):
                rv = env.view(mesh.row_comm(i, c))
                part = None if f_part is None else f_part[lo:hi]
                req = yield from rv.ireduce(part, nbytes=(hi - lo) * 8, root=i)
                reqs.append(req)
            parts = yield from waitall(reqs)
            f_buf = None
            if real and i == j:
                f_buf = np.empty(bi * 3)
                for (lo, hi), part in zip(part_slices(bi * 3, n_dup), parts):
                    f_buf[lo:hi] = part
        # -- phase 5: toy explicit position update on the diagonal owners.
        if i == j:
            yield from env.compute_flops(6.0 * bi, label="update")
            if real:
                f_blk = f_buf.reshape(bi, 3)
                if dt != 0.0:
                    x_blk = x_blk + dt * f_blk
    if i == j:
        return (x_blk, f_blk) if real else (None, None)
    return None


@dataclass
class ForceStepResult:
    """Outcome of :func:`run_force_step`."""

    x: np.ndarray | None          # final positions (real mode)
    forces: np.ndarray | None     # forces of the last step
    elapsed: float
    steps: int
    world: World

    @property
    def time_per_step(self) -> float:
        return self.elapsed / self.steps


def run_force_step(
    p: int,
    n: int,
    x: np.ndarray | None = None,
    *,
    overlapped: bool = False,
    n_dup: int = 1,
    steps: int = 1,
    dt: float = 0.0,
    ppn: int = 1,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
) -> ForceStepResult:
    """Run ``steps`` force-decomposition evaluations on a ``p x p`` mesh.

    Real mode: pass positions ``x`` of shape ``(n, 3)``; final positions and
    last-step forces are reassembled (verify against
    :func:`pairwise_forces_dense`).  Modeled mode: timing only.
    """
    check_positive("p", p)
    check_positive("steps", steps)
    real = x is not None
    if real and x.shape != (n, 3):
        raise ValueError(f"x has shape {x.shape}, expected {(n, 3)}")
    world = World(block_placement(p * p, max(ppn, 1)), params=params,
                  machine=machine)
    mesh = Mesh2D(world, p, n_dup=max(n_dup, 1))

    def program(env: RankEnv):
        i, j = mesh.coords_of(env.rank)
        x_blk = None
        if real and i == j:
            lo, hi = block_range(i, n, p)
            x_blk = np.ascontiguousarray(x[lo:hi])
        out = yield from force_step_program(
            env, mesh, n, x_blk, real, n_dup=n_dup, overlapped=overlapped,
            steps=steps, dt=dt,
        )
        return out

    world.spawn_all(program)
    elapsed = world.run()
    x_out = f_out = None
    if real:
        x_out = np.zeros((n, 3))
        f_out = np.zeros((n, 3))
        for rank, out in enumerate(world.results()):
            i, j = mesh.coords_of(rank)
            if i != j:
                continue
            lo, hi = block_range(i, n, p)
            x_out[lo:hi] = out[0]
            f_out[lo:hi] = out[1]
    return ForceStepResult(x=x_out, forces=f_out, elapsed=elapsed, steps=steps,
                           world=world)
