"""Force-decomposition particle simulation — the paper's §VI first outlook.

"In distributed particle simulations, the forces between a set of particles
can be arranged in a matrix that is partitioned using a 2D partitioning.
This leads to algorithms that use collective communication along processor
rows and columns of a processor mesh" (paper §VI, citing Plimpton's force
decomposition).

:mod:`repro.particles.forcedecomp` implements exactly that kernel on the
simulated substrate — gather the needed position blocks along mesh rows and
columns, evaluate the force-matrix block, reduce partial forces along rows —
in a plain blocking form and in a pipelined nonblocking-overlap form that
applies the paper's N_DUP technique to the allgather -> reduce chain.
"""

from repro.particles.forcedecomp import (
    run_force_step,
    ForceStepResult,
    pairwise_forces_dense,
)

__all__ = ["run_force_step", "ForceStepResult", "pairwise_forces_dense"]
