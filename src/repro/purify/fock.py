"""Synthetic Fock/Hamiltonian matrices standing in for the GTFock test systems.

The paper evaluates on three protein-fragment systems whose only property
that matters here is the basis dimension (§V-A: "Details of the molecular
systems ... are immaterial to this paper except for the dimension of the
density matrices"):

=========  ==========  =============
system     dimension   paper tables
=========  ==========  =============
1hsg_45    5330        I, II
1hsg_60    6895        I, II
1hsg_70    7645        I-V
=========  ==========  =============

:func:`synthetic_fock` builds a dense symmetric matrix with a molecular-like
spectrum: a band of doubly-occupied-orbital energies, a HOMO-LUMO gap, and a
virtual-orbital tail.  The gap makes purification converge the way it does
for real Hartree-Fock Fock matrices.
"""

from __future__ import annotations

import numpy as np

from repro.util import check_positive

#: The paper's molecular systems: name -> (matrix dimension, suggested n_occ).
SYSTEMS: dict[str, tuple[int, int]] = {
    "1hsg_45": (5330, 1480),
    "1hsg_60": (6895, 1905),
    "1hsg_70": (7645, 2110),
}


def synthetic_fock(
    n: int,
    n_occ: int,
    *,
    seed: int = 0,
    gap: float = 0.3,
    occ_width: float = 2.0,
    virt_width: float = 8.0,
) -> np.ndarray:
    """A dense symmetric matrix with a molecular-like spectrum.

    ``n_occ`` eigenvalues are spread over ``[-occ_width - gap/2, -gap/2]``
    (occupied band) and the rest over ``[gap/2, gap/2 + virt_width]``
    (virtual band), separated by a HOMO-LUMO ``gap``; the eigenbasis is a
    Haar-random orthogonal matrix.  Deterministic in ``seed``.
    """
    check_positive("n", n)
    if not 0 < n_occ < n:
        raise ValueError(f"need 0 < n_occ < n, got n_occ={n_occ}, n={n}")
    check_positive("gap", gap)
    rng = np.random.default_rng(seed)
    occ = -gap / 2.0 - occ_width * np.sort(rng.random(n_occ))[::-1]
    virt = gap / 2.0 + virt_width * np.sort(rng.random(n - n_occ))
    eigs = np.concatenate([occ, virt])
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    return (q * eigs) @ q.T


def density_from_eigh(f: np.ndarray, n_occ: int) -> np.ndarray:
    """Reference density matrix: projector onto the ``n_occ`` lowest eigenvectors.

    This is the eigendecomposition route purification replaces (the paper's
    introduction); tests compare purification output against it.
    """
    if f.ndim != 2 or f.shape[0] != f.shape[1]:
        raise ValueError(f"expected square matrix, got {f.shape}")
    if not 0 < n_occ <= f.shape[0]:
        raise ValueError(f"bad n_occ={n_occ} for n={f.shape[0]}")
    _w, v = np.linalg.eigh(f)
    occ = v[:, :n_occ]
    return occ @ occ.T
