"""McWeeny purification — the classic iteration the paper's intro cites.

``D_{k+1} = 3 D_k^2 - 2 D_k^3`` drives every eigenvalue of ``D`` toward 0
or 1 (fixed points of ``3x^2 - 2x^3``), with the watershed at ``x = 1/2``.
Given a chemical potential ``mu`` inside the HOMO-LUMO gap, the
grand-canonical starting matrix maps occupied eigenvalues above 1/2 and
virtual ones below, so McWeeny converges to the density-matrix projector.
"""

from __future__ import annotations

import numpy as np

from repro.purify.canonical import gershgorin_bounds
from repro.util import check_positive


def mcweeny_step(d: np.ndarray) -> np.ndarray:
    """One McWeeny refinement: ``3 D^2 - 2 D^3`` (uses a square and a cube,
    i.e. one SymmSquareCube evaluation in the distributed setting)."""
    d2 = d @ d
    return 3.0 * d2 - 2.0 * (d2 @ d)


def mcweeny_initial_guess(f: np.ndarray, mu: float) -> np.ndarray:
    """Grand-canonical start: ``D_0 = (I - (F - mu I)/alpha) / 2``.

    ``alpha`` is a Gershgorin bound on ``|F - mu I|`` so the spectrum of
    ``D_0`` lies in ``[0, 1]`` with the occupied/virtual split at 1/2.
    """
    n = f.shape[0]
    h_min, h_max = gershgorin_bounds(f)
    if not h_min <= mu <= h_max:
        raise ValueError(
            f"mu={mu} lies outside the spectrum bounds [{h_min}, {h_max}]"
        )
    alpha = max(h_max - mu, mu - h_min)
    d0 = -(f - mu * np.eye(n)) / (2.0 * alpha)
    d0[np.diag_indices(n)] += 0.5
    return d0


def mcweeny_purify_dense(
    f: np.ndarray,
    mu: float,
    *,
    tol: float = 1e-10,
    maxiter: int = 200,
) -> tuple[np.ndarray, int]:
    """Run McWeeny purification to idempotency; returns ``(D, iterations)``.

    Convergence criterion: ``|Tr(D - D^2)| < tol``.  McWeeny converges
    quadratically near the fixed point but needs more startup iterations
    than canonical purification when the gap is small — one reason the
    paper's application uses the canonical variant.
    """
    check_positive("maxiter", maxiter)
    d = mcweeny_initial_guess(f, mu)
    for it in range(1, maxiter + 1):
        d2 = d @ d
        if abs(float(np.trace(d)) - float(np.trace(d2))) < tol:
            return d, it
        d = 3.0 * d2 - 2.0 * (d2 @ d)
    return d, maxiter
