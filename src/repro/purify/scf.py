"""A mini SCF driver with per-kernel PPN — the paper's §III-B in full.

The paper's Hartree-Fock application (GTFock) alternates two kernels with
very different characters:

* **Fock matrix construction** — compute-bound (two-electron integrals);
  wants as many processes per node as there are available;
* **density matrix purification** — communication-bound (SymmSquareCube);
  its optimal PPN is a tuning knob (Table III).

"We modified GTFock to allow the user to separately choose the number of
MPI processes for Fock matrix construction and for density matrix
purification" (§IV-B): all processes are launched up front, and the ones a
kernel does not use sleep on an ``MPI_Ibarrier`` polled with ``MPI_Test`` +
usleep (§III-B).  :func:`run_scf` reproduces that structure end to end on
the simulated machine.

The Fock build itself is a synthetic stand-in (the paper's integrals are
proprietary): each active rank charges a share of a total flop budget plus
a small allreduce, which preserves the only property that matters here —
a compute-bound phase at full PPN surrounding a communication-bound kernel
at reduced PPN.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dense.distribution import block_range
from repro.dense.mesh import Mesh3D
from repro.mpi.gating import gated_section
from repro.mpi.world import RankEnv, World
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.purify.canonical import (
    canonical_initial_guess,
    purification_rank_program,
)
from repro.util import check_positive


@dataclass
class SCFResult:
    """Outcome of :func:`run_scf`."""

    scf_iterations: int
    fock_times: list[float] = field(default_factory=list)
    purify_times: list[float] = field(default_factory=list)
    ssc_times: list[float] = field(default_factory=list)  # per SSC call
    total_time: float = 0.0
    d: np.ndarray | None = None
    world: World | None = None

    @property
    def avg_purify_time(self) -> float:
        return sum(self.purify_times) / len(self.purify_times)


def run_scf(
    mesh_p: int,
    n: int,
    f: np.ndarray | None = None,
    n_occ: int | None = None,
    *,
    total_ranks: int | None = None,
    launch_ppn: int = 4,
    algorithm: str = "optimized",
    n_dup: int = 4,
    scf_iterations: int = 3,
    purify_iterations: int = 20,
    tol: float = 1e-9,
    fock_flops_total: float = 5e12,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
) -> SCFResult:
    """Run an SCF-style loop: Fock build at full PPN, purification gated.

    ``total_ranks`` processes (default: enough nodes for the mesh at full
    ``launch_ppn``) are launched; every SCF iteration runs the Fock-build
    kernel on all of them, then gates the purification kernel (a
    ``mesh_p^3`` SymmSquareCube mesh) onto the first ``mesh_p**3`` ranks
    while the rest sleep per §III-B.  Real mode purifies ``f`` (verifiable
    against the eigendecomposition); modeled mode runs fixed iteration
    counts at paper scale.
    """
    check_positive("mesh_p", mesh_p)
    check_positive("scf_iterations", scf_iterations)
    check_positive("launch_ppn", launch_ppn)
    purify_ranks = mesh_p**3
    if total_ranks is None:
        total_ranks = max(purify_ranks, launch_ppn)
    if total_ranks < purify_ranks:
        raise ValueError(
            f"total_ranks={total_ranks} < purification mesh size {purify_ranks}"
        )
    real = f is not None
    if real:
        if n_occ is None:
            raise ValueError("real mode needs n_occ")
        if f.shape != (n, n):
            raise ValueError(f"f has shape {f.shape}, expected {(n, n)}")

    world = World(block_placement(total_ranks, launch_ppn), params=params,
                  machine=machine)
    mesh = Mesh3D(world, mesh_p, n_dup=max(n_dup, 1))
    plane0 = world.new_comm(
        [mesh.rank_of(i, j, 0) for i in range(mesh_p) for j in range(mesh_p)],
        "plane0",
    )
    gate = world.comm_world
    d0 = canonical_initial_guess(f, n_occ) if real else None

    fock_times: list[float] = []
    purify_times: list[float] = []
    ssc_times: list[float] = []

    def fock_build(env: RankEnv, comm_view):
        """Synthetic compute-bound kernel on every rank."""
        yield from env.compute_flops(fock_flops_total / total_ranks,
                                     label="fock-build")
        # Final assembly: a small allreduce (the Fock matrix pieces).
        yield from comm_view.allreduce(nbytes=max(n * 8 // total_ranks, 8))

    def program(env: RankEnv):
        comm = env.view(gate)
        active = env.rank < purify_ranks
        d_blk = None
        for _ in range(scf_iterations):
            t0 = env.now
            yield from fock_build(env, comm)
            yield from comm.barrier()
            if env.rank == 0:
                fock_times.append(env.now - t0)
            t1 = env.now
            work = None
            if active:
                work = purification_rank_program(
                    env, mesh, plane0, n, d0, real, algorithm, n_dup,
                    purify_iterations, tol,
                )
            out = yield from gated_section(env, comm, active, work)
            if env.rank == 0:
                purify_times.append(env.now - t1)
                ssc_times.extend(out[0])
            if active:
                d_blk = out[1]
        return d_blk

    world.spawn_all(program)
    total = world.run()

    d_final = None
    if real:
        outs = world.results()
        d_final = np.zeros((n, n))
        for rank in range(purify_ranks):
            i, j, k = mesh.coords_of(rank)
            if k != 0:
                continue
            rlo, rhi = block_range(i, n, mesh_p)
            clo, chi = block_range(j, n, mesh_p)
            d_final[rlo:rhi, clo:chi] = outs[rank]
    return SCFResult(
        scf_iterations=scf_iterations,
        fock_times=fock_times,
        purify_times=purify_times,
        ssc_times=ssc_times,
        total_time=total,
        d=d_final,
        world=world,
    )
