"""Density-matrix purification — the application driving SymmSquareCube.

In Hartree-Fock / DFT, the density matrix ``D`` is the spectral projector
onto the lowest ``n_occ`` eigenvectors of the Fock matrix ``F``.  Instead of
an eigendecomposition, *purification* iterates polynomial maps whose fixed
points are idempotent matrices with the right trace:

* **canonical purification** (Palser & Manolopoulos 1998) — the variant the
  paper's experiments use; every step needs ``D^2`` *and* ``D^3``, which is
  exactly what SymmSquareCube computes;
* **McWeeny purification** — the classic ``D <- 3 D^2 - 2 D^3`` refinement
  the paper's introduction cites.

:mod:`repro.purify.fock` builds synthetic symmetric "Fock" matrices with the
paper's matrix dimensions (5330 / 6895 / 7645 for 1hsg_45/60/70) — the
substitution for the proprietary GTFock integrals, which the paper itself
notes are "immaterial ... except for the dimension of the density matrices".
"""

from repro.purify.fock import synthetic_fock, density_from_eigh, SYSTEMS
from repro.purify.canonical import (
    canonical_initial_guess,
    canonical_purify_dense,
    run_distributed_purification,
    PurificationResult,
)
from repro.purify.mcweeny import mcweeny_purify_dense, mcweeny_step
from repro.purify.scf import run_scf, SCFResult

__all__ = [
    "synthetic_fock",
    "density_from_eigh",
    "SYSTEMS",
    "canonical_initial_guess",
    "canonical_purify_dense",
    "run_distributed_purification",
    "PurificationResult",
    "mcweeny_purify_dense",
    "mcweeny_step",
    "run_scf",
    "SCFResult",
]
