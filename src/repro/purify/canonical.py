"""Canonical purification (Palser & Manolopoulos 1998) — dense and distributed.

The "canonical purification" method the paper uses (§I, ref. [3]): starting
from a trace-correct linear map of the Fock matrix, iterate

.. math::

    c_k = \\frac{\\mathrm{Tr}(D_k^2 - D_k^3)}{\\mathrm{Tr}(D_k - D_k^2)},
    \\qquad
    D_{k+1} = \\begin{cases}
      ((1+c_k) D_k^2 - D_k^3) / c_k, & c_k \\ge 1/2,\\\\
      ((1-2 c_k) D_k + (1+c_k) D_k^2 - D_k^3)/(1 - c_k), & c_k < 1/2,
    \\end{cases}

which preserves ``Tr(D) = n_occ`` and converges to the idempotent spectral
projector.  Every step consumes ``D^2`` and ``D^3`` — the SymmSquareCube
kernel — so the distributed driver times exactly what the paper's tables
average "over all the SCF iterations".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dense.distribution import block_range
from repro.dense.mesh import Mesh3D
from repro.kernels.symmsquarecube import (
    ssc_baseline_program,
    ssc_flops,
    ssc_optimized_program,
    ssc_original_program,
)
from repro.mpi.world import RankEnv, World
from repro.netmodel import MachineParams, NetworkParams, block_placement
from repro.util import check_positive


def gershgorin_bounds(f: np.ndarray) -> tuple[float, float]:
    """Cheap eigenvalue bounds ``(h_min, h_max)`` via Gershgorin disks."""
    diag = np.diag(f)
    radius = np.sum(np.abs(f), axis=1) - np.abs(diag)
    return float(np.min(diag - radius)), float(np.max(diag + radius))


def canonical_initial_guess(f: np.ndarray, n_occ: int) -> np.ndarray:
    """Palser-Manolopoulos trace-correct starting matrix ``D_0``.

    ``D_0 = (lambda/n) (mu I - F) + (n_occ/n) I`` with ``mu = Tr(F)/n`` and
    ``lambda`` chosen so the spectrum of ``D_0`` lies in ``[0, 1]``.
    """
    n = f.shape[0]
    if not 0 < n_occ < n:
        raise ValueError(f"need 0 < n_occ < n, got {n_occ}, {n}")
    mu = float(np.trace(f)) / n
    h_min, h_max = gershgorin_bounds(f)
    lam = min(n_occ / (h_max - mu), (n - n_occ) / (mu - h_min))
    d0 = (lam / n) * (mu * np.eye(n) - f)
    d0[np.diag_indices(n)] += n_occ / n
    return d0


def canonical_update_coeffs(tr_d: float, tr_d2: float, tr_d3: float):
    """The PM update as block coefficients ``(a, b, g)``: ``D' = a D + b D^2 + g D^3``.

    Returns ``(a, b, g, c)`` where ``c`` is the PM steering parameter.
    Shared by the dense reference and the distributed driver so both apply
    bitwise-identical updates.
    """
    denom = tr_d - tr_d2
    if abs(denom) < 1e-300:
        return 0.0, 3.0, -2.0, 0.5  # fall back to McWeeny near idempotency
    c = (tr_d2 - tr_d3) / denom
    if c >= 0.5:
        return 0.0, (1.0 + c) / c, -1.0 / c, c
    return (1.0 - 2.0 * c) / (1.0 - c), (1.0 + c) / (1.0 - c), -1.0 / (1.0 - c), c


def canonical_purify_dense(
    f: np.ndarray,
    n_occ: int,
    *,
    tol: float = 1e-10,
    maxiter: int = 100,
) -> tuple[np.ndarray, int]:
    """Sequential numpy reference; returns ``(density_matrix, iterations)``.

    Convergence criterion: idempotency error ``Tr(D - D^2) < tol``.
    """
    check_positive("maxiter", maxiter)
    d = canonical_initial_guess(f, n_occ)
    for it in range(1, maxiter + 1):
        d2 = d @ d
        d3 = d2 @ d
        tr_d, tr_d2, tr_d3 = (float(np.trace(m)) for m in (d, d2, d3))
        a, b, g, _c = canonical_update_coeffs(tr_d, tr_d2, tr_d3)
        d = a * d + b * d2 + g * d3
        if abs(tr_d - tr_d2) < tol:
            return d, it
    return d, maxiter


@dataclass
class PurificationResult:
    """Outcome of :func:`run_distributed_purification`."""

    d: np.ndarray | None          # converged density matrix (real mode)
    iterations: int
    ssc_times: list[float] = field(default_factory=list)
    n: int = 0
    converged: bool = False
    world: World | None = None

    @property
    def avg_ssc_time(self) -> float:
        return sum(self.ssc_times) / len(self.ssc_times)

    @property
    def tflops(self) -> float:
        """Average SymmSquareCube TFlop/s over all iterations — the paper's metric."""
        return ssc_flops(self.n) / self.avg_ssc_time / 1e12


_SSC_PROGRAMS = {
    "original": ssc_original_program,
    "baseline": ssc_baseline_program,
    "optimized": ssc_optimized_program,
}


def purification_rank_program(
    env: RankEnv,
    mesh: Mesh3D,
    plane0,
    n: int,
    d0: np.ndarray | None,
    real: bool,
    algorithm: str,
    n_dup: int,
    iterations: int,
    tol: float,
):
    """One rank's canonical-purification loop (composable sub-generator).

    ``plane0`` is a communicator over the mesh front face (for the trace
    reduction); ``d0`` the starting matrix (real mode).  Returns
    ``(per-iteration SSC times, final local D block, iterations done)`` —
    the building block shared by :func:`run_distributed_purification` and
    the SCF driver in :mod:`repro.purify.scf`.
    """
    if algorithm not in _SSC_PROGRAMS:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    program_fn = _SSC_PROGRAMS[algorithm]
    p = mesh.pi
    i, j, k = mesh.coords_of(env.rank)
    d_blk = None
    rlo = rhi = clo = chi = 0
    if k == 0:
        rlo, rhi = block_range(i, n, p)
        clo, chi = block_range(j, n, p)
        if real:
            d_blk = np.ascontiguousarray(d0[rlo:rhi, clo:chi])
    gv = env.view(mesh.global_comm)
    p0 = env.view(plane0) if k == 0 else None
    times: list[float] = []
    done_at = iterations
    for it in range(iterations):
        yield from gv.barrier()
        t0 = env.now
        if algorithm == "optimized":
            out = yield from program_fn(env, mesh, n, d_blk, real, n_dup)
        else:
            out = yield from program_fn(env, mesh, n, d_blk, real)
        times.append(env.now - t0)
        # Trace reduction + local update live on the front face only.
        stop = 0.0
        if k == 0:
            if real:
                d2_blk, d3_blk = out
                tr = np.zeros(3)
                if i == j:
                    tr[:] = (
                        np.trace(d_blk),
                        np.trace(d2_blk),
                        np.trace(d3_blk),
                    )
                tr = yield from p0.allreduce(tr)
                a, b, g, _c = canonical_update_coeffs(*tr)
                # D <- a D + b D^2 + g D^3, blockwise local.
                d_blk = a * d_blk + b * d2_blk + g * d3_blk
                if abs(tr[0] - tr[1]) < tol:
                    stop = 1.0
            else:
                yield from p0.allreduce(nbytes=24)
            yield from env.compute_flops(
                6.0 * (rhi - rlo) * (chi - clo), label="purify-update"
            )
        if real:
            # Everyone learns whether the front face declared convergence.
            flag = yield from gv.allreduce(np.array([stop]))
            if flag[0] > 0.0:
                done_at = it + 1
                break
    return (times, d_blk, done_at)


def run_distributed_purification(
    p: int,
    n: int,
    algorithm: str = "optimized",
    f: np.ndarray | None = None,
    n_occ: int | None = None,
    *,
    n_dup: int = 1,
    ppn: int = 1,
    iterations: int = 10,
    tol: float = 1e-9,
    params: NetworkParams | None = None,
    machine: MachineParams | None = None,
) -> PurificationResult:
    """Canonical purification on a ``p^3`` mesh with a chosen SSC algorithm.

    Real mode (``f`` and ``n_occ`` given): iterates until the idempotency
    error drops below ``tol`` (at most ``iterations`` steps) and returns the
    assembled density matrix.  Modeled mode: runs exactly ``iterations``
    SymmSquareCube steps at paper scale, timing each.
    """
    check_positive("p", p)
    check_positive("iterations", iterations)
    if algorithm not in _SSC_PROGRAMS:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    real = f is not None
    if real:
        if n_occ is None:
            raise ValueError("real mode needs n_occ")
        if f.shape != (n, n):
            raise ValueError(f"f has shape {f.shape}, expected {(n, n)}")
    world = World(block_placement(p**3, max(ppn, 1)), params=params, machine=machine)
    mesh = Mesh3D(world, p, n_dup=max(n_dup, 1))
    plane0 = world.new_comm(
        [mesh.rank_of(i, j, 0) for i in range(p) for j in range(p)], "plane0"
    )
    d0 = canonical_initial_guess(f, n_occ) if real else None

    def program(env: RankEnv):
        out = yield from purification_rank_program(
            env, mesh, plane0, n, d0, real, algorithm, n_dup, iterations, tol
        )
        return out

    world.spawn_all(program, ranks=range(p**3))
    world.run()
    outs = world.results()
    n_ranks = p**3
    # Real mode can converge early: use the front-face iteration count.
    iters_done = min(out[2] for out in outs)
    ssc_times = [
        max(outs[r][0][it] for r in range(n_ranks) if it < len(outs[r][0]))
        for it in range(min(len(outs[r][0]) for r in range(n_ranks)))
    ]
    d_final = None
    converged = False
    if real:
        d_final = np.zeros((n, n))
        for rank in range(n_ranks):
            i, j, k = mesh.coords_of(rank)
            if k != 0:
                continue
            rlo, rhi = block_range(i, n, p)
            clo, chi = block_range(j, n, p)
            d_final[rlo:rhi, clo:chi] = outs[rank][1]
        idem = abs(np.trace(d_final) - np.trace(d_final @ d_final))
        converged = idem < max(tol * 10, 1e-6)
    return PurificationResult(
        d=d_final,
        iterations=iters_done,
        ssc_times=ssc_times,
        n=n,
        converged=converged,
        world=world,
    )
