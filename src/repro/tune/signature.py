"""Workload signatures — the keys of every tuning decision.

A :class:`WorkloadSignature` pins down everything the best configuration of
a kernel can depend on: the kernel id, the matrix dimension, the process
mesh and rank count, the requested processes-per-node budget, the placement
policy, and a short stable hash of the fabric constants
(:class:`~repro.netmodel.params.NetworkParams` +
:class:`~repro.netmodel.params.MachineParams`).  Two calls with the same
signature may share a tuning record; any change to the fabric constants
changes the hash and therefore invalidates warm starts automatically.

Signatures are plain frozen dataclasses with a canonical string ``key`` —
the tuning database is keyed on that string, so its format is part of the
db schema (bump :data:`repro.tune.db.DB_SCHEMA` when changing it).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro.netmodel.params import MachineParams, NetworkParams

#: Length of the truncated fabric-hash hex digest embedded in keys.
FABRIC_HASH_LEN = 12


def fabric_hash(params: NetworkParams | None,
                machine: MachineParams | None) -> str:
    """Short stable hash of the network + machine constants.

    Field values are serialized in sorted-key JSON (floats via ``repr`` are
    deterministic in Python 3), then SHA-256'd and truncated — enough to
    detect any perturbed constant while keeping db keys readable.
    """
    payload = {
        "network": dataclasses.asdict(params or NetworkParams()),
        "machine": dataclasses.asdict(machine or MachineParams()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:FABRIC_HASH_LEN]


@dataclass(frozen=True)
class WorkloadSignature:
    """Immutable description of one tunable workload."""

    kernel: str          #: "ssc" (Algs. 3-5), "ssc25d" (Alg. 6) or "summa"
    n: int               #: matrix dimension
    ranks: int           #: total process count (fixed by the caller)
    mesh: tuple[int, int, int]  #: requested mesh shape (pi, pj, pk)
    ppn: int             #: requested processes-per-node (the paper default)
    placement: str       #: "block" or "round_robin"
    fabric: str          #: :func:`fabric_hash` of the fabric constants

    def __post_init__(self) -> None:
        if self.kernel not in ("ssc", "ssc25d", "summa"):
            raise ValueError(f"unknown kernel {self.kernel!r}")
        if self.n < 1 or self.ranks < 1 or self.ppn < 1:
            raise ValueError("n, ranks and ppn must all be >= 1")
        pi, pj, pk = self.mesh
        if pi * pj * pk != self.ranks:
            raise ValueError(
                f"mesh {pi}x{pj}x{pk} does not match {self.ranks} ranks"
            )

    @property
    def key(self) -> str:
        """Canonical db key, e.g. ``ssc:n7645:r64:m4x4x4:ppn1:block:ab12...``."""
        pi, pj, pk = self.mesh
        return (
            f"{self.kernel}:n{self.n}:r{self.ranks}:m{pi}x{pj}x{pk}"
            f":ppn{self.ppn}:{self.placement}:{self.fabric}"
        )

    @property
    def workload_key(self) -> str:
        """The key *without* the fabric hash — the identity of the schedule.

        Recorded event graphs are cached and persisted under this key:
        re-pricing one workload under different fabric constants is the
        whole point of replay, so the constants stay out of the cache key
        (compatibility is the recording's own check).
        """
        return self.key.rsplit(":", 1)[0]

    @property
    def family_key(self) -> str:
        """Everything but ``n`` — the interpolation neighborhood.

        Two signatures in the same family run the same kernel on the same
        mesh, rank count, PPN, placement and fabric; only the matrix
        dimension differs.  Within a family, a tuned shortlist at one ``n``
        is a sound warm start for a nearby ``n``: candidate validity and
        the analytic models both vary smoothly in ``n``, while any other
        axis change would alter the candidate space itself.
        """
        pi, pj, pk = self.mesh
        return (
            f"{self.kernel}:r{self.ranks}:m{pi}x{pj}x{pk}"
            f":ppn{self.ppn}:{self.placement}:{self.fabric}"
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (mesh as a list, plus the key)."""
        return {
            "kernel": self.kernel,
            "n": self.n,
            "ranks": self.ranks,
            "mesh": list(self.mesh),
            "ppn": self.ppn,
            "placement": self.placement,
            "fabric": self.fabric,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadSignature":
        return cls(
            kernel=d["kernel"], n=int(d["n"]), ranks=int(d["ranks"]),
            mesh=tuple(int(x) for x in d["mesh"]), ppn=int(d["ppn"]),
            placement=d["placement"], fabric=d["fabric"],
        )


def signature_for_ssc(p: int, n: int, *, ppn: int = 1,
                      placement: str = "block",
                      params: NetworkParams | None = None,
                      machine: MachineParams | None = None) -> WorkloadSignature:
    """Signature of a :func:`repro.kernels.run_ssc` workload (``p^3`` ranks)."""
    return WorkloadSignature(
        kernel="ssc", n=n, ranks=p ** 3, mesh=(p, p, p), ppn=max(ppn, 1),
        placement=placement, fabric=fabric_hash(params, machine),
    )


def signature_for_summa(p: int, n: int, *, ppn: int = 1,
                        params: NetworkParams | None = None,
                        machine: MachineParams | None = None,
                        ) -> WorkloadSignature:
    """Signature of a :func:`repro.dense.run_summa` workload (``p^2`` ranks).

    The variant/colors/depth axes are candidate knobs, not signature axes
    — one signature covers the whole SUMMA family on a given mesh.
    """
    return WorkloadSignature(
        kernel="summa", n=n, ranks=p * p, mesh=(p, p, 1), ppn=max(ppn, 1),
        placement="block", fabric=fabric_hash(params, machine),
    )


def signature_for_ssc25d(q: int, c: int, n: int, *, ppn: int = 1,
                         params: NetworkParams | None = None,
                         machine: MachineParams | None = None,
                         ) -> WorkloadSignature:
    """Signature of a :func:`repro.kernels.run_ssc25d` workload (``q^2 c`` ranks).

    The mesh records the *requested* ``(q, q, c)``; the tuner may still move
    to any other factorization with the same rank count (that freedom is a
    candidate axis, not a signature axis).
    """
    return WorkloadSignature(
        kernel="ssc25d", n=n, ranks=q * q * c, mesh=(q, q, c),
        ppn=max(ppn, 1), placement="block",
        fabric=fabric_hash(params, machine),
    )
