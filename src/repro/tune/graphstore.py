"""Persistent event-graph storage: replay reuse across processes.

PR 6's record/replay machinery made shortlist re-scoring ≥3x cheaper than
full simulation — but only within one process, because the recorded graphs
lived in an in-memory ``graph_cache``.  A :class:`GraphStore` persists each
scored candidate's graph (:func:`repro.sim.replay.dump_recording` format)
next to the tuning database, keyed by the signature's **workload key** (the
db key minus the fabric hash — reuse across fabric constants is the whole
point, and compatibility is the recording's own check).  A fresh process
warm-starting a search loads the workload's graphs once and scores its
shortlist through :func:`repro.sim.replay.replay` instead of the simulator.

Layout: one JSON file per workload under ``<root>/``, named by a truncated
SHA-256 of the workload key (keys contain ``:`` and arbitrary placement
strings — hashing keeps filenames portable).  Each file carries the
workload key in clear for inspection::

    {"schema": 1, "workload": "ssc:n64:r8:m2x2x2:ppn1:block",
     "graphs": {"<candidate key>": {...to_jsonable()...}}}

Writes are atomic (write-to-temp + ``os.replace``) so concurrent processes
sharing one store never observe a torn file; last-writer-wins is safe
because a workload's graphs are a pure function of the workload (any writer
writes equivalent bytes for the candidates it scored).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

from repro.sim.replay import GraphRecorder, ReplayInvalid, load_recording

#: On-disk schema of a per-workload graph file.
GRAPHSTORE_SCHEMA = 1

#: Filename stem length (hex chars of the workload-key SHA-256).
_STEM_LEN = 16


class GraphStore:
    """One directory of per-workload recorded-graph files."""

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)

    @classmethod
    def for_db(cls, db_path: str | os.PathLike) -> "GraphStore":
        """The conventional store location for a tuning db: ``<db>.graphs/``."""
        return cls(pathlib.Path(db_path).with_name(
            pathlib.Path(db_path).name + ".graphs"))

    def path_for(self, workload_key: str) -> pathlib.Path:
        stem = hashlib.sha256(workload_key.encode()).hexdigest()[:_STEM_LEN]
        return self.root / f"{stem}.json"

    # -- load ---------------------------------------------------------------

    def load(self, workload_key: str) -> dict[str, GraphRecorder]:
        """All persisted graphs for ``workload_key``: candidate key -> recording.

        Missing, torn or schema-mismatched files load as empty — a graph
        store is a cache, never a source of truth; the search falls back to
        simulation and re-records.
        """
        path = self.path_for(workload_key)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {}
        if (doc.get("schema") != GRAPHSTORE_SCHEMA
                or doc.get("workload") != workload_key):
            return {}
        graphs: dict[str, GraphRecorder] = {}
        for cand_key, jsonable in doc.get("graphs", {}).items():
            try:
                graphs[cand_key] = load_recording(jsonable)
            except (ReplayInvalid, KeyError, TypeError, ValueError):
                continue  # one bad graph must not poison the rest
        return graphs

    # -- save ---------------------------------------------------------------

    def save(self, workload_key: str,
             graphs: dict[str, GraphRecorder]) -> pathlib.Path:
        """Persist ``graphs`` (merged over any graphs already on disk)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(workload_key)
        merged: dict[str, dict] = {}
        try:
            with open(path) as fh:
                doc = json.load(fh)
            if (doc.get("schema") == GRAPHSTORE_SCHEMA
                    and doc.get("workload") == workload_key):
                merged.update(doc.get("graphs", {}))
        except (OSError, json.JSONDecodeError):
            pass
        for cand_key, rec in graphs.items():
            if rec.valid:
                merged[cand_key] = rec.to_jsonable()
        doc = {
            "schema": GRAPHSTORE_SCHEMA,
            "workload": workload_key,
            "graphs": {k: merged[k] for k in sorted(merged)},
        }
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=1, default=repr, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    # -- maintenance --------------------------------------------------------

    def workloads(self) -> list[str]:
        """Workload keys with a file in the store (sorted)."""
        if not self.root.is_dir():
            return []
        keys = []
        for p in self.root.glob("*.json"):
            try:
                with open(p) as fh:
                    doc = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            wl = doc.get("workload")
            if wl is not None:
                keys.append(wl)
        return sorted(keys)
