"""Command-line entry point: ``python -m repro.tune``.

Examples::

    python -m repro.tune search ssc --p 2 --n 512 --db tune_db.json
    python -m repro.tune search ssc25d --q 4 --c 2 --n 512 --policy exhaustive
    python -m repro.tune show --db tune_db.json
    python -m repro.tune show --db tune_db.json --key 'ssc:n512:...' --trace
    python -m repro.tune show --db tune_db.json --format json
    python -m repro.tune export --db tune_db.json --output /tmp/copy.json
    python -m repro.tune warm ssc --p 2 --n 512 --n 520 --db tune_db.json
    python -m repro.tune serve --db tune_db.json --socket /tmp/tune.sock
"""

from __future__ import annotations

import argparse
import json
import sys


def _fmt_time(t: float | None) -> str:
    return "-" if t is None else f"{t:.6f}s"


def _add_output_options(p: argparse.ArgumentParser) -> None:
    # Same convention as ``python -m repro.analysis``: ``--format`` picks
    # the renderer, ``--json`` is the ergonomic alias.
    p.add_argument("--format", choices=("text", "json"), default=None,
                   help="output format (default: text)")
    p.add_argument("--json", action="store_true",
                   help="alias for --format json")


def _resolve_format(args) -> str:
    if args.format is not None:
        return args.format
    return "json" if args.json else "text"


def _emit_json(doc) -> None:
    print(json.dumps(doc, indent=1, sort_keys=True))


def _print_record(record, trace: bool = False) -> None:
    print(f"signature : {record.signature.key}")
    print(f"policy    : {record.policy}   seed: {record.seed}   "
          f"simulations: {record.simulations}")
    print(f"best      : {record.best.key}   time: {_fmt_time(record.best_time)}")
    print(f"default   : {record.default.key}   "
          f"time: {_fmt_time(record.default_time)}")
    speedup = record.speedup_vs_default
    if speedup is not None:
        print(f"speedup   : {speedup:.3f}x vs paper default")
    if trace:
        print("trace     :")
        for entry in record.trace:
            sim = _fmt_time(entry.sim_time)
            print(f"  {entry.status:<15} model={entry.model_time:.6f}s "
                  f"sim={sim:<11} {entry.candidate.key}")


def _signatures(args) -> list:
    """Resolve the kernel spec (+ one or more ``--n``) to signatures."""
    from repro.tune.signature import (
        signature_for_ssc,
        signature_for_ssc25d,
        signature_for_summa,
    )

    dims = args.n if isinstance(args.n, list) else [args.n]
    if args.kernel in ("ssc", "summa"):
        if args.p is None:
            raise SystemExit(f"search {args.kernel} requires --p")
        make = signature_for_ssc if args.kernel == "ssc" else signature_for_summa
        return [make(args.p, n, ppn=args.ppn) for n in dims]
    if args.q is None or args.c is None:
        raise SystemExit("search ssc25d requires --q and --c")
    return [signature_for_ssc25d(args.q, args.c, n, ppn=args.ppn)
            for n in dims]


def _cmd_search(args) -> int:
    from repro.tune.db import TuningDB
    from repro.tune.tuner import Tuner

    db = TuningDB(path=args.db)
    tuner = Tuner(db=db, policy=args.policy, seed=args.seed)
    args.n = args.n[0] if isinstance(args.n, list) else args.n
    try:
        sig = _signatures(args)[0]
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    record = tuner.tune(sig)
    _print_record(record, trace=args.trace)
    if args.db:
        db.save()
        print(f"saved {len(db)} record(s) to {args.db}")
    return 0


def _cmd_warm(args) -> int:
    """Pre-warm a tuning db through the service (coalescing + interpolation).

    The requests run through one :class:`~repro.tune.service.TuningService`
    in spec order, so a family sweep (several ``--n`` within ±10%) resolves
    the later sizes as interpolated warm starts; with ``--threads`` > 1 the
    submissions race and concurrent duplicates are coalesced (generation
    stamps then follow the racy first-miss order — use one thread when the
    db bytes must be reproducible run-over-run).
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.tune.service import TuningService

    try:
        sigs = _signatures(args)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    svc = TuningService(args.db, policy=args.policy, seed=args.seed)
    try:
        if args.threads > 1:
            with ThreadPoolExecutor(max_workers=args.threads) as pool:
                records = list(pool.map(lambda s: svc.tune(s), sigs))
        else:
            records = [svc.tune(sig) for sig in sigs]
        for record in records:
            speedup = record.speedup_vs_default
            extra = f"  ({speedup:.3f}x vs default)" if speedup else ""
            print(f"{record.signature.key}\n  -> {record.best.key}  "
                  f"{_fmt_time(record.best_time)}{extra}")
        if args.db:
            target = svc.save()
            print(f"saved {len(svc.db)} record(s) to {target}")
        stats = svc.stats()
        print(f"searches: {stats['searches']}  "
              f"interpolated: {stats['interpolated']}  "
              f"coalesced: {stats['coalesced']}  hits: {stats['hits']}  "
              f"simulations: {stats['simulations']}")
    finally:
        svc.close()
    return 0


def _cmd_serve(args) -> int:
    from repro.tune.service import TuningService, run_server

    svc = TuningService(args.db, policy=args.policy, seed=args.seed,
                        stale_while_revalidate=args.swr,
                        mp_safe=args.mp_safe)
    print(f"serving tuning db {args.db or '<ephemeral>'} on {args.socket}",
          flush=True)
    try:
        run_server(svc, args.socket)
    finally:
        if args.db:
            svc.save()
        svc.close()
    return 0


def _cmd_show(args) -> int:
    from repro.tune.db import TuningDB

    fmt = _resolve_format(args)
    db = TuningDB(path=args.db)
    if args.key:
        try:
            record = db.get(args.key)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 1
        if fmt == "json":
            _emit_json(record.as_dict())
        else:
            _print_record(record, trace=args.trace)
        return 0
    if fmt == "json":
        _emit_json({"db": str(args.db),
                    "records": [db.get(k).as_dict() for k in db.keys()]})
        return 0
    if not len(db):
        print(f"{args.db}: empty tuning database")
        return 0
    for key in db.keys():
        record = db.get(key)
        speedup = record.speedup_vs_default
        extra = f"  ({speedup:.3f}x vs default)" if speedup else ""
        print(f"{key}\n  -> {record.best.key}  "
              f"{_fmt_time(record.best_time)}{extra}")
    return 0


def _cmd_export(args) -> int:
    from repro.tune.db import TuningDB

    db = TuningDB(path=args.db)
    target = db.save(args.output)
    if _resolve_format(args) == "json":
        _emit_json({"exported": len(db), "path": str(target)})
    else:
        print(f"exported {len(db)} record(s) to {target}")
    return 0


def _add_workload_options(p: argparse.ArgumentParser, *,
                          many_n: bool) -> None:
    if many_n:
        p.add_argument("--n", type=int, required=True, action="append",
                       help="matrix dimension (repeatable)")
    else:
        p.add_argument("--n", type=int, required=True,
                       help="matrix dimension")
    p.add_argument("--p", type=int, default=None,
                   help="3D mesh side (ssc) / 2D mesh side (summa)")
    p.add_argument("--q", type=int, default=None, help="2.5D layer side")
    p.add_argument("--c", type=int, default=None, help="2.5D replication")
    p.add_argument("--ppn", type=int, default=1, help="requested PPN")
    p.add_argument("--policy", default="auto",
                   choices=("auto", "model-only", "exhaustive", "db-only"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--db", default=None, metavar="FILE",
                   help="tuning database to warm-start from and save to")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Autotune SymmSquareCube configurations "
                    "(N_DUP, PPN, 2.5D replication, algorithm variant).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_search = sub.add_parser("search", help="run a tuning search")
    p_search.add_argument("kernel", choices=("ssc", "ssc25d", "summa"))
    _add_workload_options(p_search, many_n=False)
    p_search.add_argument("--trace", action="store_true",
                          help="print the full decision trace")
    p_search.set_defaults(fn=_cmd_search)

    p_warm = sub.add_parser(
        "warm", help="pre-warm a db through the tuning service")
    p_warm.add_argument("kernel", choices=("ssc", "ssc25d", "summa"))
    _add_workload_options(p_warm, many_n=True)
    p_warm.add_argument("--threads", type=int, default=1,
                        help="submit requests from this many threads "
                             "(>1 exercises coalescing; db generation "
                             "order then follows the racy arrival order)")
    p_warm.set_defaults(fn=_cmd_warm)

    p_serve = sub.add_parser(
        "serve", help="serve a tuning db to other processes (unix socket)")
    p_serve.add_argument("--socket", required=True, metavar="PATH",
                         help="unix socket path to listen on")
    p_serve.add_argument("--db", default=None, metavar="FILE")
    p_serve.add_argument("--policy", default="auto",
                         choices=("auto", "model-only", "exhaustive",
                                  "db-only"))
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--swr", action="store_true",
                         help="serve stale records while re-tuning in the "
                              "background (fault-plan fabric changes)")
    p_serve.add_argument("--mp-safe", action="store_true", dest="mp_safe",
                         help="share the db file with other writer "
                              "processes through file locking")
    p_serve.set_defaults(fn=_cmd_serve)

    p_show = sub.add_parser("show", help="inspect a tuning database")
    p_show.add_argument("--db", required=True, metavar="FILE")
    p_show.add_argument("--key", default=None, help="one record (default: all)")
    p_show.add_argument("--trace", action="store_true")
    _add_output_options(p_show)
    p_show.set_defaults(fn=_cmd_show)

    p_export = sub.add_parser("export", help="re-serialize a database")
    p_export.add_argument("--db", required=True, metavar="FILE")
    p_export.add_argument("--output", required=True, metavar="FILE")
    _add_output_options(p_export)
    p_export.set_defaults(fn=_cmd_export)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
