"""Command-line entry point: ``python -m repro.tune``.

Examples::

    python -m repro.tune search ssc --p 2 --n 512 --db tune_db.json
    python -m repro.tune search ssc25d --q 4 --c 2 --n 512 --policy exhaustive
    python -m repro.tune show --db tune_db.json
    python -m repro.tune show --db tune_db.json --key 'ssc:n512:...' --trace
    python -m repro.tune export --db tune_db.json --output /tmp/copy.json
"""

from __future__ import annotations

import argparse
import sys


def _fmt_time(t: float | None) -> str:
    return "-" if t is None else f"{t:.6f}s"


def _print_record(record, trace: bool = False) -> None:
    print(f"signature : {record.signature.key}")
    print(f"policy    : {record.policy}   seed: {record.seed}   "
          f"simulations: {record.simulations}")
    print(f"best      : {record.best.key}   time: {_fmt_time(record.best_time)}")
    print(f"default   : {record.default.key}   "
          f"time: {_fmt_time(record.default_time)}")
    speedup = record.speedup_vs_default
    if speedup is not None:
        print(f"speedup   : {speedup:.3f}x vs paper default")
    if trace:
        print("trace     :")
        for entry in record.trace:
            sim = _fmt_time(entry.sim_time)
            print(f"  {entry.status:<15} model={entry.model_time:.6f}s "
                  f"sim={sim:<11} {entry.candidate.key}")


def _cmd_search(args) -> int:
    from repro.tune.db import TuningDB
    from repro.tune.tuner import Tuner

    db = TuningDB(path=args.db)
    tuner = Tuner(db=db, policy=args.policy, seed=args.seed)
    if args.kernel == "ssc":
        if args.p is None:
            print("search ssc requires --p", file=sys.stderr)
            return 2
        record = tuner.autotune_ssc(args.p, args.n, ppn=args.ppn)
    else:
        if args.q is None or args.c is None:
            print("search ssc25d requires --q and --c", file=sys.stderr)
            return 2
        record = tuner.autotune_ssc25d(args.q, args.c, args.n, ppn=args.ppn)
    _print_record(record, trace=args.trace)
    if args.db:
        db.save()
        print(f"saved {len(db)} record(s) to {args.db}")
    return 0


def _cmd_show(args) -> int:
    from repro.tune.db import TuningDB

    db = TuningDB(path=args.db)
    if args.key:
        try:
            record = db.get(args.key)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 1
        _print_record(record, trace=args.trace)
        return 0
    if not len(db):
        print(f"{args.db}: empty tuning database")
        return 0
    for key in db.keys():
        record = db.get(key)
        speedup = record.speedup_vs_default
        extra = f"  ({speedup:.3f}x vs default)" if speedup else ""
        print(f"{key}\n  -> {record.best.key}  "
              f"{_fmt_time(record.best_time)}{extra}")
    return 0


def _cmd_export(args) -> int:
    from repro.tune.db import TuningDB

    db = TuningDB(path=args.db)
    target = db.save(args.output)
    print(f"exported {len(db)} record(s) to {target}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Autotune SymmSquareCube configurations "
                    "(N_DUP, PPN, 2.5D replication, algorithm variant).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_search = sub.add_parser("search", help="run a tuning search")
    p_search.add_argument("kernel", choices=("ssc", "ssc25d"))
    p_search.add_argument("--n", type=int, required=True, help="matrix dimension")
    p_search.add_argument("--p", type=int, default=None, help="3D mesh side (ssc)")
    p_search.add_argument("--q", type=int, default=None, help="2.5D layer side")
    p_search.add_argument("--c", type=int, default=None, help="2.5D replication")
    p_search.add_argument("--ppn", type=int, default=1, help="requested PPN")
    p_search.add_argument("--policy", default="auto",
                          choices=("auto", "model-only", "exhaustive", "db-only"))
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--db", default=None, metavar="FILE",
                          help="tuning database to warm-start from and save to")
    p_search.add_argument("--trace", action="store_true",
                          help="print the full decision trace")
    p_search.set_defaults(fn=_cmd_search)

    p_show = sub.add_parser("show", help="inspect a tuning database")
    p_show.add_argument("--db", required=True, metavar="FILE")
    p_show.add_argument("--key", default=None, help="one record (default: all)")
    p_show.add_argument("--trace", action="store_true")
    p_show.set_defaults(fn=_cmd_show)

    p_export = sub.add_parser("export", help="re-serialize a database")
    p_export.add_argument("--db", required=True, metavar="FILE")
    p_export.add_argument("--output", required=True, metavar="FILE")
    p_export.set_defaults(fn=_cmd_export)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
