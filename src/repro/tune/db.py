"""The persistent tuning database — versioned, bounded, byte-deterministic.

A :class:`TuningRecord` is the full outcome of one tuning search: the
signature, the seed and policy, the complete decision trace (every
candidate with its model estimate, its simulated time or the reason it was
never simulated), the chosen configuration and the paper-default it was
measured against.  Records carry **no wall-clock timestamps** — a
monotonically increasing ``generation`` counter orders them instead, so a
search replayed with the same inputs produces byte-identical records.

A :class:`TuningDB` maps signature keys to records.  It is bounded
(:data:`DEFAULT_MAX_RECORDS`, oldest ``generation`` evicted first) and
serializes to schema-versioned JSON with records sorted by key, so the
on-disk bytes are a pure function of the logical content.  Loading a file
with a different :data:`DB_SCHEMA` raises — stale formats never silently
warm-start a search.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.tune.candidates import Candidate
from repro.tune.signature import WorkloadSignature

#: On-disk schema version; bump on any record/key format change.
DB_SCHEMA = 1

#: Default record bound of a :class:`TuningDB`.
DEFAULT_MAX_RECORDS = 256

#: ``status`` vocabulary of decision-trace entries.  ``replayed`` marks a
#: shortlist score produced by the event-graph replayer
#: (:mod:`repro.sim.replay`) instead of a full simulation;
#: ``deadline-analytic`` marks a default candidate whose simulation hit the
#: deadline but was kept as the incumbent at its analytic estimate (the
#: search must never drop the paper default entirely); ``interpolated``
#: marks a stage-2 score produced by a nearest-neighbor warm start — the
#: shortlist was seeded from a nearby-``n`` record of the same family and
#: re-ranked with the analytic model instead of enumerated from scratch
#: (see :mod:`repro.tune.service`).
TRACE_STATUSES = ("simulated", "replayed", "pruned-model", "pruned-deadline",
                  "deadline-analytic", "model-only", "interpolated")


@dataclass
class TraceEntry:
    """One candidate's fate during a search."""

    candidate: Candidate
    model_time: float                 #: stage-1 analytic estimate [s]
    sim_time: float | None = None     #: stage-2 simulated kernel time [s]
    status: str = "pruned-model"      #: one of :data:`TRACE_STATUSES`

    def as_dict(self) -> dict:
        return {
            "candidate": self.candidate.as_dict(),
            "model_time": self.model_time,
            "sim_time": self.sim_time,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEntry":
        return cls(
            candidate=Candidate.from_dict(d["candidate"]),
            model_time=d["model_time"], sim_time=d.get("sim_time"),
            status=d.get("status", "simulated"),
        )


@dataclass
class TuningRecord:
    """Outcome of one tuning search for one workload signature."""

    signature: WorkloadSignature
    policy: str
    seed: int
    best: Candidate
    best_time: float | None           #: simulated (or modeled) time of ``best``
    default: Candidate                #: the paper-default configuration
    default_time: float | None
    trace: list[TraceEntry] = field(default_factory=list)
    simulations: int = 0              #: simulator invocations this search made
    generation: int = 0               #: db insertion order (no wall clock)
    schema: int = DB_SCHEMA

    @property
    def speedup_vs_default(self) -> float | None:
        """``default_time / best_time`` when both were measured."""
        if not self.best_time or not self.default_time:
            return None
        return self.default_time / self.best_time

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "signature": self.signature.as_dict(),
            "policy": self.policy,
            "seed": self.seed,
            "best": self.best.as_dict(),
            "best_time": self.best_time,
            "default": self.default.as_dict(),
            "default_time": self.default_time,
            "speedup_vs_default": self.speedup_vs_default,
            "trace": [t.as_dict() for t in self.trace],
            "simulations": self.simulations,
            "generation": self.generation,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TuningRecord":
        return cls(
            signature=WorkloadSignature.from_dict(d["signature"]),
            policy=d["policy"], seed=int(d["seed"]),
            best=Candidate.from_dict(d["best"]), best_time=d.get("best_time"),
            default=Candidate.from_dict(d["default"]),
            default_time=d.get("default_time"),
            trace=[TraceEntry.from_dict(t) for t in d.get("trace", [])],
            simulations=int(d.get("simulations", 0)),
            generation=int(d.get("generation", 0)),
            schema=int(d.get("schema", DB_SCHEMA)),
        )

    def to_bytes(self) -> bytes:
        """Canonical byte serialization (sorted keys, fixed separators).

        Two searches with the same signature, seed and policy must produce
        identical bytes — the determinism tests compare exactly this.
        """
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":")).encode()


class TuningDB:
    """Bounded, deterministic signature-key -> :class:`TuningRecord` store."""

    def __init__(self, path: str | pathlib.Path | None = None,
                 max_records: int = DEFAULT_MAX_RECORDS):
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.path = pathlib.Path(path) if path is not None else None
        self.max_records = max_records
        self._records: dict[str, TuningRecord] = {}
        self._next_generation = 0
        if self.path is not None and self.path.is_file():
            self._load(self.path)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> list[str]:
        """All record keys, sorted (the db's deterministic order)."""
        return sorted(self._records)

    def lookup(self, sig: WorkloadSignature) -> TuningRecord | None:
        """The stored record for ``sig``, or ``None`` (warm-start probe)."""
        return self._records.get(sig.key)

    def get(self, key: str) -> TuningRecord:
        """Record stored under ``key``; raises ``KeyError`` with the knowns."""
        try:
            return self._records[key]
        except KeyError:
            raise KeyError(
                f"no tuning record for {key!r}; known keys: {self.keys()}"
            ) from None

    # -- mutation ---------------------------------------------------------------

    def insert(self, record: TuningRecord) -> TuningRecord:
        """Store ``record`` (stamping its generation), evicting the oldest.

        Re-inserting a signature replaces its record in place (the new
        record still receives a fresh generation, making it the youngest).
        """
        record.generation = self._next_generation
        self._next_generation += 1
        self._records[record.signature.key] = record
        while len(self._records) > self.max_records:
            oldest = min(self._records, key=lambda k: self._records[k].generation)
            del self._records[oldest]
        return record

    def clear(self) -> None:
        self._records.clear()
        self._next_generation = 0

    # -- persistence -------------------------------------------------------------

    def to_json(self) -> str:
        """Schema-versioned JSON with records sorted by key (stable bytes)."""
        doc = {
            "schema": DB_SCHEMA,
            "next_generation": self._next_generation,
            "records": [self._records[k].as_dict() for k in self.keys()],
        }
        return json.dumps(doc, sort_keys=True, indent=1) + "\n"

    def save(self, path: str | pathlib.Path | None = None) -> pathlib.Path:
        """Write the db; defaults to the path it was constructed with."""
        target = pathlib.Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("TuningDB has no path; pass save(path=...)")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json())
        return target

    def _load(self, path: pathlib.Path) -> None:
        doc = json.loads(path.read_text())
        schema = doc.get("schema")
        if schema != DB_SCHEMA:
            raise ValueError(
                f"tuning db {path} has schema {schema!r}, expected {DB_SCHEMA}; "
                f"delete or re-export it"
            )
        self._records = {}
        for rd in doc.get("records", []):
            rec = TuningRecord.from_dict(rd)
            self._records[rec.signature.key] = rec
        self._next_generation = int(doc.get("next_generation", len(self._records)))
