"""The tuner front-end: policies, warm starts, and the kernel entry points.

A :class:`Tuner` binds a :class:`~repro.tune.db.TuningDB` (possibly
ephemeral) to a :class:`TuningPolicy` and exposes one method per kernel.
The kernels call these through ``run_ssc(..., tune="auto")`` /
``run_ssc25d(..., tune="auto")``; the CLI (``python -m repro.tune``) and the
``ablation-autotune`` bench experiment call them directly.

Policies
--------
``"auto"``
    Warm-start from the db when the signature is already recorded;
    otherwise run the two-stage search and record the result.
``"model-only"``
    Rank candidates with the analytic models alone — no simulator runs.
    Cheap, and the right tool inside model-calibration sweeps.
``"exhaustive"``
    Simulate *every* valid candidate (early termination still prunes
    hopeless runs).  The ground-truth policy the tests compare against.
``"db-only"``
    Never search: return the recorded decision or raise ``KeyError``.
    For production-style runs that must not pay search cost.
"""

from __future__ import annotations

from repro.netmodel.params import MachineParams, NetworkParams
from repro.tune.candidates import enumerate_candidates, paper_default_candidate
from repro.tune.db import TuningDB, TuningRecord
from repro.tune.search import (
    DEFAULT_MAX_CANDIDATES,
    DEFAULT_SHORTLIST,
    SearchOutcome,
    search,
)
from repro.tune.signature import (
    WorkloadSignature,
    signature_for_ssc,
    signature_for_ssc25d,
    signature_for_summa,
)

#: The policy vocabulary (see module docstring).
TUNING_POLICIES = ("auto", "model-only", "exhaustive", "db-only")

#: Alias used in signatures/docs; policies are plain strings from
#: :data:`TUNING_POLICIES`.
TuningPolicy = str


def check_policy(policy: str) -> None:
    """``policy`` must be one of :data:`TUNING_POLICIES`."""
    if policy not in TUNING_POLICIES:
        raise ValueError(
            f"unknown tuning policy {policy!r}; pick from {sorted(TUNING_POLICIES)}"
        )


class Tuner:
    """Policy-driven configuration search with a persistent warm-start db."""

    def __init__(self, db: TuningDB | None = None,
                 policy: TuningPolicy = "auto", *,
                 shortlist: int = DEFAULT_SHORTLIST,
                 max_candidates: int = DEFAULT_MAX_CANDIDATES,
                 seed: int = 0,
                 replay: str = "off"):
        check_policy(policy)
        self.db = db if db is not None else TuningDB()
        self.policy = policy
        self.shortlist = shortlist
        self.max_candidates = max_candidates
        self.seed = seed
        #: Shortlist-scoring backend knob, forwarded to
        #: :func:`repro.tune.search.search` together with this tuner's
        #: lifetime graph cache.  ``"off"`` (the default) keeps pure
        #: full-simulation scoring; ``"on"``/``"auto"`` record each scored
        #: candidate's event graph and replay it when the same workload is
        #: re-tuned under different fabric constants (e.g. a sweep).
        self.replay = replay
        self.graph_cache: dict = {}
        #: Simulator invocations across this tuner's lifetime (warm starts
        #: add zero — the warm-start tests assert exactly that).
        self.simulations = 0
        #: Shortlist scorings served by graph replay instead of simulation.
        self.replays = 0

    # -- kernel entry points ---------------------------------------------------

    def autotune_ssc(self, p: int, n: int, *, ppn: int = 1,
                     placement: str = "block",
                     params: NetworkParams | None = None,
                     machine: MachineParams | None = None) -> TuningRecord:
        """Best configuration for a :func:`repro.kernels.run_ssc` workload."""
        sig = signature_for_ssc(p, n, ppn=ppn, placement=placement,
                                params=params, machine=machine)
        return self.tune(sig, params=params, machine=machine)

    def autotune_summa(self, p: int, n: int, *, ppn: int = 1,
                       params: NetworkParams | None = None,
                       machine: MachineParams | None = None) -> TuningRecord:
        """Best configuration for a :func:`repro.dense.run_summa` workload.

        Sweeps the variant (plain / streaming / colored), the color count,
        and the pre-posted broadcast-window depth; the paper default (and
        incumbent seed) is the plain blocking variant.
        """
        sig = signature_for_summa(p, n, ppn=ppn, params=params,
                                  machine=machine)
        return self.tune(sig, params=params, machine=machine)

    def autotune_ssc25d(self, q: int, c: int, n: int, *, ppn: int = 1,
                        params: NetworkParams | None = None,
                        machine: MachineParams | None = None) -> TuningRecord:
        """Best configuration for a :func:`repro.kernels.run_ssc25d` workload."""
        sig = signature_for_ssc25d(q, c, n, ppn=ppn, params=params,
                                   machine=machine)
        return self.tune(sig, params=params, machine=machine)

    # -- core ------------------------------------------------------------------

    def tune(self, sig: WorkloadSignature, *,
             params: NetworkParams | None = None,
             machine: MachineParams | None = None) -> TuningRecord:
        """Resolve ``sig`` to a :class:`TuningRecord` under this policy."""
        if self.policy in ("auto", "db-only"):
            hit = self.db.lookup(sig)
            if hit is not None:
                return hit
            if self.policy == "db-only":
                raise KeyError(
                    f"tuning policy 'db-only' found no record for {sig.key!r}; "
                    f"run a search first (policy 'auto' or the CLI) or point "
                    f"tune_db at a populated database"
                )
        outcome = self._search(sig, params=params, machine=machine)
        record = self._record(sig, outcome)
        self.db.insert(record)
        return record

    def _search(self, sig: WorkloadSignature, *,
                params: NetworkParams | None,
                machine: MachineParams | None) -> SearchOutcome:
        candidates = enumerate_candidates(sig, machine=machine)
        default = paper_default_candidate(sig)
        outcome = search(
            sig, candidates, default, params=params, machine=machine,
            shortlist=self.shortlist, max_candidates=self.max_candidates,
            seed=self.seed, model_only=(self.policy == "model-only"),
            exhaustive=(self.policy == "exhaustive"),
            replay=self.replay, graph_cache=self.graph_cache,
        )
        self.simulations += outcome.simulations
        self.replays += outcome.replays
        return outcome

    def _record(self, sig: WorkloadSignature,
                outcome: SearchOutcome) -> TuningRecord:
        best, default = outcome.best, outcome.default
        best_time = best.sim_time if best.sim_time is not None else best.model_time
        default_time = (default.sim_time if default.sim_time is not None
                        else default.model_time)
        return TuningRecord(
            signature=sig, policy=self.policy, seed=self.seed,
            best=best.candidate, best_time=best_time,
            default=default.candidate, default_time=default_time,
            trace=outcome.trace, simulations=outcome.simulations,
        )
