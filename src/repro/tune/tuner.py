"""The tuner front-end: policies, warm starts, and the kernel entry points.

A :class:`Tuner` binds a :class:`~repro.tune.db.TuningDB` (possibly
ephemeral) to a :class:`TuningPolicy` and exposes one method per kernel.
The kernels call these through ``run_ssc(..., tune="auto")`` /
``run_ssc25d(..., tune="auto")``; the CLI (``python -m repro.tune``) and the
``ablation-autotune`` bench experiment call them directly.

Policies
--------
``"auto"``
    Warm-start from the db when the signature is already recorded;
    otherwise run the two-stage search and record the result.
``"model-only"``
    Rank candidates with the analytic models alone — no simulator runs.
    Cheap, and the right tool inside model-calibration sweeps.
``"exhaustive"``
    Simulate *every* valid candidate (early termination still prunes
    hopeless runs).  The ground-truth policy the tests compare against.
``"db-only"``
    Never search: return the recorded decision or raise ``KeyError``.
    For production-style runs that must not pay search cost.
"""

from __future__ import annotations

import threading

from repro.netmodel.params import MachineParams, NetworkParams
from repro.tune.candidates import Candidate, enumerate_candidates, \
    paper_default_candidate
from repro.tune.db import TuningDB, TuningRecord
from repro.tune.search import (
    DEFAULT_MAX_CANDIDATES,
    DEFAULT_SHORTLIST,
    SearchOutcome,
    search,
)
from repro.tune.signature import (
    WorkloadSignature,
    signature_for_ssc,
    signature_for_ssc25d,
    signature_for_summa,
)

#: The policy vocabulary (see module docstring).
TUNING_POLICIES = ("auto", "model-only", "exhaustive", "db-only")

#: Alias used in signatures/docs; policies are plain strings from
#: :data:`TUNING_POLICIES`.
TuningPolicy = str


def check_policy(policy: str) -> None:
    """``policy`` must be one of :data:`TUNING_POLICIES`."""
    if policy not in TUNING_POLICIES:
        raise ValueError(
            f"unknown tuning policy {policy!r}; pick from {sorted(TUNING_POLICIES)}"
        )


def interpolation_seeds(record: TuningRecord) -> list[Candidate]:
    """A neighbor record's surviving shortlist — the interpolation seeds.

    Every trace entry that was actually scored (``sim_time`` set: simulated,
    replayed, interpolated or kept at its deadline-analytic estimate) is a
    candidate worth re-ranking at a nearby ``n``; pruned entries already
    lost at *their* n and stay out.  Sorted by candidate key so the seed
    order — and therefore the warm-started search — is deterministic.
    """
    return sorted((t.candidate for t in record.trace
                   if t.sim_time is not None),
                  key=lambda c: c.key)


class Tuner:
    """Policy-driven configuration search with a persistent warm-start db."""

    def __init__(self, db: TuningDB | None = None,
                 policy: TuningPolicy = "auto", *,
                 shortlist: int = DEFAULT_SHORTLIST,
                 max_candidates: int = DEFAULT_MAX_CANDIDATES,
                 seed: int = 0,
                 replay: str = "off",
                 graph_store=None):
        check_policy(policy)
        self.db = db if db is not None else TuningDB()
        self.policy = policy
        self.shortlist = shortlist
        self.max_candidates = max_candidates
        self.seed = seed
        #: Shortlist-scoring backend knob, forwarded to
        #: :func:`repro.tune.search.search` together with this tuner's
        #: lifetime graph cache.  ``"off"`` (the default) keeps pure
        #: full-simulation scoring; ``"on"``/``"auto"`` record each scored
        #: candidate's event graph and replay it when the same workload is
        #: re-tuned under different fabric constants (e.g. a sweep).
        self.replay = replay
        #: Optional :class:`repro.tune.graphstore.GraphStore` backing the
        #: in-memory graph cache: recorded graphs for a workload are loaded
        #: from disk on first search and persisted after each search, so a
        #: *fresh process* warm-starts its shortlist scoring through replay
        #: instead of full simulation.  Providing a store implies
        #: ``replay="auto"`` unless the caller forced a mode.
        self.graph_store = graph_store
        if graph_store is not None and replay == "off":
            self.replay = "auto"
        self.graph_cache: dict = {}
        self._loaded_workloads: set[str] = set()
        #: Counter guard: tuners are shared across service worker threads,
        #: and ``+=`` on attributes is a read-modify-write race.
        self._counter_lock = threading.Lock()
        #: Simulator invocations across this tuner's lifetime (warm starts
        #: add zero — the warm-start tests assert exactly that).
        self.simulations = 0
        #: Shortlist scorings served by graph replay instead of simulation.
        self.replays = 0
        #: Replays cut short by the incumbent deadline (early abort).
        self.replay_aborts = 0
        #: Recorded graphs loaded from the graph store (cross-process reuse).
        self.replay_loads = 0
        #: Searches that ran on an interpolated (seeded) shortlist.
        self.interpolations = 0

    # -- kernel entry points ---------------------------------------------------

    def autotune_ssc(self, p: int, n: int, *, ppn: int = 1,
                     placement: str = "block",
                     params: NetworkParams | None = None,
                     machine: MachineParams | None = None) -> TuningRecord:
        """Best configuration for a :func:`repro.kernels.run_ssc` workload."""
        sig = signature_for_ssc(p, n, ppn=ppn, placement=placement,
                                params=params, machine=machine)
        return self.tune(sig, params=params, machine=machine)

    def autotune_summa(self, p: int, n: int, *, ppn: int = 1,
                       params: NetworkParams | None = None,
                       machine: MachineParams | None = None) -> TuningRecord:
        """Best configuration for a :func:`repro.dense.run_summa` workload.

        Sweeps the variant (plain / streaming / colored), the color count,
        and the pre-posted broadcast-window depth; the paper default (and
        incumbent seed) is the plain blocking variant.
        """
        sig = signature_for_summa(p, n, ppn=ppn, params=params,
                                  machine=machine)
        return self.tune(sig, params=params, machine=machine)

    def autotune_ssc25d(self, q: int, c: int, n: int, *, ppn: int = 1,
                        params: NetworkParams | None = None,
                        machine: MachineParams | None = None) -> TuningRecord:
        """Best configuration for a :func:`repro.kernels.run_ssc25d` workload."""
        sig = signature_for_ssc25d(q, c, n, ppn=ppn, params=params,
                                   machine=machine)
        return self.tune(sig, params=params, machine=machine)

    # -- core ------------------------------------------------------------------

    def tune(self, sig: WorkloadSignature, *,
             params: NetworkParams | None = None,
             machine: MachineParams | None = None) -> TuningRecord:
        """Resolve ``sig`` to a :class:`TuningRecord` under this policy."""
        if self.policy in ("auto", "db-only"):
            hit = self.db.lookup(sig)
            if hit is not None:
                return hit
            if self.policy == "db-only":
                raise KeyError(
                    f"tuning policy 'db-only' found no record for {sig.key!r}; "
                    f"run a search first (policy 'auto' or the CLI) or point "
                    f"tune_db at a populated database"
                )
        record = self.search_record(sig, params=params, machine=machine)
        self.db.insert(record)
        return record

    def search_record(self, sig: WorkloadSignature, *,
                      params: NetworkParams | None = None,
                      machine: MachineParams | None = None,
                      seed_shortlist: list[Candidate] | None = None,
                      ) -> TuningRecord:
        """Run the search and build the record **without inserting it**.

        The service commits records itself in deterministic first-miss
        order (generation stamps appear in the db bytes); callers that
        want the plain insert-on-search behavior use :meth:`tune`.
        ``seed_shortlist`` enables an interpolation warm start (see
        :func:`repro.tune.search.search`).
        """
        outcome = self._search(sig, params=params, machine=machine,
                               seed_shortlist=seed_shortlist)
        return self._record(sig, outcome)

    def interpolate_from(self, sig: WorkloadSignature,
                         neighbor: TuningRecord, *,
                         params: NetworkParams | None = None,
                         machine: MachineParams | None = None,
                         ) -> TuningRecord:
        """Tune ``sig`` by warm-starting from a nearby workload's record.

        The neighbor's surviving shortlist (every trace entry that was
        actually scored, ``sim_time`` set) seeds stage 2; stage 1's full
        enumeration still runs (it is microseconds and provides validity
        filtering plus the trace), but only the re-ranked seeds are
        simulated/replayed.  The result is inserted under ``sig``'s key
        with ``interpolated`` statuses.  This is the serial twin of the
        service's interpolation path — the byte-identity tests compare
        the two.
        """
        seeds = interpolation_seeds(neighbor)
        record = self.search_record(sig, params=params, machine=machine,
                                    seed_shortlist=seeds)
        self.db.insert(record)
        return record

    def _search(self, sig: WorkloadSignature, *,
                params: NetworkParams | None,
                machine: MachineParams | None,
                seed_shortlist: list[Candidate] | None = None,
                ) -> SearchOutcome:
        candidates = enumerate_candidates(sig, machine=machine)
        default = paper_default_candidate(sig)
        loaded = self._load_graphs(sig)
        outcome = search(
            sig, candidates, default, params=params, machine=machine,
            shortlist=self.shortlist, max_candidates=self.max_candidates,
            seed=self.seed, model_only=(self.policy == "model-only"),
            exhaustive=(self.policy == "exhaustive"),
            replay=self.replay, graph_cache=self.graph_cache,
            seed_shortlist=seed_shortlist,
        )
        self._persist_graphs(sig)
        with self._counter_lock:
            self.simulations += outcome.simulations
            self.replays += outcome.replays
            self.replay_aborts += outcome.replay_aborts
            self.replay_loads += loaded
            if outcome.interpolated:
                self.interpolations += 1
        return outcome

    def _load_graphs(self, sig: WorkloadSignature) -> int:
        """Pull persisted recordings for ``sig``'s workload into the cache."""
        if self.graph_store is None or self.replay == "off":
            return 0
        wl = sig.workload_key
        with self._counter_lock:
            if wl in self._loaded_workloads:
                return 0
            self._loaded_workloads.add(wl)
        loaded = 0
        for cand_key, rec in self.graph_store.load(wl).items():
            if self.graph_cache.setdefault((wl, cand_key), rec) is rec:
                loaded += 1
        return loaded

    def _persist_graphs(self, sig: WorkloadSignature) -> None:
        """Write this workload's recorded graphs back to the store."""
        if self.graph_store is None or self.replay == "off":
            return
        wl = sig.workload_key
        graphs = {ck: g for (w, ck), g in list(self.graph_cache.items())
                  if w == wl and g.valid}
        if graphs:
            self.graph_store.save(wl, graphs)

    def _record(self, sig: WorkloadSignature,
                outcome: SearchOutcome) -> TuningRecord:
        best, default = outcome.best, outcome.default
        best_time = best.sim_time if best.sim_time is not None else best.model_time
        default_time = (default.sim_time if default.sim_time is not None
                        else default.model_time)
        return TuningRecord(
            signature=sig, policy=self.policy, seed=self.seed,
            best=best.candidate, best_time=best_time,
            default=default.candidate, default_time=default_time,
            trace=outcome.trace, simulations=outcome.simulations,
        )
