"""``python -m repro.tune`` — see :mod:`repro.tune.cli`."""

from repro.tune.cli import main

raise SystemExit(main())
