"""Candidate configurations and their generator.

A :class:`Candidate` is one fully-specified way to run a kernel for a given
:class:`~repro.tune.signature.WorkloadSignature`: the algorithm variant,
the ``N_DUP`` duplicated-communicator count, the processes-per-node, the
mesh shape (the 2.5D replication factor ``c`` rides in here), and the
collective-algorithm override.  The generator enumerates every *valid*
combination — validity is delegated to :mod:`repro.tune.validity`, the same
rules the kernels enforce, so an invalid candidate can never reach the
simulator.

Knob vocabulary
---------------
``N_DUP``
    Drawn from the divisors of :data:`PARTS_BUDGET` (24), capped at
    :data:`MAX_N_DUP` — the paper sweeps 1-6 and settles on 4.
``ppn``
    :data:`PPN_CHOICES`, capped by the machine's cores per node (the total
    rank count is fixed by the signature; more PPN = fewer nodes).
``mesh``
    Fixed at ``(p, p, p)`` for the 3D kernel; for the 2.5D kernel every
    ``q x q x c`` factorization of the signature's rank count with ``c | q``
    is a candidate (the replication-factor axis of Algorithm 6).
``collective``
    ``"auto"`` keeps the library's size-based algorithm selection;
    ``"binomial"`` / ``"long"`` force the short-message binomial or the
    long-message (scatter-allgather / Rabenseifner / ring) schedules for
    every collective, via the ``long_message_threshold`` knob.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netmodel.params import MachineParams, NetworkParams
from repro.tune.signature import WorkloadSignature
from repro.tune.validity import (
    SSC_ALGORITHMS,
    SUMMA_ALGORITHMS,
    SUMMA_COLOR_CHOICES,
    validate_ssc25d_config,
    validate_ssc_config,
    validate_summa_config,
)

#: N_DUP candidates are the divisors of this pipeline-parts budget ...
PARTS_BUDGET = 24
#: ... capped here (the paper's sweep tops out at 6; 8 covers the plateau).
MAX_N_DUP = 8
#: Processes-per-node candidates (Table III's sweep).
PPN_CHOICES = (1, 2, 4, 6, 8)
#: Collective-algorithm override choices.
COLLECTIVE_CHOICES = ("auto", "binomial", "long")
#: Pre-posted broadcast-window depths swept for the pipelined SUMMA
#: variants (``depth=1`` only validates for streaming).
SUMMA_DEPTH_CHOICES = (1, 2, 4)

#: A threshold above every realistic message forces binomial schedules ...
_FORCE_BINOMIAL_THRESHOLD = 2 ** 62
#: ... and zero forces the long-message schedules (p <= 2 stays binomial).
_FORCE_LONG_THRESHOLD = 0


def divisors(m: int) -> tuple[int, ...]:
    """The positive divisors of ``m``, ascending."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return tuple(d for d in range(1, m + 1) if m % d == 0)


def n_dup_choices(cap: int = MAX_N_DUP) -> tuple[int, ...]:
    """Valid N_DUP values: divisors of :data:`PARTS_BUDGET` up to ``cap``."""
    return tuple(d for d in divisors(PARTS_BUDGET) if d <= cap)


def apply_collective(params: NetworkParams, collective: str) -> NetworkParams:
    """Return ``params`` with the candidate's collective override applied."""
    if collective == "auto":
        return params
    if collective == "binomial":
        return params.replace(long_message_threshold=_FORCE_BINOMIAL_THRESHOLD)
    if collective == "long":
        return params.replace(long_message_threshold=_FORCE_LONG_THRESHOLD)
    raise ValueError(
        f"unknown collective override {collective!r}; "
        f"pick from {sorted(COLLECTIVE_CHOICES)}"
    )


@dataclass(frozen=True)
class Candidate:
    """One fully-specified kernel configuration."""

    kernel: str                   #: "ssc", "ssc25d" or "summa"
    algorithm: str                #: SSC/SUMMA variant, or "ssc25d" for Alg. 6
    mesh: tuple[int, int, int]    #: (pi, pj, pk); pk is the 2.5D ``c``
    n_dup: int                    #: N_DUP (SSC) / color count (SUMMA)
    ppn: int
    collective: str = "auto"
    #: Pre-posted broadcast-window depth of the pipelined SUMMA variants.
    #: Kept out of ``key``/``as_dict`` at the default so every pre-existing
    #: ssc/ssc25d key and serialized record is byte-identical (no
    #: ``DB_SCHEMA`` bump).
    depth: int = 1

    @property
    def key(self) -> str:
        """Stable short id used in decision traces and tables."""
        pi, pj, pk = self.mesh
        base = (
            f"{self.algorithm}:m{pi}x{pj}x{pk}:nd{self.n_dup}"
            f":ppn{self.ppn}:{self.collective}"
        )
        if self.depth != 1:
            base += f":t{self.depth}"
        return base

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        d = {
            "kernel": self.kernel,
            "algorithm": self.algorithm,
            "mesh": list(self.mesh),
            "n_dup": self.n_dup,
            "ppn": self.ppn,
            "collective": self.collective,
        }
        if self.depth != 1:
            d["depth"] = self.depth
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Candidate":
        return cls(
            kernel=d["kernel"], algorithm=d["algorithm"],
            mesh=tuple(int(x) for x in d["mesh"]), n_dup=int(d["n_dup"]),
            ppn=int(d["ppn"]), collective=d.get("collective", "auto"),
            depth=int(d.get("depth", 1)),
        )

    def validate(self, n: int) -> None:
        """Re-check this candidate against the kernel validity rules."""
        pi, _pj, pk = self.mesh
        if self.kernel == "ssc":
            validate_ssc_config(pi, n, self.algorithm, self.n_dup, self.ppn)
        elif self.kernel == "ssc25d":
            validate_ssc25d_config(pi, pk, n, self.n_dup, self.ppn)
        elif self.kernel == "summa":
            validate_summa_config(pi, n, self.algorithm, self.n_dup,
                                  self.depth, self.ppn)
        else:
            raise ValueError(f"unknown kernel {self.kernel!r}")


def _ppn_choices(machine: MachineParams | None) -> tuple[int, ...]:
    cores = (machine or MachineParams()).cores_per_node
    return tuple(p for p in PPN_CHOICES if p <= cores)


def meshes_25d(ranks: int) -> tuple[tuple[int, int, int], ...]:
    """Every valid ``q x q x c`` factorization of ``ranks`` with ``c | q``."""
    out = []
    q = 1
    while q * q <= ranks:
        if ranks % (q * q) == 0:
            c = ranks // (q * q)
            if c <= q and q % c == 0:
                out.append((q, q, c))
        q += 1
    return tuple(sorted(out))


def enumerate_candidates(
    sig: WorkloadSignature,
    machine: MachineParams | None = None,
    collectives: tuple[str, ...] = COLLECTIVE_CHOICES,
) -> list[Candidate]:
    """All valid candidates for ``sig``, deterministically ordered.

    Invalid combinations (non-dividing ``N_DUP``/``c``, pipeline on a
    non-optimized variant, ...) are filtered with the exact kernel rules;
    the order is a pure function of the signature so searches (and their
    early-termination decisions) replay bit-for-bit.
    """
    cands: list[Candidate] = []
    if sig.kernel == "ssc":
        p = sig.mesh[0]
        for algorithm in SSC_ALGORITHMS:
            ndups = n_dup_choices() if algorithm == "optimized" else (1,)
            for n_dup in ndups:
                for ppn in _ppn_choices(machine):
                    for collective in collectives:
                        try:
                            validate_ssc_config(p, sig.n, algorithm, n_dup, ppn)
                        except ValueError:
                            continue
                        cands.append(Candidate(
                            kernel="ssc", algorithm=algorithm,
                            mesh=(p, p, p), n_dup=n_dup, ppn=ppn,
                            collective=collective,
                        ))
    elif sig.kernel == "summa":
        p = sig.mesh[0]
        for algorithm in SUMMA_ALGORITHMS:
            color_choices = (SUMMA_COLOR_CHOICES if algorithm == "colored"
                             else (1,))
            depth_choices = (1,) if algorithm == "plain" else SUMMA_DEPTH_CHOICES
            for colors in color_choices:
                for depth in depth_choices:
                    for ppn in _ppn_choices(machine):
                        for collective in collectives:
                            try:
                                validate_summa_config(p, sig.n, algorithm,
                                                      colors, depth, ppn)
                            except ValueError:
                                continue
                            cands.append(Candidate(
                                kernel="summa", algorithm=algorithm,
                                mesh=(p, p, 1), n_dup=colors, ppn=ppn,
                                collective=collective, depth=depth,
                            ))
    elif sig.kernel == "ssc25d":
        for mesh in meshes_25d(sig.ranks):
            q, _q, c = mesh
            for n_dup in n_dup_choices():
                for ppn in _ppn_choices(machine):
                    for collective in collectives:
                        try:
                            validate_ssc25d_config(q, c, sig.n, n_dup, ppn)
                        except ValueError:
                            continue
                        cands.append(Candidate(
                            kernel="ssc25d", algorithm="ssc25d", mesh=mesh,
                            n_dup=n_dup, ppn=ppn, collective=collective,
                        ))
    else:  # pragma: no cover - signature already validates the kernel id
        raise ValueError(f"unknown kernel {sig.kernel!r}")
    cands.sort(key=lambda cand: cand.key)
    return cands


def paper_default_candidate(sig: WorkloadSignature) -> Candidate:
    """The paper's default configuration for ``sig`` — the tuning baseline.

    3D kernel: Algorithm 5 with ``N_DUP = 4`` ("the results justify our
    choice of using N_DUP = 4") at the signature's requested PPN; 2.5D:
    the requested mesh with ``N_DUP = 1``; SUMMA: the textbook blocking
    ``plain`` variant.  ``N_DUP`` is clamped by the validity rules for
    tiny blocks.
    """
    from repro.tune.validity import min_block_elems

    if sig.kernel == "ssc":
        p = sig.mesh[0]
        n_dup = min(4, min_block_elems(sig.n, p))
        return Candidate(kernel="ssc", algorithm="optimized",
                         mesh=(p, p, p), n_dup=n_dup, ppn=sig.ppn)
    if sig.kernel == "summa":
        p = sig.mesh[0]
        return Candidate(kernel="summa", algorithm="plain", mesh=(p, p, 1),
                         n_dup=1, ppn=sig.ppn)
    return Candidate(kernel="ssc25d", algorithm="ssc25d", mesh=sig.mesh,
                     n_dup=1, ppn=sig.ppn)
