"""Tuning-as-a-service: a concurrent, amortizing front-end for the tuner.

``repro.tune`` made configuration search automatic; this module makes it a
**shared resource**.  A :class:`TuningService` sits in front of one
:class:`~repro.tune.db.TuningDB` and serves concurrent ``tune()`` calls —
from threads in one process (the in-process facade), from other processes
over a unix socket (:class:`TuningServer` / :class:`TuningClient`), or from
unrelated processes sharing only the db file (:class:`LockedTuningDB`).
Four mechanisms turn one search into many answers:

**Record cache.**  Committed decisions live in a read-mostly dict in front
of the db.  A warm ``tune()`` is a single lock-free dict probe — no service
lock, no db access, no search (stats counters use a dedicated micro-lock
that the record path never touches).

**Request coalescing.**  Concurrent misses for the same signature join one
in-flight search through a shared future: the first arrival (the *leader*)
runs the search on its own thread, everyone else blocks on the future.  A
thousand-client stampede over one signature costs exactly one search.

**Interpolated warm starts.**  A miss whose *family* (same kernel, ranks,
mesh, PPN, placement and fabric — only ``n`` differs) already holds a
record within :data:`INTERPOLATION_REL_TOL` re-ranks that neighbor's
surviving shortlist with the analytic model at the new ``n`` and simulates
only the top few — trace status ``interpolated``, simulator cost bounded by
the shortlist size instead of a fresh enumeration-and-prune pass.

**Cross-process replay reuse.**  The service's tuner owns a
:class:`~repro.tune.graphstore.GraphStore` persisted next to the db, so
shortlist scoring in a *fresh process* loads the recorded event graphs and
prices candidates through :func:`repro.sim.replay.replay` (≥3x a full
simulation) instead of re-simulating.

Plus **online re-tuning**: when a :class:`~repro.sim.faults.FaultPlan`
changes the effective fabric constants (:func:`degraded_params`), the new
fabric hash misses — with ``stale_while_revalidate=True`` the service
answers immediately with the newest record of the same workload under the
*old* constants and kicks a background re-search that commits the fresh
decision when it lands.

Determinism contract
--------------------
Byte-determinism of the db is non-negotiable.  The service guarantees:

* For a given signature, the committed record's *content* (winner, trace,
  times) is independent of request interleaving: coalescing and caching
  change how much work is done, never which record wins.  Searches that
  could observe each other — same workload key (shared replay graphs) or
  same family key (interpolation neighbors) — are chained in first-miss
  order, so replay-vs-simulate and interpolate-vs-search decisions match a
  serial pass exactly.
* Generation stamps (which appear in the db bytes) follow **first-miss
  order**: each miss takes an order ticket under the service lock, finished
  records are staged, and a watermark flushes them into the db in
  consecutive ticket order.  Replaying the same first-miss sequence of
  distinct signatures serially (:func:`tune_serial`, the service's serial
  twin) therefore produces a **byte-identical db file** — the property the
  tests and the ``ablation-tune-service`` bench gate pin.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor

from repro.netmodel.params import MachineParams, NetworkParams
from repro.tune.db import DEFAULT_MAX_RECORDS, TuningDB, TuningRecord
from repro.tune.graphstore import GraphStore
from repro.tune.search import DEFAULT_MAX_CANDIDATES, DEFAULT_SHORTLIST
from repro.tune.signature import (
    WorkloadSignature,
    signature_for_ssc,
    signature_for_ssc25d,
    signature_for_summa,
)
from repro.tune.tuner import Tuner, interpolation_seeds

#: Interpolation neighborhood: a family record qualifies as a warm-start
#: neighbor when ``|n - n'| / n'`` is at most this.  Candidate validity and
#: the analytic models vary smoothly over a ±10% dimension change; beyond
#: it the neighbor's shortlist stops being evidence.
INTERPOLATION_REL_TOL = 0.10


def find_neighbor(records, sig: WorkloadSignature,
                  tol: float = INTERPOLATION_REL_TOL) -> TuningRecord | None:
    """The best interpolation neighbor for ``sig`` among ``records``.

    A neighbor must share ``sig.family_key`` (only ``n`` differs), sit
    within ``tol`` relative dimension distance, and carry at least one
    actually-scored trace entry to seed from.  Ties break on (relative
    distance, n, key) so the choice is a pure function of the record set —
    the service and its serial twin must pick identically.
    """
    best_rank = None
    best = None
    for rec in records:
        rsig = rec.signature
        if rsig.key == sig.key or rsig.family_key != sig.family_key:
            continue
        rel = abs(sig.n - rsig.n) / rsig.n
        if rel > tol:
            continue
        if not any(t.sim_time is not None for t in rec.trace):
            continue
        rank = (rel, rsig.n, rsig.key)
        if best_rank is None or rank < best_rank:
            best_rank, best = rank, rec
    return best


def degraded_params(params: NetworkParams | None, fault_plan) -> NetworkParams:
    """The effective fabric constants while ``fault_plan``'s links degrade.

    Takes the conservative worst case: the NIC bandwidth is scaled by the
    smallest single-window link-degradation factor in the plan (1.0 when
    the plan has none).  Because the fabric-constants hash is part of every
    signature key, the returned params give fault-window workloads their
    own tuning records — and a stale-while-revalidate service will serve
    the healthy-fabric record while re-tuning for the degraded one.
    """
    base = params or NetworkParams()
    factor = min((s.factor for s in getattr(fault_plan, "links", ())),
                 default=1.0)
    if factor >= 1.0:
        return base
    return base.replace(nic_bandwidth=base.nic_bandwidth * factor)


class _Counter:
    """An exact concurrent counter with its own micro-lock.

    CPython's ``+=`` on an attribute is a read-modify-write race; this
    keeps hot-path counters exact without ever touching the service lock.
    """

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def add(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class _InFlight:
    """One registered miss: the shared future plus its order ticket."""

    __slots__ = ("future", "order")

    def __init__(self, future: Future, order: int) -> None:
        self.future = future
        self.order = order


class TuningService:
    """Concurrent tuning backend over one :class:`TuningDB`.

    Thread-safe; every public method may be called from any thread.  The
    first thread to miss on a signature runs the search itself (callers
    are the worker pool — the service owns no threads except the optional
    stale-while-revalidate refresher).
    """

    def __init__(self, db: TuningDB | str | os.PathLike | None = None, *,
                 policy: str = "auto",
                 shortlist: int = DEFAULT_SHORTLIST,
                 max_candidates: int = DEFAULT_MAX_CANDIDATES,
                 seed: int = 0,
                 replay: str = "auto",
                 graph_store: GraphStore | str | None = "auto",
                 interpolate: bool = True,
                 interpolation_tol: float = INTERPOLATION_REL_TOL,
                 stale_while_revalidate: bool = False,
                 mp_safe: bool = False,
                 search_gate: threading.Event | None = None):
        if isinstance(db, (str, os.PathLike)):
            db = TuningDB(db)
        self.db = db if db is not None else TuningDB()
        if graph_store == "auto":
            graph_store = (GraphStore.for_db(self.db.path)
                           if self.db.path is not None else None)
        elif isinstance(graph_store, (str, os.PathLike)):
            graph_store = GraphStore(graph_store)
        self.tuner = Tuner(db=TuningDB(max_records=self.db.max_records),
                           policy=policy, shortlist=shortlist,
                           max_candidates=max_candidates, seed=seed,
                           replay=replay, graph_store=graph_store)
        self.interpolate = interpolate
        self.interpolation_tol = interpolation_tol
        self.stale_while_revalidate = stale_while_revalidate
        if mp_safe and self.db.path is None:
            raise ValueError("mp_safe=True needs a db path to lock")
        self._locked_db = (LockedTuningDB(self.db.path,
                                          max_records=self.db.max_records)
                           if mp_safe else None)
        #: Test/bench hook: leaders block here after registering their miss
        #: and before searching, so an orchestrator can guarantee every
        #: stampede request is registered before the first search finishes
        #: (making the coalesced count exactly ``requests - distinct``).
        self._gate = search_gate

        self._lock = threading.Lock()
        #: Read-mostly committed-decision cache; plain dict reads are the
        #: warm path (atomic under the GIL, no service lock).
        self._cache: dict[str, TuningRecord] = dict(self.db._records)
        self._inflight: dict[str, _InFlight] = {}
        self._wl_tail: dict[str, Future] = {}
        self._family_tail: dict[str, Future] = {}
        self._staged: dict[int, tuple] = {}
        self._next_order = 0
        self._next_insert = 0
        self._requests = _Counter()
        self._hits = _Counter()
        self._coalesced = 0
        self._searches = 0
        self._interpolated = 0
        self._stale_served = 0
        self._refreshes = 0
        self._refresh_pool: ThreadPoolExecutor | None = None
        self._refresh_futures: list[Future] = []

    # -- the request path ----------------------------------------------------

    def tune(self, sig: WorkloadSignature, *,
             params: NetworkParams | None = None,
             machine: MachineParams | None = None) -> TuningRecord:
        """Resolve ``sig`` — from cache, a joined in-flight search, an
        interpolated warm start, or a fresh search (in that order of cost)."""
        self._requests.add()
        rec = self._cache.get(sig.key)          # lock-free warm path
        if rec is not None:
            self._hits.add()
            return rec
        leader, fut, preds, order, stale = self._register(sig, params,
                                                          machine)
        if stale is not None:
            return stale
        if leader:
            self._run_search_job(sig, fut, preds, order, params, machine)
        return fut.result()

    # -- kernel entry points (Tuner-compatible, so ``run_ssc(tune=service)``
    # and friends can hand configuration choice to a shared service) --------

    def autotune_ssc(self, p: int, n: int, *, ppn: int = 1,
                     placement: str = "block",
                     params: NetworkParams | None = None,
                     machine: MachineParams | None = None) -> TuningRecord:
        """Best configuration for a :func:`repro.kernels.run_ssc` workload."""
        sig = signature_for_ssc(p, n, ppn=ppn, placement=placement,
                                params=params, machine=machine)
        return self.tune(sig, params=params, machine=machine)

    def autotune_summa(self, p: int, n: int, *, ppn: int = 1,
                       params: NetworkParams | None = None,
                       machine: MachineParams | None = None) -> TuningRecord:
        """Best configuration for a :func:`repro.dense.run_summa` workload."""
        sig = signature_for_summa(p, n, ppn=ppn, params=params,
                                  machine=machine)
        return self.tune(sig, params=params, machine=machine)

    def autotune_ssc25d(self, q: int, c: int, n: int, *, ppn: int = 1,
                        params: NetworkParams | None = None,
                        machine: MachineParams | None = None) -> TuningRecord:
        """Best configuration for a :func:`repro.kernels.run_ssc25d` workload."""
        sig = signature_for_ssc25d(q, c, n, ppn=ppn, params=params,
                                   machine=machine)
        return self.tune(sig, params=params, machine=machine)

    def _register(self, sig: WorkloadSignature, params=None, machine=None):
        """Take the miss path's decisions under the service lock."""
        key = sig.key
        with self._lock:
            rec = self._cache.get(key)
            if rec is not None:
                # Committed while we waited for the lock: a (late) hit.
                self._hits.add()
                return False, _done_future(rec), (), -1, None
            if self.tuner.policy == "db-only":
                raise KeyError(
                    f"tuning policy 'db-only' found no record for "
                    f"{sig.key!r}; warm the service first"
                )
            stale = None
            if self.stale_while_revalidate:
                stale = self._find_stale_locked(sig)
            fl = self._inflight.get(key)
            if fl is not None:
                self._coalesced += 1
                if stale is not None:
                    self._stale_served += 1
                    return False, fl.future, (), -1, stale
                return False, fl.future, (), -1, None
            if self._locked_db is not None:
                # Another process may have committed this signature since
                # our last sync; a re-read here is the load half of the
                # locked load-modify-store discipline.
                self._sync_from_disk_locked()
                rec = self._cache.get(key)
                if rec is not None:
                    self._hits.add()
                    return False, _done_future(rec), (), -1, None
            order = self._next_order
            self._next_order += 1
            fut: Future = Future()
            preds = []
            wt = self._wl_tail.get(sig.workload_key)
            if wt is not None:
                preds.append(wt)
            ft = self._family_tail.get(sig.family_key)
            if ft is not None and ft is not wt:
                preds.append(ft)
            self._wl_tail[sig.workload_key] = fut
            self._family_tail[sig.family_key] = fut
            self._inflight[key] = _InFlight(fut, order)
            if stale is not None:
                # Serve the old-fabric record now; search in the background.
                self._stale_served += 1
                self._refreshes += 1
                pool = self._refresh_pool
                if pool is None:
                    pool = self._refresh_pool = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix="tune-refresh")
                self._refresh_futures = [f for f in self._refresh_futures
                                         if not f.done()]
                self._refresh_futures.append(pool.submit(
                    self._run_search_job, sig, fut, tuple(preds), order,
                    params, machine))
                return False, fut, (), -1, stale
            return True, fut, tuple(preds), order, None

    def _run_search_job(self, sig: WorkloadSignature, fut: Future, preds,
                        order: int, params, machine) -> None:
        """Leader body: wait for chained predecessors, search, commit."""
        try:
            if self._gate is not None:
                self._gate.wait()
            for p in preds:
                try:
                    p.result()
                except BaseException:
                    pass            # only completion matters, not success
            neighbor = None
            if self.interpolate:
                with self._lock:
                    neighbor = find_neighbor(self._cache.values(), sig,
                                             self.interpolation_tol)
            if neighbor is not None:
                rec = self.tuner.search_record(
                    sig, params=params, machine=machine,
                    seed_shortlist=interpolation_seeds(neighbor))
            else:
                rec = self.tuner.search_record(sig, params=params,
                                               machine=machine)
        except BaseException as exc:
            with self._lock:
                self._commit_locked(sig, order, None)
            fut.set_exception(exc)
            return
        with self._lock:
            if neighbor is not None:
                self._interpolated += 1
            else:
                self._searches += 1
            self._commit_locked(sig, order, rec)
        fut.set_result(rec)

    def _commit_locked(self, sig: WorkloadSignature, order: int,
                       rec: TuningRecord | None) -> None:
        """Stage one finished search; flush the consecutive-order prefix.

        The record becomes visible in the cache immediately (new requests
        must hit, and chained family searches need it for neighbor scans);
        its generation stamp waits for the watermark so db insertion order
        equals first-miss order regardless of completion order.
        """
        key = sig.key
        if rec is not None:
            self._cache[key] = rec
        self._staged[order] = (key, rec)
        fl = self._inflight.pop(key, None)
        if fl is not None:
            # Prune chain tails that point at the finished future so the
            # tail maps stay bounded by the in-flight set.
            if self._wl_tail.get(sig.workload_key) is fl.future:
                del self._wl_tail[sig.workload_key]
            if self._family_tail.get(sig.family_key) is fl.future:
                del self._family_tail[sig.family_key]
        batch = []
        while self._next_insert in self._staged:
            k, r = self._staged.pop(self._next_insert)
            self._next_insert += 1
            if r is not None:
                batch.append(r)
        for r in batch:
            before = set(self.db._records)
            self.db.insert(r)
            for gone in before - set(self.db._records):
                self._cache.pop(gone, None)
        if batch and self._locked_db is not None:
            self._locked_db.insert_many(batch)

    def _find_stale_locked(self, sig) -> TuningRecord | None:
        """Newest committed record of the same workload, any fabric hash."""
        best = None
        best_rank = None
        for rec in self._cache.values():
            rsig = rec.signature
            if rsig.key == sig.key or rsig.workload_key != sig.workload_key:
                continue
            rank = (-rec.generation, rsig.key)
            if best_rank is None or rank < best_rank:
                best_rank, best = rank, rec
        return best

    def _sync_from_disk_locked(self) -> None:
        """mp-safe mode: absorb records other processes committed."""
        merged = self._locked_db.refresh()
        if merged is None:
            return
        for key, rec in merged.items():
            if key not in self._cache:
                self._cache[key] = rec

    # -- lifecycle / introspection -------------------------------------------

    def drain(self) -> None:
        """Block until every in-flight and background search has committed."""
        while True:
            with self._lock:
                futs = [fl.future for fl in self._inflight.values()]
                futs += [f for f in self._refresh_futures if not f.done()]
            if not futs:
                return
            for f in futs:
                try:
                    f.result()
                except BaseException:
                    pass

    def save(self, path=None):
        """Drain, then persist the db (its bytes are the determinism gate).

        In mp-safe mode records were already merged durably at commit time
        (under the file lock); a plain overwrite here would clobber other
        processes' merges, so the default save is a no-op returning the
        shared path.  An explicit ``path`` still exports this process's
        view.
        """
        self.drain()
        if self._locked_db is not None and path is None:
            return self.db.path
        return self.db.save(path)

    def close(self) -> None:
        self.drain()
        if self._refresh_pool is not None:
            self._refresh_pool.shutdown(wait=True)
            self._refresh_pool = None

    def stats(self) -> dict:
        """A consistent snapshot of the service counters."""
        t = self.tuner
        with self._lock:
            return {
                "requests": self._requests.value,
                "hits": self._hits.value,
                "coalesced": self._coalesced,
                "searches": self._searches,
                "interpolated": self._interpolated,
                "stale_served": self._stale_served,
                "refreshes": self._refreshes,
                "inflight": len(self._inflight),
                "records": len(self.db),
                "simulations": t.simulations,
                "replays": t.replays,
                "replay_aborts": t.replay_aborts,
                "replay_loads": t.replay_loads,
                "interpolations": t.interpolations,
            }


def _done_future(rec: TuningRecord) -> Future:
    fut: Future = Future()
    fut.set_result(rec)
    return fut


def tune_serial(requests, db: TuningDB | None = None, *,
                interpolate: bool = True,
                interpolation_tol: float = INTERPOLATION_REL_TOL,
                **tuner_opts) -> TuningDB:
    """The service's **serial twin**: same decisions, one thread, no cache.

    ``requests`` is an iterable of ``WorkloadSignature`` (or
    ``(signature, params, machine)`` tuples) processed strictly in order
    with a plain :class:`Tuner` — hit → return, family neighbor →
    interpolate, otherwise full search.  Feeding the service's first-miss
    sequence through this function must produce a byte-identical
    ``to_json()`` — that equality is the determinism gate.
    """
    db = db if db is not None else TuningDB()
    tuner = Tuner(db=db, **tuner_opts)
    for req in requests:
        if isinstance(req, WorkloadSignature):
            sig, params, machine = req, None, None
        else:
            sig, params, machine = req
        if db.lookup(sig) is not None:
            continue
        neighbor = (find_neighbor(db._records.values(), sig,
                                  interpolation_tol)
                    if interpolate else None)
        if neighbor is not None:
            tuner.interpolate_from(sig, neighbor, params=params,
                                   machine=machine)
        else:
            tuner.tune(sig, params=params, machine=machine)
    return db


class LockedTuningDB:
    """``fcntl.flock``-serialized load-modify-store over one db file.

    For unrelated processes sharing only the tuning-db path: every insert
    batch runs under an exclusive lock on ``<path>.lock`` and re-reads the
    file first, so concurrent writers merge instead of clobbering (the
    classic lost-update race the contention tests exercise).  Lookup-side
    freshness uses an mtime probe — readers re-load only when some writer
    actually committed.
    """

    def __init__(self, path, max_records: int = DEFAULT_MAX_RECORDS):
        try:
            import fcntl  # noqa: F401 — availability probe (POSIX only)
        except ImportError as exc:  # pragma: no cover - non-POSIX
            raise RuntimeError(
                "multiprocess-safe tuning needs fcntl (POSIX file locks)"
            ) from exc
        import pathlib
        self.path = pathlib.Path(path)
        self.lock_path = self.path.with_name(self.path.name + ".lock")
        self.max_records = max_records
        self._seen_mtime: float | None = None

    def _locked(self):
        import fcntl

        class _Lock:
            def __enter__(inner):
                self.lock_path.parent.mkdir(parents=True, exist_ok=True)
                inner.fh = open(self.lock_path, "w")
                fcntl.flock(inner.fh, fcntl.LOCK_EX)
                return inner.fh

            def __exit__(inner, *exc):
                import fcntl as f
                f.flock(inner.fh, f.LOCK_UN)
                inner.fh.close()
                return False

        return _Lock()

    def _load(self) -> TuningDB:
        db = TuningDB(max_records=self.max_records)
        if self.path.is_file():
            db._load(self.path)
        return db

    def insert_many(self, records) -> TuningDB:
        """Atomically merge ``records`` into the on-disk db (re-stamped).

        Generations are assigned by the on-disk db at merge time — the
        cross-process insertion order is whatever the lock arbitration
        says, but no record is ever lost and the bytes stay canonical.
        """
        with self._locked():
            db = self._load()
            for rec in records:
                db.insert(_copy_record(rec))
            tmp = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
            tmp.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(db.to_json())
            os.replace(tmp, self.path)
            self._seen_mtime = self.path.stat().st_mtime
        return db

    def refresh(self) -> dict[str, TuningRecord] | None:
        """Re-read the file if its mtime moved; ``None`` when unchanged."""
        try:
            mtime = self.path.stat().st_mtime
        except OSError:
            return None
        if mtime == self._seen_mtime:
            return None
        self._seen_mtime = mtime
        return dict(self._load()._records)


def _copy_record(rec: TuningRecord) -> TuningRecord:
    """A deep, independent copy (insert_many must not mutate the caller's
    generation stamps)."""
    return TuningRecord.from_dict(json.loads(json.dumps(rec.as_dict())))


# -- the wire protocol (unix socket, newline-delimited JSON) ------------------


def _encode(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode() + b"\n"


def _params_from(doc) -> NetworkParams | None:
    return None if doc is None else NetworkParams(**doc)


def _machine_from(doc) -> MachineParams | None:
    return None if doc is None else MachineParams(**doc)


class TuningServer:
    """Asyncio unix-socket front-end for a :class:`TuningService`.

    One JSON object per line in, one per line out.  Ops: ``ping``,
    ``stats``, ``save``, ``shutdown`` and ``tune`` (signature plus optional
    network/machine constants).  ``tune`` work runs in the default thread
    pool, so requests from many connections coalesce in the service exactly
    like in-process threads do.
    """

    def __init__(self, service: TuningService, socket_path) -> None:
        self.service = service
        self.socket_path = str(socket_path)
        self._stop = None  # asyncio.Event, created inside serve()

    async def serve(self) -> None:
        import asyncio

        self._stop = asyncio.Event()
        server = await asyncio.start_unix_server(self._handle,
                                                 path=self.socket_path)
        async with server:
            await self._stop.wait()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    async def _handle(self, reader, writer) -> None:
        import asyncio

        loop = asyncio.get_running_loop()
        req = None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                req = None
                try:
                    req = json.loads(line)
                    resp = await self._dispatch(loop, req)
                except Exception as exc:  # malformed request, search error
                    resp = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                writer.write(_encode(resp))
                await writer.drain()
                if isinstance(req, dict) and req.get("op") == "shutdown":
                    break
        finally:
            writer.close()

    async def _dispatch(self, loop, req: dict) -> dict:
        op = req.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "stats":
            return {"ok": True, "stats": self.service.stats()}
        if op == "save":
            path = await loop.run_in_executor(None, self.service.save)
            return {"ok": True, "path": str(path)}
        if op == "shutdown":
            self._stop.set()
            return {"ok": True, "bye": True}
        if op == "tune":
            sig = WorkloadSignature.from_dict(req["signature"])
            params = _params_from(req.get("params"))
            machine = _machine_from(req.get("machine"))
            rec = await loop.run_in_executor(
                None, lambda: self.service.tune(sig, params=params,
                                                machine=machine))
            return {"ok": True, "record": rec.as_dict()}
        return {"ok": False, "error": f"unknown op {op!r}"}


def run_server(service: TuningService, socket_path) -> None:
    """Blocking convenience wrapper: serve until a ``shutdown`` op."""
    import asyncio

    asyncio.run(TuningServer(service, socket_path).serve())


class TuningClient:
    """Synchronous line-protocol client for a :class:`TuningServer`.

    Drop-in for the in-process facade: ``client.tune(sig)`` returns a
    :class:`TuningRecord`.  One socket per client; thread-unsafe by design
    (use one client per thread — the *server* coalesces)."""

    def __init__(self, socket_path, timeout: float = 300.0) -> None:
        import socket as socketlib

        self._sock = socketlib.socket(socketlib.AF_UNIX,
                                      socketlib.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(str(socket_path))
        self._rfile = self._sock.makefile("rb")

    def _call(self, req: dict) -> dict:
        self._sock.sendall(_encode(req))
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("tuning server closed the connection")
        resp = json.loads(line)
        if not resp.get("ok"):
            raise RuntimeError(f"tuning server error: {resp.get('error')}")
        return resp

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        return self._call({"op": "stats"})["stats"]

    def save(self) -> str:
        return self._call({"op": "save"})["path"]

    def shutdown(self) -> None:
        self._call({"op": "shutdown"})

    def tune(self, sig: WorkloadSignature, *,
             params: NetworkParams | None = None,
             machine: MachineParams | None = None) -> TuningRecord:
        req = {
            "op": "tune",
            "signature": sig.as_dict(),
            "params": (None if params is None
                       else dataclasses.asdict(params)),
            "machine": (None if machine is None
                        else dataclasses.asdict(machine)),
        }
        return TuningRecord.from_dict(self._call(req)["record"])

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TuningClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
