"""repro.tune — autotuning: pick N_DUP, PPN, 2.5D replication and variant.

The paper fixes its configuration knobs by hand-run sweeps (Tables II-V:
``N_DUP = 4``, PPN per machine, 2.5D ``c`` per node count).  This subsystem
automates that choice per workload:

* :mod:`~repro.tune.signature` — the :class:`WorkloadSignature` keying every
  decision (kernel, n, mesh, ranks, PPN, placement, fabric-constant hash);
* :mod:`~repro.tune.validity` — the configuration rules shared with the
  kernels, so invalid candidates never reach the simulator;
* :mod:`~repro.tune.candidates` — the valid-configuration generator;
* :mod:`~repro.tune.search` — the two-stage search: analytic alpha-beta
  models prune, the discrete-event simulator scores the shortlist exactly,
  with incumbent-deadline early termination;
* :mod:`~repro.tune.db` — the persistent, versioned, byte-deterministic
  tuning database with warm-start lookup;
* :mod:`~repro.tune.tuner` — the policy front-end (``"auto"`` /
  ``"model-only"`` / ``"exhaustive"`` / ``"db-only"``) behind
  ``run_ssc(..., tune="auto")`` and ``python -m repro.tune``;
* :mod:`~repro.tune.graphstore` — persisted recorded event graphs, so a
  fresh process replays shortlist scoring instead of re-simulating;
* :mod:`~repro.tune.service` — tuning as a shared resource: the concurrent
  :class:`TuningService` (record cache, request coalescing, interpolated
  warm starts, stale-while-revalidate re-tuning), the unix-socket
  :class:`TuningServer`/:class:`TuningClient` pair, and the file-locked
  multiprocess mode (:class:`LockedTuningDB`).

This ``__init__`` imports only the kernel-free layers eagerly; the
:class:`Tuner` and the search (which import the kernels) load lazily, so the
kernels themselves can depend on :mod:`repro.tune.validity` without a cycle.
"""

from repro.tune.candidates import (
    Candidate,
    apply_collective,
    enumerate_candidates,
    n_dup_choices,
    paper_default_candidate,
)
from repro.tune.db import (
    DB_SCHEMA,
    TraceEntry,
    TuningDB,
    TuningRecord,
)
from repro.tune.signature import (
    WorkloadSignature,
    fabric_hash,
    signature_for_ssc,
    signature_for_ssc25d,
    signature_for_summa,
)
from repro.tune.validity import (
    min_block_elems,
    validate_ssc25d_config,
    validate_ssc_config,
    validate_summa_config,
)

#: Names resolved lazily (PEP 562) because their modules import the kernels.
_LAZY = {
    "Tuner": "repro.tune.tuner",
    "TuningPolicy": "repro.tune.tuner",
    "TUNING_POLICIES": "repro.tune.tuner",
    "check_policy": "repro.tune.tuner",
    "interpolation_seeds": "repro.tune.tuner",
    "search": "repro.tune.search",
    "model_time": "repro.tune.search",
    "simulate_candidate": "repro.tune.search",
    "SearchOutcome": "repro.tune.search",
    "GraphStore": "repro.tune.graphstore",
    "TuningService": "repro.tune.service",
    "TuningServer": "repro.tune.service",
    "TuningClient": "repro.tune.service",
    "LockedTuningDB": "repro.tune.service",
    "run_server": "repro.tune.service",
    "tune_serial": "repro.tune.service",
    "find_neighbor": "repro.tune.service",
    "degraded_params": "repro.tune.service",
    "INTERPOLATION_REL_TOL": "repro.tune.service",
}

__all__ = [
    # signature
    "WorkloadSignature", "fabric_hash", "signature_for_ssc",
    "signature_for_ssc25d", "signature_for_summa",
    # validity
    "min_block_elems", "validate_ssc_config", "validate_ssc25d_config",
    "validate_summa_config",
    # candidates
    "Candidate", "enumerate_candidates", "paper_default_candidate",
    "apply_collective", "n_dup_choices",
    # db
    "TuningDB", "TuningRecord", "TraceEntry", "DB_SCHEMA",
    # lazy: tuner + search + service + graphstore
    *sorted(_LAZY),
]


def __getattr__(name: str):
    """Resolve the tuner/search layer on first touch (kernel-import cycle)."""
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.tune' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target), name)
    globals()[name] = value
    return value
