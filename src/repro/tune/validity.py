"""Configuration validity rules shared by the kernels and the tuner.

These used to live inline in :func:`repro.kernels.run_ssc` /
:func:`repro.kernels.run_ssc25d`; the candidate generator needs the exact
same rules (an invalid candidate must never reach the simulator), so they
are factored out here.  This module deliberately imports nothing from
:mod:`repro.kernels` — the kernels import *it*, the rest of
:mod:`repro.tune` layers on top.

Every check raises :class:`ValueError` with an actionable message naming
the offending knob and the rule it broke.
"""

from __future__ import annotations

from repro.mpi.collectives.plan import block_partition
from repro.netmodel.params import MAX_CHANNELS

#: The SymmSquareCube algorithm variants (paper Algorithms 3, 4, 5).
SSC_ALGORITHMS = ("original", "baseline", "optimized")

#: The SUMMA variants of :func:`repro.dense.run_summa`.
SUMMA_ALGORITHMS = ("plain", "streaming", "colored")

#: Color counts of the pipelined-multicast (colored) SUMMA variant: each
#: color is one duplicated row/col communicator pinned to its own fabric
#: lane, so successive panels' broadcasts never share a link resource.
SUMMA_COLOR_CHOICES = (2, 4)

#: Placement policies understood by :func:`repro.kernels.run_ssc`.
PLACEMENTS = ("block", "round_robin")


def min_block_elems(n: int, p: int) -> int:
    """Element count of the smallest ``p x p`` block of an ``n x n`` matrix.

    The tightest buffer any SymmSquareCube collective pipelines: ``N_DUP``
    must not exceed it, or pipeline parts would be empty messages.
    """
    dims, _ranges = block_partition(n, p)
    smallest = min(dims)
    return smallest * smallest


def check_ssc_algorithm(algorithm: str) -> None:
    """``algorithm`` must name one of the paper's three SSC variants."""
    if algorithm not in SSC_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; pick from {sorted(SSC_ALGORITHMS)}"
        )


def check_placement(placement: str) -> None:
    """``placement`` must be a known rank-to-node map."""
    if placement not in PLACEMENTS:
        raise ValueError(
            f"placement must be 'block' or 'round_robin', got {placement!r}"
        )


def validate_ssc_config(p: int, n: int, algorithm: str, n_dup: int,
                        ppn: int) -> None:
    """Validity rules for one SymmSquareCube (Algs. 3-5) configuration.

    * ``p``, ``n``, ``ppn`` positive;
    * ``algorithm`` one of :data:`SSC_ALGORITHMS`;
    * ``n_dup >= 1``, and ``n_dup > 1`` only with the optimized algorithm
      (Algorithms 3-4 have no duplicated-communicator pipeline);
    * ``n_dup`` no larger than the smallest communicated block
      (:func:`min_block_elems`) — larger values would split a block into
      empty pipeline parts.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if ppn < 1:
        raise ValueError(f"ppn must be >= 1, got {ppn}")
    check_ssc_algorithm(algorithm)
    if n_dup < 1:
        raise ValueError(f"N_DUP must be >= 1, got {n_dup}")
    if n_dup > 1 and algorithm != "optimized":
        raise ValueError(
            f"N_DUP={n_dup} requires the optimized algorithm (Alg. 5); "
            f"{algorithm!r} has no duplicated-communicator pipeline"
        )
    limit = min_block_elems(n, p)
    if n_dup > limit:
        raise ValueError(
            f"N_DUP={n_dup} exceeds the smallest communicated block of "
            f"{limit} element(s) for n={n}, p={p}; pipeline parts would be "
            f"empty messages"
        )


def validate_summa_config(p: int, n: int, algorithm: str, colors: int,
                          depth: int, ppn: int,
                          num_channels: int | None = None) -> None:
    """Validity rules for one SUMMA configuration.

    * ``p``, ``ppn`` positive and ``n >= p`` (every block nonempty);
    * ``algorithm`` one of :data:`SUMMA_ALGORITHMS`;
    * ``depth`` (the pre-posted broadcast window) in ``[1, p]`` — panels
      beyond ``p`` do not exist, so a deeper window never changes anything;
    * ``plain`` is the blocking reference: ``colors == depth == 1``;
    * ``streaming`` pipelines on a single lane: ``colors == 1``;
    * ``colored`` needs ``colors`` in :data:`SUMMA_COLOR_CHOICES`, at most
      ``p`` (panel ``l`` rides color ``l % colors``; extra colors would be
      dead communicators), at most ``num_channels`` when the fabric's lane
      count is known, and ``depth >= 2`` (a one-deep window never has two
      panels in flight, so disjoint colors could not overlap anything).
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if n < p:
        raise ValueError(f"n must be >= p, got n={n}, p={p}")
    if ppn < 1:
        raise ValueError(f"ppn must be >= 1, got {ppn}")
    if algorithm not in SUMMA_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; pick from {sorted(SUMMA_ALGORITHMS)}"
        )
    if not 1 <= depth <= p:
        raise ValueError(f"depth must be in [1, {p}], got {depth}")
    if algorithm == "plain":
        if colors != 1 or depth != 1:
            raise ValueError(
                f"plain SUMMA is the blocking reference: colors=1, depth=1 "
                f"(got colors={colors}, depth={depth})"
            )
    elif algorithm == "streaming":
        if colors != 1:
            raise ValueError(
                f"streaming SUMMA runs on one lane: colors=1, got {colors}"
            )
    else:  # colored
        if colors not in SUMMA_COLOR_CHOICES:
            raise ValueError(
                f"colored SUMMA needs colors in {SUMMA_COLOR_CHOICES}, "
                f"got {colors}"
            )
        if colors > p:
            raise ValueError(
                f"colors={colors} exceeds the {p} panels; extra colors would "
                f"be dead communicators"
            )
        if colors > MAX_CHANNELS:
            raise ValueError(
                f"colors={colors} exceeds the fabric's {MAX_CHANNELS} lanes"
            )
        if num_channels is not None and colors > num_channels:
            raise ValueError(
                f"colors={colors} needs NetworkParams.num_channels >= "
                f"{colors}, got {num_channels}"
            )
        if depth < 2:
            raise ValueError(
                "colored SUMMA needs depth >= 2: a one-deep window never "
                "overlaps two panels, so the colors would be unused"
            )


def validate_ssc25d_config(q: int, c: int, n: int, n_dup: int,
                           ppn: int) -> None:
    """Validity rules for one 2.5D SymmSquareCube (Alg. 6) configuration.

    * ``q``, ``c``, ``n``, ``ppn`` positive;
    * the replication factor must divide the layer side: ``c | q`` (the
      algorithm runs ``s = q/c`` Cannon steps per layer);
    * ``n_dup >= 1`` and no larger than the smallest replicated block
      (Alg. 6 overlaps each grid collective with itself in ``N_DUP`` parts).
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if c < 1:
        raise ValueError(f"c must be >= 1, got {c}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if ppn < 1:
        raise ValueError(f"ppn must be >= 1, got {ppn}")
    if q % c != 0:
        raise ValueError(
            f"2.5D requires the replication factor to divide the mesh side "
            f"(c | q), got q={q}, c={c}"
        )
    if n_dup < 1:
        raise ValueError(f"N_DUP must be >= 1, got {n_dup}")
    limit = min_block_elems(n, q)
    if n_dup > limit:
        raise ValueError(
            f"N_DUP={n_dup} exceeds the smallest replicated block of "
            f"{limit} element(s) for n={n}, q={q}; pipeline parts would be "
            f"empty messages"
        )
