"""The two-stage candidate search: analytic pruning, then exact simulation.

Stage 1 scores every valid candidate with the closed-form alpha-beta models
(:func:`repro.netmodel.analytic.estimate_ssc_time` /
:func:`~repro.netmodel.analytic.estimate_ssc25d_time`) — microseconds per
candidate — and keeps a shortlist.  Stage 2 replays the shortlist through
the discrete-event simulator, which prices everything the closed forms
cannot (link sharing, pipeline bubbles, barrier skew), with **early
termination**: each run carries the incumbent's finishing time as a
``deadline``, so a candidate that cannot win is abandoned the moment the
virtual clock proves it (:class:`~repro.sim.engine.DeadlineExceeded`).

The paper-default configuration is always simulated first, without a
deadline, to seed the incumbent.  Every later candidate either finishes
no later than the incumbent or is pruned — which is why a tuned
configuration can never be slower than the paper default *by construction*,
not merely by measurement.

Everything here is deterministic: candidate order is a pure function of the
signature, deadlines are virtual times, and the only randomness — seeded
subsampling when the candidate space exceeds ``max_candidates`` — comes
from an explicit ``random.Random(seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dense.summa import run_summa
from repro.kernels.ssc25d import run_ssc25d
from repro.kernels.symmsquarecube import run_ssc
from repro.netmodel.analytic import (
    estimate_ssc25d_time,
    estimate_ssc_time,
    estimate_summa_time,
)
from repro.netmodel.params import MachineParams, NetworkParams
from repro.sim.engine import DeadlineExceeded
from repro.sim.replay import ReplayInvalid, replay_kernel
from repro.tune.candidates import Candidate, apply_collective
from repro.tune.db import TraceEntry
from repro.tune.signature import WorkloadSignature

#: Stage-2 shortlist size (stage 1 keeps this many model-best candidates).
DEFAULT_SHORTLIST = 4

#: Shortlist-scoring backends: ``off`` always runs the full simulator;
#: ``on`` records each simulated candidate's event graph and replays it on
#: later scorings; ``auto`` does the same but only when the caller provides
#: a shared ``graph_cache`` (recording into a throwaway cache is pure
#: overhead).  Replay falls back to full simulation automatically whenever
#: the recorded graph is invalid for the requested scoring (different
#: topology/placement/machine, structural parameter change, or a recording
#: the hooks marked unreplayable).
REPLAY_MODES = ("auto", "on", "off")

#: Hard cap on candidates scored by the model; beyond it the generator's
#: output is subsampled deterministically with the search seed.
DEFAULT_MAX_CANDIDATES = 128

#: Virtual-time slack multiplier on the incumbent deadline.  Exactly 1.0
#: would prune candidates that tie the incumbent to the last event; a hair
#: of slack lets ties finish and lose on the measured time instead.
DEADLINE_SLACK = 1.0 + 1e-9


def model_time(sig: WorkloadSignature, cand: Candidate,
               params: NetworkParams | None = None,
               machine: MachineParams | None = None) -> float:
    """Stage-1 analytic estimate [s] of ``cand`` on ``sig``'s workload."""
    if cand.kernel == "ssc":
        return estimate_ssc_time(
            sig.n, cand.mesh[0], cand.algorithm, cand.n_dup, cand.ppn,
            collective=cand.collective, params=params, machine=machine,
        )
    if cand.kernel == "summa":
        return estimate_summa_time(
            sig.n, cand.mesh[0], cand.algorithm, cand.n_dup, cand.depth,
            cand.ppn, collective=cand.collective, params=params,
            machine=machine,
        )
    q, _q, c = cand.mesh
    return estimate_ssc25d_time(
        sig.n, q, c, cand.n_dup, cand.ppn,
        collective=cand.collective, params=params, machine=machine,
    )


def simulate_candidate(sig: WorkloadSignature, cand: Candidate,
                       params: NetworkParams | None = None,
                       machine: MachineParams | None = None,
                       deadline: float | None = None,
                       record: bool = False):
    """Stage-2 exact score: one simulated kernel call of ``cand``.

    Returns ``(kernel_time, world_time)`` — the per-call kernel time (the
    comparison metric) and the world's final virtual time (the next
    incumbent deadline, inclusive of barriers and warm-up).  Raises
    :class:`DeadlineExceeded` when ``deadline`` cuts the run short.

    With ``record=True`` the run captures its event dependency graph and
    the return value grows to ``(kernel_time, world_time, recording)`` —
    the recording is ``None``-safe but may be invalid (check ``.valid``).
    """
    eff = apply_collective(params or NetworkParams(), cand.collective)
    if cand.kernel == "summa":
        if cand.algorithm == "colored" and eff.num_channels < cand.n_dup:
            # The colored variant needs one fabric lane per color; scoring
            # it IS scoring that fabric configuration.
            eff = eff.replace(num_channels=cand.n_dup)
        res = run_summa(
            cand.mesh[0], sig.n, algorithm=cand.algorithm, colors=cand.n_dup,
            depth=cand.depth, ppn=cand.ppn, params=eff, machine=machine,
            deadline=deadline, record=record,
        )
        if record:
            return res.elapsed, res.world.engine.now, res.recording
        return res.elapsed, res.world.engine.now
    if cand.kernel == "ssc":
        res = run_ssc(
            cand.mesh[0], sig.n, cand.algorithm, n_dup=cand.n_dup,
            ppn=cand.ppn, params=eff, machine=machine,
            placement=sig.placement, deadline=deadline, record=record,
        )
    else:
        q, _q, c = cand.mesh
        res = run_ssc25d(
            q, c, sig.n, n_dup=cand.n_dup, ppn=cand.ppn, params=eff,
            machine=machine, deadline=deadline, record=record,
        )
    if record:
        return res.elapsed, res.world.engine.now, res.recording
    return res.elapsed, res.world.engine.now


@dataclass
class SearchOutcome:
    """What a search pass hands back to the :class:`~repro.tune.tuner.Tuner`."""

    best: TraceEntry
    default: TraceEntry
    trace: list[TraceEntry] = field(default_factory=list)
    simulations: int = 0
    replays: int = 0                  #: shortlist scorings served by replay
    replay_aborts: int = 0            #: replays cut short by the deadline
    interpolated: bool = False        #: stage 2 ran on a seeded shortlist


def _sample(cands: list[Candidate], limit: int, seed: int) -> list[Candidate]:
    """Deterministically subsample ``cands`` to ``limit`` (order preserved)."""
    if len(cands) <= limit:
        return cands
    rng = random.Random(seed)
    picked = set(rng.sample(range(len(cands)), limit))
    return [c for idx, c in enumerate(cands) if idx in picked]


def search(sig: WorkloadSignature, candidates: list[Candidate],
           default: Candidate, *,
           params: NetworkParams | None = None,
           machine: MachineParams | None = None,
           shortlist: int = DEFAULT_SHORTLIST,
           max_candidates: int = DEFAULT_MAX_CANDIDATES,
           seed: int = 0,
           model_only: bool = False,
           exhaustive: bool = False,
           replay: str = "off",
           graph_cache: dict | None = None,
           seed_shortlist: list[Candidate] | None = None) -> SearchOutcome:
    """Run the two-stage search over ``candidates`` for ``sig``.

    ``model_only`` stops after stage 1 (no simulator runs); ``exhaustive``
    skips the shortlist and simulates every candidate (early termination
    still applies).  The paper ``default`` is always scored — simulated
    first, deadline-free — so the returned best is never worse than it.

    ``replay`` selects the shortlist-scoring backend (see
    :data:`REPLAY_MODES`); ``graph_cache`` is a caller-owned dict of
    recorded event graphs keyed by ``(workload, candidate)``.  Pass the
    same dict across searches that differ only in fabric constants (e.g. a
    parameter sweep) and the shortlist re-scores by replaying the recorded
    graphs — bit-for-bit the times a full simulation would produce —
    instead of re-running the simulator.

    ``seed_shortlist`` is an **interpolation warm start**: instead of the
    model-ranked top of the candidate pool, stage 2 scores the given
    candidates (a nearby workload's surviving shortlist), re-ranked by the
    analytic model *at this signature's* ``n`` and truncated to
    ``shortlist - 1`` plus the default.  Seeds not valid for this workload
    (they must appear in ``candidates``) are dropped.  Scored entries are
    marked ``interpolated`` so the db records how the decision was made.
    """
    if replay not in REPLAY_MODES:
        raise ValueError(f"replay must be one of {REPLAY_MODES}: {replay!r}")
    use_replay = replay == "on" or (replay == "auto"
                                    and graph_cache is not None)
    if use_replay and graph_cache is None:
        graph_cache = {}
    # Cache key: workload identity *without* the fabric hash — reusing a
    # graph under different constants is the entire point; compatibility is
    # the recording's own check, not the key's.
    wl_key = sig.workload_key
    pool = _sample(candidates, max_candidates, seed)
    if default not in pool:
        pool = [default] + pool

    entries = {c.key: TraceEntry(candidate=c, model_time=model_time(
        sig, c, params, machine)) for c in pool}

    if model_only:
        for e in entries.values():
            e.status = "model-only"
        order = sorted(entries.values(),
                       key=lambda e: (e.model_time, e.candidate.key))
        best = order[0]
        return SearchOutcome(best=best, default=entries[default.key],
                             trace=list(entries.values()))

    interpolated = False
    if seed_shortlist is not None:
        # Interpolation warm start: the stage-2 pool is the neighbor's
        # surviving shortlist, re-ranked by the analytic model at *this*
        # n.  Seeds outside this workload's valid candidate set (validity
        # depends on n) are dropped, not simulated.
        interpolated = True
        valid_keys = {c.key for c in pool}
        seen = {c.key: entries[c.key] for c in seed_shortlist
                if c.key in valid_keys}
        seeds = sorted(seen.values(),
                       key=lambda e: (e.model_time, e.candidate.key))
        short = seeds[:max(shortlist - 1, 1)]
    elif exhaustive:
        short = list(entries.values())
    else:
        ranked = sorted(entries.values(),
                        key=lambda e: (e.model_time, e.candidate.key))
        short = ranked[:shortlist]
    # The default seeds the incumbent: put it first, simulate it without a
    # deadline, and never let pruning touch it.
    short = [entries[default.key]] + [e for e in short
                                      if e.candidate.key != default.key]

    simulations = 0
    replays = 0
    replay_aborts = 0
    incumbent: TraceEntry | None = None
    incumbent_world = None
    for entry in short:
        deadline = (None if incumbent_world is None
                    else incumbent_world * DEADLINE_SLACK)
        scored = None
        cache_key = (wl_key, entry.candidate.key)
        if use_replay:
            recg = graph_cache.get(cache_key)
            if recg is not None:
                eff = apply_collective(params or NetworkParams(),
                                       entry.candidate.collective)
                try:
                    scored = replay_kernel(recg, params=eff, machine=machine,
                                           deadline=deadline)
                    replays += 1
                except DeadlineExceeded:
                    # The replay aborted at the first rank-completion past
                    # the incumbent (see repro.sim.replay) — it never
                    # folded the full graph.
                    entry.status = "pruned-deadline"
                    replays += 1
                    replay_aborts += 1
                    continue
                except ReplayInvalid:
                    scored = None  # envelope violated: full simulation
        if scored is None:
            try:
                if use_replay:
                    kernel_time, world_time, recg = simulate_candidate(
                        sig, entry.candidate, params, machine,
                        deadline=deadline, record=True)
                    if recg is not None and recg.valid:
                        graph_cache[cache_key] = recg
                else:
                    kernel_time, world_time = simulate_candidate(
                        sig, entry.candidate, params, machine,
                        deadline=deadline)
            except DeadlineExceeded:
                simulations += 1
                if incumbent is None:
                    # The deadline-free default can only get here when a
                    # caller-injected stage raises; dropping it would leave
                    # the search with no incumbent (best=None downstream).
                    # Keep it at its analytic estimate instead.
                    entry.sim_time = entry.model_time
                    entry.status = "deadline-analytic"
                    incumbent = entry
                else:
                    entry.status = "pruned-deadline"
                continue
            simulations += 1
            entry.status = "simulated"
        else:
            kernel_time, world_time = scored
            entry.status = "replayed"
        if interpolated:
            # A seeded stage 2 is an interpolated decision however the
            # score was produced; the db reader can tell this record's
            # shortlist came from a neighbor, not from enumeration.
            entry.status = "interpolated"
        entry.sim_time = kernel_time
        if (incumbent is None or kernel_time < incumbent.sim_time
                or (kernel_time == incumbent.sim_time
                    and entry.candidate.key < incumbent.candidate.key)):
            incumbent = entry
        if incumbent_world is None or world_time < incumbent_world:
            incumbent_world = world_time

    trace = sorted(entries.values(), key=lambda e: e.candidate.key)
    return SearchOutcome(best=incumbent, default=entries[default.key],
                         trace=trace, simulations=simulations,
                         replays=replays, replay_aborts=replay_aborts,
                         interpolated=interpolated)
