"""Guard tests: a single-channel fabric must be bit-for-bit the old fabric.

The multi-channel link model packs a channel index into every fabric
resource key and splits link capacity across lanes.  With
``num_channels=1`` (the default) all of that must be invisible: golden
traces identical span for span, and the quick bench experiments' merged
``sim_stats`` counters identical to the fixture captured before the
channel layer existed (``tests/data/sim_stats_quick.json``).

Regenerating the sim-stats fixture (only after an *intentional*
event-structure change, with the diff reviewed)::

    PYTHONPATH=src python tests/test_channels_guard.py --regen
"""

from __future__ import annotations

import json
import pathlib

from repro.bench.harness import run_experiment
from repro.kernels.symmsquarecube import run_ssc
from repro.netmodel.params import NetworkParams

DATA_DIR = pathlib.Path(__file__).parent / "data"
SIM_STATS_FIXTURE = DATA_DIR / "sim_stats_quick.json"
#: The experiments whose quick-mode sim_stats the fixture pins (one grid
#: protocol sweep, one plain run — both merge paths covered).
GUARDED_EXPERIMENTS = ("table1", "table2")
#: sim_stats counter keys that predate the channel layer (the fixture's
#: vocabulary; new keys like "fabric" are additions, never replacements).
LEGACY_KEYS = ("events_processed", "events_cancelled", "peak_heap_size",
               "heap_compactions")


def _legacy_stats(sim_stats: dict) -> dict:
    """The pre-channel subset of one experiment's ``sim_stats``."""
    out = {k: sim_stats[k] for k in LEGACY_KEYS}
    pc = sim_stats["plan_cache"]
    out["plan_cache"] = {k: pc[k] for k in ("hits", "misses", "evictions",
                                            "entries", "hit_rate")}
    return out


def test_single_channel_golden_trace_bit_identical():
    """``num_channels=1`` spelled explicitly replays the committed trace."""
    expected = json.loads((DATA_DIR / "golden_trace_ssc.json").read_text())
    res = run_ssc(2, 8, "optimized", n_dup=2, ppn=2, iterations=1,
                  trace=True, params=NetworkParams(num_channels=1))
    actual = res.world.trace.to_jsonable()
    for idx, (a, e) in enumerate(zip(actual, expected)):
        assert a == e, f"trace diverges at span {idx}: {a} != {e}"
    assert len(actual) == len(expected)


def test_quick_experiment_sim_stats_match_prechannel_fixture():
    """The merged quick sim_stats still carry the pre-channel counters."""
    fixture = json.loads(SIM_STATS_FIXTURE.read_text())
    assert sorted(fixture) == sorted(GUARDED_EXPERIMENTS)
    for name in GUARDED_EXPERIMENTS:
        out = run_experiment(name, quick=True)
        assert _legacy_stats(out.sim_stats) == fixture[name], (
            f"{name}: quick sim_stats drifted from the pre-channel fixture"
        )


def test_merged_sim_stats_gain_fabric_channel_counters():
    """The new per-channel section rides along without touching the rest."""
    out = run_experiment("table1", quick=True)
    fab = out.sim_stats["fabric"]
    # Single-channel workload: all traffic on lane 0, lanes 1..7 silent.
    assert fab["channel_messages"][0] > 0
    assert fab["channel_bytes"][0] > 0.0
    assert not any(fab["channel_messages"][1:])
    assert not any(fab["channel_bytes"][1:])


def _regen() -> None:
    fixture = {}
    for name in GUARDED_EXPERIMENTS:
        fixture[name] = _legacy_stats(run_experiment(name, quick=True).sim_stats)
    SIM_STATS_FIXTURE.write_text(
        json.dumps(fixture, indent=1, sort_keys=True) + "\n")
    print(f"wrote {SIM_STATS_FIXTURE}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        sys.exit("usage: test_channels_guard.py --regen")
