"""Property tests for collective schedule generation (pairing, volumes)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.collectives.algorithms import (
    allgather_ring,
    allreduce_long,
    allreduce_ring,
    allreduce_short,
    barrier_dissemination,
    bcast_binomial,
    bcast_long,
    reduce_binomial,
    reduce_rabenseifner,
    reduce_ring,
    schedule_volume_bytes,
    validate_schedules,
)

p_strategy = st.integers(min_value=1, max_value=20)
n_strategy = st.integers(min_value=0, max_value=4096)


def total_send_volume(make, p, n):
    return sum(schedule_volume_bytes(make(me), 1) for me in range(p))


class TestPairing:
    """Every send matches exactly one receive with an identical range."""

    @settings(max_examples=60, deadline=None)
    @given(p=p_strategy, n=n_strategy, root_frac=st.floats(0, 0.999))
    def test_bcast_binomial(self, p, n, root_frac):
        root = int(root_frac * p)
        validate_schedules(lambda me: bcast_binomial(p, root, me, n), p, n)

    @settings(max_examples=60, deadline=None)
    @given(p=p_strategy, n=n_strategy, root_frac=st.floats(0, 0.999))
    def test_bcast_long(self, p, n, root_frac):
        root = int(root_frac * p)
        validate_schedules(lambda me: bcast_long(p, root, me, n), p, n)

    @settings(max_examples=60, deadline=None)
    @given(p=p_strategy, n=n_strategy, root_frac=st.floats(0, 0.999))
    def test_reduce_binomial(self, p, n, root_frac):
        root = int(root_frac * p)
        validate_schedules(lambda me: reduce_binomial(p, root, me, n), p, n)

    @settings(max_examples=60, deadline=None)
    @given(p=p_strategy, n=n_strategy, root_frac=st.floats(0, 0.999))
    def test_reduce_rabenseifner(self, p, n, root_frac):
        root = int(root_frac * p)
        validate_schedules(lambda me: reduce_rabenseifner(p, root, me, n), p, n)

    @settings(max_examples=60, deadline=None)
    @given(p=p_strategy, n=n_strategy, root_frac=st.floats(0, 0.999))
    def test_reduce_ring(self, p, n, root_frac):
        root = int(root_frac * p)
        validate_schedules(lambda me: reduce_ring(p, root, me, n), p, n)

    @settings(max_examples=40, deadline=None)
    @given(p=p_strategy, n=n_strategy)
    def test_allreduce_variants(self, p, n):
        validate_schedules(lambda me: allreduce_short(p, me, n), p, n)
        validate_schedules(lambda me: allreduce_long(p, me, n), p, n)
        validate_schedules(lambda me: allreduce_ring(p, me, n), p, n)

    @settings(max_examples=40, deadline=None)
    @given(p=p_strategy, n=n_strategy)
    def test_allgather_ring(self, p, n):
        validate_schedules(lambda me: allgather_ring(p, me, n), p, n)

    @settings(max_examples=30, deadline=None)
    @given(p=p_strategy)
    def test_barrier(self, p):
        validate_schedules(lambda me: barrier_dissemination(p, me), p, 0)


class TestTinyMessages:
    """Segment-splitting algorithms in the ``n < p`` regime.

    When the element count is smaller than the process count (including the
    extreme ``n == 1``), most ranks own an *empty* segment — every bound in
    the recursive-halving / ring arithmetic degenerates.  These pin that the
    generators stay pairable and deliver correct data there, across prime
    (worst-case non-power-of-two) process counts.
    """

    PRIMES = (2, 3, 5, 7, 11, 13, 17, 19)

    @pytest.mark.parametrize("p", PRIMES)
    def test_fewer_elements_than_ranks(self, p):
        for n in sorted({0, 1, 2, p // 2, p - 1}):
            validate_schedules(lambda me: allgather_ring(p, me, n), p, n)
            validate_schedules(lambda me: allreduce_long(p, me, n), p, n)
            for root in sorted({0, p // 2, p - 1}):
                validate_schedules(
                    lambda me: reduce_rabenseifner(p, root, me, n), p, n
                )

    @pytest.mark.parametrize("p", PRIMES)
    def test_single_element(self, p):
        validate_schedules(lambda me: allgather_ring(p, me, 1), p, 1)
        validate_schedules(lambda me: allreduce_long(p, me, 1), p, 1)
        validate_schedules(lambda me: reduce_rabenseifner(p, p - 1, me, 1), p, 1)

    @pytest.mark.parametrize("p", [3, 5, 7, 13])
    @pytest.mark.parametrize("n", [1, 2])
    def test_tiny_long_message_data_correct(self, p, n):
        """Force the long-message algorithms end-to-end with n < p."""
        import numpy as np

        from repro.mpi import World
        from repro.netmodel import NetworkParams, block_placement

        params = NetworkParams(long_message_threshold=0)
        world = World(block_placement(p, 1), params=params)

        def program(env):
            comm = env.view(world.comm_world)
            res = yield from comm.allreduce(np.full(n, float(comm.rank + 1)))
            assert np.array_equal(res, np.full(n, p * (p + 1) / 2.0))

        world.spawn_all(program, ranks=range(p))
        world.run()


class TestVolumes:
    """Total communicated volume matches the textbook algorithm costs."""

    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_bcast_long_volume_pow2(self, p):
        n = 1 << 14
        total = total_send_volume(lambda me: bcast_long(p, 0, me, n), p, n)
        # Binomial scatter moves n/2 per tree level (forwarding included):
        # n*log2(p)/2 total; ring allgather: each rank sends (p-1)n/p.
        expected = n * int(math.log2(p)) // 2 + p * ((p - 1) * n // p)
        assert abs(total - expected) <= p * p  # integer-split slack

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_rabenseifner_per_rank_volume(self, p):
        n = 1 << 14
        # Non-root, power-of-two: each rank sends (p-1)n/p in the RS phase
        # plus its owned segment in the gather.
        sched = reduce_rabenseifner(p, 0, 1, n)
        vol = schedule_volume_bytes(sched, 1)
        assert vol <= 2 * (p - 1) * n / p + p

    @pytest.mark.parametrize("p", [3, 5, 6, 7, 12])
    def test_ring_reduce_scatter_no_fold_penalty(self, p):
        n = 1 << 14
        # Ring RS sends exactly (p-1) segments per rank; binomial gather adds
        # at most the rank's accumulated range.
        for me in range(p):
            vol = schedule_volume_bytes(reduce_ring(p, 0, me, n), 1)
            assert vol <= 2 * n  # never ships multiple full copies

    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8, 9])
    def test_bcast_binomial_volume(self, p):
        n = 1000
        total = total_send_volume(lambda me: bcast_binomial(p, 0, me, n), p, n)
        assert total == (p - 1) * n  # one full copy per non-root rank

    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8, 9])
    def test_reduce_binomial_volume(self, p):
        n = 1000
        total = total_send_volume(lambda me: reduce_binomial(p, 0, me, n), p, n)
        assert total == (p - 1) * n

    def test_barrier_is_zero_bytes(self):
        for p in (2, 3, 8, 13):
            for me in range(p):
                assert schedule_volume_bytes(barrier_dissemination(p, me)) == 0


class TestRoundCounts:
    """Latency terms: the round counts the paper's models assume."""

    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_binomial_rounds(self, p):
        assert len(bcast_binomial(p, 0, 0, 10)) == int(math.log2(p))

    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_rabenseifner_rounds_pow2(self, p):
        # log2 p reduce-scatter + log2 p gather rounds (no fold round).
        assert len(reduce_rabenseifner(p, 0, 0, 1024)) == 2 * int(math.log2(p))

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_bcast_long_rounds(self, p):
        # scatter (log2 p) + ring allgather (p - 1).
        assert len(bcast_long(p, 0, 0, 1024)) == int(math.log2(p)) + p - 1

    @pytest.mark.parametrize("p", [3, 5, 9])
    def test_ring_reduce_rounds(self, p):
        T = (p - 1).bit_length()
        assert len(reduce_ring(p, 0, 0, 1024)) == (p - 1) + T

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 16])
    def test_barrier_rounds(self, p):
        assert len(barrier_dissemination(p, 0)) == (p - 1).bit_length()


class TestArgumentValidation:
    def test_bad_rank(self):
        with pytest.raises(ValueError):
            bcast_binomial(4, 0, 4, 10)

    def test_bad_root(self):
        with pytest.raises(ValueError):
            bcast_long(4, 7, 0, 10)

    def test_bad_p(self):
        with pytest.raises(ValueError):
            reduce_ring(0, 0, 0, 10)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            allgather_ring(4, 0, -1)


class TestRecursiveDoublingAllgather:
    """The low-latency power-of-two allgather variant."""

    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    @pytest.mark.parametrize("n", [0, 1, 63, 4096])
    def test_pairing(self, p, n):
        from repro.mpi.collectives.algorithms import allgather_recursive_doubling
        for root in (0, p // 2):
            validate_schedules(
                lambda me: allgather_recursive_doubling(p, me, n, root), p, n
            )

    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_round_count_logarithmic(self, p):
        from repro.mpi.collectives.algorithms import allgather_recursive_doubling
        sched = allgather_recursive_doubling(p, 0, 1024)
        assert len(sched) == int(math.log2(p))

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_volume_matches_ring(self, p):
        from repro.mpi.collectives.algorithms import (
            allgather_recursive_doubling,
            allgather_ring,
        )
        n = 1 << 12
        v_rd = total_send_volume(
            lambda me: allgather_recursive_doubling(p, me, n), p, n)
        v_ring = total_send_volume(lambda me: allgather_ring(p, me, n), p, n)
        assert v_rd == v_ring

    def test_non_pow2_rejected(self):
        from repro.mpi.collectives.algorithms import allgather_recursive_doubling
        with pytest.raises(ValueError, match="power-of-two"):
            allgather_recursive_doubling(6, 0, 100)
