"""Unit tests for repro.util.validation."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_type,
    int_cbrt,
    int_sqrt,
    is_power_of_two,
)


class TestChecks:
    def test_positive_accepts(self):
        assert check_positive("x", 3) == 3

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_nonnegative(self):
        assert check_nonnegative("x", 0) == 0
        with pytest.raises(ValueError):
            check_nonnegative("x", -1e-9)

    def test_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_type(self):
        assert check_type("x", 5, int) == 5
        with pytest.raises(TypeError):
            check_type("x", "5", int)


class TestIntegerMath:
    @given(st.integers(min_value=0, max_value=40))
    def test_power_of_two_true(self, k):
        assert is_power_of_two(1 << k)

    @given(st.integers(min_value=2, max_value=10**9))
    def test_power_of_two_consistent(self, n):
        assert is_power_of_two(n) == (bin(n).count("1") == 1)

    def test_power_of_two_edge(self):
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_int_sqrt_roundtrip(self, r):
        assert int_sqrt(r * r) == r

    def test_int_sqrt_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            int_sqrt(2)
        with pytest.raises(ValueError):
            int_sqrt(-4)

    @given(st.integers(min_value=0, max_value=10**4))
    def test_int_cbrt_roundtrip(self, r):
        assert int_cbrt(r**3) == r

    def test_int_cbrt_rejects_noncube(self):
        with pytest.raises(ValueError):
            int_cbrt(9)
        with pytest.raises(ValueError):
            int_cbrt(-8)
