"""Structural tests: the kernel's measured traffic matches its schedules.

These recompute, from the collective schedule generators, exactly how many
bytes the baseline SymmSquareCube should move, and compare against the
fabric's flow accounting — catching any divergence between the kernel's
communication structure and the paper's Algorithm 4.
"""

import numpy as np
import pytest

from repro.dense.distribution import block_dim
from repro.kernels import run_ssc
from repro.mpi.collectives.algorithms import (
    bcast_binomial,
    bcast_long,
    reduce_binomial,
    reduce_rabenseifner,
    schedule_volume_bytes,
)


def _bcast(p, root, me, elems):
    # Mirror CommView's dispatch: binomial for p <= 2, long otherwise
    # (block messages here are megabytes, far above the threshold).
    if p <= 2:
        return bcast_binomial(p, root, me, elems)
    return bcast_long(p, root, me, elems)


def _reduce(p, root, me, elems):
    if p <= 2:
        return reduce_binomial(p, root, me, elems)
    return reduce_rabenseifner(p, root, me, elems)


def expected_baseline_volume(n: int, p: int) -> int:
    """Total bytes sent by one baseline SymmSquareCube call (all ranks).

    Mirrors Algorithm 4's phases: grid bcast of D, row bcast of D (as B^T),
    col reduce of C -> D2, row bcast of D2, col reduce of C -> D3, and the
    two point-to-point result transfers.  All collectives here are
    long-message (multi-MB blocks).
    """
    total = 0
    dims = [block_dim(x, n, p) for x in range(p)]
    # Phase 1: grd_comm(i, j) broadcasts D[i,j] (root 0).
    for i in range(p):
        for j in range(p):
            elems = dims[i] * dims[j]
            for me in range(p):
                total += schedule_volume_bytes(_bcast(p, 0, me, elems), 8)
    # Phase 2: row_comm(j, k) broadcasts D[k,j] (root k).
    for j in range(p):
        for k in range(p):
            elems = dims[k] * dims[j]
            for me in range(p):
                total += schedule_volume_bytes(_bcast(p, k, me, elems), 8)
    # Phase 3: col_comm(i, k) reduces C -> D2[i,k] (root i).
    for i in range(p):
        for k in range(p):
            elems = dims[i] * dims[k]
            for me in range(p):
                total += schedule_volume_bytes(_reduce(p, i, me, elems), 8)
    # Phase 4: row_comm(j, k) broadcasts D2[j,k] (root j).
    for j in range(p):
        for k in range(p):
            elems = dims[j] * dims[k]
            for me in range(p):
                total += schedule_volume_bytes(_bcast(p, j, me, elems), 8)
    # Phase 5: col reduce C -> D3[i,k] (root k).
    for i in range(p):
        for k in range(p):
            elems = dims[i] * dims[k]
            for me in range(p):
                total += schedule_volume_bytes(_reduce(p, k, me, elems), 8)
    # Phase 6: D2 (i,i,k)->(i,k,0) and D3 (i,k,k)->(i,k,0), skipping
    # self-transfers (D2: i==k==0; D3: k==0).
    for i in range(p):
        for k in range(p):
            elems = dims[i] * dims[k]
            if not (i == k == 0):
                total += elems * 8  # D2
            if k != 0:
                total += elems * 8  # D3
    return total


class TestVolumeAccounting:
    @pytest.mark.parametrize("p", [2, 4])
    def test_baseline_measured_equals_schedules(self, p):
        n = 4096
        r = run_ssc(p, n, "baseline", ppn=1, iterations=1)
        stats = r.world.fabric.snapshot_stats()
        # PPN=1: every rank on its own node -> all traffic is inter-node,
        # except the dissemination barrier (zero bytes).
        measured = stats["inter_node_bytes"]
        assert measured == expected_baseline_volume(n, p)
        assert stats["intra_node_bytes"] == 0

    def test_optimized_moves_same_bytes_as_baseline(self):
        """N_DUP splitting changes message counts, never total volume."""
        n, p = 4096, 4
        v1 = run_ssc(p, n, "optimized", n_dup=1).world.fabric.snapshot_stats()
        v4 = run_ssc(p, n, "optimized", n_dup=4).world.fabric.snapshot_stats()
        assert v1["inter_node_bytes"] == v4["inter_node_bytes"]
        assert v4["inter_node_messages"] > v1["inter_node_messages"]

    def test_original_moves_more_than_baseline(self):
        """Algorithm 3's transpose exchange is extra traffic Alg. 4 avoids."""
        n, p = 4096, 4
        v3 = run_ssc(p, n, "original").world.fabric.snapshot_stats()
        v4 = run_ssc(p, n, "baseline").world.fabric.snapshot_stats()
        assert v3["inter_node_bytes"] > v4["inter_node_bytes"]

    def test_multi_ppn_shifts_traffic_to_shm(self):
        n, p = 4096, 4
        r1 = run_ssc(p, n, "baseline", ppn=1).world.fabric.snapshot_stats()
        r8 = run_ssc(p, n, "baseline", ppn=8).world.fabric.snapshot_stats()
        assert r8["intra_node_bytes"] > 0
        assert r8["inter_node_bytes"] < r1["inter_node_bytes"]
        # Total moved bytes are placement-invariant.
        assert (r8["intra_node_bytes"] + r8["inter_node_bytes"]
                == r1["inter_node_bytes"])

    def test_iterations_scale_volume_linearly(self):
        n, p = 4096, 2
        v1 = run_ssc(p, n, "baseline", iterations=1).world.fabric.snapshot_stats()
        v3 = run_ssc(p, n, "baseline", iterations=3).world.fabric.snapshot_stats()
        assert v3["inter_node_bytes"] == 3 * v1["inter_node_bytes"]
