"""Cancellable timers, heap compaction, end-of-instant hooks, ``run(until=)``.

Covers the engine's heap-hygiene layer: :meth:`Engine.call_at` handles with
``cancel()``, lazy reaping plus threshold-triggered compaction, the raw
``schedule_at``/``schedule_after`` primitives, the exact-timestamp semantics
of ``run(until=)``, and :meth:`Engine.at_instant_end` hooks.
"""

import pytest

from repro.sim.engine import _COMPACT_MIN, Engine, SimulationError


class TestTimerCancel:
    def test_cancelled_timer_never_fires(self):
        eng = Engine()
        fired = []
        t = eng.call_after(1.0, fired.append, "x")
        assert t.when == 1.0
        assert not t.cancelled
        t.cancel()
        assert t.cancelled
        eng.run()
        assert fired == []
        assert eng.events_cancelled == 1
        assert eng.events_processed == 0
        assert eng.now == 0.0  # nothing live ever advanced the clock

    def test_cancel_is_idempotent(self):
        eng = Engine()
        t = eng.call_after(1.0, lambda: None)
        t.cancel()
        t.cancel()
        assert eng.events_cancelled == 1
        assert eng.dead_entries == 1

    def test_cancel_after_fire_is_noop(self):
        eng = Engine()
        fired = []
        t = eng.call_after(1.0, fired.append, 1)
        eng.run()
        assert fired == [1]
        t.cancel()  # too late: must not fire-count as a cancellation
        assert t.cancelled  # fired timers read as no-longer-cancellable
        assert eng.events_cancelled == 0
        assert eng.dead_entries == 0

    def test_cancel_same_instant_sibling_from_callback(self):
        """An event may retract a later same-timestamp event before it runs."""
        eng = Engine()
        fired = []
        second = eng.call_at(1.0, fired.append, "second")
        eng.call_at(1.0, lambda: second.cancel())
        # FIFO would run `second` first — schedule the canceller earlier.
        fired.clear()
        eng2 = Engine()
        out = []
        holder = {}
        eng2.call_at(1.0, lambda: holder["t"].cancel())
        holder["t"] = eng2.call_at(1.0, out.append, "victim")
        eng2.run()
        assert out == []
        eng.run()  # original engine: victim fires before its canceller
        assert fired == ["second"]

    def test_raw_schedule_entry_cancel(self):
        eng = Engine()
        fired = []
        entry = eng.schedule_at(2.0, fired.append, "a")
        eng.schedule_after(1.0, fired.append, "b")
        eng.cancel(entry)
        eng.cancel(entry)  # idempotent on raw entries too
        eng.run()
        assert fired == ["b"]
        assert eng.events_cancelled == 1

    def test_mixed_primitives_keep_fifo_order(self):
        eng = Engine()
        order = []
        eng.schedule_at(1.0, order.append, 1)
        eng.call_at(1.0, order.append, 2)
        eng.schedule_after(1.0, order.append, 3)
        eng.call_after(1.0, order.append, 4)
        eng.run()
        assert order == [1, 2, 3, 4]

    def test_schedule_at_past_rejected(self):
        eng = Engine()
        eng.call_after(1.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            eng.schedule_after(-0.1, lambda: None)


class TestCompaction:
    def test_mass_cancellation_compacts_heap(self):
        eng = Engine()
        fired = []
        n = 4 * _COMPACT_MIN
        timers = [eng.call_at(float(i + 1), fired.append, i) for i in range(n)]
        survivors = timers[-20:]
        for t in timers[:-20]:
            t.cancel()
        assert eng.compactions >= 1
        # Compaction physically removed dead entries: far fewer than the
        # number cancelled can remain.
        assert eng.heap_size < n
        assert eng.dead_entries < n - 20
        eng.run()
        assert fired == [n - 20 + i for i in range(20)]
        assert all(t.cancelled for t in timers)
        assert [t.when for t in survivors] == sorted(t.when for t in survivors)

    def test_peek_after_compaction(self):
        eng = Engine()
        timers = [eng.call_at(float(i + 1), lambda: None) for i in range(100)]
        for t in timers[:99]:
            t.cancel()
        assert eng.compactions >= 1
        assert eng.peek() == 100.0  # earliest *live* entry, dead heads reaped
        assert not eng.idle

    def test_peek_reaps_dead_heads_without_compaction(self):
        eng = Engine()
        t1 = eng.call_at(1.0, lambda: None)
        eng.call_at(2.0, lambda: None)
        t1.cancel()  # below _COMPACT_MIN: stays in heap as a dead head
        assert eng.peek() == 2.0
        assert eng.dead_entries == 0  # the dead head was popped by peek

    def test_small_heaps_never_compact(self):
        eng = Engine()
        timers = [eng.call_at(1.0, lambda: None) for _ in range(_COMPACT_MIN - 2)]
        for t in timers:
            t.cancel()
        assert eng.compactions == 0

    def test_peak_heap_size_tracked(self):
        eng = Engine()

        def burst():
            for i in range(10):
                eng.call_after(1.0 + i, lambda: None)

        eng.call_at(1.0, burst)
        eng.run()
        assert eng.peak_heap_size >= 10


class TestRunUntil:
    def test_event_exactly_at_until_fires(self):
        eng = Engine()
        fired = []
        eng.call_at(1.0, fired.append, "a")
        eng.call_at(1.0, fired.append, "b")
        eng.call_at(2.0, fired.append, "c")
        assert eng.run(until=1.0) == 1.0
        assert fired == ["a", "b"]
        assert eng.now == 1.0
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_callback_scheduling_at_until_still_fires(self):
        eng = Engine()
        fired = []
        eng.call_at(1.0, lambda: eng.call_at(1.0, fired.append, "chained"))
        eng.run(until=1.0)
        assert fired == ["chained"]

    def test_until_between_events_advances_clock_only(self):
        eng = Engine()
        fired = []
        eng.call_at(2.0, fired.append, "late")
        assert eng.run(until=1.5) == 1.5
        assert fired == []
        assert eng.now == 1.5
        assert eng.peek() == 2.0

    def test_until_beyond_all_events(self):
        eng = Engine()
        eng.call_at(1.0, lambda: None)
        assert eng.run(until=5.0) == 5.0
        assert eng.now == 5.0

    def test_until_with_cancelled_head(self):
        eng = Engine()
        fired = []
        t = eng.call_at(1.0, fired.append, "dead")
        eng.call_at(3.0, fired.append, "live")
        t.cancel()
        assert eng.run(until=2.0) == 2.0
        assert fired == []
        eng.run()
        assert fired == ["live"]


class TestInstantEndHooks:
    def test_hook_runs_after_last_event_of_instant(self):
        eng = Engine()
        order = []
        eng.call_at(1.0, lambda: (order.append("ev1"),
                                  eng.at_instant_end(lambda: order.append("hook"))))
        eng.call_at(1.0, order.append, "ev2")
        eng.call_at(2.0, order.append, "late")
        eng.run()
        assert order == ["ev1", "ev2", "hook", "late"]

    def test_hook_runs_at_end_of_run(self):
        eng = Engine()
        order = []
        eng.call_at(1.0, lambda: eng.at_instant_end(lambda: order.append("hook")))
        eng.run()
        assert order == ["hook"]
        assert eng.now == 1.0

    def test_hook_may_extend_the_instant(self):
        eng = Engine()
        order = []

        def hook():
            order.append(("hook", eng.now))
            eng.schedule_at(eng.now, lambda: order.append(("same", eng.now)))

        eng.call_at(1.0, lambda: eng.at_instant_end(hook))
        eng.call_at(2.0, lambda: order.append(("later", eng.now)))
        eng.run()
        assert order == [("hook", 1.0), ("same", 1.0), ("later", 2.0)]

    def test_hook_runs_before_returning_at_until(self):
        eng = Engine()
        order = []
        eng.call_at(1.0, lambda: eng.at_instant_end(lambda: order.append("hook")))
        eng.call_at(5.0, order.append, "far")
        eng.run(until=1.0)
        assert order == ["hook"]

    def test_hooks_run_in_registration_order(self):
        eng = Engine()
        order = []
        eng.call_at(1.0, lambda: (eng.at_instant_end(lambda: order.append(1)),
                                  eng.at_instant_end(lambda: order.append(2))))
        eng.run()
        assert order == [1, 2]


class TestStats:
    def test_stats_dict(self):
        eng = Engine()
        t = eng.call_after(1.0, lambda: None)
        eng.call_after(2.0, lambda: None)
        t.cancel()
        eng.run()
        s = eng.stats()
        assert s["events_processed"] == 1
        assert s["events_cancelled"] == 1
        assert s["peak_heap_size"] >= 1
        assert 0.0 <= s["dead_entry_ratio"] <= 1.0

    def test_aggregate_stats_roundtrip(self):
        Engine.reset_aggregate_stats()
        for _ in range(3):
            eng = Engine()
            t = eng.call_after(1.0, lambda: None)
            eng.call_after(2.0, lambda: None)
            t.cancel()
            eng.run()
        agg = Engine.aggregate_stats()
        assert agg["events_processed"] == 3
        assert agg["events_cancelled"] == 3
        assert agg["peak_heap_size"] >= 1  # max across engines, not a sum
        Engine.reset_aggregate_stats()
        assert Engine.aggregate_stats()["events_processed"] == 0
