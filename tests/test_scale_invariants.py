"""Cross-scale sanity invariants of the full kernel stack.

These pin down relationships the paper's analysis relies on implicitly:
performance scales sensibly with matrix size, mesh size, and hardware
constants — catching regressions that per-experiment checks might miss.
"""

import pytest

from repro.kernels import run_ssc, run_ssc25d, ssc_flops
from repro.netmodel import MachineParams, NetworkParams
from repro.purify import SYSTEMS


class TestSizeScaling:
    def test_tflops_grows_with_matrix_size(self):
        """Larger matrices amortize latency/sync: higher achieved TFlop/s
        (the paper's Table I trend across 1hsg_45/60/70)."""
        rates = [run_ssc(4, n, "baseline").tflops
                 for n in (2000, 5330, 7645)]
        assert rates == sorted(rates)

    def test_time_superlinear_in_n(self):
        """4 N^3 flops + O(N^2) comm: doubling N multiplies time by > 4."""
        t1 = run_ssc(4, 4000, "baseline").elapsed
        t2 = run_ssc(4, 8000, "baseline").elapsed
        assert t2 > 4 * t1

    def test_more_nodes_faster_wallclock(self):
        """Scaling the mesh out (PPN=1, more nodes) cuts kernel time."""
        t4 = run_ssc(4, 7645, "baseline", ppn=1).elapsed   # 64 nodes
        t6 = run_ssc(6, 7645, "baseline", ppn=1).elapsed   # 216 nodes
        assert t6 < t4


class TestHardwareScaling:
    def test_infinite_network_leaves_compute_floor(self):
        """With a near-infinite network the kernel time approaches the two
        local multiplies — communication was everything else."""
        fast_net = NetworkParams(
            nic_bandwidth=1e15, process_injection_bandwidth=1e15,
            shm_bandwidth=1e15, shm_flow_cap=1e15,
            combine_bandwidth=1e15, round_copy_bandwidth=1e15,
            eager_copy_bandwidth=1e15,
            alpha=1e-12, shm_alpha=1e-12, rendezvous_extra=0.0,
            blocking_round_gap=0.0, send_overhead=0.0, recv_overhead=0.0,
            ibcast_post_seconds=0.0, ireduce_post_base=0.0,
            ireduce_post_per_byte=0.0,
        )
        n, p = 7645, 4
        machine = MachineParams()
        r = run_ssc(p, n, "baseline", params=fast_net, machine=machine)
        block = -(-n // p)
        mm_floor = 2 * (2.0 * block**3) / machine.node_flops
        assert r.elapsed == pytest.approx(mm_floor, rel=0.05)

    def test_infinite_compute_leaves_comm_floor(self):
        """With infinite flops the kernel time is pure communication and
        the overlap gain is at its largest."""
        machine = MachineParams(node_flops=1e20)
        tb = run_ssc(4, 7645, "baseline", machine=machine).elapsed
        to = run_ssc(4, 7645, "optimized", n_dup=4, machine=machine).elapsed
        tb_real = run_ssc(4, 7645, "baseline").elapsed
        assert tb < tb_real              # compute removed
        assert tb / to > 1.25            # overlap gain grows comm-only

    def test_flops_metric_consistent_across_kernels(self):
        n = SYSTEMS["1hsg_70"][0]
        r3d = run_ssc(4, n, "baseline")
        r25d = run_ssc25d(8, 2, n, ppn=2)
        for r in (r3d, r25d):
            assert r.tflops == pytest.approx(
                ssc_flops(n) / r.elapsed / 1e12
            )


class TestPurificationScaling:
    def test_ssc_dominates_purification_iteration(self):
        """The paper treats SymmSquareCube as *the* purification kernel: the
        trace-allreduce + update must be a small fraction of an iteration."""
        from repro.purify import run_distributed_purification
        res = run_distributed_purification(4, 7645, "baseline", iterations=2)
        total = res.world.engine.now
        ssc_total = sum(res.ssc_times)
        assert ssc_total > 0.6 * total
