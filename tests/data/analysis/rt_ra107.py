"""RA107 fixture: ``waitany([])`` — undefined in MPI, always a bug.

The program catches the ValueError and finishes normally; the verifier
still records the offending call site.
"""

from repro.mpi.world import World
from repro.netmodel import block_placement


def run(disabled=()):
    from repro.analysis.verifier import CommVerifier

    world = World(block_placement(2, 1), verifier=CommVerifier(disabled=disabled))

    def program(env):
        from repro.mpi.requests import waitany

        comm = env.view(world.comm_world)
        yield from comm.barrier()
        try:
            yield from waitany([])
        except ValueError:
            pass

    world.spawn_all(program)
    world.run()
    return world
