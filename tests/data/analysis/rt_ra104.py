"""RA104 fixture: an eager send nobody ever receives.

The send completes locally (eager protocol), rank 0 waits it, and the
program exits with the message still parked in the transport's unexpected
queue — silent payload loss that only the exit-time check reports.
"""

from repro.mpi.world import World
from repro.netmodel import block_placement


def run(disabled=()):
    from repro.analysis.verifier import CommVerifier

    world = World(block_placement(2, 1), verifier=CommVerifier(disabled=disabled))

    def program(env):
        comm = env.view(world.comm_world)
        if comm.rank == 0:
            req = yield from comm.isend(1, nbytes=64)  # no matching recv
            yield from req.wait()

    world.spawn_all(program)
    world.run()
    return world
