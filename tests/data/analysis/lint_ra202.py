"""RA202 fixture: the Request from a nonblocking call is discarded."""


def program(env, world):
    comm = env.view(world.comm_world)
    yield from comm.isend(1, nbytes=64)  # Request dropped: can never be waited
    yield from comm.barrier()
