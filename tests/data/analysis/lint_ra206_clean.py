"""RA206 mutation twin: the guard patterns that must never be flagged."""

from repro.mpi.requests import waitall


def program_guarded(env, view, cond):
    req = None
    if cond:
        req = yield from view.isend(1, nbytes=8)
    if req is not None:
        yield from req.wait()


def program_accumulated(env, view):
    reqs = []
    for dst in (1, 2):
        req = yield from view.isend(dst, nbytes=8)
        reqs.append(req)
    yield from waitall(reqs)
