"""RA105 fixture: two in-flight sends with an identical user-tag envelope.

Rank 0 posts both sends before rank 1 posts any receive, so matching
depends purely on the FIFO non-overtaking rule — legal MPI, but fragile
(reordering either post silently swaps the payloads).  Flagged as a
warning.
"""

from repro.mpi.world import World
from repro.netmodel import block_placement


def run(disabled=()):
    from repro.analysis.verifier import CommVerifier

    world = World(block_placement(2, 1), verifier=CommVerifier(disabled=disabled))

    def program(env):
        from repro.mpi.requests import waitall

        comm = env.view(world.comm_world)
        if comm.rank == 0:
            r1 = yield from comm.isend(1, data=[1], nbytes=64, tag=7)
            r2 = yield from comm.isend(1, data=[2], nbytes=64, tag=7)
            yield from waitall([r1, r2])
        else:
            yield from env.sleep(1e-3)  # let both sends queue up first
            yield from comm.recv(0, tag=7)
            yield from comm.recv(0, tag=7)

    world.spawn_all(program)
    world.run()
    return world
