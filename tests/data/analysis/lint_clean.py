"""Clean fixture: a correct rank program the lint must not flag."""

import numpy as np


def program(env, world):
    from repro.mpi.requests import waitall

    comms = world.comm_world.dup_many(2)
    views = [env.view(c) for c in comms]
    buf = np.zeros(64)
    reqs = []
    for view in views:
        req = yield from view.ibcast(buf[:32] if view is views[0] else buf[32:],
                                     root=0)
        reqs.append(req)
    yield from waitall(reqs)
    yield from views[0].barrier()
    rng = np.random.default_rng(7)
    return rng.standard_normal(4)
