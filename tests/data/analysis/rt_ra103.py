"""RA103 fixture: the same buffer passed to two overlapping ibcasts.

The first ibcast (rendezvous-sized, so genuinely in flight) still owns the
buffer when the second one posts it again; whichever transfer lands last
wins, nondeterministically in real MPI.  Both operations are waited, so the
run completes and only RA103 distinguishes it from a correct program.
"""

import numpy as np

from repro.mpi.world import World
from repro.netmodel import block_placement


def run(disabled=()):
    from repro.analysis.verifier import CommVerifier

    world = World(block_placement(2, 1), verifier=CommVerifier(disabled=disabled))

    def program(env):
        from repro.mpi.requests import waitall

        comm = env.view(world.comm_world)
        buf = np.zeros(16384)  # 128 KiB: above the rendezvous threshold
        r1 = yield from comm.ibcast(buf, root=0)
        r2 = yield from comm.ibcast(buf, root=0)  # hazard: buf still in flight
        yield from waitall([r1, r2])

    world.spawn_all(program)
    world.run()
    return world
