"""RA101 fixture: ranks disagree on a collective's byte count.

Both ranks reach bcast seq 0 on comm ``world``, but rank 1 passes twice the
bytes rank 0 does.  The simulated transfer still completes (matching is by
envelope, not size), so the run finishes cleanly — only the verifier can
see the divergence.
"""

from repro.mpi.world import World
from repro.netmodel import block_placement


def run(disabled=()):
    from repro.analysis.verifier import CommVerifier

    world = World(block_placement(2, 1), verifier=CommVerifier(disabled=disabled))

    def program(env):
        comm = env.view(world.comm_world)
        yield from comm.bcast(nbytes=64 * (comm.rank + 1), root=0)

    world.spawn_all(program)
    world.run()
    return world
