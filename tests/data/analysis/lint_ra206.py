"""RA206 fixture: wait/waitall on never-comm-assigned request variables."""

from repro.mpi.requests import waitall


def program(env, view):
    req = None
    yield from view.send(1, nbytes=8)
    yield from req.wait()  # RA206: `req` is only ever bound to None


def program_waitall(env, view):
    reqs = []
    yield from view.send(1, nbytes=8)
    yield from waitall(reqs)  # RA206: `reqs` never receives a request
