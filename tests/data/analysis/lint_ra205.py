"""RA205 fixture: buffer mutated between isend() and its wait()."""

import numpy as np


def program(env, view):
    buf = np.zeros(8)
    req = yield from view.isend(1, data=buf, tag=0)
    buf[0] = 1.0  # RA205: the in-flight zero-copy view observes this write
    yield from req.wait()


def program_slice(env, view):
    buf = np.zeros(8)
    req = yield from view.isend(1, data=buf[0:4], tag=0)
    buf[2] += 1.0  # RA205: augmented store into the sent range's base
    yield from req.wait()
