"""RA106 fixture: the classic two-rank receive-receive deadlock.

Each rank waits for a message the other will only send afterwards; the
event queue drains with both suspended.  ``World.run`` raises
SimulationError and the verifier names each rank's pending wait plus the
r0 -> r1 -> r0 wait-for cycle.
"""

from repro.mpi.world import World
from repro.netmodel import block_placement
from repro.sim.engine import SimulationError


def run(disabled=()):
    from repro.analysis.verifier import CommVerifier

    world = World(block_placement(2, 1), verifier=CommVerifier(disabled=disabled))

    def program(env):
        comm = env.view(world.comm_world)
        peer = 1 - comm.rank
        data = yield from comm.recv(peer)  # both block here forever
        yield from comm.send(peer, nbytes=64)
        return data

    world.spawn_all(program)
    try:
        world.run()
    except SimulationError:
        pass
    else:  # pragma: no cover - the fixture must deadlock
        raise AssertionError("fixture was expected to deadlock")
    return world
