"""RA203 fixture: a dup_many result indexed past N_DUP."""


def program(env, world):
    comms = world.comm_world.dup_many(2)
    view = env.view(comms[2])  # out of range: dup_many(2) gives indices 0..1
    yield from view.barrier()
