"""RA102 fixture: a nonblocking send whose Request is never completed.

The eager message is delivered (rank 1 receives it), so the run finishes —
but rank 0 dropped the isend Request on the floor, which real MPI counts
as a resource leak.
"""

from repro.mpi.world import World
from repro.netmodel import block_placement


def run(disabled=()):
    from repro.analysis.verifier import CommVerifier

    world = World(block_placement(2, 1), verifier=CommVerifier(disabled=disabled))

    def program(env):
        comm = env.view(world.comm_world)
        if comm.rank == 0:
            yield from comm.isend(1, nbytes=64)  # Request discarded: leak
        else:
            yield from comm.recv(0)

    world.spawn_all(program)
    world.run()
    return world
