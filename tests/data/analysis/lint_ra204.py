"""RA204 fixture: wall-clock and global-RNG use (linted with determinism on)."""

import random
import time


def jitter():
    t0 = time.time()
    return t0 + random.random()
