"""RA205 mutation twin: the same shapes, all writes outside the window."""

import numpy as np


def program(env, view):
    buf = np.zeros(8)
    req = yield from view.isend(1, data=buf, tag=0)
    yield from req.wait()
    buf[0] = 1.0  # after the wait: the payload is delivered, no hazard


def program_snapshot(env, view):
    buf = np.zeros(8)
    part = np.array(buf[0:4])
    req = yield from view.isend(1, data=part, tag=0)
    buf[2] = 1.0  # a different object: `part` is a private snapshot
    yield from req.wait()


def program_rebound(env, view):
    part = np.zeros(4)
    req = yield from view.isend(1, data=part, tag=0)
    part = np.ones(4)
    part[0] = 2.0  # rebound above: this writes a fresh array, not the payload
    yield from req.wait()
