"""RA201 fixture: a generator comm verb called without ``yield from``."""


def program(env, world):
    comm = env.view(world.comm_world)
    comm.bcast(nbytes=64, root=0)  # builds a generator, communicates nothing
    yield from comm.barrier()
