"""Property-based conservation invariants for the fabric, faults included.

The fluid model must conserve bytes no matter how transfers, rate reshares
and fault windows interleave: every posted flow completes exactly once,
cumulative byte counters equal what was posted, and no flow's ``remaining``
ever drops below ``-_EPS_BYTES`` at any rate change.  A probe subclass
asserts the invariants *during* the run (at every recompute) rather than
only at the end, so a violation pinpoints the instant it happened.

Also pins the `_flows_at` leak fix: resource keys whose flow sets drain
must be pruned, so long-lived fabrics stay O(active flows), not O(every
resource ever touched).

Every property case additionally runs under both fair-share solvers
(``solver="scalar"`` and ``solver="vector"``, see
:class:`repro.netmodel.fabric.Fabric`): byte accounting, completion
order, per-recompute share assignments and engine counters must be
bit-for-bit identical — the vectorized pass is an implementation detail,
never a semantic choice.
"""

from hypothesis import given, settings, strategies as st

from repro.netmodel import NetworkParams
from repro.netmodel.fabric import _EPS_BYTES, Fabric
from repro.netmodel.topology import block_placement
from repro.sim.engine import Engine
from repro.sim.faults import FaultPlan, LinkDegradation, NicJitter

RANKS = 8
PPN = 2


class ProbeFabric(Fabric):
    """Fabric that checks conservation invariants at every recompute.

    Also keeps ``rate_log`` — a per-recompute snapshot of every active
    flow's assigned rate — so two runs can be compared share-by-share,
    not just on their end-state byte counters.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.completions: list[tuple[float, float]] = []  # (nbytes, residual)
        self.rate_log: list[tuple] = []  # (now, ((fid, rate), ...))

    def _update(self, keys):
        super()._update(keys)
        seen: dict[int, float] = {}
        for flows in self._flows_at.values():
            for f in flows.values():
                assert f.remaining >= -_EPS_BYTES, (
                    f"flow {f.fid} remaining {f.remaining} < -eps"
                )
                assert f.rate >= 0.0
                if f.rate > 0.0:
                    assert f.eta >= self.engine.now
                seen[f.fid] = f.rate
        self.rate_log.append(
            (self.engine.now, tuple(sorted(seen.items())))
        )

    def _complete(self, flow):
        self.completions.append((flow.nbytes, flow.remaining))
        super()._complete(flow)


def drive(flow_spec, faults=None, solver="scalar"):
    """Post (src, dst_offset, nbytes, t_start) flows; run to completion."""
    eng = Engine()
    fab = ProbeFabric(eng, block_placement(RANKS, PPN),
                      NetworkParams(), faults=faults, solver=solver)
    finish_times = []
    for (src, doff, nbytes, t0) in flow_spec:
        dst = (src + 1 + doff) % RANKS

        def start(src=src, dst=dst, nbytes=nbytes):
            ev = fab.transfer(src, dst, nbytes)
            ev.add_callback(lambda _e: finish_times.append(eng.now))

        eng.call_after(t0, start)
    eng.run()
    return eng, fab, finish_times


FLOWS = st.lists(
    st.tuples(
        st.integers(0, RANKS - 1),               # src
        st.integers(0, RANKS - 2),               # dst offset (never self)
        st.integers(0, 4_000_000),               # bytes
        st.floats(0, 0.02, allow_nan=False),     # start time
    ),
    min_size=1,
    max_size=14,
)

N_CHANNELS = 4

CHANNEL_FLOWS = st.lists(
    st.tuples(
        st.integers(0, RANKS - 1),               # src
        st.integers(0, RANKS - 2),               # dst offset (never self)
        st.integers(0, 4_000_000),               # bytes
        st.floats(0, 0.02, allow_nan=False),     # start time
        st.integers(0, N_CHANNELS - 1),          # channel
    ),
    min_size=1,
    max_size=14,
)


def drive_channels(flow_spec, faults=None, solver="scalar"):
    """Like :func:`drive`, but each flow rides its spec's channel."""
    eng = Engine()
    fab = ProbeFabric(eng, block_placement(RANKS, PPN),
                      NetworkParams(num_channels=N_CHANNELS),
                      faults=faults, solver=solver)
    finish_times = []
    for (src, doff, nbytes, t0, channel) in flow_spec:
        dst = (src + 1 + doff) % RANKS

        def start(src=src, dst=dst, nbytes=nbytes, channel=channel):
            ev = fab.transfer(src, dst, nbytes, channel=channel)
            ev.add_callback(lambda _e: finish_times.append(eng.now))

        eng.call_after(t0, start)
    eng.run()
    return eng, fab, finish_times


def check_channels_conserved(fab, flow_spec, finish_times):
    """Per-lane byte/message conservation on top of the global invariants."""
    assert len(finish_times) == len(flow_spec)
    posted_bytes = [0.0] * N_CHANNELS
    posted_msgs = [0] * N_CHANNELS
    for (_src, _doff, nbytes, _t0, channel) in flow_spec:
        posted_bytes[channel] += nbytes
        posted_msgs[channel] += 1
    stats = fab.snapshot_stats()
    assert stats["channel_bytes"] == posted_bytes
    assert stats["channel_messages"] == posted_msgs
    # The lanes partition exactly the traffic the global counters hold.
    assert sum(stats["channel_bytes"]) == (fab.inter_node_bytes
                                           + fab.intra_node_bytes)
    assert sum(stats["channel_messages"]) == (fab.inter_node_messages
                                              + fab.intra_node_messages)
    assert fab._flows_at == {}
    assert fab._dirty == {}

WINDOWS = st.lists(
    st.tuples(
        st.integers(0, RANKS // PPN - 1),        # node
        st.floats(0.0, 0.02, allow_nan=False),   # window start
        st.floats(0.001, 0.05, allow_nan=False),  # window length
        st.floats(0.05, 1.0, allow_nan=False),   # bandwidth factor
    ),
    min_size=0,
    max_size=3,
)


def check_conserved(fab, flow_spec, finish_times):
    assert len(finish_times) == len(flow_spec)  # every flow completes once
    cluster = fab.cluster
    posted_inter = posted_intra = 0
    for (src, doff, nbytes, _t0) in flow_spec:
        dst = (src + 1 + doff) % RANKS
        if cluster.same_node(src, dst):
            posted_intra += nbytes
        else:
            posted_inter += nbytes
    assert fab.inter_node_bytes == posted_inter
    assert fab.intra_node_bytes == posted_intra
    for nbytes, residual in fab.completions:
        assert residual >= -_EPS_BYTES * max(1.0, nbytes)
        assert residual <= _EPS_BYTES * max(1.0, nbytes)
    # Leak fix: drained resource keys are pruned, dirty set fully consumed.
    assert fab._flows_at == {}
    assert fab._dirty == {}


def check_solvers_agree(scalar_run, vector_run):
    """The two fair-share solvers must be observationally identical."""
    eng_s, fab_s, finish_s = scalar_run
    eng_v, fab_v, finish_v = vector_run
    assert finish_s == finish_v              # completion instants, in order
    assert fab_s.completions == fab_v.completions  # byte accounting per flow
    assert fab_s.rate_log == fab_v.rate_log  # every share assignment, every
    assert fab_s.inter_node_bytes == fab_v.inter_node_bytes  # recompute
    assert fab_s.intra_node_bytes == fab_v.intra_node_bytes
    assert eng_s.events_processed == eng_v.events_processed
    assert eng_s.events_cancelled == eng_v.events_cancelled


class TestConservation:
    @settings(max_examples=40, deadline=None)
    @given(flows=FLOWS)
    def test_arbitrary_interleavings_conserve_bytes(self, flows):
        runs = {}
        for solver in ("scalar", "vector"):
            eng, fab, finish = runs[solver] = drive(flows, solver=solver)
            check_conserved(fab, flows, finish)
            assert eng.idle  # heap fully drained (dead entries reaped)
        check_solvers_agree(runs["scalar"], runs["vector"])

    @settings(max_examples=40, deadline=None)
    @given(flows=FLOWS, windows=WINDOWS, seed=st.integers(0, 3))
    def test_fault_windows_conserve_bytes(self, flows, windows, seed):
        specs = []
        for (node, t0, length, factor) in windows:
            specs.append(LinkDegradation(node=node, t_start=t0,
                                         t_end=t0 + length, factor=factor))
        specs.append(NicJitter(node=0, t_start=0.0, t_end=0.05,
                               max_extra_latency=1e-5))
        runs = {}
        for solver in ("scalar", "vector"):
            plan = FaultPlan(specs, seed=seed)
            eng, fab, finish = runs[solver] = drive(flows, faults=plan,
                                                    solver=solver)
            check_conserved(fab, flows, finish)
            assert eng.idle
        check_solvers_agree(runs["scalar"], runs["vector"])

    @settings(max_examples=30, deadline=None)
    @given(flows=CHANNEL_FLOWS)
    def test_random_channel_assignment_conserves_per_lane(self, flows):
        runs = {}
        for solver in ("scalar", "vector"):
            eng, fab, finish = runs[solver] = drive_channels(flows,
                                                             solver=solver)
            check_channels_conserved(fab, flows, finish)
            assert eng.idle
        check_solvers_agree(runs["scalar"], runs["vector"])

    @settings(max_examples=30, deadline=None)
    @given(flows=CHANNEL_FLOWS, windows=WINDOWS, seed=st.integers(0, 3))
    def test_channel_conservation_under_fault_interleavings(self, flows,
                                                            windows, seed):
        specs = []
        for (node, t0, length, factor) in windows:
            specs.append(LinkDegradation(node=node, t_start=t0,
                                         t_end=t0 + length, factor=factor))
        specs.append(NicJitter(node=0, t_start=0.0, t_end=0.05,
                               max_extra_latency=1e-5))
        runs = {}
        for solver in ("scalar", "vector"):
            plan = FaultPlan(specs, seed=seed)
            eng, fab, finish = runs[solver] = drive_channels(
                flows, faults=plan, solver=solver)
            check_channels_conserved(fab, flows, finish)
            assert eng.idle
        check_solvers_agree(runs["scalar"], runs["vector"])

    @settings(max_examples=15, deadline=None)
    @given(flows=FLOWS)
    def test_auto_solver_matches_scalar(self, flows):
        # "auto" only vectorizes recomputes above its flow threshold, so a
        # run mixes both code paths — it must still match scalar exactly.
        check_solvers_agree(drive(flows, solver="scalar"),
                            drive(flows, solver="auto"))

    @settings(max_examples=20, deadline=None)
    @given(flows=FLOWS)
    def test_runs_are_deterministic(self, flows):
        eng1, fab1, finish1 = drive(flows)
        eng2, fab2, finish2 = drive(flows)
        assert finish1 == finish2
        assert eng1.events_processed == eng2.events_processed
        assert eng1.events_cancelled == eng2.events_cancelled
        assert eng1.peak_heap_size == eng2.peak_heap_size


class TestHeapHygieneUnderLoad:
    def test_sequential_flows_keep_heap_and_flows_at_bounded(self):
        """200 back-to-back flows: no growth in heap or resource table."""
        eng = Engine()
        fab = ProbeFabric(eng, block_placement(RANKS, PPN), NetworkParams())
        state = {"left": 200}

        def post(_e=None):
            if state["left"] == 0:
                return
            state["left"] -= 1
            src = state["left"] % RANKS
            ev = fab.transfer(src, (src + 3) % RANKS, 500_000)
            ev.add_callback(post)

        post()
        eng.run()
        assert len(fab.completions) == 200
        assert fab._flows_at == {}
        # One flow in flight at a time: the heap must stay O(1), not O(#flows).
        assert eng.peak_heap_size < 12

    def test_burst_cancellations_stay_compacted(self):
        """A big overlapping burst exercises reshare-driven reschedules."""
        eng = Engine()
        fab = ProbeFabric(eng, block_placement(64, 1), NetworkParams())
        for i in range(256):
            src = i % 64
            # Mixed sizes so completions stagger and survivors get rate
            # bumps (uniform sizes finish in lockstep with zero reshares).
            fab.transfer(src, (src + 1 + i % 7) % 64,
                         2_000_000 + (i % 5) * 400_000)
        eng.run()
        assert len(fab.completions) == 256
        assert fab._flows_at == {}
        # Superseded completion timers are cancelled and compacted away:
        # the heap never holds more than a small multiple of the live flows.
        assert eng.peak_heap_size <= 4 * 256
        assert eng.events_cancelled > 0
