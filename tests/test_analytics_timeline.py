"""Unit tests for the interval algebra and link timelines (repro.analytics)."""

import pytest

from repro.analytics.timeline import (
    LinkKey,
    build_link_timelines,
    find_last_active,
    gap_histogram,
    intersect_intervals,
    interval_complement,
    merge_intervals,
    multiplicity_intervals,
    rank_breakdown,
    total_measure,
)
from repro.netmodel.fabric import FlowRecord
from repro.sim.trace import SpanKind, Trace


def rec(fid, t0, t1, *, src=0, dst=1, src_node=0, dst_node=1, nbytes=100.0,
        channel=0, op=None):
    return FlowRecord(fid, src, dst, src_node, dst_node, nbytes, channel,
                      t0, t1, op)


class TestIntervalAlgebra:
    def test_merge_overlapping_and_touching(self):
        ivs = [(0.0, 1.0), (0.5, 2.0), (2.0, 3.0), (5.0, 6.0)]
        assert merge_intervals(ivs) == [(0.0, 3.0), (5.0, 6.0)]

    def test_merge_drops_zero_measure(self):
        assert merge_intervals([(1.0, 1.0), (2.0, 2.0)]) == []
        assert merge_intervals([]) == []

    def test_merge_unsorted_input(self):
        assert merge_intervals([(3.0, 4.0), (0.0, 1.0)]) == [
            (0.0, 1.0), (3.0, 4.0)]

    def test_total_measure(self):
        assert total_measure([(0.0, 1.5), (2.0, 2.25)]) == pytest.approx(1.75)
        assert total_measure([]) == 0.0

    def test_intersect(self):
        a = [(0.0, 2.0), (3.0, 5.0)]
        b = [(1.0, 4.0)]
        assert intersect_intervals(a, b) == [(1.0, 2.0), (3.0, 4.0)]
        assert intersect_intervals(a, []) == []

    def test_intersect_touching_is_empty(self):
        # Half-open: [0,1) and [1,2) share no instant.
        assert intersect_intervals([(0.0, 1.0)], [(1.0, 2.0)]) == []

    def test_complement(self):
        busy = [(1.0, 2.0), (3.0, 4.0)]
        assert interval_complement(busy, 0.0, 5.0) == [
            (0.0, 1.0), (2.0, 3.0), (4.0, 5.0)]
        assert interval_complement(busy, 1.0, 4.0) == [(2.0, 3.0)]
        assert interval_complement([], 0.0, 1.0) == [(0.0, 1.0)]
        assert interval_complement([(0.0, 1.0)], 0.0, 1.0) == []

    def test_multiplicity_plain(self):
        ivs = [(0.0, 2.0, "a"), (1.0, 3.0, "b"), (5.0, 6.0, "c")]
        assert multiplicity_intervals(ivs, threshold=2) == [(1.0, 2.0)]
        assert multiplicity_intervals(ivs, threshold=3) == []

    def test_multiplicity_touching_no_overlap(self):
        # [0,1) then [1,2): never two at once under half-open semantics.
        ivs = [(0.0, 1.0, "a"), (1.0, 2.0, "b")]
        assert multiplicity_intervals(ivs, threshold=2) == []

    def test_multiplicity_distinct_key(self):
        # Two flows of the SAME op overlap as flows but not as operations.
        ivs = [(0.0, 2.0, "op1"), (1.0, 3.0, "op1"), (2.5, 4.0, "op2")]
        assert multiplicity_intervals(ivs, threshold=2) == [
            (1.0, 2.0), (2.5, 3.0)]
        assert multiplicity_intervals(ivs, threshold=2, distinct_key=True) == [
            (2.5, 3.0)]

    def test_gap_histogram_log2_buckets(self):
        # 1.5 us -> floor(log2 1.5e-6) = -20; 3 us -> -19.
        hist = gap_histogram([(0.0, 1.5e-6), (10.0, 10.0 + 3e-6),
                              (20.0, 20.0 + 1.6e-6)])
        assert hist == {-20: 2, -19: 1}
        assert gap_histogram([]) == {}


class TestLinkTimelines:
    def test_grouping_and_metrics(self):
        records = [
            rec(1, 0.0, 1.0, op="a"),
            rec(2, 0.5, 2.0, op="b"),
            rec(3, 4.0, 5.0, op="a"),
            rec(4, 0.0, 1.0, src_node=2, dst_node=3, op="a"),
            rec(5, 0.0, 1.0, src=2, dst=3, src_node=1, dst_node=1, op="a"),
        ]
        tls = build_link_timelines(records)
        assert set(tls) == {
            LinkKey("wire", 0, 1, 0), LinkKey("wire", 2, 3, 0),
            LinkKey("shm", 1, 1, 0),
        }
        tl = tls[LinkKey("wire", 0, 1, 0)]
        assert tl.flows == 3
        assert tl.nbytes == 300.0
        assert tl.busy == [(0.0, 2.0), (4.0, 5.0)]
        assert tl.busy_time == pytest.approx(3.0)
        assert tl.span == pytest.approx(5.0)
        assert tl.utilization == pytest.approx(3.0 / 5.0)
        assert tl.idle_gaps == [(2.0, 4.0)]
        assert tl.largest_gap == pytest.approx(2.0)
        # Flows of distinct ops overlap in [0.5, 1.0).
        assert tl.flow_overlap_fraction == pytest.approx(0.5 / 3.0)
        assert tl.comm_comm_overlap_fraction == pytest.approx(0.5 / 3.0)

    def test_channels_are_distinct_lanes(self):
        records = [rec(1, 0.0, 1.0, channel=0), rec(2, 0.0, 1.0, channel=1)]
        tls = build_link_timelines(records)
        assert set(tls) == {LinkKey("wire", 0, 1, 0), LinkKey("wire", 0, 1, 1)}
        for tl in tls.values():
            assert tl.flows == 1
            # Per lane there is only one flow: no lane-level overlap.
            assert tl.flow_overlap_fraction == 0.0

    def test_labels(self):
        assert LinkKey("wire", 0, 1, 2).label == "n0->n1/ch2"
        assert LinkKey("shm", 3, 3, 0).label == "shm:n3/ch0"

    def test_empty(self):
        assert build_link_timelines([]) == {}
        assert find_last_active({}) == (None, 0.0)

    def test_find_last_active(self):
        tls = build_link_timelines([
            rec(1, 0.0, 1.0),
            rec(2, 0.0, 3.0, src_node=2, dst_node=3),
        ])
        key, t = find_last_active(tls)
        assert key == LinkKey("wire", 2, 3, 0)
        assert t == 3.0

    def test_to_jsonable_roundtrip(self):
        import json

        tls = build_link_timelines([rec(1, 0.0, 1.0, op="a")])
        payload = next(iter(tls.values())).to_jsonable()
        assert json.loads(json.dumps(payload)) == payload


class TestRankBreakdown:
    def test_totals_per_kind(self):
        tr = Trace()
        tr.add(0, 0.0, 1.0, SpanKind.POST, "p")
        tr.add(0, 1.0, 3.0, SpanKind.WAIT, "w")
        tr.add(1, 0.0, 0.5, SpanKind.COMPUTE, "c")
        out = rank_breakdown(tr)
        assert list(out) == [0, 1]
        assert out[0]["post"] == pytest.approx(1.0)
        assert out[0]["wait"] == pytest.approx(2.0)
        assert out[0]["compute"] == 0.0
        assert out[1]["compute"] == pytest.approx(0.5)
