"""Unit tests for generator-coroutine processes (repro.sim.process)."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import (
    AllOf,
    AnyOf,
    Delay,
    Interrupt,
    SimProcess,
    WaitEvent,
    run_processes,
)


class TestDelay:
    def test_delay_advances_clock(self):
        def prog():
            yield Delay(1.5)
            yield Delay(2.5)
            return "done"
        t, (res,) = run_processes([("p", prog())])
        assert t == 4.0 and res == "done"

    def test_zero_delay_ok(self):
        def prog():
            yield Delay(0.0)
            return 1
        t, (res,) = run_processes([("p", prog())])
        assert t == 0.0 and res == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1)

    def test_interleaving_two_processes(self):
        log = []
        eng = Engine()
        def prog(name, step):
            for i in range(3):
                yield Delay(step)
                log.append((name, eng.now))
        run_processes([("a", prog("a", 1.0)), ("b", prog("b", 1.5))], engine=eng)
        # At the t=3.0 tie, "b" resumes first: its wakeup was scheduled at
        # t=1.5, before "a"'s at t=2.0 (FIFO order for equal timestamps).
        assert log == [
            ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0), ("b", 4.5)
        ]


class TestWaiting:
    def test_wait_event_receives_value(self):
        eng = Engine()
        ev = eng.event()
        eng.call_after(2.0, lambda: ev.succeed("payload"))
        def prog():
            got = yield WaitEvent(ev)
            return got
        _, (res,) = run_processes([("p", prog())], engine=eng)
        assert res == "payload"

    def test_bare_event_yield(self):
        eng = Engine()
        ev = eng.timeout(1.0, value=7)
        def prog():
            got = yield ev
            return got
        _, (res,) = run_processes([("p", prog())], engine=eng)
        assert res == 7

    def test_already_fired_event_resumes_immediately(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(9)
        def prog():
            got = yield ev
            return (got, eng.now)
        _, (res,) = run_processes([("p", prog())], engine=eng)
        assert res == (9, 0.0)

    def test_all_of(self):
        eng = Engine()
        evs = [eng.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        def prog():
            vals = yield AllOf(evs)
            return (vals, eng.now)
        _, (res,) = run_processes([("p", prog())], engine=eng)
        assert res == ([3.0, 1.0, 2.0], 3.0)

    def test_all_of_empty(self):
        def prog():
            vals = yield AllOf([])
            return vals
        _, (res,) = run_processes([("p", prog())])
        assert res == []

    def test_any_of_returns_first(self):
        eng = Engine()
        evs = [eng.timeout(3.0, value="slow"), eng.timeout(1.0, value="fast")]
        def prog():
            idx, val = yield AnyOf(evs)
            return (idx, val, eng.now)
        _, (res,) = run_processes([("p", prog())], engine=eng)
        assert res == (1, "fast", 1.0)

    def test_any_of_empty_rejected(self):
        with pytest.raises(ValueError):
            AnyOf([])

    def test_yield_from_subgenerator(self):
        def sub(x):
            yield Delay(1.0)
            return x * 2
        def prog():
            a = yield from sub(3)
            b = yield from sub(a)
            return b
        t, (res,) = run_processes([("p", prog())])
        assert res == 12 and t == 2.0


class TestErrorsAndControl:
    def test_exception_wrapped_with_process_name(self):
        def prog():
            yield Delay(1.0)
            raise ValueError("inner")
        with pytest.raises(SimulationError, match="myproc"):
            run_processes([("myproc", prog())])

    def test_invalid_syscall_rejected(self):
        def prog():
            yield 42
        with pytest.raises(SimulationError, match="invalid syscall"):
            run_processes([("p", prog())])

    def test_deadlock_detected(self):
        eng = Engine()
        ev = eng.event()  # never fires
        def prog():
            yield ev
        with pytest.raises(SimulationError, match="deadlock"):
            run_processes([("p", prog())], engine=eng)

    def test_interrupt_terminates_waiting_process(self):
        eng = Engine()
        ev = eng.event()
        def prog():
            yield ev
            return "never"
        proc = SimProcess(eng, prog(), name="p")
        proc.interrupt()
        eng.run()
        assert proc.done.fired and proc.done.value is None

    def test_interrupt_catchable(self):
        eng = Engine()
        ev = eng.event()
        def prog():
            try:
                yield ev
            except Interrupt:
                return "cleaned up"
        proc = SimProcess(eng, prog(), name="p")
        proc.interrupt()
        eng.run()
        assert proc.done.value == "cleaned up"

    def test_interrupt_after_done_is_noop(self):
        eng = Engine()
        def prog():
            yield Delay(1.0)
            return "ok"
        proc = SimProcess(eng, prog(), name="p")
        eng.run()
        proc.interrupt()
        eng.run()
        assert proc.done.value == "ok"

    def test_many_processes_deterministic(self):
        def make(i):
            def prog():
                yield Delay(float(i % 5))
                return i
            return prog()
        t, results = run_processes([(f"p{i}", make(i)) for i in range(100)])
        assert results == list(range(100))
        assert t == 4.0
