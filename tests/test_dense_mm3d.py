"""Correctness and shape tests for the standalone 3D multiplication."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dense import run_mm3d
from repro.dense.mesh import Mesh3D
from repro.kernels import run_ssc

from tests.conftest import make_world, symmetric


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_matches_numpy(self, rng, p):
        n = 41
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        res = run_mm3d(p, n, a, b)
        assert np.allclose(res.c, a @ b), f"p={p}"

    def test_nonsymmetric_inputs_fine(self, rng):
        # Unlike SymmSquareCube, 3D MM has no symmetry requirement.
        n = 20
        a = np.triu(rng.standard_normal((n, n)))
        b = np.tril(rng.standard_normal((n, n)))
        res = run_mm3d(2, n, a, b)
        assert np.allclose(res.c, a @ b)

    def test_non_divisible_dimension(self, rng):
        n, p = 29, 3
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        res = run_mm3d(p, n, a, b)
        assert np.allclose(res.c, a @ b)

    def test_agrees_with_ssc_square(self, rng):
        """D @ D from the generic 3D MM equals SymmSquareCube's D^2."""
        n = 24
        d = symmetric(rng, n)
        mm = run_mm3d(2, n, d, d)
        ssc = run_ssc(2, n, "baseline", d)
        assert np.allclose(mm.c, ssc.d2)

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(4, 40), p=st.integers(1, 3), seed=st.integers(0, 2**31))
    def test_property_random(self, n, p, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        res = run_mm3d(p, n, a, b)
        assert np.allclose(res.c, a @ b)


class TestValidationAndTiming:
    def test_requires_both_or_neither(self, rng):
        with pytest.raises(ValueError):
            run_mm3d(2, 8, a=np.eye(8))

    def test_cubic_mesh_required(self):
        from repro.dense.mm3d import mm3d_program
        world = make_world(4 * 4 * 2)
        mesh = Mesh3D(world, 4, 4, 2)
        gen = mm3d_program(None, mesh, 8, None, None, False)
        with pytest.raises(ValueError, match="cubic"):
            next(gen)

    def test_modeled_mode(self):
        res = run_mm3d(2, 4096)
        assert res.c is None and res.elapsed > 0

    def test_3d_communicates_less_than_summa_per_process(self):
        """§II: 3D volume O(n^2/p^2) beats 2D O(n^2/p) per process."""
        from repro.dense import run_summa
        n = 200_000
        r3 = run_mm3d(4, n)       # 64 ranks
        r2 = run_summa(8, n)      # 64 ranks
        v3 = r3.world.fabric.inter_node_bytes / 64
        v2 = r2.world.fabric.inter_node_bytes / 64
        assert v3 < v2
